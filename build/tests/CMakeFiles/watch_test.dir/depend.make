# Empty dependencies file for watch_test.
# This may be replaced when dependencies are built.
