file(REMOVE_RECURSE
  "CMakeFiles/watch_test.dir/watch_test.cpp.o"
  "CMakeFiles/watch_test.dir/watch_test.cpp.o.d"
  "watch_test"
  "watch_test.pdb"
  "watch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
