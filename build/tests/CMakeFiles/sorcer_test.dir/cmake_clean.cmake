file(REMOVE_RECURSE
  "CMakeFiles/sorcer_test.dir/sorcer_test.cpp.o"
  "CMakeFiles/sorcer_test.dir/sorcer_test.cpp.o.d"
  "sorcer_test"
  "sorcer_test.pdb"
  "sorcer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorcer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
