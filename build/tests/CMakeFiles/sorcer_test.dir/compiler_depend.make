# Empty compiler generated dependencies file for sorcer_test.
# This may be replaced when dependencies are built.
