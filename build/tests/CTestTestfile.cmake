# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/sensor_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/sorcer_test[1]_include.cmake")
include("/root/repo/build/tests/rio_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/watch_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
