file(REMOVE_RECURSE
  "libsensorcer_expr.a"
)
