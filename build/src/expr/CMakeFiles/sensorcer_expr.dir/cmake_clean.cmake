file(REMOVE_RECURSE
  "CMakeFiles/sensorcer_expr.dir/ast.cpp.o"
  "CMakeFiles/sensorcer_expr.dir/ast.cpp.o.d"
  "CMakeFiles/sensorcer_expr.dir/evaluator.cpp.o"
  "CMakeFiles/sensorcer_expr.dir/evaluator.cpp.o.d"
  "CMakeFiles/sensorcer_expr.dir/lexer.cpp.o"
  "CMakeFiles/sensorcer_expr.dir/lexer.cpp.o.d"
  "CMakeFiles/sensorcer_expr.dir/parser.cpp.o"
  "CMakeFiles/sensorcer_expr.dir/parser.cpp.o.d"
  "libsensorcer_expr.a"
  "libsensorcer_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensorcer_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
