# Empty compiler generated dependencies file for sensorcer_expr.
# This may be replaced when dependencies are built.
