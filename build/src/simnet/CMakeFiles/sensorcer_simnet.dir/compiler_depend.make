# Empty compiler generated dependencies file for sensorcer_simnet.
# This may be replaced when dependencies are built.
