file(REMOVE_RECURSE
  "CMakeFiles/sensorcer_simnet.dir/network.cpp.o"
  "CMakeFiles/sensorcer_simnet.dir/network.cpp.o.d"
  "libsensorcer_simnet.a"
  "libsensorcer_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensorcer_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
