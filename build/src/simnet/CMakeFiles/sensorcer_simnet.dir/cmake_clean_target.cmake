file(REMOVE_RECURSE
  "libsensorcer_simnet.a"
)
