file(REMOVE_RECURSE
  "libsensorcer_registry.a"
)
