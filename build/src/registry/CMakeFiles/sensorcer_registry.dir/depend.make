# Empty dependencies file for sensorcer_registry.
# This may be replaced when dependencies are built.
