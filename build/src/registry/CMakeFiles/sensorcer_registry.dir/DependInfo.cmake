
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/registry/discovery.cpp" "src/registry/CMakeFiles/sensorcer_registry.dir/discovery.cpp.o" "gcc" "src/registry/CMakeFiles/sensorcer_registry.dir/discovery.cpp.o.d"
  "/root/repo/src/registry/entry.cpp" "src/registry/CMakeFiles/sensorcer_registry.dir/entry.cpp.o" "gcc" "src/registry/CMakeFiles/sensorcer_registry.dir/entry.cpp.o.d"
  "/root/repo/src/registry/event_mailbox.cpp" "src/registry/CMakeFiles/sensorcer_registry.dir/event_mailbox.cpp.o" "gcc" "src/registry/CMakeFiles/sensorcer_registry.dir/event_mailbox.cpp.o.d"
  "/root/repo/src/registry/lease_renewal.cpp" "src/registry/CMakeFiles/sensorcer_registry.dir/lease_renewal.cpp.o" "gcc" "src/registry/CMakeFiles/sensorcer_registry.dir/lease_renewal.cpp.o.d"
  "/root/repo/src/registry/lookup.cpp" "src/registry/CMakeFiles/sensorcer_registry.dir/lookup.cpp.o" "gcc" "src/registry/CMakeFiles/sensorcer_registry.dir/lookup.cpp.o.d"
  "/root/repo/src/registry/service_item.cpp" "src/registry/CMakeFiles/sensorcer_registry.dir/service_item.cpp.o" "gcc" "src/registry/CMakeFiles/sensorcer_registry.dir/service_item.cpp.o.d"
  "/root/repo/src/registry/transaction.cpp" "src/registry/CMakeFiles/sensorcer_registry.dir/transaction.cpp.o" "gcc" "src/registry/CMakeFiles/sensorcer_registry.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sensorcer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/sensorcer_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
