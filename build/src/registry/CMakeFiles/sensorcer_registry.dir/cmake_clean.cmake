file(REMOVE_RECURSE
  "CMakeFiles/sensorcer_registry.dir/discovery.cpp.o"
  "CMakeFiles/sensorcer_registry.dir/discovery.cpp.o.d"
  "CMakeFiles/sensorcer_registry.dir/entry.cpp.o"
  "CMakeFiles/sensorcer_registry.dir/entry.cpp.o.d"
  "CMakeFiles/sensorcer_registry.dir/event_mailbox.cpp.o"
  "CMakeFiles/sensorcer_registry.dir/event_mailbox.cpp.o.d"
  "CMakeFiles/sensorcer_registry.dir/lease_renewal.cpp.o"
  "CMakeFiles/sensorcer_registry.dir/lease_renewal.cpp.o.d"
  "CMakeFiles/sensorcer_registry.dir/lookup.cpp.o"
  "CMakeFiles/sensorcer_registry.dir/lookup.cpp.o.d"
  "CMakeFiles/sensorcer_registry.dir/service_item.cpp.o"
  "CMakeFiles/sensorcer_registry.dir/service_item.cpp.o.d"
  "CMakeFiles/sensorcer_registry.dir/transaction.cpp.o"
  "CMakeFiles/sensorcer_registry.dir/transaction.cpp.o.d"
  "libsensorcer_registry.a"
  "libsensorcer_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensorcer_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
