# Empty compiler generated dependencies file for sensorcer_sensor.
# This may be replaced when dependencies are built.
