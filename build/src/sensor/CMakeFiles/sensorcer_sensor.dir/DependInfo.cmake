
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensor/calibration.cpp" "src/sensor/CMakeFiles/sensorcer_sensor.dir/calibration.cpp.o" "gcc" "src/sensor/CMakeFiles/sensorcer_sensor.dir/calibration.cpp.o.d"
  "/root/repo/src/sensor/data_log.cpp" "src/sensor/CMakeFiles/sensorcer_sensor.dir/data_log.cpp.o" "gcc" "src/sensor/CMakeFiles/sensorcer_sensor.dir/data_log.cpp.o.d"
  "/root/repo/src/sensor/device.cpp" "src/sensor/CMakeFiles/sensorcer_sensor.dir/device.cpp.o" "gcc" "src/sensor/CMakeFiles/sensorcer_sensor.dir/device.cpp.o.d"
  "/root/repo/src/sensor/probe.cpp" "src/sensor/CMakeFiles/sensorcer_sensor.dir/probe.cpp.o" "gcc" "src/sensor/CMakeFiles/sensorcer_sensor.dir/probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sensorcer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
