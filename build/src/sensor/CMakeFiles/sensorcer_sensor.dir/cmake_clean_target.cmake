file(REMOVE_RECURSE
  "libsensorcer_sensor.a"
)
