file(REMOVE_RECURSE
  "CMakeFiles/sensorcer_sensor.dir/calibration.cpp.o"
  "CMakeFiles/sensorcer_sensor.dir/calibration.cpp.o.d"
  "CMakeFiles/sensorcer_sensor.dir/data_log.cpp.o"
  "CMakeFiles/sensorcer_sensor.dir/data_log.cpp.o.d"
  "CMakeFiles/sensorcer_sensor.dir/device.cpp.o"
  "CMakeFiles/sensorcer_sensor.dir/device.cpp.o.d"
  "CMakeFiles/sensorcer_sensor.dir/probe.cpp.o"
  "CMakeFiles/sensorcer_sensor.dir/probe.cpp.o.d"
  "libsensorcer_sensor.a"
  "libsensorcer_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensorcer_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
