# CMake generated Testfile for 
# Source directory: /root/repo/src/sorcer
# Build directory: /root/repo/build/src/sorcer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
