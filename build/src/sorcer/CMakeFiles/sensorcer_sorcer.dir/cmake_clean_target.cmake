file(REMOVE_RECURSE
  "libsensorcer_sorcer.a"
)
