file(REMOVE_RECURSE
  "CMakeFiles/sensorcer_sorcer.dir/accessor.cpp.o"
  "CMakeFiles/sensorcer_sorcer.dir/accessor.cpp.o.d"
  "CMakeFiles/sensorcer_sorcer.dir/context.cpp.o"
  "CMakeFiles/sensorcer_sorcer.dir/context.cpp.o.d"
  "CMakeFiles/sensorcer_sorcer.dir/exert.cpp.o"
  "CMakeFiles/sensorcer_sorcer.dir/exert.cpp.o.d"
  "CMakeFiles/sensorcer_sorcer.dir/exertion.cpp.o"
  "CMakeFiles/sensorcer_sorcer.dir/exertion.cpp.o.d"
  "CMakeFiles/sensorcer_sorcer.dir/jobber.cpp.o"
  "CMakeFiles/sensorcer_sorcer.dir/jobber.cpp.o.d"
  "CMakeFiles/sensorcer_sorcer.dir/provider.cpp.o"
  "CMakeFiles/sensorcer_sorcer.dir/provider.cpp.o.d"
  "CMakeFiles/sensorcer_sorcer.dir/space.cpp.o"
  "CMakeFiles/sensorcer_sorcer.dir/space.cpp.o.d"
  "CMakeFiles/sensorcer_sorcer.dir/spacer.cpp.o"
  "CMakeFiles/sensorcer_sorcer.dir/spacer.cpp.o.d"
  "libsensorcer_sorcer.a"
  "libsensorcer_sorcer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensorcer_sorcer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
