
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sorcer/accessor.cpp" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/accessor.cpp.o" "gcc" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/accessor.cpp.o.d"
  "/root/repo/src/sorcer/context.cpp" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/context.cpp.o" "gcc" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/context.cpp.o.d"
  "/root/repo/src/sorcer/exert.cpp" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/exert.cpp.o" "gcc" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/exert.cpp.o.d"
  "/root/repo/src/sorcer/exertion.cpp" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/exertion.cpp.o" "gcc" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/exertion.cpp.o.d"
  "/root/repo/src/sorcer/jobber.cpp" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/jobber.cpp.o" "gcc" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/jobber.cpp.o.d"
  "/root/repo/src/sorcer/provider.cpp" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/provider.cpp.o" "gcc" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/provider.cpp.o.d"
  "/root/repo/src/sorcer/space.cpp" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/space.cpp.o" "gcc" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/space.cpp.o.d"
  "/root/repo/src/sorcer/spacer.cpp" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/spacer.cpp.o" "gcc" "src/sorcer/CMakeFiles/sensorcer_sorcer.dir/spacer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sensorcer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/sensorcer_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/sensorcer_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
