# Empty dependencies file for sensorcer_sorcer.
# This may be replaced when dependencies are built.
