# Empty compiler generated dependencies file for sensorcer_core.
# This may be replaced when dependencies are built.
