
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/browser.cpp" "src/core/CMakeFiles/sensorcer_core.dir/browser.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/browser.cpp.o.d"
  "/root/repo/src/core/composite_provider.cpp" "src/core/CMakeFiles/sensorcer_core.dir/composite_provider.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/composite_provider.cpp.o.d"
  "/root/repo/src/core/config_store.cpp" "src/core/CMakeFiles/sensorcer_core.dir/config_store.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/config_store.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/core/CMakeFiles/sensorcer_core.dir/deployment.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/deployment.cpp.o.d"
  "/root/repo/src/core/elementary_provider.cpp" "src/core/CMakeFiles/sensorcer_core.dir/elementary_provider.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/elementary_provider.cpp.o.d"
  "/root/repo/src/core/facade.cpp" "src/core/CMakeFiles/sensorcer_core.dir/facade.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/facade.cpp.o.d"
  "/root/repo/src/core/network_manager.cpp" "src/core/CMakeFiles/sensorcer_core.dir/network_manager.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/network_manager.cpp.o.d"
  "/root/repo/src/core/provisioner.cpp" "src/core/CMakeFiles/sensorcer_core.dir/provisioner.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/provisioner.cpp.o.d"
  "/root/repo/src/core/sensor_computation.cpp" "src/core/CMakeFiles/sensorcer_core.dir/sensor_computation.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/sensor_computation.cpp.o.d"
  "/root/repo/src/core/threshold_watch.cpp" "src/core/CMakeFiles/sensorcer_core.dir/threshold_watch.cpp.o" "gcc" "src/core/CMakeFiles/sensorcer_core.dir/threshold_watch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/sensorcer_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/rio/CMakeFiles/sensorcer_rio.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/sensorcer_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sorcer/CMakeFiles/sensorcer_sorcer.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/sensorcer_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/sensorcer_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sensorcer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
