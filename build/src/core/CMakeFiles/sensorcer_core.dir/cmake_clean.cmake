file(REMOVE_RECURSE
  "CMakeFiles/sensorcer_core.dir/browser.cpp.o"
  "CMakeFiles/sensorcer_core.dir/browser.cpp.o.d"
  "CMakeFiles/sensorcer_core.dir/composite_provider.cpp.o"
  "CMakeFiles/sensorcer_core.dir/composite_provider.cpp.o.d"
  "CMakeFiles/sensorcer_core.dir/config_store.cpp.o"
  "CMakeFiles/sensorcer_core.dir/config_store.cpp.o.d"
  "CMakeFiles/sensorcer_core.dir/deployment.cpp.o"
  "CMakeFiles/sensorcer_core.dir/deployment.cpp.o.d"
  "CMakeFiles/sensorcer_core.dir/elementary_provider.cpp.o"
  "CMakeFiles/sensorcer_core.dir/elementary_provider.cpp.o.d"
  "CMakeFiles/sensorcer_core.dir/facade.cpp.o"
  "CMakeFiles/sensorcer_core.dir/facade.cpp.o.d"
  "CMakeFiles/sensorcer_core.dir/network_manager.cpp.o"
  "CMakeFiles/sensorcer_core.dir/network_manager.cpp.o.d"
  "CMakeFiles/sensorcer_core.dir/provisioner.cpp.o"
  "CMakeFiles/sensorcer_core.dir/provisioner.cpp.o.d"
  "CMakeFiles/sensorcer_core.dir/sensor_computation.cpp.o"
  "CMakeFiles/sensorcer_core.dir/sensor_computation.cpp.o.d"
  "CMakeFiles/sensorcer_core.dir/threshold_watch.cpp.o"
  "CMakeFiles/sensorcer_core.dir/threshold_watch.cpp.o.d"
  "libsensorcer_core.a"
  "libsensorcer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensorcer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
