file(REMOVE_RECURSE
  "libsensorcer_core.a"
)
