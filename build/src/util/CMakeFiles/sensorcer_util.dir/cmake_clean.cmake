file(REMOVE_RECURSE
  "CMakeFiles/sensorcer_util.dir/ids.cpp.o"
  "CMakeFiles/sensorcer_util.dir/ids.cpp.o.d"
  "CMakeFiles/sensorcer_util.dir/log.cpp.o"
  "CMakeFiles/sensorcer_util.dir/log.cpp.o.d"
  "CMakeFiles/sensorcer_util.dir/scheduler.cpp.o"
  "CMakeFiles/sensorcer_util.dir/scheduler.cpp.o.d"
  "CMakeFiles/sensorcer_util.dir/stats.cpp.o"
  "CMakeFiles/sensorcer_util.dir/stats.cpp.o.d"
  "CMakeFiles/sensorcer_util.dir/status.cpp.o"
  "CMakeFiles/sensorcer_util.dir/status.cpp.o.d"
  "CMakeFiles/sensorcer_util.dir/strings.cpp.o"
  "CMakeFiles/sensorcer_util.dir/strings.cpp.o.d"
  "CMakeFiles/sensorcer_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sensorcer_util.dir/thread_pool.cpp.o.d"
  "libsensorcer_util.a"
  "libsensorcer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensorcer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
