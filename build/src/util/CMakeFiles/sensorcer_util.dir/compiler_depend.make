# Empty compiler generated dependencies file for sensorcer_util.
# This may be replaced when dependencies are built.
