file(REMOVE_RECURSE
  "libsensorcer_util.a"
)
