file(REMOVE_RECURSE
  "libsensorcer_rio.a"
)
