# Empty dependencies file for sensorcer_rio.
# This may be replaced when dependencies are built.
