file(REMOVE_RECURSE
  "CMakeFiles/sensorcer_rio.dir/cybernode.cpp.o"
  "CMakeFiles/sensorcer_rio.dir/cybernode.cpp.o.d"
  "CMakeFiles/sensorcer_rio.dir/monitor.cpp.o"
  "CMakeFiles/sensorcer_rio.dir/monitor.cpp.o.d"
  "CMakeFiles/sensorcer_rio.dir/qos.cpp.o"
  "CMakeFiles/sensorcer_rio.dir/qos.cpp.o.d"
  "libsensorcer_rio.a"
  "libsensorcer_rio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensorcer_rio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
