
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fault_injection.cpp" "examples/CMakeFiles/fault_injection.dir/fault_injection.cpp.o" "gcc" "examples/CMakeFiles/fault_injection.dir/fault_injection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sensorcer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/sensorcer_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/rio/CMakeFiles/sensorcer_rio.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/sensorcer_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sorcer/CMakeFiles/sensorcer_sorcer.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/sensorcer_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/sensorcer_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sensorcer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
