# Empty dependencies file for air_vehicle_fleet.
# This may be replaced when dependencies are built.
