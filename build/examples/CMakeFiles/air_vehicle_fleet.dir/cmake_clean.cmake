file(REMOVE_RECURSE
  "CMakeFiles/air_vehicle_fleet.dir/air_vehicle_fleet.cpp.o"
  "CMakeFiles/air_vehicle_fleet.dir/air_vehicle_fleet.cpp.o.d"
  "air_vehicle_fleet"
  "air_vehicle_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_vehicle_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
