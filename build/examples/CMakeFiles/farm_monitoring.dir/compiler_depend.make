# Empty compiler generated dependencies file for farm_monitoring.
# This may be replaced when dependencies are built.
