file(REMOVE_RECURSE
  "CMakeFiles/browser_shell.dir/browser_shell.cpp.o"
  "CMakeFiles/browser_shell.dir/browser_shell.cpp.o.d"
  "browser_shell"
  "browser_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
