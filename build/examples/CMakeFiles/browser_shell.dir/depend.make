# Empty dependencies file for browser_shell.
# This may be replaced when dependencies are built.
