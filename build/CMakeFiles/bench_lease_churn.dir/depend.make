# Empty dependencies file for bench_lease_churn.
# This may be replaced when dependencies are built.
