file(REMOVE_RECURSE
  "CMakeFiles/bench_lease_churn.dir/bench/bench_lease_churn.cpp.o"
  "CMakeFiles/bench_lease_churn.dir/bench/bench_lease_churn.cpp.o.d"
  "bench/bench_lease_churn"
  "bench/bench_lease_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lease_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
