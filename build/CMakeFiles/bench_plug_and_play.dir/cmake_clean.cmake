file(REMOVE_RECURSE
  "CMakeFiles/bench_plug_and_play.dir/bench/bench_plug_and_play.cpp.o"
  "CMakeFiles/bench_plug_and_play.dir/bench/bench_plug_and_play.cpp.o.d"
  "bench/bench_plug_and_play"
  "bench/bench_plug_and_play.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plug_and_play.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
