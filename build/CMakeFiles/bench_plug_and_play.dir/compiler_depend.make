# Empty compiler generated dependencies file for bench_plug_and_play.
# This may be replaced when dependencies are built.
