# Empty compiler generated dependencies file for bench_fig2_services.
# This may be replaced when dependencies are built.
