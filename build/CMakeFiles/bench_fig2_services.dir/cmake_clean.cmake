file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_services.dir/bench/bench_fig2_services.cpp.o"
  "CMakeFiles/bench_fig2_services.dir/bench/bench_fig2_services.cpp.o.d"
  "bench/bench_fig2_services"
  "bench/bench_fig2_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
