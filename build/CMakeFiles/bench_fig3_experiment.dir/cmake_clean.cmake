file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_experiment.dir/bench/bench_fig3_experiment.cpp.o"
  "CMakeFiles/bench_fig3_experiment.dir/bench/bench_fig3_experiment.cpp.o.d"
  "bench/bench_fig3_experiment"
  "bench/bench_fig3_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
