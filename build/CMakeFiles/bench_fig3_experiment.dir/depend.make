# Empty dependencies file for bench_fig3_experiment.
# This may be replaced when dependencies are built.
