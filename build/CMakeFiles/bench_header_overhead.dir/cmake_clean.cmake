file(REMOVE_RECURSE
  "CMakeFiles/bench_header_overhead.dir/bench/bench_header_overhead.cpp.o"
  "CMakeFiles/bench_header_overhead.dir/bench/bench_header_overhead.cpp.o.d"
  "bench/bench_header_overhead"
  "bench/bench_header_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_header_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
