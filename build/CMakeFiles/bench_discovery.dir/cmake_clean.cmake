file(REMOVE_RECURSE
  "CMakeFiles/bench_discovery.dir/bench/bench_discovery.cpp.o"
  "CMakeFiles/bench_discovery.dir/bench/bench_discovery.cpp.o.d"
  "bench/bench_discovery"
  "bench/bench_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
