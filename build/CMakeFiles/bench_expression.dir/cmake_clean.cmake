file(REMOVE_RECURSE
  "CMakeFiles/bench_expression.dir/bench/bench_expression.cpp.o"
  "CMakeFiles/bench_expression.dir/bench/bench_expression.cpp.o.d"
  "bench/bench_expression"
  "bench/bench_expression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
