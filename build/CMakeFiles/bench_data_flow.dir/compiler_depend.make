# Empty compiler generated dependencies file for bench_data_flow.
# This may be replaced when dependencies are built.
