file(REMOVE_RECURSE
  "CMakeFiles/bench_data_flow.dir/bench/bench_data_flow.cpp.o"
  "CMakeFiles/bench_data_flow.dir/bench/bench_data_flow.cpp.o.d"
  "bench/bench_data_flow"
  "bench/bench_data_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
