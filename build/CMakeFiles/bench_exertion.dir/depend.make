# Empty dependencies file for bench_exertion.
# This may be replaced when dependencies are built.
