file(REMOVE_RECURSE
  "CMakeFiles/bench_exertion.dir/bench/bench_exertion.cpp.o"
  "CMakeFiles/bench_exertion.dir/bench/bench_exertion.cpp.o.d"
  "bench/bench_exertion"
  "bench/bench_exertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
