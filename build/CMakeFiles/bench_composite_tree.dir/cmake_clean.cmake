file(REMOVE_RECURSE
  "CMakeFiles/bench_composite_tree.dir/bench/bench_composite_tree.cpp.o"
  "CMakeFiles/bench_composite_tree.dir/bench/bench_composite_tree.cpp.o.d"
  "bench/bench_composite_tree"
  "bench/bench_composite_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_composite_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
