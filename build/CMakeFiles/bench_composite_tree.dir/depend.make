# Empty dependencies file for bench_composite_tree.
# This may be replaced when dependencies are built.
