// Fault injection tour — the self-healing behaviours of §IV.B and §IV.C,
// narrated: sensor hardware faults (stuck-at, spike, bias, dropout), a
// crashed service disposed by lease expiry, and a cybernode failure healed
// by the provision monitor.

#include <cstdio>

#include "core/deployment.h"

using namespace sensorcer;

namespace {

sensor::SimulatedProbe& probe_of(core::ElementarySensorProvider& esp) {
  return dynamic_cast<sensor::SimulatedProbe&>(esp.probe());
}

void show(core::Deployment& lab, const char* label) {
  lab.browser().refresh();
  lab.browser().read_values();
  std::printf("--- %s ---\n%s\n", label,
              lab.browser().render_values().c_str());
}

}  // namespace

int main() {
  core::DeploymentConfig config;
  config.lease_duration = 3 * util::kSecond;
  core::Deployment lab(config);

  auto healthy = lab.add_temperature_sensor("Healthy", 21.0);
  auto stuck = lab.add_temperature_sensor("Stuck", 22.0);
  auto spiky = lab.add_temperature_sensor("Spiky", 23.0);
  auto biased = lab.add_temperature_sensor("Biased", 24.0);
  lab.pump(2 * util::kSecond);

  std::puts("=== Fault-injection tour ===\n");
  show(lab, "all sensors healthy");

  // Hardware fault modes: the probes keep answering, the values tell the
  // story (detecting them is an application concern; the framework keeps
  // the data flowing).
  probe_of(*stuck).device().inject_fault(sensor::FaultMode::kStuckAt);
  probe_of(*spiky).device().inject_fault(sensor::FaultMode::kSpike, 40.0);
  probe_of(*biased).device().inject_fault(sensor::FaultMode::kBias, 10.0);
  lab.pump(util::kSecond);
  show(lab, "stuck-at / spike(+-40) / bias(+10) injected");

  // Dropout: the ESP serves the last good value from its local store,
  // flagged SUSPECT.
  probe_of(*healthy).device().inject_fault(sensor::FaultMode::kDropout);
  auto reading = healthy->get_reading();
  if (reading.is_ok()) {
    std::printf("'Healthy' during dropout: value=%.2f quality=%s "
                "(from the local data log)\n\n",
                reading.value().value,
                sensor::quality_name(reading.value().quality));
  }
  probe_of(*healthy).device().clear_fault();

  // Service crash: renewals stop, the lease lapses, the LUS disposes it —
  // nobody has to clean up by hand (§IV.B).
  std::puts("'Spiky' crashes (stops renewing its lease)...");
  spiky->crash();
  std::printf("immediately after crash : %s\n",
              lab.facade().get_value("Spiky").is_ok()
                  ? "still listed (lease not yet expired)"
                  : "gone");
  lab.pump(2 * config.lease_duration);
  std::printf("after lease expiry      : %s\n\n",
              lab.facade().get_value("Spiky").is_ok()
                  ? "STILL LISTED (bug!)"
                  : "disposed from the registry automatically");

  // Cybernode failure: the provision monitor replaces the instance (§IV.C).
  std::puts("Provisioning a composite, then killing its cybernode...");
  (void)lab.facade().create_service("Watcher");
  lab.pump(util::kSecond);
  (void)lab.facade().compose_service("Watcher", {"Healthy", "Biased"});
  for (const auto& node : lab.cybernodes()) {
    if (node->hosted_count() > 0) {
      std::printf("killing '%s'\n", node->provider_name().c_str());
      node->fail();
    }
  }
  lab.pump(10 * util::kSecond);
  std::printf("re-provisions: %llu; 'Watcher' %s\n",
              static_cast<unsigned long long>(
                  lab.monitor().reprovision_count()),
              lab.facade().service_information("Watcher").is_ok()
                  ? "is back on a surviving cybernode"
                  : "was lost (bug!)");
  return 0;
}
