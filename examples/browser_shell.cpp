// Browser shell — a line-oriented stand-in for the paper's zero-install
// Sensor Browser service UI (§V.B, §VII): "the service UI just takes the
// input from the user and gives back result from the SenSORCER network."
//
// Reads commands from stdin (pipe a script or drive it interactively):
//   list                       all sensor services
//   services                   full registry roster
//   value <name>               read a sensor service
//   info <name>                information card + entry attributes
//   create <name>              new local composite
//   provision <name>           new composite via Rio
//   compose <csp> <child...>   add children to a composite
//   expr <csp> <expression>    attach a compute expression
//   tree <name>                containment tree with live values
//   pump <seconds>             advance virtual time
//   help / quit
//
// With no stdin input it runs a short scripted demo.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/deployment.h"
#include "util/strings.h"

using namespace sensorcer;

namespace {

void print_help() {
  std::puts(
      "commands: list | services | value <name> | info <name> | "
      "create <name> |\n          provision <name> | compose <csp> "
      "<child...> | expr <csp> <expression> |\n          tree <name> | "
      "pump <seconds> | help | quit");
}

/// Executes one command line; returns false on quit.
bool execute(core::Deployment& lab, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty() || cmd[0] == '#') return true;

  core::SensorcerFacade& facade = lab.facade();
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "help") {
    print_help();
  } else if (cmd == "list") {
    for (const auto& info : facade.get_sensor_list()) {
      std::printf("  %-28s %s\n", info.name.c_str(),
                  core::sensor_service_kind_name(info.kind));
    }
  } else if (cmd == "services") {
    lab.browser().refresh();
    std::fputs(lab.browser().render_services().c_str(), stdout);
  } else if (cmd == "value") {
    std::string name;
    in >> name;
    auto value = facade.get_value(name);
    if (value.is_ok()) {
      std::printf("  %s = %.3f\n", name.c_str(), value.value());
    } else {
      std::printf("  error: %s\n", value.status().to_string().c_str());
    }
  } else if (cmd == "info") {
    std::string name;
    in >> name;
    if (lab.browser().select(name).is_ok()) {
      std::fputs(lab.browser().render_information().c_str(), stdout);
      std::fputs(lab.browser().render_entries().c_str(), stdout);
    } else {
      std::printf("  no service named '%s'\n", name.c_str());
    }
  } else if (cmd == "create") {
    std::string name;
    in >> name;
    facade.create_local_service(name);
    std::printf("  created composite '%s'\n", name.c_str());
  } else if (cmd == "provision") {
    std::string name;
    in >> name;
    auto status = facade.create_service(name);
    if (status.is_ok()) lab.pump(util::kSecond);  // activation
    std::printf("  %s\n", status.to_string().c_str());
  } else if (cmd == "compose") {
    std::string csp, child;
    in >> csp;
    std::vector<std::string> children;
    while (in >> child) children.push_back(child);
    std::printf("  %s\n",
                facade.compose_service(csp, children).to_string().c_str());
  } else if (cmd == "expr") {
    std::string csp;
    in >> csp;
    std::string expression;
    std::getline(in, expression);
    std::printf("  %s\n",
                facade
                    .add_expression(csp, std::string(util::trim(expression)))
                    .to_string()
                    .c_str());
  } else if (cmd == "tree") {
    std::string name;
    in >> name;
    std::fputs(facade.topology(name, true).c_str(), stdout);
  } else if (cmd == "pump") {
    double seconds = 1;
    in >> seconds;
    lab.pump(static_cast<util::SimDuration>(seconds * util::kSecond));
    std::printf("  advanced %.3fs (now %s)\n", seconds,
                util::format_duration(lab.now()).c_str());
  } else {
    std::printf("  unknown command '%s' (try 'help')\n", cmd.c_str());
  }
  return true;
}

constexpr const char* kDemoScript = R"(# scripted demo (no stdin supplied)
list
create Demo-Composite
compose Demo-Composite Neem-Sensor Jade-Sensor
expr Demo-Composite (a + b) / 2
value Demo-Composite
tree Demo-Composite
info Demo-Composite
pump 5
value Demo-Composite
)";

}  // namespace

int main() {
  core::Deployment lab;
  lab.add_temperature_sensor("Neem-Sensor", 21.5);
  lab.add_temperature_sensor("Jade-Sensor", 22.4);
  lab.pump(util::kSecond);

  std::puts("SenSORCER browser shell (zero-install service UI). 'help' for "
            "commands.\n");

  std::string line;
  if (std::cin.peek() == std::char_traits<char>::eof()) {
    // Not driven by a pipe/terminal input: run the demo script.
    std::istringstream demo(kDemoScript);
    while (std::getline(demo, line)) {
      std::printf("sensorcer> %s\n", line.c_str());
      if (!execute(lab, line)) break;
    }
    return 0;
  }
  while (std::getline(std::cin, line)) {
    if (!execute(lab, line)) break;
  }
  return 0;
}
