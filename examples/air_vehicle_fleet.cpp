// Air-vehicle fleet — the application the paper's conclusion announces:
// "we are planning for large-scale air vehicles distributed applications"
// (work funded by the Air Force Research Lab, Air Vehicles Directorate).
//
// Each vehicle exposes altitude, airspeed and outside-air-temperature
// probes; a per-vehicle composite computes an energy-state metric; a
// fleet-level composite tracks the fleet. Mid-flight, the cybernode hosting
// the fleet composite fails and Rio re-provisions it on another node while
// the vehicles keep flying.

#include <cstdio>

#include "core/deployment.h"

using namespace sensorcer;

namespace {

void deploy_vehicle(core::Deployment& lab, const std::string& tail,
                    std::uint64_t seed, double cruise_alt,
                    double cruise_speed) {
  lab.add_sensor(tail + "/altitude",
                 sensor::make_altitude_probe(tail, seed, cruise_alt),
                 "airspace");
  lab.add_sensor(tail + "/airspeed",
                 sensor::make_airspeed_probe(tail, seed + 1, cruise_speed),
                 "airspace");
  lab.add_sensor(tail + "/oat",
                 sensor::make_temperature_probe(tail, seed + 2, -5.0),
                 "airspace");

  lab.facade().create_local_service(tail + "/air-data");
  (void)lab.facade().compose_service(
      tail + "/air-data",
      {tail + "/altitude", tail + "/airspeed", tail + "/oat"});
  // Specific energy height: h + v^2 / (2g), in metres.
  (void)lab.facade().add_expression(tail + "/air-data",
                                    "a + b ^ 2 / (2 * 9.81)");
}

}  // namespace

int main() {
  core::DeploymentConfig config;
  config.cybernodes = 3;
  config.lease_duration = 2 * util::kSecond;
  core::Deployment lab(config);

  std::puts("=== Air-vehicle fleet (conclusion's target application) ===\n");
  deploy_vehicle(lab, "AV-101", 500, 3000.0, 60.0);
  deploy_vehicle(lab, "AV-102", 600, 3200.0, 65.0);
  deploy_vehicle(lab, "AV-103", 700, 2800.0, 55.0);
  lab.pump(2 * util::kSecond);

  // Fleet watch runs on a Rio cybernode so it survives node failures.
  rio::QosRequirement qos{1.0, 256.0};
  if (!lab.facade().create_service("fleet/energy-watch", qos).is_ok()) {
    std::puts("provisioning failed");
    return 1;
  }
  lab.pump(util::kSecond);
  (void)lab.facade().compose_service(
      "fleet/energy-watch",
      {"AV-101/air-data", "AV-102/air-data", "AV-103/air-data"});
  (void)lab.facade().add_expression("fleet/energy-watch", "min(a, b, c)");

  std::puts("Fleet status (min specific-energy height across vehicles):");
  std::puts(lab.facade().topology("fleet/energy-watch", true).c_str());

  // Mid-flight infrastructure failure.
  std::string failed_node;
  for (const auto& node : lab.cybernodes()) {
    if (node->hosted_count() > 0) {
      failed_node = node->provider_name();
      node->fail();
      break;
    }
  }
  std::printf("\n*** cybernode '%s' failed mid-flight ***\n",
              failed_node.c_str());
  lab.pump(10 * util::kSecond);
  std::printf("monitor re-provisioned %llu instance(s)\n\n",
              static_cast<unsigned long long>(
                  lab.monitor().reprovision_count()));

  // Rio restored the service (fresh instance); ground control re-issues the
  // watch configuration — the vehicles and their composites were never
  // affected.
  (void)lab.facade().compose_service(
      "fleet/energy-watch",
      {"AV-101/air-data", "AV-102/air-data", "AV-103/air-data"});
  (void)lab.facade().add_expression("fleet/energy-watch", "min(a, b, c)");

  auto value = lab.facade().get_value("fleet/energy-watch");
  if (!value.is_ok()) {
    std::printf("fleet watch lost: %s\n", value.status().to_string().c_str());
    return 1;
  }
  std::printf("fleet watch recovered on another cybernode: "
              "min energy height = %.0f m\n\n",
              value.value());
  std::puts(lab.facade().topology("fleet/energy-watch", true).c_str());
  return 0;
}
