// Farm monitoring — the Motivation §II.2 scenario.
//
// "In agricultural area, where the sensors are located at different
// locations on the farms for various measurements, the data collection
// specialist has to collect the data from the sensors, directly visiting
// those places... In adverse weather conditions, there are no solid tools
// available for him, which can give the status information of the sensor in
// place."
//
// Here the specialist never leaves the office: each field is a sensor
// subnet (one CSP over its temperature / humidity / soil-moisture probes),
// the farm is a CSP of field CSPs, and adverse weather is a sensor dropout
// that the browser surfaces remotely.

#include <cstdio>

#include "core/deployment.h"
#include "core/threshold_watch.h"

using namespace sensorcer;

namespace {

/// Registers one field's sensors and groups them in a composite.
void deploy_field(core::Deployment& lab, const std::string& field,
                  std::uint64_t seed, double base_temp) {
  lab.add_sensor(field + "/temperature",
                 sensor::make_temperature_probe(field, seed, base_temp),
                 "farm/" + field);
  lab.add_sensor(field + "/humidity",
                 sensor::make_humidity_probe(field, seed + 1),
                 "farm/" + field);
  lab.add_sensor(field + "/soil-moisture",
                 sensor::make_soil_moisture_probe(field, seed + 2),
                 "farm/" + field);

  lab.facade().create_local_service(field + "/station");
  (void)lab.facade().compose_service(
      field + "/station", {field + "/temperature", field + "/humidity",
                           field + "/soil-moisture"});
  // A crop-stress index over the three channels: hot, dry air over dry
  // soil scores high.
  (void)lab.facade().add_expression(
      field + "/station", "clamp((a - 15) / 20, 0, 1) * 40 + "
                          "clamp((60 - b) / 60, 0, 1) * 30 + "
                          "clamp((35 - c) / 35, 0, 1) * 30");
}

}  // namespace

int main() {
  core::DeploymentConfig config;
  // Lenient collection: a field with a dead probe still reports from the
  // surviving channels instead of failing the whole farm.
  config.collection.strict = true;
  core::Deployment lab(config);

  std::puts("=== Farm monitoring (Motivation II.2) ===\n");
  deploy_field(lab, "north-field", 100, 24.0);
  deploy_field(lab, "river-field", 200, 22.0);
  deploy_field(lab, "hill-field", 300, 26.5);

  // Farm-level roll-up: mean crop-stress over the three stations.
  lab.facade().create_local_service("farm/overview");
  (void)lab.facade().compose_service(
      "farm/overview",
      {"north-field/station", "river-field/station", "hill-field/station"});
  (void)lab.facade().add_expression("farm/overview", "(a + b + c) / 3");
  lab.pump(10 * util::kSecond);

  std::puts("Remote status check (no site visit):");
  std::puts(lab.facade().topology("farm/overview", true).c_str());

  // A threshold watch alarms the office when any station's crop-stress
  // index leaves its band or a station stops answering.
  auto watch = std::make_shared<core::ThresholdWatch>(
      "farm/watch", lab.accessor(), lab.scheduler(), util::kSecond);
  for (const auto& lus : lab.lookups()) {
    (void)watch->join(lus, lab.lease_renewal(), 3600 * util::kSecond);
  }
  watch->set_listener([](const core::Alarm& alarm) {
    std::printf("  ALARM %s\n", alarm.to_string().c_str());
  });
  for (const char* station :
       {"north-field/station", "river-field/station", "hill-field/station"}) {
    watch->watch({station, 0.0, 60.0});  // stress index band
  }
  // Frost warning on the raw north-field temperature channel.
  watch->watch({"north-field/temperature", 10.0, 45.0});

  // A cold snap: the north field drops ~15 degC. The watch raises LOW
  // remotely, then RECOVERED when it passes.
  std::puts("Cold snap on the north field:");
  auto north_temp = lab.manager().find_sensor("north-field/temperature");
  auto* north_esp = north_temp.is_ok()
                        ? dynamic_cast<core::ElementarySensorProvider*>(
                              north_temp.value().get())
                        : nullptr;
  if (north_esp != nullptr) {
    dynamic_cast<sensor::SimulatedProbe&>(north_esp->probe())
        .device()
        .inject_fault(sensor::FaultMode::kBias, -15.0);
    lab.pump(3 * util::kSecond);
    dynamic_cast<sensor::SimulatedProbe&>(north_esp->probe())
        .device()
        .clear_fault();
    lab.pump(3 * util::kSecond);
  }
  std::puts("");

  // Adverse weather: the river field's soil probe stops answering.
  std::puts("Storm hits the river field: soil-moisture probe drops out...\n");
  auto sensor_ref = lab.manager().find_sensor("river-field/soil-moisture");
  if (sensor_ref.is_ok()) {
    auto* esp = dynamic_cast<core::ElementarySensorProvider*>(
        sensor_ref.value().get());
    if (esp != nullptr) {
      dynamic_cast<sensor::SimulatedProbe&>(esp->probe())
          .device()
          .inject_fault(sensor::FaultMode::kDropout);
    }
  }
  lab.pump(5 * util::kSecond);

  // The station still answers from the probe's local store (flagged
  // suspect), so the farm overview keeps working — and the browser shows
  // exactly which channel is in trouble.
  std::puts("Status during the storm:");
  std::puts(lab.facade().topology("farm/overview", true).c_str());

  auto reading = sensor_ref.is_ok() ? sensor_ref.value()->get_reading()
                                    : util::Result<sensor::Reading>(
                                          util::Status{});
  if (reading.is_ok()) {
    std::printf("river-field/soil-moisture quality: %s "
                "(served from the ESP's local data log)\n\n",
                sensor::quality_name(reading.value().quality));
  }

  lab.browser().refresh();
  lab.browser().read_values();
  std::puts(lab.browser().render_values().c_str());
  return 0;
}
