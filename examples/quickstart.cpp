// Quickstart: the paper's experiment (Section VI, Figs 2-3), end to end.
//
// Boots the SORCER-Lab deployment (lookup services, Jini infrastructure,
// two cybernodes + provision monitor, rendezvous peers), registers the four
// temperature sensors of Fig 2, then walks the six experiment steps:
//   1. compose a subnet of three sensors in Composite-Service
//   2. attach the expression (a + b + c) / 3
//   3. provision New-Composite onto a cybernode
//   4. compose (Composite-Service, Coral-Sensor) into New-Composite
//   5. attach the expression (a + b) / 2
//   6. read the Sensor Value from New-Composite
// and renders the browser panes the figures show.

#include <cstdio>

#include "core/deployment.h"

using namespace sensorcer;

int main() {
  core::Deployment lab;

  // Fig 2: four elementary temperature sensor services, individually
  // connected to SUN SPOT-style devices.
  lab.add_temperature_sensor("Neem-Sensor", 21.5);
  lab.add_temperature_sensor("Jade-Sensor", 22.4);
  lab.add_temperature_sensor("Coral-Sensor", 23.1);
  lab.add_temperature_sensor("Diamond-Sensor", 20.8);
  lab.pump(2 * util::kSecond);  // let sampling and announcements run

  core::SensorcerFacade& facade = lab.facade();
  core::SensorBrowser& browser = lab.browser();

  std::puts("=== SenSORCER quickstart: the Fig 2/3 experiment ===\n");

  // Step 1: subnet of three elementary sensors under Composite-Service.
  facade.create_local_service("Composite-Service");
  auto s1 = facade.compose_service(
      "Composite-Service", {"Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"});
  std::printf("step 1  compose Composite-Service: %s\n",
              s1.to_string().c_str());

  // Step 2: average of the three sensors.
  auto s2 = facade.add_expression("Composite-Service", "(a + b + c) / 3");
  std::printf("step 2  expression (a + b + c) / 3: %s\n",
              s2.to_string().c_str());

  // Step 3: provision a new composite through Rio.
  auto s3 = facade.create_service("New-Composite");
  std::printf("step 3  provision New-Composite: %s\n", s3.to_string().c_str());
  lab.pump(util::kSecond);  // activation delay: service becomes discoverable

  // Step 4: sensor network = (subnet from step 1, Coral-Sensor).
  auto s4 = facade.compose_service("New-Composite",
                                   {"Composite-Service", "Coral-Sensor"});
  std::printf("step 4  compose New-Composite: %s\n", s4.to_string().c_str());

  // Step 5: average of the two composed services.
  auto s5 = facade.add_expression("New-Composite", "(a + b) / 2");
  std::printf("step 5  expression (a + b) / 2: %s\n", s5.to_string().c_str());

  // Step 6: read the Sensor Value from the provisioned composite.
  auto value = facade.get_value("New-Composite");
  if (value.is_ok()) {
    std::printf("step 6  New-Composite value = %.3f degC\n\n", value.value());
  } else {
    std::printf("step 6  FAILED: %s\n\n", value.status().to_string().c_str());
    return 1;
  }

  // The browser panes of Fig 2/3.
  browser.refresh();
  (void)browser.select("New-Composite");
  browser.read_values();
  std::puts(browser.render().c_str());

  // Fig 3's logical sensor network, as a containment tree with live values.
  std::puts("Logical sensor network");
  std::puts("======================");
  std::puts(facade.topology("New-Composite", /*with_values=*/true).c_str());
  return 0;
}
