#pragma once
// IEEE 1451-style Transducer Electronic Data Sheet.
//
// The paper (Motivation §II.3) notes IEEE 1451 as the attempted common
// standard for sensor self-description. Each simulated device carries a TEDS
// block so probes can expose uniform metadata regardless of "vendor".

#include <string>

#include "util/sim_time.h"

namespace sensorcer::sensor {

/// Physical quantity a transducer measures.
enum class SensorKind {
  kTemperature,
  kHumidity,
  kPressure,
  kAltitude,
  kAirspeed,
  kSoilMoisture,
};

const char* sensor_kind_name(SensorKind kind);
/// Engineering unit string for a kind, e.g. "degC", "kPa".
const char* sensor_kind_unit(SensorKind kind);

/// Static self-description of a transducer channel.
struct Teds {
  SensorKind kind = SensorKind::kTemperature;
  std::string manufacturer;
  std::string model;
  std::string serial;
  double range_min = 0.0;
  double range_max = 0.0;
  double accuracy = 0.0;             // +/- in engineering units
  util::SimDuration min_sample_period = 0;  // fastest supported sampling

  /// One-line rendering for browser info cards.
  [[nodiscard]] std::string summary() const;
};

}  // namespace sensorcer::sensor
