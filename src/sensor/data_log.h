#pragma once
// Bounded local store of readings.
//
// The paper's related-work discussion argues a sensor service "should be
// capable of storing data to the local store" because devices produce data
// faster than clients consume it. Each elementary sensor provider owns a
// DataLog: a fixed-capacity ring buffer with windowed queries and streaming
// statistics, so aggregation never has to touch the device.

#include <cstddef>
#include <limits>
#include <vector>

#include "sensor/reading.h"
#include "util/stats.h"

namespace sensorcer::sensor {

/// Open upper bound for windowed DataLog queries.
inline constexpr util::SimTime kEndOfTime =
    std::numeric_limits<util::SimTime>::max();

class DataLog {
 public:
  /// `capacity` readings are retained; older ones are evicted FIFO.
  explicit DataLog(std::size_t capacity = 1024);

  void append(const Reading& reading);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Readings evicted because the buffer was full.
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }

  /// Most recent reading; requires !empty().
  [[nodiscard]] const Reading& latest() const;

  /// Oldest retained reading; requires !empty().
  [[nodiscard]] const Reading& oldest() const;

  /// Logical index (0 = oldest) of the first retained reading with
  /// timestamp >= since, or size() when none. Timestamps are appended in
  /// non-decreasing order, so this is a binary search — the windowed
  /// queries below start here instead of scanning from the oldest element.
  [[nodiscard]] std::size_t first_at_or_after(util::SimTime since) const;

  /// Readings with since <= timestamp < until, oldest first.
  [[nodiscard]] std::vector<Reading> window(
      util::SimTime since, util::SimTime until = kEndOfTime) const;

  /// All retained readings, oldest first.
  [[nodiscard]] std::vector<Reading> snapshot() const { return window(0); }

  /// Streaming stats over readings with since <= timestamp < until
  /// (good+suspect quality only; kBad readings are excluded from
  /// aggregates).
  [[nodiscard]] util::StatAccumulator stats_since(
      util::SimTime since, util::SimTime until = kEndOfTime) const;

  /// Visit readings with since <= timestamp < until, oldest first, without
  /// materializing a vector (the historian's raw-scan query path).
  template <typename Fn>
  void for_each(util::SimTime since, util::SimTime until, Fn&& fn) const {
    const std::size_t cap = buffer_.size();
    for (std::size_t i = first_at_or_after(since); i < size_; ++i) {
      const Reading& r = buffer_[(head_ + i) % cap];
      if (r.timestamp >= until) break;
      fn(r);
    }
  }

  void clear();

 private:
  std::vector<Reading> buffer_;
  std::size_t head_ = 0;  // index of the oldest element
  std::size_t size_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace sensorcer::sensor
