#pragma once
// Bounded local store of readings.
//
// The paper's related-work discussion argues a sensor service "should be
// capable of storing data to the local store" because devices produce data
// faster than clients consume it. Each elementary sensor provider owns a
// DataLog: a fixed-capacity ring buffer with windowed queries and streaming
// statistics, so aggregation never has to touch the device.

#include <cstddef>
#include <vector>

#include "sensor/reading.h"
#include "util/stats.h"

namespace sensorcer::sensor {

class DataLog {
 public:
  /// `capacity` readings are retained; older ones are evicted FIFO.
  explicit DataLog(std::size_t capacity = 1024);

  void append(const Reading& reading);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Readings evicted because the buffer was full.
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }

  /// Most recent reading; requires !empty().
  [[nodiscard]] const Reading& latest() const;

  /// Readings with timestamp >= since, oldest first.
  [[nodiscard]] std::vector<Reading> window(util::SimTime since) const;

  /// All retained readings, oldest first.
  [[nodiscard]] std::vector<Reading> snapshot() const { return window(0); }

  /// Streaming stats over readings with timestamp >= since (good+suspect
  /// quality only; kBad readings are excluded from aggregates).
  [[nodiscard]] util::StatAccumulator stats_since(util::SimTime since) const;

  void clear();

 private:
  std::vector<Reading> buffer_;
  std::size_t head_ = 0;  // index of the oldest element
  std::size_t size_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace sensorcer::sensor
