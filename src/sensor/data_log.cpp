#include "sensor/data_log.h"

#include <cassert>

namespace sensorcer::sensor {

DataLog::DataLog(std::size_t capacity) : buffer_(capacity ? capacity : 1) {}

void DataLog::append(const Reading& reading) {
  const std::size_t cap = buffer_.size();
  if (size_ < cap) {
    buffer_[(head_ + size_) % cap] = reading;
    ++size_;
  } else {
    buffer_[head_] = reading;
    head_ = (head_ + 1) % cap;
    ++evicted_;
  }
}

const Reading& DataLog::latest() const {
  assert(size_ > 0 && "latest() on empty DataLog");
  return buffer_[(head_ + size_ - 1) % buffer_.size()];
}

std::vector<Reading> DataLog::window(util::SimTime since) const {
  std::vector<Reading> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const Reading& r = buffer_[(head_ + i) % buffer_.size()];
    if (r.timestamp >= since) out.push_back(r);
  }
  return out;
}

util::StatAccumulator DataLog::stats_since(util::SimTime since) const {
  util::StatAccumulator acc;
  for (std::size_t i = 0; i < size_; ++i) {
    const Reading& r = buffer_[(head_ + i) % buffer_.size()];
    if (r.timestamp >= since && r.quality != Quality::kBad) acc.add(r.value);
  }
  return acc;
}

void DataLog::clear() {
  head_ = 0;
  size_ = 0;
}

}  // namespace sensorcer::sensor
