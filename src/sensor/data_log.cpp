#include "sensor/data_log.h"

#include <cassert>

namespace sensorcer::sensor {

DataLog::DataLog(std::size_t capacity) : buffer_(capacity ? capacity : 1) {}

void DataLog::append(const Reading& reading) {
  const std::size_t cap = buffer_.size();
  if (size_ < cap) {
    buffer_[(head_ + size_) % cap] = reading;
    ++size_;
  } else {
    buffer_[head_] = reading;
    head_ = (head_ + 1) % cap;
    ++evicted_;
  }
}

const Reading& DataLog::latest() const {
  assert(size_ > 0 && "latest() on empty DataLog");
  return buffer_[(head_ + size_ - 1) % buffer_.size()];
}

const Reading& DataLog::oldest() const {
  assert(size_ > 0 && "oldest() on empty DataLog");
  return buffer_[head_];
}

std::size_t DataLog::first_at_or_after(util::SimTime since) const {
  // Timestamps are non-decreasing in append order, so the ring (read from
  // head_) is sorted: binary-search the first logical index at or after
  // `since` instead of scanning from the oldest element.
  const std::size_t cap = buffer_.size();
  std::size_t lo = 0;
  std::size_t hi = size_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (buffer_[(head_ + mid) % cap].timestamp < since) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<Reading> DataLog::window(util::SimTime since,
                                     util::SimTime until) const {
  std::vector<Reading> out;
  const std::size_t start = first_at_or_after(since);
  out.reserve(size_ - start);
  const std::size_t cap = buffer_.size();
  for (std::size_t i = start; i < size_; ++i) {
    const Reading& r = buffer_[(head_ + i) % cap];
    if (r.timestamp >= until) break;
    out.push_back(r);
  }
  return out;
}

util::StatAccumulator DataLog::stats_since(util::SimTime since,
                                           util::SimTime until) const {
  util::StatAccumulator acc;
  for_each(since, until, [&acc](const Reading& r) {
    if (r.quality != Quality::kBad) acc.add(r.value);
  });
  return acc;
}

void DataLog::clear() {
  head_ = 0;
  size_ = 0;
}

}  // namespace sensorcer::sensor
