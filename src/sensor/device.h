#pragma once
// Simulated sensor hardware.
//
// Substitute for the paper's SUN SPOT temperature sensors (DESIGN.md §2.2):
// a parametric physical-signal model (diurnal cycle + drift + random walk +
// Gaussian noise) with injectable fault modes, so every probe/provider code
// path — including the failure paths — can be exercised deterministically.

#include <optional>
#include <string>

#include "sensor/teds.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace sensorcer::sensor {

/// Parametric signal: base + diurnal sine + linear drift + random walk,
/// plus per-sample Gaussian noise.
struct SignalModel {
  double base = 20.0;
  double amplitude = 5.0;                     // diurnal swing
  util::SimDuration period = 24 * util::kHour;
  double phase = 0.0;                         // radians
  double noise_stddev = 0.1;
  double drift_per_hour = 0.0;
  double walk_stddev = 0.0;                   // random-walk step per sample
};

/// Injectable hardware fault modes.
enum class FaultMode {
  kNone,
  kStuckAt,   // output frozen at the last good value
  kDropout,   // reads fail with kUnavailable
  kSpike,     // occasional large excursions
  kBias,      // constant offset error
};

const char* fault_mode_name(FaultMode mode);

/// A single simulated transducer. Raw samples are in "device units"; the
/// probe's Calibration converts them to engineering units.
class SimulatedDevice {
 public:
  SimulatedDevice(Teds teds, SignalModel model, std::uint64_t seed);

  /// Raw sample at virtual time `t`. Fails when a dropout fault is active.
  util::Result<double> sample(util::SimTime t);

  /// The true (noise-free, fault-free) signal at `t` — for test oracles.
  [[nodiscard]] double truth(util::SimTime t) const;

  void inject_fault(FaultMode mode, double magnitude = 0.0);
  void clear_fault() { fault_ = FaultMode::kNone; }
  [[nodiscard]] FaultMode fault() const { return fault_; }

  [[nodiscard]] const Teds& teds() const { return teds_; }
  [[nodiscard]] std::uint64_t sample_count() const { return samples_; }

 private:
  Teds teds_;
  SignalModel model_;
  util::Rng rng_;
  double walk_ = 0.0;
  std::optional<double> last_good_;
  FaultMode fault_ = FaultMode::kNone;
  double fault_magnitude_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// Factory presets -----------------------------------------------------------

/// SUN SPOT-like on-board temperature channel (the paper's test hardware).
SimulatedDevice make_sunspot_temperature(const std::string& serial,
                                         std::uint64_t seed,
                                         double base_celsius = 22.0);

/// Relative-humidity channel for the farm-monitoring example.
SimulatedDevice make_humidity(const std::string& serial, std::uint64_t seed);

/// Barometric-pressure channel (slow random walk around 101.3 kPa).
SimulatedDevice make_pressure(const std::string& serial, std::uint64_t seed);

/// Soil-moisture channel for the agriculture scenario.
SimulatedDevice make_soil_moisture(const std::string& serial,
                                   std::uint64_t seed);

/// Barometric altitude channel for the air-vehicle application.
SimulatedDevice make_altitude(const std::string& serial, std::uint64_t seed,
                              double cruise_m = 3000.0);

/// Indicated-airspeed channel for the air-vehicle application.
SimulatedDevice make_airspeed(const std::string& serial, std::uint64_t seed,
                              double cruise_mps = 60.0);

}  // namespace sensorcer::sensor
