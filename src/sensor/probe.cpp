#include "sensor/probe.h"

namespace sensorcer::sensor {

SimulatedProbe::SimulatedProbe(SimulatedDevice device, Calibration calibration)
    : device_(std::move(device)), calibration_(std::move(calibration)) {}

util::Status SimulatedProbe::connect() {
  connected_ = true;
  return util::Status::ok();
}

util::Result<Reading> SimulatedProbe::read(util::SimTime t) {
  if (!connected_) {
    return util::Status{util::ErrorCode::kFailedPrecondition,
                        "probe not connected"};
  }
  auto raw = device_.sample(t);
  if (!raw.is_ok()) {
    ++consecutive_failures_;
    return raw.status();
  }

  Reading reading;
  reading.timestamp = t;
  reading.value = calibration_.apply(raw.value());
  reading.sequence = ++sequence_;

  const Teds& teds = device_.teds();
  if (reading.value < teds.range_min || reading.value > teds.range_max) {
    reading.quality = Quality::kBad;
  } else if (consecutive_failures_ > 0) {
    // First good read after failures: the channel just recovered, flag it.
    reading.quality = Quality::kSuspect;
  }
  consecutive_failures_ = 0;
  ++reads_;
  return reading;
}

ProbePtr make_temperature_probe(const std::string& serial, std::uint64_t seed,
                                double base_celsius) {
  return std::make_unique<SimulatedProbe>(
      make_sunspot_temperature(serial, seed, base_celsius));
}

ProbePtr make_humidity_probe(const std::string& serial, std::uint64_t seed) {
  return std::make_unique<SimulatedProbe>(make_humidity(serial, seed));
}

ProbePtr make_pressure_probe(const std::string& serial, std::uint64_t seed) {
  return std::make_unique<SimulatedProbe>(make_pressure(serial, seed));
}

ProbePtr make_soil_moisture_probe(const std::string& serial,
                                  std::uint64_t seed) {
  return std::make_unique<SimulatedProbe>(make_soil_moisture(serial, seed));
}

ProbePtr make_altitude_probe(const std::string& serial, std::uint64_t seed,
                             double cruise_m) {
  return std::make_unique<SimulatedProbe>(
      make_altitude(serial, seed, cruise_m));
}

ProbePtr make_airspeed_probe(const std::string& serial, std::uint64_t seed,
                             double cruise_mps) {
  return std::make_unique<SimulatedProbe>(
      make_airspeed(serial, seed, cruise_mps));
}

}  // namespace sensorcer::sensor
