#include "sensor/calibration.h"

#include <cmath>

#include "util/strings.h"

namespace sensorcer::sensor {

util::Result<Calibration> Calibration::two_point(double raw1, double eng1,
                                                 double raw2, double eng2) {
  if (raw1 == raw2) {
    return util::Status{util::ErrorCode::kInvalidArgument,
                        "two-point calibration needs distinct raw values"};
  }
  const double gain = (eng2 - eng1) / (raw2 - raw1);
  return Calibration::linear(eng1 - gain * raw1, gain);
}

util::Result<Calibration> Calibration::fit_least_squares(
    const std::vector<std::pair<double, double>>& points, std::size_t degree) {
  const std::size_t n = degree + 1;  // coefficient count
  if (points.size() < n) {
    return util::Status{
        util::ErrorCode::kInvalidArgument,
        util::format("degree-%zu fit needs at least %zu points, got %zu",
                     degree, n, points.size())};
  }

  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (const auto& [x, y] : points) {
    std::vector<double> powers(2 * n - 1, 1.0);
    for (std::size_t k = 1; k < powers.size(); ++k) {
      powers[k] = powers[k - 1] * x;
    }
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a[r][c] += powers[r + c];
      a[r][n] += powers[r] * y;
    }
  }

  // Gaussian elimination with partial pivoting on the augmented matrix.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return util::Status{util::ErrorCode::kInvalidArgument,
                          "degenerate calibration points (singular system)"};
    }
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= n; ++c) a[r][c] -= factor * a[col][c];
    }
  }

  std::vector<double> coefficients(n);
  for (std::size_t r = 0; r < n; ++r) coefficients[r] = a[r][n] / a[r][r];
  return Calibration(std::move(coefficients));
}

double Calibration::rms_error(
    const std::vector<std::pair<double, double>>& points) const {
  if (points.empty()) return 0.0;
  double sum_sq = 0.0;
  for (const auto& [x, y] : points) {
    const double e = apply(x) - y;
    sum_sq += e * e;
  }
  return std::sqrt(sum_sq / static_cast<double>(points.size()));
}

}  // namespace sensorcer::sensor
