#pragma once
// Sensor Probe — per the paper, "the only sensor dependent component of the
// framework": it owns the device-specific driver concerns (connection,
// timing, protocol, calibration) and hides them behind a uniform interface
// that elementary sensor providers consume.

#include <memory>
#include <string>

#include "sensor/calibration.h"
#include "sensor/device.h"
#include "sensor/reading.h"
#include "util/status.h"

namespace sensorcer::sensor {

/// The probe contract. Providers depend only on this interface, which is
/// what makes them sensor-technology independent (§VII of the paper).
class SensorProbe {
 public:
  virtual ~SensorProbe() = default;

  /// Establish the device session; reads fail until connected.
  virtual util::Status connect() = 0;
  virtual void disconnect() = 0;
  [[nodiscard]] virtual bool is_connected() const = 0;

  /// One calibrated reading at virtual time `t`.
  virtual util::Result<Reading> read(util::SimTime t) = 0;

  /// Transducer self-description.
  [[nodiscard]] virtual const Teds& teds() const = 0;

  /// Replace the raw→engineering calibration.
  virtual void set_calibration(Calibration calibration) = 0;
};

/// Probe over a SimulatedDevice. Readings outside the TEDS range are flagged
/// kBad; readings taken during a spike fault pass through (detecting them is
/// the application's job, which the fault-injection example demonstrates).
class SimulatedProbe final : public SensorProbe {
 public:
  SimulatedProbe(SimulatedDevice device, Calibration calibration = {});

  util::Status connect() override;
  void disconnect() override { connected_ = false; }
  [[nodiscard]] bool is_connected() const override { return connected_; }

  util::Result<Reading> read(util::SimTime t) override;

  [[nodiscard]] const Teds& teds() const override { return device_.teds(); }
  void set_calibration(Calibration calibration) override {
    calibration_ = std::move(calibration);
  }

  /// Access to the underlying simulated hardware (fault injection in tests
  /// and examples).
  SimulatedDevice& device() { return device_; }

  /// Total successful reads served.
  [[nodiscard]] std::uint64_t read_count() const { return reads_; }

 private:
  SimulatedDevice device_;
  Calibration calibration_;
  bool connected_ = false;
  std::uint64_t sequence_ = 0;
  std::uint64_t reads_ = 0;
  int consecutive_failures_ = 0;
};

using ProbePtr = std::unique_ptr<SensorProbe>;

/// Convenience probe factories matching the device presets.
ProbePtr make_temperature_probe(const std::string& serial, std::uint64_t seed,
                                double base_celsius = 22.0);
ProbePtr make_humidity_probe(const std::string& serial, std::uint64_t seed);
ProbePtr make_pressure_probe(const std::string& serial, std::uint64_t seed);
ProbePtr make_soil_moisture_probe(const std::string& serial,
                                  std::uint64_t seed);
ProbePtr make_altitude_probe(const std::string& serial, std::uint64_t seed,
                             double cruise_m = 3000.0);
ProbePtr make_airspeed_probe(const std::string& serial, std::uint64_t seed,
                             double cruise_mps = 60.0);

}  // namespace sensorcer::sensor
