#pragma once
// Polynomial calibration from raw device counts to engineering units.
// The paper assigns "data calibration" to the sensor probe; this is that
// component, factored out so tests can exercise it directly.

#include <utility>
#include <vector>

#include "util/status.h"

namespace sensorcer::sensor {

class Calibration {
 public:
  /// Identity calibration (y = x).
  Calibration() : coefficients_{0.0, 1.0} {}

  /// Polynomial y = c0 + c1*x + c2*x^2 + ...; empty coefficients mean y = 0.
  explicit Calibration(std::vector<double> coefficients)
      : coefficients_(std::move(coefficients)) {}

  /// Linear convenience: y = offset + gain * x.
  static Calibration linear(double offset, double gain) {
    return Calibration({offset, gain});
  }

  /// Two-point calibration: the line through (raw1, eng1) and (raw2, eng2) —
  /// the field procedure for most transducers (e.g. ice bath + boiling
  /// point). Fails when the raw points coincide.
  static util::Result<Calibration> two_point(double raw1, double eng1,
                                             double raw2, double eng2);

  /// Least-squares fit of a degree-`degree` polynomial to (raw, engineering)
  /// reference pairs — bench-calibration against a reference instrument.
  /// Requires at least degree+1 points; solved by normal equations with
  /// Gaussian elimination (fine for the small degrees calibration uses).
  static util::Result<Calibration> fit_least_squares(
      const std::vector<std::pair<double, double>>& points,
      std::size_t degree);

  /// Root-mean-square residual of this calibration over reference pairs.
  [[nodiscard]] double rms_error(
      const std::vector<std::pair<double, double>>& points) const;

  /// Apply to a raw sample (Horner evaluation).
  [[nodiscard]] double apply(double raw) const {
    double y = 0.0;
    for (auto it = coefficients_.rbegin(); it != coefficients_.rend(); ++it) {
      y = y * raw + *it;
    }
    return y;
  }

  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coefficients_;
  }

 private:
  std::vector<double> coefficients_;
};

}  // namespace sensorcer::sensor
