#pragma once
// The unit of sensor data flowing through the framework.

#include <cstdint>
#include <string>

#include "util/sim_time.h"

namespace sensorcer::sensor {

/// Data-quality flag attached to every reading.
enum class Quality {
  kGood,
  kSuspect,  // produced while the probe reported intermittent trouble
  kBad,      // calibration out of range / device fault
};

const char* quality_name(Quality q);

/// One calibrated measurement.
struct Reading {
  util::SimTime timestamp = 0;
  double value = 0.0;
  Quality quality = Quality::kGood;
  std::uint64_t sequence = 0;  // per-probe monotonic counter

  /// Modeled serialized size of one reading on the wire: 8-byte timestamp,
  /// 8-byte value, 1-byte quality, 4-byte sequence — the "very small" sensor
  /// datum of Motivation §II.1.
  static constexpr std::size_t kWireBytes = 21;
};

}  // namespace sensorcer::sensor
