#include "sensor/device.h"

#include <cmath>

#include "sensor/reading.h"
#include "util/strings.h"

namespace sensorcer::sensor {

const char* quality_name(Quality q) {
  switch (q) {
    case Quality::kGood: return "GOOD";
    case Quality::kSuspect: return "SUSPECT";
    case Quality::kBad: return "BAD";
  }
  return "?";
}

const char* sensor_kind_name(SensorKind kind) {
  switch (kind) {
    case SensorKind::kTemperature: return "temperature";
    case SensorKind::kHumidity: return "humidity";
    case SensorKind::kPressure: return "pressure";
    case SensorKind::kAltitude: return "altitude";
    case SensorKind::kAirspeed: return "airspeed";
    case SensorKind::kSoilMoisture: return "soil-moisture";
  }
  return "?";
}

const char* sensor_kind_unit(SensorKind kind) {
  switch (kind) {
    case SensorKind::kTemperature: return "degC";
    case SensorKind::kHumidity: return "%RH";
    case SensorKind::kPressure: return "kPa";
    case SensorKind::kAltitude: return "m";
    case SensorKind::kAirspeed: return "m/s";
    case SensorKind::kSoilMoisture: return "%VWC";
  }
  return "?";
}

std::string Teds::summary() const {
  return util::format("%s %s (%s) range [%g, %g] %s +/-%g",
                      manufacturer.c_str(), model.c_str(),
                      sensor_kind_name(kind), range_min, range_max,
                      sensor_kind_unit(kind), accuracy);
}

const char* fault_mode_name(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone: return "none";
    case FaultMode::kStuckAt: return "stuck-at";
    case FaultMode::kDropout: return "dropout";
    case FaultMode::kSpike: return "spike";
    case FaultMode::kBias: return "bias";
  }
  return "?";
}

SimulatedDevice::SimulatedDevice(Teds teds, SignalModel model,
                                 std::uint64_t seed)
    : teds_(std::move(teds)), model_(model), rng_(seed) {}

double SimulatedDevice::truth(util::SimTime t) const {
  const double tau = 6.283185307179586;
  const double cycle =
      model_.amplitude *
      std::sin(tau * static_cast<double>(t) /
                   static_cast<double>(model_.period) +
               model_.phase);
  const double drift =
      model_.drift_per_hour * static_cast<double>(t) / util::kHour;
  return model_.base + cycle + drift + walk_;
}

util::Result<double> SimulatedDevice::sample(util::SimTime t) {
  ++samples_;
  if (fault_ == FaultMode::kDropout) {
    return util::Status{util::ErrorCode::kUnavailable,
                        "device dropout: no response from transducer"};
  }
  if (fault_ == FaultMode::kStuckAt && last_good_) {
    return *last_good_;
  }
  if (model_.walk_stddev > 0.0) {
    walk_ += rng_.gaussian(0.0, model_.walk_stddev);
  }
  double value = truth(t) + rng_.gaussian(0.0, model_.noise_stddev);
  if (fault_ == FaultMode::kBias) {
    value += fault_magnitude_;
  } else if (fault_ == FaultMode::kSpike && rng_.chance(0.2)) {
    value += (rng_.chance(0.5) ? 1.0 : -1.0) * fault_magnitude_;
  }
  last_good_ = value;
  return value;
}

void SimulatedDevice::inject_fault(FaultMode mode, double magnitude) {
  fault_ = mode;
  fault_magnitude_ = magnitude;
}

SimulatedDevice make_sunspot_temperature(const std::string& serial,
                                         std::uint64_t seed,
                                         double base_celsius) {
  Teds teds{SensorKind::kTemperature, "Sun Microsystems", "SPOT eDemo rev6",
            serial, -40.0, 85.0, 0.5, 10 * util::kMillisecond};
  SignalModel model;
  model.base = base_celsius;
  model.amplitude = 6.0;
  model.period = 24 * util::kHour;
  model.noise_stddev = 0.15;
  return {std::move(teds), model, seed};
}

SimulatedDevice make_humidity(const std::string& serial, std::uint64_t seed) {
  Teds teds{SensorKind::kHumidity, "Sensirion", "SHT15", serial,
            0.0, 100.0, 2.0, 50 * util::kMillisecond};
  SignalModel model;
  model.base = 55.0;
  model.amplitude = 15.0;
  model.period = 24 * util::kHour;
  model.phase = 3.14159265358979;  // humidity peaks when temperature dips
  model.noise_stddev = 0.8;
  return {std::move(teds), model, seed};
}

SimulatedDevice make_pressure(const std::string& serial, std::uint64_t seed) {
  Teds teds{SensorKind::kPressure, "Bosch", "BMP085", serial,
            30.0, 110.0, 0.1, 25 * util::kMillisecond};
  SignalModel model;
  model.base = 101.325;
  model.amplitude = 0.2;
  model.period = 12 * util::kHour;  // semidiurnal atmospheric tide
  model.noise_stddev = 0.02;
  model.walk_stddev = 0.005;
  return {std::move(teds), model, seed};
}

SimulatedDevice make_soil_moisture(const std::string& serial,
                                   std::uint64_t seed) {
  Teds teds{SensorKind::kSoilMoisture, "Decagon", "EC-5", serial,
            0.0, 60.0, 1.5, 100 * util::kMillisecond};
  SignalModel model;
  model.base = 28.0;
  model.amplitude = 3.0;
  model.period = 24 * util::kHour;
  model.noise_stddev = 0.4;
  model.drift_per_hour = -0.05;  // soil drying between irrigations
  return {std::move(teds), model, seed};
}

SimulatedDevice make_altitude(const std::string& serial, std::uint64_t seed,
                              double cruise_m) {
  Teds teds{SensorKind::kAltitude, "Honeywell", "HPA200", serial,
            0.0, 15000.0, 5.0, 10 * util::kMillisecond};
  SignalModel model;
  model.base = cruise_m;
  model.amplitude = 50.0;  // altitude-hold oscillation
  model.period = 5 * util::kMinute;
  model.noise_stddev = 2.0;
  return {std::move(teds), model, seed};
}

SimulatedDevice make_airspeed(const std::string& serial, std::uint64_t seed,
                              double cruise_mps) {
  Teds teds{SensorKind::kAirspeed, "Honeywell", "AS100", serial,
            0.0, 200.0, 1.0, 10 * util::kMillisecond};
  SignalModel model;
  model.base = cruise_mps;
  model.amplitude = 4.0;   // gust response
  model.period = 90 * util::kSecond;
  model.noise_stddev = 0.6;
  model.walk_stddev = 0.05;
  return {std::move(teds), model, seed};
}

}  // namespace sensorcer::sensor
