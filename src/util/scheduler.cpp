#include "util/scheduler.h"

#include <algorithm>
#include <cstdio>

namespace sensorcer::util {

std::string format_duration(SimDuration d) {
  char buf[48];
  if (d >= kSecond || d <= -kSecond) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(d) / kSecond);
  } else if (d >= kMillisecond || d <= -kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3fms",
                  static_cast<double>(d) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(d));
  }
  return buf;
}

Scheduler::~Scheduler() {
  // A queued callback can own the last reference to an object (a provider
  // captured by an in-flight wire delivery, say) whose destructor calls
  // cancel() back into this scheduler. Unlink each node before destroying
  // its event so those re-entrant calls see a consistent map instead of one
  // mid-destruction.
  while (!queue_.empty()) {
    auto node = queue_.extract(queue_.begin());
    (void)node;  // the event (and its captures) dies here, queue_ intact
  }
}

TimerId Scheduler::schedule_at(SimTime when, std::function<void()> fn) {
  const TimerId id = next_id_++;
  queue_.emplace(Key{std::max(when, now_), seq_++}, Event{id, std::move(fn), 0});
  return id;
}

TimerId Scheduler::schedule_every(SimDuration period, std::function<void()> fn) {
  const TimerId id = next_id_++;
  if (period <= 0) period = 1;  // a zero period would never let time advance
  queue_.emplace(Key{now_ + period, seq_++}, Event{id, std::move(fn), period});
  return id;
}

bool Scheduler::cancel(TimerId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->second.id == id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

bool Scheduler::is_cancelled(TimerId id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  return true;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    auto it = queue_.begin();
    if (it->first.first > deadline) break;
    now_ = std::max(now_, it->first.first);
    Event ev = std::move(it->second);
    queue_.erase(it);
    if (ev.period > 0) {
      // Re-arm before firing so the callback can cancel its own series.
      queue_.emplace(Key{now_ + ev.period, seq_++},
                     Event{ev.id, ev.fn, ev.period});
    }
    ev.fn();
    ++fired_;
    ++count;
  }
  now_ = std::max(now_, deadline);
  return count;
}

}  // namespace sensorcer::util
