#include "util/thread_pool.h"

namespace sensorcer::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace sensorcer::util
