#pragma once
// Streaming statistics used by benches and experiment reports.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sensorcer::util {

/// Welford online accumulator: count / min / max / mean / variance without
/// storing samples.
class StatAccumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// "n=100 mean=1.23 sd=0.4 min=0.1 max=2.2"
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sample-retaining collector for percentile reporting (p50/p90/p99).
class PercentileTracker {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Percentile in [0,100] by nearest-rank on the sorted samples.
  /// Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] double p50() const { return percentile(50); }
  [[nodiscard]] double p90() const { return percentile(90); }
  [[nodiscard]] double p99() const { return percentile(99); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace sensorcer::util
