#pragma once
// Deterministic virtual-time event scheduler.
//
// Every timed behaviour in the stack — lease expiry sweeps, renewal timers,
// multicast announcements, heartbeats, sensor sampling — is a scheduled
// callback. Tests and benches advance time explicitly with run_until /
// run_for, so a "30 second lease" experiment is instantaneous and repeatable.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "util/sim_time.h"

namespace sensorcer::util {

/// Handle for cancelling a scheduled event.
using TimerId = std::uint64_t;

/// Sentinel returned by Scheduler::next_event_time() on an empty queue.
inline constexpr SimTime kNever = INT64_MAX;

class Scheduler {
 public:
  ~Scheduler();

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Timestamp of the earliest queued event, or kNever when the queue is
  /// empty. Lets a blocking caller (e.g. an RPC awaiting its response) pump
  /// the queue event-by-event up to a deadline without overshooting it.
  [[nodiscard]] SimTime next_event_time() const {
    return queue_.empty() ? kNever : queue_.begin()->first.first;
  }

  /// Run `fn` at absolute virtual time `when` (clamped to now).
  TimerId schedule_at(SimTime when, std::function<void()> fn);

  /// Run `fn` after `delay` microseconds of virtual time.
  TimerId schedule_after(SimDuration delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Run `fn` every `period`, starting after one period. Returns the id of
  /// the recurring series; cancel() stops future firings.
  TimerId schedule_every(SimDuration period, std::function<void()> fn);

  /// Cancel a pending (or recurring) event. Returns false if already fired
  /// or unknown.
  bool cancel(TimerId id);

  /// Advance virtual time to `deadline`, firing all events due on the way
  /// (in timestamp order; FIFO among equal timestamps). Returns the number
  /// of events fired.
  std::size_t run_until(SimTime deadline);

  /// Advance by `span` from the current time.
  std::size_t run_for(SimDuration span) { return run_until(now_ + span); }

  /// Fire everything already due at the current instant (no time advance).
  std::size_t run_ready() { return run_until(now_); }

  /// Events still queued (recurring series count as one).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events fired since construction.
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

 private:
  struct Event {
    TimerId id;
    std::function<void()> fn;
    SimDuration period = 0;  // >0 for recurring events
  };

  // Key is (time, sequence) so equal-time events fire in scheduling order.
  using Key = std::pair<SimTime, std::uint64_t>;

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  TimerId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::map<Key, Event> queue_;
  std::vector<TimerId> cancelled_;  // lazily honoured for recurring events

  bool is_cancelled(TimerId id);
};

}  // namespace sensorcer::util
