#pragma once
// Small string helpers shared across modules (paths, tables, reports).

#include <string>
#include <string_view>
#include <vector>

namespace sensorcer::util {

/// Split on a single character; empty segments are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Case-sensitive prefix test.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style std::string formatter.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render rows as an aligned ASCII table with a header rule, e.g. for the
/// browser views and bench reports. All rows should have `headers.size()`
/// cells; short rows are padded.
std::string render_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace sensorcer::util
