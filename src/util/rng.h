#pragma once
// Small deterministic RNG used by sensor models, fault injectors and
// workload generators. SplitMix64 core: fast, well-distributed, and every
// experiment that takes a seed reproduces bit-for-bit.

#include <cmath>
#include <cstdint>

namespace sensorcer::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). n == 0 yields 0.
  std::uint64_t below(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Standard normal via Box–Muller (one draw per call, second discarded —
  /// simplicity over speed; this is not on a hot path).
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Exponential inter-arrival sample with the given mean.
  double exponential(double mean) {
    double u = next_double();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

 private:
  std::uint64_t state_;
};

}  // namespace sensorcer::util
