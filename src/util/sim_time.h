#pragma once
// Virtual time. The entire middleware (leases, discovery announcements,
// heartbeats, failure detection) runs against SimTime so experiments are
// deterministic and a simulated hour costs microseconds of wall clock.

#include <cstdint>
#include <string>

namespace sensorcer::util {

/// Microseconds since simulation start.
using SimTime = std::int64_t;
/// A span of simulated microseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;

/// "1.250s", "340ms", "17us" — for logs and experiment reports.
std::string format_duration(SimDuration d);

}  // namespace sensorcer::util
