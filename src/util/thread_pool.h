#pragma once
// Fixed-size worker pool used where the framework exploits real parallelism:
// the Jobber's PARALLEL control-strategy fans a job's tasks across workers,
// and Spacer workers pull exertions from the exertion space concurrently.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sensorcer::util {

class ThreadPool {
 public:
  /// Starts `threads` workers (at least 1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains and joins. Pending tasks are still executed.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue work; the future resolves with the callable's result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until every task submitted so far has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace sensorcer::util
