#pragma once
// Lightweight Status / Result<T> error-handling vocabulary.
//
// Remote middleware calls fail for many recoverable reasons (no matching
// service, lease expired, transaction aborted). Exceptions are reserved for
// programming errors; expected failures travel as Status.

#include <optional>
#include <string>
#include <utility>

namespace sensorcer::util {

/// Error taxonomy shared by every layer of the stack.
enum class ErrorCode {
  kOk = 0,
  kNotFound,        // no matching service / path / entry
  kUnavailable,     // endpoint down, partitioned, or lease expired
  kInvalidArgument, // malformed request, bad expression, bad path
  kFailedPrecondition, // e.g. joining a settled transaction
  kTimeout,
  kAborted,         // transaction aborted
  kCapacity,        // QoS not satisfiable / cybernode full
  kCodecDesync,     // interned wire stream lost a definition message
  kInternal,
};

/// Human-readable name for an error code.
const char* error_code_name(ErrorCode code);

/// Success-or-error result of an operation, with a contextual message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "NOT_FOUND: no provider for ...".
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(error_code_name(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value or a Status explaining why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}                 // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {}         // NOLINT implicit
  Result(ErrorCode code, std::string message)
      : status_(code, std::move(message)) {}

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  /// Value if present, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace sensorcer::util
