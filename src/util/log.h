#pragma once
// Minimal leveled logger. Examples narrate through it; tests silence it.

#include <cstdarg>
#include <string>

namespace sensorcer::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; `tag` names the emitting component.
void logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define SENSORCER_LOG_DEBUG(tag, ...) \
  ::sensorcer::util::logf(::sensorcer::util::LogLevel::kDebug, tag, __VA_ARGS__)
#define SENSORCER_LOG_INFO(tag, ...) \
  ::sensorcer::util::logf(::sensorcer::util::LogLevel::kInfo, tag, __VA_ARGS__)
#define SENSORCER_LOG_WARN(tag, ...) \
  ::sensorcer::util::logf(::sensorcer::util::LogLevel::kWarn, tag, __VA_ARGS__)
#define SENSORCER_LOG_ERROR(tag, ...) \
  ::sensorcer::util::logf(::sensorcer::util::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace sensorcer::util
