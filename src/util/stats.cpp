#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sensorcer::util {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::min() const { return count_ ? min_ : 0.0; }
double StatAccumulator::max() const { return count_ ? max_ : 0.0; }

double StatAccumulator::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

std::string StatAccumulator::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%zu mean=%.4g sd=%.4g min=%.4g max=%.4g",
                count_, mean(), stddev(), min(), max());
  return buf;
}

double PercentileTracker::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

}  // namespace sensorcer::util
