#pragma once
// Unique identifiers for services, leases, exertions, transactions.
//
// Jini uses java.rmi ServiceID (128-bit). We mirror that with a 128-bit Uuid
// produced by a deterministic per-generator counter mixed through SplitMix64,
// so test runs are reproducible while ids remain unique within a process.

#include <cstdint>
#include <functional>
#include <string>

namespace sensorcer::util {

/// 128-bit identifier, printable in the canonical 8-4-4-4-12 hex form.
struct Uuid {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Uuid&, const Uuid&) = default;
  friend auto operator<=>(const Uuid&, const Uuid&) = default;

  /// True for the all-zero ("null") id.
  [[nodiscard]] bool is_nil() const { return hi == 0 && lo == 0; }

  /// Canonical lowercase hex rendering, e.g. 267c67a0-dd67-4b95-beb0-e6763e117b03.
  [[nodiscard]] std::string to_string() const;

  /// Parse the canonical form; returns the nil uuid on malformed input.
  static Uuid parse(const std::string& text);
};

/// Deterministic Uuid source. Two generators seeded identically produce the
/// same id stream; distinct seeds give disjoint streams with overwhelming
/// probability.
class IdGenerator {
 public:
  explicit IdGenerator(std::uint64_t seed = 0x5e45'0c3a'9d2b'71e1ull) : state_(seed) {}

  /// Next unique id.
  Uuid next();

 private:
  std::uint64_t state_;
  std::uint64_t counter_ = 0;
};

/// Process-wide generator used where plumbing a generator is not worth it.
IdGenerator& global_id_generator();

/// Convenience: draw from the process-wide generator.
inline Uuid new_uuid() { return global_id_generator().next(); }

}  // namespace sensorcer::util

template <>
struct std::hash<sensorcer::util::Uuid> {
  std::size_t operator()(const sensorcer::util::Uuid& u) const noexcept {
    // hi/lo are already well-mixed; xor with a rotation keeps symmetry low.
    return static_cast<std::size_t>(u.hi ^ (u.lo << 1 | u.lo >> 63));
  }
};
