#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace sensorcer::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s %s] %s\n", level_tag(level), tag, body);
}

}  // namespace sensorcer::util
