#include "util/ids.h"

#include <array>
#include <cstdio>

namespace sensorcer::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Uuid::to_string() const {
  std::array<char, 37> buf{};
  std::snprintf(buf.data(), buf.size(), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi >> 32),
                static_cast<unsigned>((hi >> 16) & 0xffff),
                static_cast<unsigned>(hi & 0xffff),
                static_cast<unsigned>(lo >> 48),
                static_cast<unsigned long long>(lo & 0xffff'ffff'ffffull));
  return std::string(buf.data());
}

Uuid Uuid::parse(const std::string& text) {
  if (text.size() != 36) return {};
  Uuid out;
  int bit = 0;
  for (char c : text) {
    if (c == '-') continue;
    const int nib = hex_nibble(c);
    if (nib < 0 || bit >= 128) return {};
    if (bit < 64) {
      out.hi = (out.hi << 4) | static_cast<std::uint64_t>(nib);
    } else {
      out.lo = (out.lo << 4) | static_cast<std::uint64_t>(nib);
    }
    bit += 4;
  }
  return bit == 128 ? out : Uuid{};
}

Uuid IdGenerator::next() {
  // Mix the counter in so a generator never repeats even if splitmix cycles
  // (it cannot within 2^64 draws, but the counter documents the invariant).
  Uuid u;
  u.hi = splitmix64(state_);
  u.lo = splitmix64(state_) ^ ++counter_;
  if (u.is_nil()) u.lo = 1;  // reserve nil as "no id"
  return u;
}

IdGenerator& global_id_generator() {
  static IdGenerator gen{0xc0ffee'5e45'0123ull};
  return gen;
}

}  // namespace sensorcer::util
