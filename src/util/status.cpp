#include "util/status.h"

namespace sensorcer::util {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kCapacity: return "CAPACITY";
    case ErrorCode::kCodecDesync: return "CODEC_DESYNC";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace sensorcer::util
