#include "util/strings.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace sensorcer::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

std::string render_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  const std::size_t cols = headers.size();
  std::vector<std::size_t> width(cols);
  for (std::size_t c = 0; c < cols; ++c) width[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < cols && c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row,
                            std::string& out) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += "| ";
      out += cell;
      out.append(width[c] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(headers, out);
  for (std::size_t c = 0; c < cols; ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows) emit_row(row, out);
  return out;
}

}  // namespace sensorcer::util
