#pragma once
// Byte-accounted simulated network fabric.
//
// Replaces the paper's LAN + Jini multicast transport. Endpoints register a
// handler keyed by a 128-bit address; messages are delivered through the
// virtual-time Scheduler after a configurable latency, with optional loss
// and partitions. Every delivery is charged protocol-accurate header bytes
// (see protocol.h), giving the header-overhead and data-flow-reversal
// benches their measurements.

#include <any>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "simnet/protocol.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/scheduler.h"
#include "util/status.h"

namespace sensorcer::simnet {

using Address = util::Uuid;

/// An application message. `payload_bytes` is the modeled serialized size
/// (the in-process `body` is carried by reference and costs nothing).
struct Message {
  Address source;
  Address destination;          // or group address for multicast
  std::string topic;            // application dispatch tag, e.g. "lus.announce"
  std::any body;                // in-process payload
  std::size_t payload_bytes = 0;
  Protocol protocol = Protocol::kUdp;
  /// Trace propagation header. Stamped from the sender's current trace
  /// context when unset; when valid it is charged like every other protocol
  /// header (TraceContext::kWireBytes per message), so tracing overhead is
  /// itself measurable. Delivery runs the handler under this context and a
  /// "net.recv" span, linking sender- and receiver-side spans.
  obs::TraceContext trace{};
};

/// Per-endpoint traffic counters.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t header_bytes_sent = 0;

  [[nodiscard]] std::uint64_t wire_bytes_sent() const {
    return payload_bytes_sent + header_bytes_sent;
  }
};

/// The fabric. Message traffic runs on the single-threaded virtual-time
/// scheduler; only account_rpc() is thread-safe, because providers invoked
/// from the Jobber's parallel flow charge RPCs concurrently.
///
/// Traffic totals live in a per-network obs::Registry (the one source of
/// truth for byte/drop accounting): totals() is derived from those
/// counters, and metrics() exposes them for health reports and JSON export.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  explicit Network(util::Scheduler& scheduler, std::uint64_t seed = 42);

  // --- topology -----------------------------------------------------------

  /// Attach an endpoint; messages addressed to `addr` invoke `handler`.
  void attach(Address addr, Handler handler);

  /// Detach an endpoint (pending in-flight messages to it are dropped).
  void detach(Address addr);

  [[nodiscard]] bool is_attached(Address addr) const {
    return endpoints_.contains(addr);
  }

  /// Join / leave a multicast group (groups are plain addresses).
  void join_group(Address group, Address member);
  void leave_group(Address group, Address member);

  // --- link shaping -------------------------------------------------------

  /// One-way propagation latency applied to every message (default 200us).
  void set_latency(util::SimDuration latency) { latency_ = latency; }
  [[nodiscard]] util::SimDuration latency() const { return latency_; }

  /// Link bandwidth in bytes per second; 0 (default) = infinite. When set,
  /// delivery time is latency + wire_bytes / bandwidth, so bulk transfers
  /// (e.g. a large getLog batch) pay a size-dependent serialization delay.
  void set_bandwidth(std::uint64_t bytes_per_second) {
    bandwidth_ = bytes_per_second;
  }
  [[nodiscard]] std::uint64_t bandwidth() const { return bandwidth_; }

  /// Delivery delay for a message of `payload_bytes` under `p`.
  [[nodiscard]] util::SimDuration delivery_delay(Protocol p,
                                                 std::size_t payload_bytes) const;

  /// Probability in [0,1] that any given unicast/multicast delivery is lost.
  void set_loss_rate(double p) { loss_rate_ = p; }

  /// Sever connectivity between `a` and `b` in both directions.
  void partition(Address a, Address b);
  /// Restore connectivity between `a` and `b`.
  void heal(Address a, Address b);
  /// Remove all partitions.
  void heal_all() { partitions_.clear(); }

  // --- traffic ------------------------------------------------------------

  /// Send a unicast message; delivery is scheduled after latency().
  /// Returns kNotFound if the destination is not attached *now* (the caller
  /// learns nothing about later detaches — like a real datagram).
  util::Status send(Message msg);

  /// Deliver to every current member of the group except the sender.
  /// Returns the number of deliveries scheduled.
  std::size_t multicast(Address group, Message msg);

  /// Account traffic for a modeled synchronous RPC without scheduling a
  /// delivery (the call itself happens as a direct in-process invocation).
  /// Charges `request_bytes` from source and `response_bytes` from the
  /// callee back, both under `p`.
  void account_rpc(Address source, Address callee, std::size_t request_bytes,
                   std::size_t response_bytes, Protocol p = Protocol::kTcp);

  // --- accounting ---------------------------------------------------------

  [[nodiscard]] const TrafficStats& stats_for(Address addr) const;
  /// Network-wide totals, derived from the metrics() counters.
  [[nodiscard]] TrafficStats totals() const;
  void reset_stats();

  /// This network's metric registry (simnet.* counters). Snapshot/merge it
  /// with obs::metrics() for a full federation health view.
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

  /// The virtual-time scheduler deliveries run on. Blocking request/response
  /// protocols built over the fabric (sorcer::RemoteInvoker) pump it while
  /// awaiting a reply.
  [[nodiscard]] util::Scheduler& scheduler() { return scheduler_; }

 private:
  void charge_and_schedule(const Message& msg, Address dst);
  void charge(TrafficStats& endpoint, Protocol protocol,
              std::size_t payload_bytes, bool traced);
  [[nodiscard]] bool is_partitioned(Address a, Address b) const;

  util::Scheduler& scheduler_;
  util::Rng rng_;
  util::SimDuration latency_ = 200;  // 200us LAN hop
  std::uint64_t bandwidth_ = 0;      // bytes/s; 0 = infinite
  double loss_rate_ = 0.0;

  std::mutex account_mu_;  // guards stats maps during concurrent account_rpc
  std::unordered_map<Address, Handler> endpoints_;
  std::unordered_map<Address, std::unordered_set<Address>> groups_;
  std::unordered_map<Address, TrafficStats> stats_;
  std::vector<std::pair<Address, Address>> partitions_;

  obs::Registry metrics_;
  // Handles into metrics_, resolved once at construction (lock-free updates).
  obs::Counter& messages_sent_;
  obs::Counter& messages_received_;
  obs::Counter& messages_dropped_;
  obs::Counter& payload_bytes_sent_;
  obs::Counter& header_bytes_sent_;
  obs::Counter& trace_bytes_sent_;
  obs::Counter* wire_bytes_by_protocol_[4];
};

}  // namespace sensorcer::simnet
