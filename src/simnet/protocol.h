#pragma once
// Wire-protocol cost models.
//
// Motivation §II.1 of the paper argues that the per-packet header overhead of
// IP-family protocols dwarfs a single sensor reading, so collecting readings
// one datagram at a time is wasteful, and service-level aggregation amortizes
// the cost. To test that claim quantitatively (bench_header_overhead), every
// message in the simulated network is charged a protocol-accurate header
// cost in addition to its payload bytes.

#include <cstddef>
#include <cstdint>

namespace sensorcer::simnet {

/// Transport framing applied to a message.
enum class Protocol {
  kUdp,        // Ethernet + IPv4 + UDP datagram
  kTcp,        // Ethernet + IPv4 + TCP segment (steady-state, no handshake)
  kTcpSession, // TCP including amortized connection setup/teardown segments
  kMulticast,  // UDP multicast (same framing as kUdp)
};

/// Framing constants (bytes). Ethernet II frame overhead includes preamble,
/// header, FCS and inter-packet gap as seen on the wire.
inline constexpr std::size_t kEthernetOverhead = 38;
inline constexpr std::size_t kIpv4Header = 20;
inline constexpr std::size_t kUdpHeader = 8;
inline constexpr std::size_t kTcpHeader = 20;
/// SYN, SYN-ACK, ACK, FIN, FIN-ACK, ACK — six control segments per session.
inline constexpr std::size_t kTcpSessionControlSegments = 6;

/// Header bytes charged to a single message under `p`, excluding payload.
[[nodiscard]] constexpr std::size_t header_bytes(Protocol p) {
  switch (p) {
    case Protocol::kUdp:
    case Protocol::kMulticast:
      return kEthernetOverhead + kIpv4Header + kUdpHeader;
    case Protocol::kTcp:
      return kEthernetOverhead + kIpv4Header + kTcpHeader;
    case Protocol::kTcpSession:
      return kEthernetOverhead + kIpv4Header + kTcpHeader +
             kTcpSessionControlSegments *
                 (kEthernetOverhead + kIpv4Header + kTcpHeader);
  }
  return 0;
}

/// Maximum payload per packet; larger application messages fragment and are
/// charged one header per fragment.
inline constexpr std::size_t kMtuPayload = 1400;

/// Number of packets (and therefore headers) a payload of `payload_bytes`
/// occupies.
[[nodiscard]] constexpr std::size_t packet_count(std::size_t payload_bytes) {
  if (payload_bytes == 0) return 1;
  return (payload_bytes + kMtuPayload - 1) / kMtuPayload;
}

/// Total on-wire bytes for a message: payload plus per-fragment headers.
[[nodiscard]] constexpr std::size_t wire_bytes(Protocol p,
                                               std::size_t payload_bytes) {
  return payload_bytes + packet_count(payload_bytes) * header_bytes(p);
}

}  // namespace sensorcer::simnet
