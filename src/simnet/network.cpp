#include "simnet/network.h"

#include <algorithm>

namespace sensorcer::simnet {

void Network::attach(Address addr, Handler handler) {
  endpoints_[addr] = std::move(handler);
  stats_.try_emplace(addr);
}

void Network::detach(Address addr) {
  endpoints_.erase(addr);
  for (auto& [group, members] : groups_) members.erase(addr);
}

void Network::join_group(Address group, Address member) {
  groups_[group].insert(member);
}

void Network::leave_group(Address group, Address member) {
  auto it = groups_.find(group);
  if (it != groups_.end()) it->second.erase(member);
}

void Network::partition(Address a, Address b) {
  if (!is_partitioned(a, b)) partitions_.emplace_back(a, b);
}

void Network::heal(Address a, Address b) {
  std::erase_if(partitions_, [&](const auto& p) {
    return (p.first == a && p.second == b) || (p.first == b && p.second == a);
  });
}

bool Network::is_partitioned(Address a, Address b) const {
  return std::any_of(partitions_.begin(), partitions_.end(), [&](const auto& p) {
    return (p.first == a && p.second == b) || (p.first == b && p.second == a);
  });
}

util::Status Network::send(Message msg) {
  if (!endpoints_.contains(msg.destination)) {
    return {util::ErrorCode::kNotFound, "destination not attached"};
  }
  charge_and_schedule(msg, msg.destination);
  return util::Status::ok();
}

std::size_t Network::multicast(Address group, Message msg) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return 0;
  // Snapshot members: handlers may mutate group membership during delivery.
  const std::vector<Address> members(it->second.begin(), it->second.end());
  std::size_t scheduled = 0;
  msg.protocol = Protocol::kMulticast;
  for (Address member : members) {
    if (member == msg.source) continue;
    if (!endpoints_.contains(member)) continue;
    charge_and_schedule(msg, member);
    ++scheduled;
  }
  return scheduled;
}

void Network::account_rpc(Address source, Address callee,
                          std::size_t request_bytes,
                          std::size_t response_bytes, Protocol p) {
  std::lock_guard lock(account_mu_);
  const auto charge = [&](Address from, std::size_t payload) {
    TrafficStats& s = stats_[from];
    const std::size_t headers = packet_count(payload) * header_bytes(p);
    s.messages_sent += 1;
    s.payload_bytes_sent += payload;
    s.header_bytes_sent += headers;
    totals_.messages_sent += 1;
    totals_.payload_bytes_sent += payload;
    totals_.header_bytes_sent += headers;
  };
  charge(source, request_bytes);
  charge(callee, response_bytes);
}

void Network::charge_and_schedule(const Message& msg, Address dst) {
  TrafficStats& s = stats_[msg.source];
  const std::size_t headers =
      packet_count(msg.payload_bytes) * header_bytes(msg.protocol);
  s.messages_sent += 1;
  s.payload_bytes_sent += msg.payload_bytes;
  s.header_bytes_sent += headers;
  totals_.messages_sent += 1;
  totals_.payload_bytes_sent += msg.payload_bytes;
  totals_.header_bytes_sent += headers;

  if (is_partitioned(msg.source, dst) || rng_.chance(loss_rate_)) {
    stats_[msg.source].messages_dropped += 1;
    totals_.messages_dropped += 1;
    return;
  }

  Message delivered = msg;
  delivered.destination = dst;
  scheduler_.schedule_after(delivery_delay(msg.protocol, msg.payload_bytes),
                            [this, delivered = std::move(delivered), dst]() {
    auto it = endpoints_.find(dst);
    if (it == endpoints_.end()) return;  // detached while in flight
    stats_[dst].messages_received += 1;
    totals_.messages_received += 1;
    it->second(delivered);
  });
}

util::SimDuration Network::delivery_delay(Protocol p,
                                          std::size_t payload_bytes) const {
  if (bandwidth_ == 0) return latency_;
  const auto serialization = static_cast<util::SimDuration>(
      static_cast<double>(wire_bytes(p, payload_bytes)) /
      static_cast<double>(bandwidth_) * util::kSecond);
  return latency_ + serialization;
}

const TrafficStats& Network::stats_for(Address addr) const {
  static const TrafficStats kEmpty{};
  auto it = stats_.find(addr);
  return it == stats_.end() ? kEmpty : it->second;
}

void Network::reset_stats() {
  for (auto& [addr, s] : stats_) s = TrafficStats{};
  totals_ = TrafficStats{};
}

}  // namespace sensorcer::simnet
