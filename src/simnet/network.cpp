#include "simnet/network.h"

#include <algorithm>

namespace sensorcer::simnet {

namespace {

const char* protocol_counter_name(Protocol p) {
  switch (p) {
    case Protocol::kUdp: return "simnet.wire_bytes.udp";
    case Protocol::kTcp: return "simnet.wire_bytes.tcp";
    case Protocol::kTcpSession: return "simnet.wire_bytes.tcp_session";
    case Protocol::kMulticast: return "simnet.wire_bytes.multicast";
  }
  return "simnet.wire_bytes.udp";
}

}  // namespace

Network::Network(util::Scheduler& scheduler, std::uint64_t seed)
    : scheduler_(scheduler),
      rng_(seed),
      messages_sent_(metrics_.counter("simnet.messages_sent")),
      messages_received_(metrics_.counter("simnet.messages_received")),
      messages_dropped_(metrics_.counter("simnet.messages_dropped")),
      payload_bytes_sent_(metrics_.counter("simnet.payload_bytes_sent")),
      header_bytes_sent_(metrics_.counter("simnet.header_bytes_sent")),
      trace_bytes_sent_(metrics_.counter("simnet.trace_bytes_sent")) {
  for (Protocol p : {Protocol::kUdp, Protocol::kTcp, Protocol::kTcpSession,
                     Protocol::kMulticast}) {
    wire_bytes_by_protocol_[static_cast<int>(p)] =
        &metrics_.counter(protocol_counter_name(p));
  }
}

void Network::attach(Address addr, Handler handler) {
  endpoints_[addr] = std::move(handler);
  stats_.try_emplace(addr);
}

void Network::detach(Address addr) {
  endpoints_.erase(addr);
  for (auto& [group, members] : groups_) members.erase(addr);
}

void Network::join_group(Address group, Address member) {
  groups_[group].insert(member);
}

void Network::leave_group(Address group, Address member) {
  auto it = groups_.find(group);
  if (it != groups_.end()) it->second.erase(member);
}

void Network::partition(Address a, Address b) {
  if (!is_partitioned(a, b)) partitions_.emplace_back(a, b);
}

void Network::heal(Address a, Address b) {
  std::erase_if(partitions_, [&](const auto& p) {
    return (p.first == a && p.second == b) || (p.first == b && p.second == a);
  });
}

bool Network::is_partitioned(Address a, Address b) const {
  return std::any_of(partitions_.begin(), partitions_.end(), [&](const auto& p) {
    return (p.first == a && p.second == b) || (p.first == b && p.second == a);
  });
}

util::Status Network::send(Message msg) {
  if (!endpoints_.contains(msg.destination)) {
    return {util::ErrorCode::kNotFound, "destination not attached"};
  }
  if (!msg.trace.valid()) msg.trace = obs::current_context();
  charge_and_schedule(msg, msg.destination);
  return util::Status::ok();
}

std::size_t Network::multicast(Address group, Message msg) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return 0;
  // Snapshot members: handlers may mutate group membership during delivery.
  const std::vector<Address> members(it->second.begin(), it->second.end());
  std::size_t scheduled = 0;
  msg.protocol = Protocol::kMulticast;
  if (!msg.trace.valid()) msg.trace = obs::current_context();
  for (Address member : members) {
    if (member == msg.source) continue;
    if (!endpoints_.contains(member)) continue;
    charge_and_schedule(msg, member);
    ++scheduled;
  }
  return scheduled;
}

void Network::charge(TrafficStats& endpoint, Protocol protocol,
                     std::size_t payload_bytes, bool traced) {
  std::size_t headers = packet_count(payload_bytes) * header_bytes(protocol);
  if (traced) {
    headers += obs::TraceContext::kWireBytes;
    trace_bytes_sent_.add(obs::TraceContext::kWireBytes);
  }
  endpoint.messages_sent += 1;
  endpoint.payload_bytes_sent += payload_bytes;
  endpoint.header_bytes_sent += headers;
  messages_sent_.add(1);
  payload_bytes_sent_.add(payload_bytes);
  header_bytes_sent_.add(headers);
  wire_bytes_by_protocol_[static_cast<int>(protocol)]->add(payload_bytes +
                                                           headers);
}

void Network::account_rpc(Address source, Address callee,
                          std::size_t request_bytes,
                          std::size_t response_bytes, Protocol p) {
  const bool traced = obs::current_context().valid();
  std::lock_guard lock(account_mu_);
  charge(stats_[source], p, request_bytes, traced);
  charge(stats_[callee], p, response_bytes, traced);
}

void Network::charge_and_schedule(const Message& msg, Address dst) {
  charge(stats_[msg.source], msg.protocol, msg.payload_bytes,
         msg.trace.valid());

  if (is_partitioned(msg.source, dst) || rng_.chance(loss_rate_)) {
    stats_[msg.source].messages_dropped += 1;
    messages_dropped_.add(1);
    return;
  }

  Message delivered = msg;
  delivered.destination = dst;
  scheduler_.schedule_after(delivery_delay(msg.protocol, msg.payload_bytes),
                            [this, delivered = std::move(delivered), dst]() {
    auto it = endpoints_.find(dst);
    if (it == endpoints_.end()) return;  // detached while in flight
    stats_[dst].messages_received += 1;
    messages_received_.add(1);
    if (delivered.trace.valid()) {
      // The receive side continues the sender's trace: the handler runs
      // under a hop span so anything it triggers links back to the request.
      obs::Span span = obs::tracer().start_span("net.recv:" + delivered.topic,
                                                delivered.trace);
      obs::ContextGuard guard(span.context());
      it->second(delivered);
    } else {
      it->second(delivered);
    }
  });
}

util::SimDuration Network::delivery_delay(Protocol p,
                                          std::size_t payload_bytes) const {
  if (bandwidth_ == 0) return latency_;
  const auto serialization = static_cast<util::SimDuration>(
      static_cast<double>(wire_bytes(p, payload_bytes)) /
      static_cast<double>(bandwidth_) * util::kSecond);
  return latency_ + serialization;
}

const TrafficStats& Network::stats_for(Address addr) const {
  static const TrafficStats kEmpty{};
  auto it = stats_.find(addr);
  return it == stats_.end() ? kEmpty : it->second;
}

TrafficStats Network::totals() const {
  TrafficStats out;
  out.messages_sent = messages_sent_.value();
  out.messages_received = messages_received_.value();
  out.messages_dropped = messages_dropped_.value();
  out.payload_bytes_sent = payload_bytes_sent_.value();
  out.header_bytes_sent = header_bytes_sent_.value();
  return out;
}

void Network::reset_stats() {
  for (auto& [addr, s] : stats_) s = TrafficStats{};
  metrics_.reset();
}

}  // namespace sensorcer::simnet
