#pragma once
// Chaos invariants — what must hold no matter what the schedule did.
//
//   1. Convergence: after quiesce every planned instance is re-placed on a
//      healthy node (or explicitly degraded while a dependency is gone).
//   2. No double execution: each workload exertion id executes at most once
//      (the wire pipeline is at-most-once per provider and every chaos task
//      pins one provider).
//   3. Reading conservation: every reading recorded by a live provider
//      instance reaches the historian exactly once — node failures,
//      partitions and failovers lose nothing and duplicate nothing. The
//      audit follows readings through the whole retention ladder: raw
//      (active + sealed blocks) readings must be individually retrievable,
//      while readings demoted into tier buckets must still be *counted*
//      by the rollup representation (aging out past the cold tier is
//      policy, not loss).
//   4. Leases renewed-or-lapsed: a registration is either kept alive by
//      renewal or disappears once its lease runs out; crashed providers
//      never linger.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hist/store.h"
#include "sensor/reading.h"
#include "util/sim_time.h"

namespace sensorcer::chaos {

struct InvariantViolation {
  std::string invariant;  // "convergence", "double-execution", ...
  std::string detail;
};

struct InvariantReport {
  bool converged = false;
  std::uint64_t exertions_issued = 0;
  std::uint64_t exertions_done = 0;
  std::uint64_t exertions_failed = 0;
  std::uint64_t double_executions = 0;
  std::uint64_t readings_expected = 0;
  std::uint64_t readings_stored = 0;
  std::uint64_t readings_tiered = 0;  // surviving as rollup buckets only
  std::uint64_t readings_lost = 0;
  std::uint64_t readings_duplicated = 0;
  std::size_t stale_registrations = 0;
  std::size_t degraded = 0;
  std::uint64_t reprovisions = 0;
  std::uint64_t cascades = 0;
  std::uint64_t placement_dedups = 0;
  std::size_t events_applied = 0;
  std::size_t checks_run = 0;
  std::vector<InvariantViolation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  void violate(std::string invariant, std::string detail);
  [[nodiscard]] std::string render() const;
};

/// Ground truth for reading conservation. Providers' reading taps feed
/// observe(); audit() then compares the expected set against the historian.
/// Keyed (sensor, timestamp) — exactly the historian's dedup key.
class ReadingTracker {
 public:
  void observe(const std::string& sensor, const sensor::Reading& reading);

  [[nodiscard]] std::uint64_t expected_count() const { return total_; }

  /// Every observed reading must be conserved by `store`, none twice:
  ///   - at/after the segment's raw_from boundary it must come back
  ///     one-for-one from a range query;
  ///   - in [tier_from, raw_from) it was demoted into rollup buckets, so
  ///     the tiered deep-stats count must equal the number of non-bad
  ///     readings observed there (bad readings are dropped on demotion by
  ///     design);
  ///   - before tier_from it aged past the cold tier — policy, not loss.
  void audit(const hist::HistorianStore& store, InvariantReport& report) const;

 private:
  struct Observed {
    double value = 0.0;
    bool bad = false;  // kBad readings are excluded from tier buckets
  };
  // sensor -> timestamp -> the reading the tap saw first.
  std::map<std::string, std::map<util::SimTime, Observed>> readings_;
  std::uint64_t total_ = 0;
};

/// Ground truth for at-most-once execution. The chaos workload stamps each
/// task with a unique sequence number; the target provider's operation
/// calls record() with its own identity when it runs. At-most-once is a
/// per-provider property: re-execution on the *same* instance is a
/// violation, while a substitution retry landing on a replacement instance
/// (after the original timed out) is legal and tallied separately.
class ExecutionTracker {
 public:
  void issued(std::uint64_t seq) { issued_.emplace(seq); }
  void record(std::uint64_t seq, const std::string& instance);

  [[nodiscard]] std::uint64_t issued_count() const { return issued_.size(); }

  /// Flag every (seq, instance) executed more than once.
  void audit(InvariantReport& report) const;

 private:
  std::set<std::uint64_t> issued_;
  // seq -> executing instance identity -> executions
  std::map<std::uint64_t, std::map<std::string, std::uint64_t>> execs_;
};

}  // namespace sensorcer::chaos
