#pragma once
// Chaos schedules — scripted, seeded fault sequences for a live deployment.
//
// A schedule is a flat, pre-generated list of timed events (node kills and
// restarts, management-plane partitions, loss bursts, lease storms, killing
// the Jobber mid-fan-out). Generation is pure: the same seed and config
// produce bit-identical schedules, so every chaos run — test, bench, CI
// smoke — reproduces exactly on the virtual-time scheduler.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace sensorcer::chaos {

enum class ChaosAction {
  kKillNode,      // cybernode hard failure (hosted services crash)
  kRestartNode,   // failed cybernode comes back empty
  kPartitionNode, // sever management plane <-> cybernode connectivity
  kHealNode,      // restore one partition
  kHealAll,       // drop every partition
  kLossBurst,     // raise fabric-wide message loss to `rate`
  kLossEnd,       // loss back to zero
  kLeaseStorm,    // burst of `count` short-lease registrations, half of
                  // which immediately stop renewing (must lapse)
  kKillJobber,    // crash + detach the Jobber rendezvous peer
  kReviveJobber,  // re-attach and re-register the Jobber
};

const char* chaos_action_name(ChaosAction action);

struct ChaosEvent {
  util::SimTime at = 0;
  ChaosAction action = ChaosAction::kKillNode;
  std::size_t node = 0;   // cybernode index for node-targeted actions
  double rate = 0.0;      // loss probability for kLossBurst
  std::size_t count = 0;  // registrations for kLeaseStorm
};

struct ScheduleConfig {
  std::uint64_t seed = 1;
  /// Events are generated in (0, duration]; the run then quiesces.
  util::SimDuration duration = 60 * util::kSecond;
  /// Mean exponential gap between events.
  util::SimDuration mean_gap = 2 * util::kSecond;
  /// Cybernode fleet size events may target. At least one node is always
  /// left alive so the deployment never loses its entire fleet at once.
  std::size_t nodes = 0;
  // Relative action weights (normalized internally).
  double w_kill = 0.22;
  double w_restart = 0.18;
  double w_partition = 0.16;
  double w_heal = 0.12;
  double w_loss = 0.10;
  double w_lease_storm = 0.12;
  double w_jobber = 0.10;
  double loss_rate = 0.25;
  util::SimDuration loss_burst = 1500 * util::kMillisecond;
  /// A killed node auto-restarts within [mean_gap, flap_ceiling] — nodes
  /// flap rather than die forever, so capacity keeps churning.
  util::SimDuration flap_ceiling = 8 * util::kSecond;
  std::size_t lease_storm_size = 16;
};

/// Generate the event list: deterministic in config (seeded SplitMix64),
/// sorted by time, internally consistent (restarts target killed nodes,
/// heals target live partitions, loss bursts end, the Jobber revives).
std::vector<ChaosEvent> make_schedule(const ScheduleConfig& config);

/// Human-readable event table for logs and bench reports.
std::string render_schedule(const std::vector<ChaosEvent>& events);

}  // namespace sensorcer::chaos
