#include "chaos/invariants.h"

#include "util/strings.h"

namespace sensorcer::chaos {

void InvariantReport::violate(std::string invariant, std::string detail) {
  violations.push_back({std::move(invariant), std::move(detail)});
}

std::string InvariantReport::render() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"converged", converged ? "yes" : "NO"});
  rows.push_back({"exertions issued / done / failed",
                  util::format("%llu / %llu / %llu",
                               static_cast<unsigned long long>(exertions_issued),
                               static_cast<unsigned long long>(exertions_done),
                               static_cast<unsigned long long>(exertions_failed))});
  rows.push_back({"double executions",
                  std::to_string(double_executions)});
  rows.push_back({"readings expected / stored",
                  util::format("%llu / %llu",
                               static_cast<unsigned long long>(readings_expected),
                               static_cast<unsigned long long>(readings_stored))});
  rows.push_back({"readings lost / duplicated",
                  util::format("%llu / %llu",
                               static_cast<unsigned long long>(readings_lost),
                               static_cast<unsigned long long>(readings_duplicated))});
  rows.push_back({"stale registrations", std::to_string(stale_registrations)});
  rows.push_back({"degraded at quiesce", std::to_string(degraded)});
  rows.push_back({"re-provisions / cascades / dedups",
                  util::format("%llu / %llu / %llu",
                               static_cast<unsigned long long>(reprovisions),
                               static_cast<unsigned long long>(cascades),
                               static_cast<unsigned long long>(placement_dedups))});
  rows.push_back({"events applied / checks run",
                  util::format("%zu / %zu", events_applied, checks_run)});
  rows.push_back({"violations", std::to_string(violations.size())});
  std::string out = util::render_table({"invariant", "value"}, rows);
  for (const InvariantViolation& v : violations) {
    out += util::format("  VIOLATION [%s] %s\n", v.invariant.c_str(),
                        v.detail.c_str());
  }
  return out;
}

void ReadingTracker::observe(const std::string& sensor,
                             const sensor::Reading& reading) {
  auto [it, fresh] =
      readings_[sensor].emplace(reading.timestamp, reading.value);
  (void)it;
  if (fresh) ++total_;
}

void ReadingTracker::audit(const hist::HistorianStore& store,
                           InvariantReport& report) const {
  report.readings_expected = total_;
  for (const auto& [sensor, expected] : readings_) {
    const hist::SeriesResult stored =
        store.range(sensor, 0, sensor::kEndOfTime, expected.size() * 2 + 16);
    report.readings_stored += stored.points.size();
    std::map<util::SimTime, std::size_t> seen;
    for (const hist::Point& p : stored.points) ++seen[p.timestamp];
    for (const auto& [ts, n] : seen) {
      if (n > 1) {
        report.readings_duplicated += n - 1;
        report.violate("conservation",
                       util::format("%s@%lld stored %zu times",
                                    sensor.c_str(),
                                    static_cast<long long>(ts), n));
      }
    }
    // Readings older than the oldest retained point aged out of the raw
    // ring — retention policy, not loss.
    const util::SimTime oldest_stored =
        stored.points.empty() ? 0 : stored.points.front().timestamp;
    for (const auto& [ts, value] : expected) {
      (void)value;
      if (!stored.points.empty() && ts < oldest_stored) continue;
      if (!seen.contains(ts)) {
        ++report.readings_lost;
        if (report.readings_lost <= 8) {  // cap the violation spam
          report.violate("conservation",
                         util::format("%s@%lld recorded but never stored",
                                      sensor.c_str(),
                                      static_cast<long long>(ts)));
        }
      }
    }
  }
  if (report.readings_lost > 8) {
    report.violate("conservation",
                   util::format("... and %llu more lost readings",
                                static_cast<unsigned long long>(
                                    report.readings_lost - 8)));
  }
}

void ExecutionTracker::record(std::uint64_t seq, const std::string& instance) {
  ++execs_[seq][instance];
}

void ExecutionTracker::audit(InvariantReport& report) const {
  for (const auto& [seq, by_instance] : execs_) {
    for (const auto& [instance, n] : by_instance) {
      if (n > 1) {
        ++report.double_executions;
        report.violate(
            "double-execution",
            util::format("exertion seq %llu executed %llu times on %s",
                         static_cast<unsigned long long>(seq),
                         static_cast<unsigned long long>(n),
                         instance.c_str()));
      }
    }
  }
}

}  // namespace sensorcer::chaos
