#include "chaos/invariants.h"

#include "util/strings.h"

namespace sensorcer::chaos {

void InvariantReport::violate(std::string invariant, std::string detail) {
  violations.push_back({std::move(invariant), std::move(detail)});
}

std::string InvariantReport::render() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"converged", converged ? "yes" : "NO"});
  rows.push_back({"exertions issued / done / failed",
                  util::format("%llu / %llu / %llu",
                               static_cast<unsigned long long>(exertions_issued),
                               static_cast<unsigned long long>(exertions_done),
                               static_cast<unsigned long long>(exertions_failed))});
  rows.push_back({"double executions",
                  std::to_string(double_executions)});
  rows.push_back({"readings expected / stored",
                  util::format("%llu / %llu",
                               static_cast<unsigned long long>(readings_expected),
                               static_cast<unsigned long long>(readings_stored))});
  rows.push_back({"readings tiered", std::to_string(readings_tiered)});
  rows.push_back({"readings lost / duplicated",
                  util::format("%llu / %llu",
                               static_cast<unsigned long long>(readings_lost),
                               static_cast<unsigned long long>(readings_duplicated))});
  rows.push_back({"stale registrations", std::to_string(stale_registrations)});
  rows.push_back({"degraded at quiesce", std::to_string(degraded)});
  rows.push_back({"re-provisions / cascades / dedups",
                  util::format("%llu / %llu / %llu",
                               static_cast<unsigned long long>(reprovisions),
                               static_cast<unsigned long long>(cascades),
                               static_cast<unsigned long long>(placement_dedups))});
  rows.push_back({"events applied / checks run",
                  util::format("%zu / %zu", events_applied, checks_run)});
  rows.push_back({"violations", std::to_string(violations.size())});
  std::string out = util::render_table({"invariant", "value"}, rows);
  for (const InvariantViolation& v : violations) {
    out += util::format("  VIOLATION [%s] %s\n", v.invariant.c_str(),
                        v.detail.c_str());
  }
  return out;
}

void ReadingTracker::observe(const std::string& sensor,
                             const sensor::Reading& reading) {
  auto [it, fresh] = readings_[sensor].emplace(
      reading.timestamp,
      Observed{reading.value, reading.quality == sensor::Quality::kBad});
  (void)it;
  if (fresh) ++total_;
}

void ReadingTracker::audit(const hist::HistorianStore& store,
                           InvariantReport& report) const {
  report.readings_expected = total_;
  const util::SimDuration cold_res = store.config().series.cold_resolution;
  for (const auto& [sensor, expected] : readings_) {
    const hist::SensorSeries::Retention ret = store.retention(sensor);
    const hist::SeriesResult stored =
        store.range(sensor, 0, sensor::kEndOfTime, expected.size() * 2 + 16);
    report.readings_stored += stored.points.size();
    std::map<util::SimTime, std::size_t> seen;
    for (const hist::Point& p : stored.points) ++seen[p.timestamp];
    for (const auto& [ts, n] : seen) {
      if (n > 1) {
        report.readings_duplicated += n - 1;
        report.violate("conservation",
                       util::format("%s@%lld stored %zu times",
                                    sensor.c_str(),
                                    static_cast<long long>(ts), n));
      }
    }
    // Raw-tier conservation: every observed reading at/after the exact
    // raw boundary must come back one-for-one. (With no retention info
    // the segment is gone entirely; everything observed counts as lost.)
    const util::SimTime raw_from = ret.raw_from;
    for (const auto& [ts, obs] : expected) {
      (void)obs;
      if (raw_from >= 0 && ts < raw_from) continue;
      if (!seen.contains(ts)) {
        ++report.readings_lost;
        if (report.readings_lost <= 8) {  // cap the violation spam
          report.violate("conservation",
                         util::format("%s@%lld recorded but never stored",
                                      sensor.c_str(),
                                      static_cast<long long>(ts)));
        }
      }
    }
    // Tier conservation: readings demoted out of the raw tier survive as
    // rollup buckets in [tier_from, raw_from). The tiered count must match
    // the non-bad observations there — demotion drops kBad by design and
    // anything before tier_from aged past the cold tier.
    const util::SimTime tier_hi =
        raw_from >= 0 ? raw_from : sensor::kEndOfTime;
    if (ret.tier_from >= 0 && ret.tier_from < tier_hi) {
      std::uint64_t tier_expected = 0;
      for (auto it = expected.lower_bound(ret.tier_from);
           it != expected.end() && it->first < tier_hi; ++it) {
        if (!it->second.bad) ++tier_expected;
      }
      if (tier_expected > 0) {
        const hist::StatsResult tiered =
            store.deep_stats(sensor, 0, tier_hi, cold_res);
        report.readings_tiered += tiered.stats.count;
        if (tiered.stats.count != tier_expected) {
          const bool loss = tiered.stats.count < tier_expected;
          if (loss) {
            report.readings_lost += tier_expected - tiered.stats.count;
          } else {
            report.readings_duplicated += tiered.stats.count - tier_expected;
          }
          report.violate(
              "conservation",
              util::format("%s tier count %llu != %llu observed in "
                           "[%lld, %lld)",
                           sensor.c_str(),
                           static_cast<unsigned long long>(tiered.stats.count),
                           static_cast<unsigned long long>(tier_expected),
                           static_cast<long long>(ret.tier_from),
                           static_cast<long long>(tier_hi)));
        }
      }
    }
  }
  if (report.readings_lost > 8) {
    report.violate("conservation",
                   util::format("... and %llu more lost readings",
                                static_cast<unsigned long long>(
                                    report.readings_lost - 8)));
  }
}

void ExecutionTracker::record(std::uint64_t seq, const std::string& instance) {
  ++execs_[seq][instance];
}

void ExecutionTracker::audit(InvariantReport& report) const {
  for (const auto& [seq, by_instance] : execs_) {
    for (const auto& [instance, n] : by_instance) {
      if (n > 1) {
        ++report.double_executions;
        report.violate(
            "double-execution",
            util::format("exertion seq %llu executed %llu times on %s",
                         static_cast<unsigned long long>(seq),
                         static_cast<unsigned long long>(n),
                         instance.c_str()));
      }
    }
  }
}

}  // namespace sensorcer::chaos
