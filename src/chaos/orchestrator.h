#pragma once
// ChaosOrchestrator — runs a seeded fault schedule against a live
// core::Deployment on the virtual-time scheduler and audits the invariants
// (see invariants.h) after every event and again at quiesce.
//
// The orchestrator provisions its own workload through the deployment's
// provisioner — an ESP fleet feeding the historian, CSPs composed over
// random ESPs (dependency edges registered), and Tasker workers exercised
// by a periodic exertion workload — then replays the schedule: node kills
// and restarts, management-plane partitions (the monitor's wire pings fail
// while the node object stays alive — the split-brain fencing path), loss
// bursts, lease storms, and killing the Jobber mid-fan-out. Everything is
// deterministic in (config, seed).

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/schedule.h"
#include "core/deployment.h"
#include "util/rng.h"

namespace sensorcer::chaos {

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// ESP fleet size ("chaos-esp-1" ... "-N"), provisioned via Rio.
  std::size_t providers = 100;
  /// CSPs composed over random ESP components (required dependency edges).
  std::size_t composites = 4;
  std::size_t composite_width = 3;
  /// Tasker workers the exertion workload targets.
  std::size_t workers = 6;
  util::SimDuration workload_period = 250 * util::kMillisecond;
  /// Event script parameters; `nodes` and `seed` are filled in by setup().
  ScheduleConfig schedule;
  /// Lease granted to lease-storm registrations (half never renew).
  util::SimDuration storm_lease = 600 * util::kMillisecond;
  /// How long quiesce keeps polling for convergence before giving up.
  util::SimDuration quiesce_timeout = 90 * util::kSecond;
};

class ChaosOrchestrator {
 public:
  ChaosOrchestrator(core::Deployment& deployment, ChaosConfig config);
  ~ChaosOrchestrator();

  /// Provision the chaos workload (ESPs, CSPs, workers), install the
  /// conservation taps, generate the schedule, start the workload timer.
  util::Status setup();

  /// Replay the schedule, quiesce, audit. Deterministic for a given
  /// (deployment config, chaos config) pair.
  InvariantReport run();

  [[nodiscard]] const std::vector<ChaosEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::string render_events() const {
    return render_schedule(events_);
  }

 private:
  void apply(const ChaosEvent& event, InvariantReport& report);
  void workload_tick();
  /// Cheap incremental checks after each event (full audit at quiesce).
  void check(InvariantReport& report);
  /// Heal everything, restart dead nodes, pump until the monitor converges
  /// (or the timeout expires), let leases lapse and feeders flush.
  void quiesce(InvariantReport& report);
  void final_audit(InvariantReport& report);
  void rejoin_node(const std::shared_ptr<rio::Cybernode>& node);
  void revive_jobber();

  core::Deployment& dep_;
  ChaosConfig config_;
  util::Rng rng_;
  std::vector<ChaosEvent> events_;
  // Shared with the taps/operations installed on provisioned instances, so
  // replacement instances created after this orchestrator dies (the
  // deployment may outlive it) never dangle.
  std::shared_ptr<ReadingTracker> readings_;
  std::shared_ptr<ExecutionTracker> execs_;
  // (id, instance) of every instance the chaos factories created — initial
  // placements and replacements alike — for the renewed-or-lapsed audit.
  std::vector<std::pair<registry::ServiceId,
                        std::weak_ptr<sorcer::ServiceProvider>>>
      tracked_;

  std::vector<std::string> esp_names_;
  std::vector<std::string> csp_names_;
  std::vector<std::string> worker_names_;

  struct StormEntry {
    std::shared_ptr<sorcer::ServiceProvider> service;
    bool keeper = false;  // keeps renewing; non-keepers must lapse
  };
  std::vector<StormEntry> storm_;

  std::set<std::size_t> partitioned_;  // node indices currently cut off
  util::TimerId workload_timer_ = 0;
  std::uint64_t probe_seed_ = 7000;
  std::uint64_t seq_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  bool jobber_down_ = false;
  bool in_tick_ = false;  // bars re-entrant workload ticks (see .cpp)
  bool set_up_ = false;
};

}  // namespace sensorcer::chaos
