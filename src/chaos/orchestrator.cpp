#include "chaos/orchestrator.h"

#include <algorithm>

#include "core/elementary_provider.h"
#include "hist/historian.h"
#include "sorcer/exertion.h"
#include "sorcer/invoke.h"
#include "util/strings.h"

namespace sensorcer::chaos {

using util::kMillisecond;
using util::kSecond;

ChaosOrchestrator::ChaosOrchestrator(core::Deployment& deployment,
                                     ChaosConfig config)
    : dep_(deployment),
      config_(config),
      // Distinct stream from the schedule generator: picking CSP components
      // must not perturb which faults the same seed produces.
      rng_(config.seed ^ 0xc4a07a51ull),
      readings_(std::make_shared<ReadingTracker>()),
      execs_(std::make_shared<ExecutionTracker>()) {}

ChaosOrchestrator::~ChaosOrchestrator() {
  if (workload_timer_ != 0) dep_.scheduler().cancel(workload_timer_);
  if (set_up_) dep_.provisioner().set_instance_hook(nullptr);
}

util::Status ChaosOrchestrator::setup() {
  if (set_up_) return util::Status::ok();
  if (dep_.cybernodes().empty()) {
    return {util::ErrorCode::kFailedPrecondition,
            "chaos needs a cybernode fleet to break"};
  }

  config_.schedule.seed = config_.seed;
  config_.schedule.nodes = dep_.cybernodes().size();
  events_ = make_schedule(config_.schedule);

  // Observe every instance the provisioner's factories create — including
  // the replacements the monitor places after kills — so conservation taps
  // and the lease audit cover the whole lifetime of the run.
  auto readings = readings_;
  auto* tracked = &tracked_;
  dep_.provisioner().set_instance_hook(
      [readings, tracked](
          const std::shared_ptr<sorcer::ServiceProvider>& svc) {
        tracked->emplace_back(svc->service_id(), svc);
        auto esp =
            std::dynamic_pointer_cast<core::ElementarySensorProvider>(svc);
        if (!esp) return;
        const std::string name = esp->provider_name();
        if (!name.starts_with("chaos-esp")) return;
        esp->add_reading_tap([readings, name](const sensor::Reading& r) {
          readings->observe(name, r);
        });
      });

  // The ESP fleet: lightweight, so ~100 instances fit a handful of nodes.
  rio::QosRequirement esp_qos;
  esp_qos.compute_units = 0.02;
  esp_qos.memory_mb = 4.0;
  util::Status status = dep_.provisioner().provision_elementary(
      "chaos-esp",
      [this](const std::string& instance) {
        ++probe_seed_;
        return sensor::make_temperature_probe(
            instance, probe_seed_, 16.0 + static_cast<double>(probe_seed_ % 12));
      },
      esp_qos, config_.providers);
  if (!status.is_ok()) return status;
  for (const auto& svc : dep_.monitor().deployed_instances("chaos-esp")) {
    esp_names_.push_back(svc->provider_name());
  }
  std::sort(esp_names_.begin(), esp_names_.end());

  // Tasker workers for the exertion workload. The operation reports which
  // concrete instance ran each sequence number: per-instance re-execution is
  // the at-most-once violation, a replacement instance re-running a timed-out
  // sequence is legal substitution.
  rio::QosRequirement worker_qos;
  worker_qos.compute_units = 0.05;
  worker_qos.memory_mb = 8.0;
  for (std::size_t i = 0; i < config_.workers; ++i) {
    const std::string name = util::format("chaos-worker-%zu", i + 1);
    rio::ServiceElement element;
    element.name = name;
    element.qos = worker_qos;
    element.planned = 1;
    auto execs = execs_;
    element.factory = [execs, tracked](const std::string& instance)
        -> std::shared_ptr<sorcer::ServiceProvider> {
      auto tasker = std::make_shared<sorcer::Tasker>(instance);
      sorcer::Tasker* raw = tasker.get();
      const std::string identity =
          instance + "#" + tasker->service_id().to_string();
      tasker->add_operation(
          "chaos.work",
          [execs, raw, identity](sorcer::ServiceContext& ctx) -> util::Status {
            // A zombie whose registration has not lapsed yet can still be
            // selected; the process behind it is gone, so it must neither
            // compute nor count as an execution.
            if (raw->crashed()) {
              return {util::ErrorCode::kUnavailable, "crashed worker"};
            }
            auto seq = ctx.get_double("chaos/seq");
            if (!seq.is_ok()) return seq.status();
            execs->record(static_cast<std::uint64_t>(seq.value()), identity);
            ctx.put("chaos/ack", seq.value());
            return util::Status::ok();
          },
          2 * kMillisecond);
      tracked->emplace_back(tasker->service_id(), tasker);
      return tasker;
    };
    status = dep_.provisioner().provision_service(name, std::move(element));
    if (!status.is_ok()) return status;
    worker_names_.push_back(name);
  }

  // Let placements activate and the ESPs take first samples.
  dep_.pump(kSecond);

  // Composites over random ESP components. provision_composite records the
  // required dependency edges; the façade then wires the actual components
  // and an averaging expression.
  rio::QosRequirement csp_qos;
  csp_qos.compute_units = 0.1;
  csp_qos.memory_mb = 16.0;
  std::vector<std::vector<std::string>> component_sets;
  for (std::size_t c = 0; c < config_.composites; ++c) {
    const std::string name = util::format("chaos-csp-%zu", c + 1);
    const std::size_t width =
        std::min(config_.composite_width, esp_names_.size());
    std::set<std::size_t> picked;
    while (picked.size() < width) {
      picked.insert(static_cast<std::size_t>(rng_.below(esp_names_.size())));
    }
    std::vector<std::string> components;
    for (std::size_t idx : picked) components.push_back(esp_names_[idx]);
    status = dep_.provisioner().provision_composite(name, csp_qos, components);
    if (!status.is_ok()) return status;
    csp_names_.push_back(name);
    component_sets.push_back(std::move(components));
  }
  dep_.pump(kSecond);
  for (std::size_t c = 0; c < csp_names_.size(); ++c) {
    status = dep_.facade().compose_service(csp_names_[c], component_sets[c]);
    if (!status.is_ok()) return status;
    std::string expr = "(";
    for (std::size_t i = 0; i < component_sets[c].size(); ++i) {
      if (i > 0) expr += " + ";
      expr += static_cast<char>('a' + i);
    }
    expr += util::format(") / %zu", component_sets[c].size());
    status = dep_.facade().add_expression(csp_names_[c], expr);
    if (!status.is_ok()) return status;
  }

  workload_timer_ = dep_.scheduler().schedule_every(
      config_.workload_period, [this] { workload_tick(); });
  set_up_ = true;
  return util::Status::ok();
}

void ChaosOrchestrator::workload_tick() {
  if (worker_names_.empty()) return;
  // Closed-loop generator: a wire exert below pumps the scheduler, and under
  // loss it can wait out multi-second call deadlines — during which this
  // timer fires again on the same stack. Issuing from those nested frames
  // compounds (each exert pumps, firing more ticks) until the stack
  // overflows; a real load generator blocked on a response isn't issuing
  // either, so re-entrant ticks are skipped, not queued.
  if (in_tick_) return;
  in_tick_ = true;
  ++seq_;
  execs_->issued(seq_);
  auto task = sorcer::Task::make(
      "chaos-work", sorcer::Signature{sorcer::type::kTasker, "chaos.work",
                                      worker_names_[seq_ % worker_names_.size()]});
  task->context().put("chaos/seq", static_cast<double>(seq_));
  (void)sorcer::exert(task, dep_.accessor());
  if (task->status() == sorcer::ExertStatus::kDone) ++done_; else ++failed_;

  // Every 4th tick, a federated read through a composite — the whole
  // CSP → ESP collection path keeps running while faults land.
  if (!csp_names_.empty() && seq_ % 4 == 0) {
    (void)dep_.facade().get_value(csp_names_[(seq_ / 4) % csp_names_.size()]);
  }

  // Every 8th tick, a two-leg job through the Jobber rendezvous, so the
  // kKillJobber events really land mid-fan-out.
  if (dep_.jobber() != nullptr && seq_ % 8 == 0) {
    auto job = sorcer::Job::make("chaos-job");
    for (int leg = 0; leg < 2; ++leg) {
      ++seq_;
      execs_->issued(seq_);
      auto t = sorcer::Task::make(
          "chaos-job-leg",
          sorcer::Signature{sorcer::type::kTasker, "chaos.work",
                            worker_names_[seq_ % worker_names_.size()]});
      t->context().put("chaos/seq", static_cast<double>(seq_));
      job->add(t);
    }
    (void)sorcer::exert(job, dep_.accessor());
    if (job->status() == sorcer::ExertStatus::kDone) ++done_; else ++failed_;
  }
  in_tick_ = false;
}

void ChaosOrchestrator::apply(const ChaosEvent& event,
                              InvariantReport& report) {
  (void)report;
  const auto& nodes = dep_.cybernodes();
  switch (event.action) {
    case ChaosAction::kKillNode:
      if (event.node < nodes.size() && nodes[event.node]->is_alive()) {
        nodes[event.node]->fail();
      }
      break;
    case ChaosAction::kRestartNode:
      if (event.node < nodes.size() && !nodes[event.node]->is_alive()) {
        nodes[event.node]->restart();
        rejoin_node(nodes[event.node]);
      }
      break;
    case ChaosAction::kPartitionNode:
      // Management plane only: the monitor's pings to the node fail while
      // the hosted instances' own endpoints stay reachable — exactly the
      // split-brain window the fencing path exists for.
      if (event.node < nodes.size()) {
        dep_.network().partition(dep_.invoker().address(),
                                 nodes[event.node]->network_address());
        partitioned_.insert(event.node);
      }
      break;
    case ChaosAction::kHealNode:
      if (event.node < nodes.size()) {
        dep_.network().heal(dep_.invoker().address(),
                            nodes[event.node]->network_address());
        partitioned_.erase(event.node);
      }
      break;
    case ChaosAction::kHealAll:
      dep_.network().heal_all();
      partitioned_.clear();
      break;
    case ChaosAction::kLossBurst:
      dep_.network().set_loss_rate(event.rate);
      break;
    case ChaosAction::kLossEnd:
      dep_.network().set_loss_rate(0.0);
      break;
    case ChaosAction::kLeaseStorm:
      for (std::size_t i = 0; i < event.count; ++i) {
        auto svc = std::make_shared<sorcer::Tasker>(
            util::format("chaos-storm-%zu", storm_.size() + 1));
        for (const auto& lus : dep_.lookups()) {
          (void)svc->join(lus, dep_.lease_renewal(), config_.storm_lease);
        }
        const bool keeper = (i % 2 == 0);
        if (!keeper) svc->crash();  // stops renewing — this lease must lapse
        storm_.push_back({svc, keeper});
      }
      break;
    case ChaosAction::kKillJobber:
      if (sorcer::Jobber* jobber = dep_.jobber();
          jobber != nullptr && !jobber_down_) {
        jobber->crash();
        dep_.network().detach(jobber->network_address());
        jobber_down_ = true;
      }
      break;
    case ChaosAction::kReviveJobber:
      revive_jobber();
      break;
  }
}

void ChaosOrchestrator::rejoin_node(
    const std::shared_ptr<rio::Cybernode>& node) {
  // restart() only revives the process; a restarted node re-announces
  // itself, which is what makes its capacity discoverable again.
  for (const auto& lus : dep_.lookups()) {
    (void)node->join(lus, dep_.lease_renewal(), dep_.config().lease_duration);
  }
}

void ChaosOrchestrator::revive_jobber() {
  sorcer::Jobber* jobber = dep_.jobber();
  if (jobber == nullptr || !jobber_down_) return;
  jobber->attach_network(dep_.network());
  for (const auto& lus : dep_.lookups()) {
    (void)jobber->join(lus, dep_.lease_renewal(),
                       dep_.config().lease_duration);
  }
  jobber_down_ = false;
}

void ChaosOrchestrator::check(InvariantReport& report) {
  std::size_t alive = 0;
  for (const auto& node : dep_.cybernodes()) {
    if (node->is_alive()) ++alive;
  }
  if (alive == 0) {
    report.violate("schedule", "no cybernode left alive mid-run");
  }
  // One deployment record per instance name, always: double placement would
  // eventually double-execute and double-push.
  std::set<std::string> names;
  for (const auto& svc : dep_.monitor().deployed_instances()) {
    if (!names.insert(svc->provider_name()).second) {
      report.violate("bookkeeping",
                     "instance " + svc->provider_name() + " deployed twice");
    }
  }
}

InvariantReport ChaosOrchestrator::run() {
  InvariantReport report;
  if (!set_up_) {
    util::Status status = setup();
    if (!status.is_ok()) {
      report.violate("setup", status.to_string());
      return report;
    }
  }
  const util::SimTime start = dep_.now();
  for (const ChaosEvent& event : events_) {
    const util::SimTime when = start + event.at;
    if (when > dep_.now()) dep_.pump(when - dep_.now());
    apply(event, report);
    ++report.events_applied;
    check(report);
    ++report.checks_run;
  }
  const util::SimTime end = start + config_.schedule.duration;
  if (end > dep_.now()) dep_.pump(end - dep_.now());
  quiesce(report);
  final_audit(report);
  return report;
}

void ChaosOrchestrator::quiesce(InvariantReport& report) {
  dep_.network().set_loss_rate(0.0);
  dep_.network().heal_all();
  partitioned_.clear();
  for (const auto& node : dep_.cybernodes()) {
    if (!node->is_alive()) {
      node->restart();
      rejoin_node(node);
    }
  }
  revive_jobber();
  if (workload_timer_ != 0) {
    dep_.scheduler().cancel(workload_timer_);
    workload_timer_ = 0;
  }

  const util::SimDuration step =
      std::max<util::SimDuration>(dep_.config().monitor.poll_period, 1);
  util::SimDuration waited = 0;
  while (!dep_.monitor().converged() && waited < config_.quiesce_timeout) {
    dep_.pump(step);
    waited += step;
  }
  report.converged = dep_.monitor().converged();
  if (!report.converged) {
    report.violate(
        "convergence",
        util::format("%zu unplaced, %zu degraded after %lld ms of quiesce",
                     dep_.monitor().unplaced_count(),
                     dep_.monitor().degraded_instances().size(),
                     static_cast<long long>(config_.quiesce_timeout /
                                            util::kMillisecond)));
  }

  // Let every lease granted during the run either renew or lapse (the storm
  // non-keepers and fenced zombies must disappear), with feeders still
  // flushing on their timers as virtual time passes.
  dep_.pump(dep_.config().lease_duration + 2 * kSecond);

  // Drain the feeder tails. Under wire transport a flush pumps the
  // scheduler, which can fire another ESP's sampling timer mid-drain — so
  // tally leftovers in a separate pass after all flushes (the tally itself
  // never advances time, so a zero count is final) and iterate until a
  // round ends with nothing pending anywhere.
  for (int round = 0; round < 8; ++round) {
    const auto instances = dep_.monitor().deployed_instances("chaos-esp");
    for (const auto& svc : instances) {
      auto* esp = dynamic_cast<core::ElementarySensorProvider*>(svc.get());
      if (esp == nullptr) continue;
      if (auto* feeder = esp->history_feeder()) (void)feeder->flush();
    }
    std::size_t left = 0;
    for (const auto& svc : instances) {
      auto* esp = dynamic_cast<core::ElementarySensorProvider*>(svc.get());
      if (esp == nullptr) continue;
      if (auto* feeder = esp->history_feeder()) left += feeder->pending();
    }
    if (left == 0) break;
  }
}

void ChaosOrchestrator::final_audit(InvariantReport& report) {
  report.exertions_issued = execs_->issued_count();
  report.exertions_done = done_;
  report.exertions_failed = failed_;
  report.reprovisions = dep_.monitor().reprovision_count();
  report.cascades = dep_.monitor().cascade_count();
  report.placement_dedups = dep_.monitor().placement_dedup_count();
  report.degraded = dep_.monitor().degraded_instances().size();

  execs_->audit(report);
  if (dep_.historian() != nullptr) {
    readings_->audit(dep_.historian()->store(), report);
  }

  // Leases renewed-or-lapsed. Keepers kept renewing and must still be
  // registered; non-keepers crashed at birth and must be gone.
  for (const StormEntry& entry : storm_) {
    bool registered = false;
    for (const auto& lus : dep_.lookups()) {
      if (lus->contains(entry.service->service_id())) registered = true;
    }
    if (entry.keeper && !registered) {
      report.violate("lease",
                     entry.service->provider_name() +
                         " kept renewing but its registration is gone");
    }
    if (!entry.keeper && registered) {
      ++report.stale_registrations;
      report.violate("lease",
                     entry.service->provider_name() +
                         " crashed but its registration outlived the lease");
    }
  }
  // Every crashed chaos instance (killed nodes, fenced zombies) must have
  // lapsed out of every lookup service by now.
  for (const auto& [id, weak] : tracked_) {
    auto svc = weak.lock();
    if (!svc || !svc->crashed()) continue;
    for (const auto& lus : dep_.lookups()) {
      if (lus->contains(id)) {
        ++report.stale_registrations;
        report.violate("lease", svc->provider_name() +
                                    " crashed but is still registered");
        break;
      }
    }
  }
}

}  // namespace sensorcer::chaos
