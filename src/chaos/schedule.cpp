#include "chaos/schedule.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/rng.h"
#include "util/strings.h"

namespace sensorcer::chaos {

const char* chaos_action_name(ChaosAction action) {
  switch (action) {
    case ChaosAction::kKillNode: return "kill-node";
    case ChaosAction::kRestartNode: return "restart-node";
    case ChaosAction::kPartitionNode: return "partition-node";
    case ChaosAction::kHealNode: return "heal-node";
    case ChaosAction::kHealAll: return "heal-all";
    case ChaosAction::kLossBurst: return "loss-burst";
    case ChaosAction::kLossEnd: return "loss-end";
    case ChaosAction::kLeaseStorm: return "lease-storm";
    case ChaosAction::kKillJobber: return "kill-jobber";
    case ChaosAction::kReviveJobber: return "revive-jobber";
  }
  return "?";
}

std::vector<ChaosEvent> make_schedule(const ScheduleConfig& config) {
  util::Rng rng(config.seed);
  std::vector<ChaosEvent> events;
  if (config.nodes == 0 || config.duration <= 0) return events;

  // Track the simulated fleet while generating so every event targets a
  // state it can act on (restarts pick dead nodes, heals live partitions).
  std::set<std::size_t> dead;
  // Every kill schedules its own restart at a future time; the node stays in
  // `dead` until that timestamp passes so later events see the replayed state.
  std::map<std::size_t, util::SimTime> pending_restart;
  std::set<std::size_t> partitioned;
  bool loss_on = false;
  bool jobber_dead = false;

  const double weight_sum = config.w_kill + config.w_restart +
                            config.w_partition + config.w_heal +
                            config.w_loss + config.w_lease_storm +
                            config.w_jobber;

  const auto pick_from = [&rng](const std::set<std::size_t>& s) {
    auto it = s.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng.below(s.size())));
    return *it;
  };

  util::SimTime t = 0;
  while (true) {
    t += std::max<util::SimDuration>(
        1, static_cast<util::SimDuration>(
               rng.exponential(static_cast<double>(config.mean_gap))));
    if (t > config.duration) break;

    // Apply any auto-paired restarts whose time has come: those nodes are
    // alive again from the schedule's point of view.
    for (auto it = pending_restart.begin(); it != pending_restart.end();) {
      if (it->second <= t) {
        dead.erase(it->first);
        it = pending_restart.erase(it);
      } else {
        ++it;
      }
    }

    double roll = rng.next_double() * weight_sum;
    ChaosEvent ev;
    ev.at = t;
    const auto take = [&roll](double w) {
      if (roll < w) return true;
      roll -= w;
      return false;
    };

    if (take(config.w_kill)) {
      // Keep at least one node alive: the fleet churns, it never vanishes.
      std::set<std::size_t> candidates;
      for (std::size_t i = 0; i < config.nodes; ++i) {
        if (!dead.contains(i)) candidates.insert(i);
      }
      if (candidates.size() <= 1) continue;
      ev.action = ChaosAction::kKillNode;
      ev.node = pick_from(candidates);
      dead.insert(ev.node);
      events.push_back(ev);
      // Flap rather than die forever: the node is scheduled back within the
      // ceiling, clamped so the schedule never ends with a node down.
      ChaosEvent back;
      back.at = std::min(
          config.duration,
          t + static_cast<util::SimDuration>(rng.uniform(
                  static_cast<double>(config.mean_gap),
                  static_cast<double>(config.flap_ceiling))));
      back.action = ChaosAction::kRestartNode;
      back.node = ev.node;
      events.push_back(back);
      pending_restart[ev.node] = back.at;
    } else if (take(config.w_restart)) {
      // Pull a pending restart forward: the node comes back now instead of at
      // its scheduled flap time.
      if (dead.empty()) continue;
      ev.action = ChaosAction::kRestartNode;
      ev.node = pick_from(dead);
      const util::SimTime scheduled = pending_restart.at(ev.node);
      events.erase(std::find_if(events.begin(), events.end(),
                                [&](const ChaosEvent& e) {
                                  return e.action == ChaosAction::kRestartNode &&
                                         e.node == ev.node && e.at == scheduled;
                                }));
      pending_restart.erase(ev.node);
      dead.erase(ev.node);
      events.push_back(ev);
    } else if (take(config.w_partition)) {
      std::set<std::size_t> candidates;
      for (std::size_t i = 0; i < config.nodes; ++i) {
        if (!partitioned.contains(i)) candidates.insert(i);
      }
      if (candidates.empty()) continue;
      ev.action = ChaosAction::kPartitionNode;
      ev.node = pick_from(candidates);
      partitioned.insert(ev.node);
      events.push_back(ev);
    } else if (take(config.w_heal)) {
      if (partitioned.empty()) continue;
      if (partitioned.size() > 1 && rng.chance(0.3)) {
        ev.action = ChaosAction::kHealAll;
        partitioned.clear();
      } else {
        ev.action = ChaosAction::kHealNode;
        ev.node = pick_from(partitioned);
        partitioned.erase(ev.node);
      }
      events.push_back(ev);
    } else if (take(config.w_loss)) {
      if (loss_on) continue;
      ev.action = ChaosAction::kLossBurst;
      ev.rate = config.loss_rate;
      events.push_back(ev);
      ChaosEvent end;
      end.at = t + config.loss_burst;
      end.action = ChaosAction::kLossEnd;
      events.push_back(end);
      // Bursts never overlap: generation treats the burst as atomic.
      loss_on = false;
      t = std::max(t, std::min(end.at, config.duration));
    } else if (take(config.w_lease_storm)) {
      ev.action = ChaosAction::kLeaseStorm;
      ev.count = config.lease_storm_size;
      events.push_back(ev);
    } else {
      if (jobber_dead) {
        ev.action = ChaosAction::kReviveJobber;
        jobber_dead = false;
      } else {
        ev.action = ChaosAction::kKillJobber;
        jobber_dead = true;
      }
      events.push_back(ev);
    }
  }

  // Leave the fabric whole at the end of the script; quiesce() also heals,
  // but the schedule itself should not encode a permanently broken state.
  if (jobber_dead) {
    ChaosEvent revive;
    revive.at = config.duration;
    revive.action = ChaosAction::kReviveJobber;
    events.push_back(revive);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  return events;
}

std::string render_schedule(const std::vector<ChaosEvent>& events) {
  std::vector<std::vector<std::string>> rows;
  for (const ChaosEvent& e : events) {
    std::string detail;
    switch (e.action) {
      case ChaosAction::kKillNode:
      case ChaosAction::kRestartNode:
      case ChaosAction::kPartitionNode:
      case ChaosAction::kHealNode:
        detail = util::format("node %zu", e.node);
        break;
      case ChaosAction::kLossBurst:
        detail = util::format("rate %.2f", e.rate);
        break;
      case ChaosAction::kLeaseStorm:
        detail = util::format("%zu registrations", e.count);
        break;
      default:
        break;
    }
    rows.push_back({util::format_duration(e.at),
                    chaos_action_name(e.action), detail});
  }
  return util::render_table({"t", "action", "detail"}, rows);
}

}  // namespace sensorcer::chaos
