#include "registry/entry.h"

#include <cstdio>

namespace sensorcer::registry {

std::string entry_value_to_string(const EntryValue& value) {
  struct Visitor {
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(double d) const {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g", d);
      return buf;
    }
    std::string operator()(std::int64_t i) const {
      return std::to_string(i);
    }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
  };
  return std::visit(Visitor{}, value);
}

std::string Entry::get_string(const std::string& key,
                              const std::string& fallback) const {
  const EntryValue* v = find(key);
  if (v == nullptr) return fallback;
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return fallback;
}

bool Entry::matches(const Entry& item) const {
  for (const auto& [key, want] : attrs_) {
    const EntryValue* have = item.find(key);
    if (have == nullptr || *have != want) return false;
  }
  return true;
}

std::size_t Entry::wire_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [key, value] : attrs_) {
    bytes += key.size() + 1;
    if (const auto* s = std::get_if<std::string>(&value)) {
      bytes += s->size() + 1;
    } else {
      bytes += 8;
    }
  }
  return bytes;
}

}  // namespace sensorcer::registry
