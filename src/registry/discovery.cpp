#include "registry/discovery.h"

#include <algorithm>

#include "obs/metrics.h"

namespace sensorcer::registry {

namespace {

struct DiscoveryMetrics {
  obs::Counter& announcements;
  obs::Counter& discovered;
  obs::Histogram& latency;
};

DiscoveryMetrics& discovery_metrics() {
  static DiscoveryMetrics m{
      obs::metrics().counter("discovery.announcements"),
      obs::metrics().counter("discovery.discovered"),
      obs::metrics().histogram("discovery.latency_us")};
  return m;
}
// Modeled sizes of the discovery datagrams (Jini's are ~70-500 bytes).
constexpr std::size_t kAnnounceBytes = 96;
constexpr std::size_t kRequestBytes = 64;
constexpr std::size_t kResponseBytes = 160;

constexpr const char* kTopicAnnounce = "discovery.announce";
constexpr const char* kTopicRequest = "discovery.request";
constexpr const char* kTopicResponse = "discovery.response";
}  // namespace

simnet::Address discovery_group() {
  // Fixed well-known address, shared by every participant.
  return util::Uuid{0x224'0001'85ull, 0x4a49'4e49ull /* "JINI" */};
}

DiscoveryManager::DiscoveryManager(simnet::Network& network,
                                   util::Scheduler& scheduler)
    : network_(network), scheduler_(scheduler), address_(util::new_uuid()) {
  network_.attach(address_,
                  [this](const simnet::Message& msg) { handle_message(msg); });
  network_.join_group(discovery_group(), address_);
}

DiscoveryManager::~DiscoveryManager() {
  for (auto& ad : advertised_) scheduler_.cancel(ad.announce_timer);
  network_.leave_group(discovery_group(), address_);
  network_.detach(address_);
}

void DiscoveryManager::advertise(std::shared_ptr<LookupService> lus,
                                 util::SimDuration announce_period) {
  announce(lus);
  std::weak_ptr<LookupService> weak = lus;
  const util::TimerId timer =
      scheduler_.schedule_every(announce_period, [this, weak] {
        if (auto strong = weak.lock()) {
          announce(strong);
        } else {
          purge_dead_advertised();
        }
      });
  advertised_.push_back({weak, lus->address(), timer});
}

void DiscoveryManager::withdraw(const std::shared_ptr<LookupService>& lus) {
  std::erase_if(advertised_, [&](Advertised& ad) {
    if (ad.lus.lock() != lus) return false;
    scheduler_.cancel(ad.announce_timer);
    return true;
  });
}

void DiscoveryManager::purge_dead_advertised() {
  std::erase_if(advertised_, [&](Advertised& ad) {
    if (!ad.lus.expired()) return false;
    scheduler_.cancel(ad.announce_timer);
    return true;
  });
}

void DiscoveryManager::announce(const std::shared_ptr<LookupService>& lus) {
  simnet::Message msg;
  msg.source = address_;
  msg.topic = kTopicAnnounce;
  msg.body = LusAdvertisement{lus, lus->address()};
  msg.payload_bytes = kAnnounceBytes;
  discovery_metrics().announcements.add(1);
  network_.multicast(discovery_group(), msg);
}

void DiscoveryManager::start_discovery(DiscoveryListener listener) {
  listener_ = std::move(listener);
  discovering_ = true;
  // Report anything already known (e.g. learned from announcements that
  // arrived before the client asked), pruning entries whose LUS died.
  for (auto it = known_.begin(); it != known_.end();) {
    if (auto strong = it->second.lock()) {
      if (listener_) listener_(strong);
      ++it;
    } else {
      it = known_.erase(it);
    }
  }
  simnet::Message msg;
  msg.source = address_;
  msg.topic = kTopicRequest;
  msg.payload_bytes = kRequestBytes;
  discovery_started_ = scheduler_.now();
  network_.multicast(discovery_group(), msg);
}

void DiscoveryManager::handle_message(const simnet::Message& msg) {
  if (msg.topic == kTopicAnnounce || msg.topic == kTopicResponse) {
    if (const auto* ad = std::any_cast<LusAdvertisement>(&msg.body)) {
      note_discovered(*ad);
    }
    return;
  }
  if (msg.topic == kTopicRequest) {
    // Answer with a unicast response for each LUS we advertise. A LUS that
    // died without withdraw() is purged instead of answered for.
    purge_dead_advertised();
    for (const auto& ad : advertised_) {
      simnet::Message reply;
      reply.source = address_;
      reply.destination = msg.source;
      reply.topic = kTopicResponse;
      reply.body = LusAdvertisement{ad.lus, ad.lus_address};
      reply.payload_bytes = kResponseBytes;
      reply.protocol = simnet::Protocol::kTcp;  // Jini unicast discovery is TCP
      (void)network_.send(std::move(reply));
    }
  }
}

void DiscoveryManager::note_discovered(const LusAdvertisement& ad) {
  auto strong = ad.lus.lock();
  if (!strong) {
    // An advertisement can outlive its LUS (in-flight message, stale cache
    // entry): make sure the address is not kept as a dead known_ entry.
    known_.erase(ad.lus_address);
    return;
  }
  const bool is_new = !known_.contains(ad.lus_address);
  known_[ad.lus_address] = ad.lus;
  if (is_new) {
    discovery_metrics().discovered.add(1);
    if (discovery_started_ >= 0) {
      discovery_metrics().latency.observe(
          static_cast<double>(scheduler_.now() - discovery_started_));
    }
  }
  if (is_new && discovering_ && listener_) listener_(strong);
}

std::vector<std::shared_ptr<LookupService>> DiscoveryManager::discovered() {
  std::vector<std::shared_ptr<LookupService>> out;
  for (auto it = known_.begin(); it != known_.end();) {
    if (auto strong = it->second.lock()) {
      out.push_back(std::move(strong));
      ++it;
    } else {
      it = known_.erase(it);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a->name() < b->name(); });
  return out;
}

}  // namespace sensorcer::registry
