#include "registry/federation.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/log.h"

namespace sensorcer::registry {

namespace {

struct LookupMetrics {
  obs::Gauge& services;
  obs::Counter& registrations;
  obs::Counter& renewals;
  obs::Counter& cancellations;
  obs::Counter& expirations;
  obs::Counter& lookups;
  obs::Counter& events;
  obs::Counter& renew_batches;
  obs::Counter& renew_batch_leases;
  obs::Counter& renew_denied;
  obs::Gauge& shards;
  obs::Gauge& shard_imbalance;
};

LookupMetrics& lookup_metrics() {
  static LookupMetrics m{obs::metrics().gauge("registry.services"),
                         obs::metrics().counter("registry.registrations"),
                         obs::metrics().counter("registry.renewals"),
                         obs::metrics().counter("registry.cancellations"),
                         obs::metrics().counter("registry.expirations"),
                         obs::metrics().counter("registry.lookups"),
                         obs::metrics().counter("registry.events"),
                         obs::metrics().counter("registry.renew_batches"),
                         obs::metrics().counter("registry.renew_batch_leases"),
                         obs::metrics().counter("registry.renew_denied"),
                         obs::metrics().gauge("registry.shards"),
                         obs::metrics().gauge("registry.shard_imbalance")};
  return m;
}

/// Per-shard population gauges for the health report's balance row. set()
/// semantics: the values reflect the most recently mutated federation.
obs::Gauge& shard_gauge(std::size_t shard) {
  static std::vector<obs::Gauge*> cache;
  while (cache.size() <= shard) {
    cache.push_back(&obs::metrics().gauge("registry.shard_services." +
                                          std::to_string(cache.size())));
  }
  return *cache[shard];
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t ring_point(std::uint32_t shard, std::size_t vnode) {
  return splitmix64(splitmix64(shard + 1) ^
                    (vnode * 0x9e3779b97f4a7c15ull));
}

// Modeled envelope bytes around a renewAll payload (header + op id + status),
// mirroring the flat exertion envelope sizes of the sorcer wire path.
constexpr std::size_t kBatchRequestEnvelope = 28;
constexpr std::size_t kBatchResponseEnvelope = 12;

}  // namespace

// --- ConsistentRing ---------------------------------------------------------

ConsistentRing::ConsistentRing(std::uint32_t shards) {
  for (std::uint32_t s = 0; s < shards; ++s) add_shard(s);
}

void ConsistentRing::add_shard(std::uint32_t shard) {
  ring_.reserve(ring_.size() + kVirtualNodes);
  for (std::size_t v = 0; v < kVirtualNodes; ++v) {
    ring_.emplace_back(ring_point(shard, v), shard);
  }
  std::sort(ring_.begin(), ring_.end());
  ++shards_;
}

void ConsistentRing::remove_shard(std::uint32_t shard) {
  std::erase_if(ring_, [shard](const auto& p) { return p.second == shard; });
  --shards_;
}

std::uint32_t ConsistentRing::shard_for(const util::Uuid& id) const {
  const std::uint64_t point = splitmix64(id.hi ^ (id.lo * 0xff51afd7ed558ccdull));
  // First virtual node clockwise of the id's point (wrapping).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

// --- wirefmt ----------------------------------------------------------------

namespace wirefmt {

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool get_varint(const std::uint8_t*& p, const std::uint8_t* end,
                std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (p == end) return false;
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;
}

std::uint64_t zigzag(std::int64_t n) {
  return (static_cast<std::uint64_t>(n) << 1) ^
         static_cast<std::uint64_t>(n >> 63);
}

std::int64_t unzigzag(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^ -static_cast<std::int64_t>(z & 1);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool get_u64(const std::uint8_t*& p, const std::uint8_t* end,
             std::uint64_t& v) {
  if (end - p < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p++) << (8 * i);
  return true;
}

util::Status truncated() {
  return {util::ErrorCode::kInvalidArgument, "truncated renewAll payload"};
}

}  // namespace

void encode_renew_request(const std::vector<RenewItem>& items,
                          std::vector<std::uint8_t>& out) {
  out.clear();
  put_varint(out, items.size());
  // Columnar: the lease-id column is incompressible (128-bit randoms); the
  // extension column delta-zigzags against the previous value so a
  // same-duration batch pays one byte per lease after the first.
  for (const RenewItem& item : items) {
    put_u64(out, item.lease_id.hi);
    put_u64(out, item.lease_id.lo);
  }
  std::int64_t prev = 0;
  for (const RenewItem& item : items) {
    put_varint(out, zigzag(item.extension - prev));
    prev = item.extension;
  }
}

util::Status decode_renew_request(const std::uint8_t* data, std::size_t size,
                                  std::vector<RenewItem>& into) {
  into.clear();
  const std::uint8_t* p = data;
  const std::uint8_t* end = data + size;
  std::uint64_t count = 0;
  if (!get_varint(p, end, count)) return truncated();
  if (count > size / 16) {  // each id alone needs 16 bytes
    return {util::ErrorCode::kInvalidArgument, "renewAll count exceeds payload"};
  }
  into.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_u64(p, end, into[i].lease_id.hi) ||
        !get_u64(p, end, into[i].lease_id.lo)) {
      return truncated();
    }
  }
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t z = 0;
    if (!get_varint(p, end, z)) return truncated();
    prev += unzigzag(z);
    into[i].extension = prev;
  }
  return util::Status::ok();
}

void encode_renew_response(const std::vector<util::Uuid>& denied,
                           std::vector<std::uint8_t>& out) {
  out.clear();
  put_varint(out, denied.size());
  for (const util::Uuid& id : denied) {
    put_u64(out, id.hi);
    put_u64(out, id.lo);
  }
}

util::Status decode_renew_response(const std::uint8_t* data, std::size_t size,
                                   std::vector<util::Uuid>& into) {
  into.clear();
  const std::uint8_t* p = data;
  const std::uint8_t* end = data + size;
  std::uint64_t count = 0;
  if (!get_varint(p, end, count)) return truncated();
  if (count > size / 16) {
    return {util::ErrorCode::kInvalidArgument, "denied count exceeds payload"};
  }
  into.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_u64(p, end, into[i].hi) || !get_u64(p, end, into[i].lo)) {
      return truncated();
    }
  }
  return util::Status::ok();
}

}  // namespace wirefmt

// --- RegistryFederation -----------------------------------------------------

RegistryFederation::RegistryFederation(std::string name,
                                       util::Scheduler& scheduler,
                                       simnet::Network* network,
                                       util::SimDuration sweep_period,
                                       std::size_t shards)
    : name_(std::move(name)),
      scheduler_(scheduler),
      network_(network),
      address_(util::new_uuid()),
      ring_(static_cast<std::uint32_t>(shards == 0 ? 1 : shards)) {
  const std::size_t n = shards == 0 ? 1 : shards;
  shards_.reserve(n);
  shard_addrs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<LusShard>(static_cast<std::uint32_t>(i)));
    shard_addrs_.push_back(util::new_uuid());
  }
  if (network_ != nullptr) {
    // The federation front is addressable so discovery can deliver unicast
    // requests to it. Shard addresses exist only for traffic attribution.
    network_->attach(address_, [](const simnet::Message&) {});
  }
  sweep_timer_ = scheduler_.schedule_every(sweep_period, [this] {
    sweep_expired();
  });
  lookup_metrics().shards.set(static_cast<double>(shard_count()));
}

RegistryFederation::~RegistryFederation() {
  scheduler_.cancel(sweep_timer_);
  if (network_ != nullptr) network_->detach(address_);
}

void RegistryFederation::charge_rpc(simnet::Address callee,
                                    std::size_t request_bytes,
                                    std::size_t response_bytes) const {
  if (network_ != nullptr) {
    network_->account_rpc(address_, callee, request_bytes, response_bytes);
  }
}

void RegistryFederation::refresh_balance_gauges() const {
  std::size_t max_size = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::size_t size = shards_[i]->size();
    shard_gauge(i).set(static_cast<double>(size));
    max_size = std::max(max_size, size);
    total += size;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards_.size());
  lookup_metrics().shard_imbalance.set(
      mean > 0.0 ? static_cast<double>(max_size) / mean : 0.0);
}

ServiceRegistration RegistryFederation::register_service(
    ServiceItem item, util::SimDuration lease_duration) {
  if (item.id.is_nil()) item.id = util::new_uuid();

  const std::uint32_t home = ring_.shard_for(item.id);
  Lease lease{util::new_uuid(), scheduler_.now() + lease_duration,
              lease_duration, home};
  charge_rpc(shard_addrs_[home], item.wire_bytes(), /*response=*/32);

  const bool replaced = shards_[home]->register_service(item, lease);
  lookup_metrics().registrations.add(1);
  if (!replaced) lookup_metrics().services.add(1.0);
  refresh_balance_gauges();
  fire(Transition::kNoMatchToMatch, item);
  SENSORCER_LOG_DEBUG("lus", "%s: registered %s on shard %u", name_.c_str(),
                      item.attributes.get_string(attr::kName, "?").c_str(),
                      home);
  return {item.id, lease};
}

util::Status RegistryFederation::renew_lease(const util::Uuid& lease_id,
                                             util::SimDuration extension) {
  const util::SimTime now = scheduler_.now();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->renew(lease_id, now, extension)) {
      charge_rpc(shard_addrs_[i], 24, 8);
      lookup_metrics().renewals.add(1);
      return util::Status::ok();
    }
  }
  // Not a service lease — maybe an event-registration lease.
  auto ev = lease_to_event_.find(lease_id);
  if (ev == lease_to_event_.end()) {
    return {util::ErrorCode::kNotFound, "unknown or expired lease"};
  }
  charge_rpc(address_, 24, 8);
  lookup_metrics().renewals.add(1);
  EventReg& reg = event_regs_.at(ev->second);
  reg.lease.expiration = now + extension;
  reg.lease.duration = extension;
  return util::Status::ok();
}

RenewOutcome RegistryFederation::renew_events(
    const std::vector<RenewItem>& items) {
  RenewOutcome outcome;
  const util::SimTime now = scheduler_.now();
  for (const RenewItem& item : items) {
    auto ev = lease_to_event_.find(item.lease_id);
    if (ev == lease_to_event_.end()) {
      outcome.denied.push_back(item.lease_id);
      continue;
    }
    EventReg& reg = event_regs_.at(ev->second);
    reg.lease.expiration = now + item.extension;
    reg.lease.duration = item.extension;
    ++outcome.renewed;
  }
  return outcome;
}

RenewOutcome RegistryFederation::renew_batch(
    std::uint32_t shard, const std::vector<RenewItem>& items) {
  // Encode → decode the request through the wire codec so the charged bytes
  // are the real flat-encoded size and the decode path runs live.
  wirefmt::encode_renew_request(items, wire_scratch_);
  const std::size_t request_bytes = wire_scratch_.size() + kBatchRequestEnvelope;
  const util::Status decoded = wirefmt::decode_renew_request(
      wire_scratch_.data(), wire_scratch_.size(), decode_scratch_);

  RenewOutcome outcome;
  if (!decoded.is_ok()) {
    // Malformed batch: every lease is denied (cannot happen for a
    // self-encoded request; kept for protocol completeness).
    for (const RenewItem& item : items) outcome.denied.push_back(item.lease_id);
  } else if (shard == kEventLeaseShard) {
    outcome = renew_events(decode_scratch_);
  } else {
    const util::SimTime now = scheduler_.now();
    for (const RenewItem& item : decode_scratch_) {
      // The shard hint goes stale across reshards; fall back to a federation
      // search before denying so a migrated lease keeps renewing.
      bool renewed = shard < shards_.size() &&
                     shards_[shard]->renew(item.lease_id, now, item.extension);
      if (!renewed) {
        for (std::size_t i = 0; i < shards_.size() && !renewed; ++i) {
          if (i != shard) {
            renewed = shards_[i]->renew(item.lease_id, now, item.extension);
          }
        }
      }
      if (!renewed) {
        if (auto ev = lease_to_event_.find(item.lease_id);
            ev != lease_to_event_.end()) {
          EventReg& reg = event_regs_.at(ev->second);
          reg.lease.expiration = now + item.extension;
          reg.lease.duration = item.extension;
          renewed = true;
        }
      }
      if (renewed) {
        ++outcome.renewed;
      } else {
        outcome.denied.push_back(item.lease_id);
      }
    }
  }

  wirefmt::encode_renew_response(outcome.denied, wire_scratch_);
  const std::size_t response_bytes =
      wire_scratch_.size() + kBatchResponseEnvelope;
  const simnet::Address callee = shard == kEventLeaseShard ||
                                         shard >= shard_addrs_.size()
                                     ? address_
                                     : shard_addrs_[shard];
  charge_rpc(callee, request_bytes, response_bytes);
  lookup_metrics().renew_batches.add(1);
  lookup_metrics().renew_batch_leases.add(items.size());
  lookup_metrics().renewals.add(outcome.renewed);
  lookup_metrics().renew_denied.add(outcome.denied.size());
  return outcome;
}

util::Status RegistryFederation::cancel_lease(const util::Uuid& lease_id) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (auto item = shards_[i]->cancel(lease_id)) {
      charge_rpc(shard_addrs_[i], 24, 8);
      lookup_metrics().cancellations.add(1);
      lookup_metrics().services.sub(1.0);
      refresh_balance_gauges();
      fire(Transition::kMatchToNoMatch, *item);
      return util::Status::ok();
    }
  }
  auto ev = lease_to_event_.find(lease_id);
  if (ev == lease_to_event_.end()) {
    return {util::ErrorCode::kNotFound, "unknown or expired lease"};
  }
  charge_rpc(address_, 24, 8);
  lookup_metrics().cancellations.add(1);
  return cancel_notify(ev->second);
}

void RegistryFederation::shards_for_template(
    const ServiceTemplate& tmpl, std::vector<std::uint32_t>& out) const {
  out.clear();
  if (tmpl.id) {
    out.push_back(ring_.shard_for(*tmpl.id));
    return;
  }
  if (!tmpl.types.empty()) {
    // A match must implement every template type, so any single type's
    // shard subset bounds the fan-out; take the most selective one.
    std::vector<std::uint32_t> best;
    for (const auto& type : tmpl.types) {
      std::vector<std::uint32_t> with_type;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i]->has_type(type)) {
          with_type.push_back(static_cast<std::uint32_t>(i));
        }
      }
      if (best.empty() || with_type.size() < best.size()) {
        best = std::move(with_type);
        if (best.empty()) break;  // some type matches nowhere: empty result
      }
    }
    out = std::move(best);
    return;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out.push_back(static_cast<std::uint32_t>(i));
  }
}

std::vector<ServiceItem> RegistryFederation::lookup(
    const ServiceTemplate& tmpl, std::size_t max_matches) const {
  lookup_metrics().lookups.add(1);
  std::vector<std::uint32_t> targets;
  shards_for_template(tmpl, targets);
  std::vector<ServiceItem> out;
  for (const std::uint32_t t : targets) {
    // Each consulted shard is one fanned-out request — scoping the shard
    // subset is exactly what the type index buys at federation scale.
    charge_rpc(shard_addrs_[t], tmpl.attributes.wire_bytes() + 48, 0);
    shards_[t]->lookup_into(tmpl, out);
  }
  // Deterministic order (storage maps iterate in hash order, and shard fan
  // order must not show): order by name before truncating so lookup_one
  // always returns the same provider. partial_sort keeps truncated lookups
  // (the common lookup_one case over a large type bucket) at O(n).
  const auto by_name = [](const ServiceItem& a, const ServiceItem& b) {
    const auto an = a.attributes.get_string(attr::kName);
    const auto bn = b.attributes.get_string(attr::kName);
    return an != bn ? an < bn : a.id < b.id;
  };
  if (out.size() > max_matches) {
    std::partial_sort(out.begin(),
                      out.begin() + static_cast<std::ptrdiff_t>(max_matches),
                      out.end(), by_name);
    out.resize(max_matches);
  } else {
    std::sort(out.begin(), out.end(), by_name);
  }
  for (const auto& item : out) {
    charge_rpc(shard_addrs_[ring_.shard_for(item.id)], 0, item.wire_bytes());
  }
  return out;
}

util::Result<ServiceItem> RegistryFederation::lookup_one(
    const ServiceTemplate& tmpl) const {
  auto matches = lookup(tmpl, 1);
  if (matches.empty()) {
    return util::Status{util::ErrorCode::kNotFound,
                        "no service matches template"};
  }
  return matches.front();
}

util::Status RegistryFederation::modify_attributes(ServiceId service_id,
                                                   Entry new_attributes) {
  const std::uint32_t home = ring_.shard_for(service_id);
  charge_rpc(shard_addrs_[home], new_attributes.wire_bytes() + 16, 8);
  auto item = shards_[home]->modify_attributes(service_id,
                                               std::move(new_attributes));
  if (!item) {
    return {util::ErrorCode::kNotFound, "service not registered"};
  }
  fire(Transition::kMatchToMatch, *item);
  return util::Status::ok();
}

EventRegistration RegistryFederation::notify(ServiceTemplate tmpl,
                                             TransitionMask mask,
                                             EventListener listener,
                                             util::SimDuration lease_duration) {
  EventRegistration out;
  out.id = util::new_uuid();
  out.lease = Lease{util::new_uuid(), scheduler_.now() + lease_duration,
                    lease_duration, kEventLeaseShard};
  charge_rpc(address_, tmpl.attributes.wire_bytes() + 64, 48);
  event_regs_.emplace(
      out.id, EventReg{std::move(tmpl), mask, std::move(listener), out.lease});
  lease_to_event_.emplace(out.lease.id, out.id);
  event_expiry_.arm(out.lease.expiration, out.lease.id);
  return out;
}

util::Status RegistryFederation::cancel_notify(
    const util::Uuid& registration_id) {
  auto it = event_regs_.find(registration_id);
  if (it == event_regs_.end()) {
    return {util::ErrorCode::kNotFound, "unknown event registration"};
  }
  lease_to_event_.erase(it->second.lease.id);
  event_regs_.erase(it);
  return util::Status::ok();
}

std::vector<std::size_t> RegistryFederation::shard_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& shard : shards_) sizes.push_back(shard->size());
  return sizes;
}

void RegistryFederation::migrate_to_ring_homes() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto moved = shards_[i]->extract_if_not([this, i](const ServiceId& id) {
      return ring_.shard_for(id) == static_cast<std::uint32_t>(i);
    });
    for (auto& reg : moved) {
      const std::uint32_t home = ring_.shard_for(reg.item.id);
      reg.lease.shard = home;
      shards_[home]->adopt(std::move(reg));
    }
  }
}

void RegistryFederation::add_shard() {
  const auto idx = static_cast<std::uint32_t>(shards_.size());
  shards_.push_back(std::make_unique<LusShard>(idx));
  shard_addrs_.push_back(util::new_uuid());
  ring_.add_shard(idx);
  migrate_to_ring_homes();
  lookup_metrics().shards.set(static_cast<double>(shard_count()));
  refresh_balance_gauges();
}

void RegistryFederation::remove_shard() {
  if (shards_.size() <= 1) return;
  const auto idx = static_cast<std::uint32_t>(shards_.size() - 1);
  ring_.remove_shard(idx);
  // With the shard off the ring its keep-predicate is never true, so the
  // migration drains it completely into the surviving shards.
  migrate_to_ring_homes();
  shard_gauge(idx).set(0.0);
  shards_.pop_back();
  shard_addrs_.pop_back();
  lookup_metrics().shards.set(static_cast<double>(shard_count()));
  refresh_balance_gauges();
}

std::size_t RegistryFederation::service_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

bool RegistryFederation::contains(ServiceId id) const {
  return shards_[ring_.shard_for(id)]->contains(id);
}

std::vector<ServiceItem> RegistryFederation::all_services() const {
  return lookup(ServiceTemplate{});
}

std::uint64_t RegistryFederation::expired_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->expired();
  return total;
}

std::uint64_t RegistryFederation::lookup_count() const {
  return lookup_metrics().lookups.value();
}

void RegistryFederation::sweep_expired() {
  const util::SimTime now = scheduler_.now();

  // Expired event registrations are dropped (leases, again) — e.g. the
  // historian-push subscription of a crashed ESP stops receiving events.
  event_expiry_.drain(
      now,
      [this](const util::Uuid& lease_id) -> util::SimTime {
        auto it = lease_to_event_.find(lease_id);
        if (it == lease_to_event_.end()) return kLeaseGone;
        return event_regs_.at(it->second).lease.expiration;
      },
      [this](const util::Uuid& lease_id) {
        const util::Uuid reg_id = lease_to_event_.at(lease_id);
        lease_to_event_.erase(lease_id);
        event_regs_.erase(reg_id);
        ++expired_events_;
        lookup_metrics().expirations.add(1);
      });

  std::vector<ServiceItem> disposed;
  for (const auto& shard : shards_) shard->sweep(now, disposed);
  if (!disposed.empty()) {
    lookup_metrics().expirations.add(disposed.size());
    lookup_metrics().services.sub(static_cast<double>(disposed.size()));
    refresh_balance_gauges();
  }
  for (const auto& item : disposed) {
    SENSORCER_LOG_DEBUG("lus", "%s: lease expired for %s", name_.c_str(),
                        item.attributes.get_string(attr::kName, "?").c_str());
    fire(Transition::kMatchToNoMatch, item);
  }
}

void RegistryFederation::fire(Transition transition, const ServiceItem& item) {
  // Snapshot: listeners may add/cancel registrations from the callback.
  std::vector<std::pair<util::Uuid, ServiceEvent>> to_deliver;
  for (auto& [reg_id, reg] : event_regs_) {
    if ((reg.mask & static_cast<unsigned>(transition)) == 0) continue;
    if (!reg.tmpl.matches(item)) continue;
    ServiceEvent ev;
    ev.registration_id = reg_id;
    ev.sequence = reg.next_sequence++;
    ev.transition = transition;
    ev.item = item;
    ev.timestamp = scheduler_.now();
    to_deliver.emplace_back(reg_id, std::move(ev));
  }
  for (auto& [reg_id, ev] : to_deliver) {
    auto it = event_regs_.find(reg_id);
    if (it == event_regs_.end()) continue;
    charge_rpc(address_, 0, 96);  // event delivery counts as outbound traffic
    lookup_metrics().events.add(1);
    it->second.listener(ev);
  }
}

}  // namespace sensorcer::registry
