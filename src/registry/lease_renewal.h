#pragma once
// Lease Renewal Manager — the client-side half of Jini leasing (and one of
// the infrastructure services visible in the paper's Fig 2).
//
// Providers hand their leases to this manager; it renews them ahead of
// expiry for as long as the provider is alive. Stopping renewal (service
// death) lets the lease lapse, and the LUS disposes the registration — the
// self-healing behaviour of §IV.B.

#include <memory>
#include <unordered_map>

#include "registry/lookup.h"
#include "util/scheduler.h"

namespace sensorcer::registry {

class LeaseRenewalManager {
 public:
  explicit LeaseRenewalManager(util::Scheduler& scheduler)
      : scheduler_(scheduler) {}

  ~LeaseRenewalManager();

  LeaseRenewalManager(const LeaseRenewalManager&) = delete;
  LeaseRenewalManager& operator=(const LeaseRenewalManager&) = delete;

  /// Keep `lease` (granted by `lus`) alive by renewing for `duration` every
  /// time half of the remaining lifetime has elapsed.
  void manage(const Lease& lease, std::weak_ptr<LookupService> lus,
              util::SimDuration duration);

  /// Stop renewing (the lease will expire naturally).
  void release(const util::Uuid& lease_id);

  /// Stop renewing and cancel at the LUS immediately (clean shutdown).
  void cancel(const util::Uuid& lease_id);

  [[nodiscard]] std::size_t managed_count() const { return managed_.size(); }

  /// Renewals that failed because the LUS was gone or refused.
  [[nodiscard]] std::uint64_t failed_renewals() const { return failures_; }

 private:
  struct Managed {
    std::weak_ptr<LookupService> lus;
    util::SimDuration duration;
    util::TimerId timer;
  };

  void arm(const util::Uuid& lease_id);

  util::Scheduler& scheduler_;
  std::unordered_map<util::Uuid, Managed> managed_;
  std::uint64_t failures_ = 0;
};

}  // namespace sensorcer::registry
