#pragma once
// Lease Renewal Manager — the client-side half of Jini leasing (and one of
// the infrastructure services visible in the paper's Fig 2).
//
// Providers hand their leases to this manager; it renews them ahead of
// expiry for as long as the provider is alive. Stopping renewal (service
// death) lets the lease lapse, and the LUS disposes the registration — the
// self-healing behaviour of §IV.B.
//
// PR 8 replaces the per-lease renewal timers with per-(LUS, shard,
// due-window) batching: leases whose half-life renewal falls in the same
// window ride one renewAll wire message to their shard (EMMA's
// aggregate-per-neighbor lesson), so renewal traffic scales with
// shards x windows instead of with the lease population. Denied leases
// lapse individually; the rest of the batch survives.

#include <memory>
#include <unordered_map>
#include <vector>

#include "registry/lookup.h"
#include "util/scheduler.h"

namespace sensorcer::registry {

/// Renewal batching knobs. `window` is the due-bucket width: wider windows
/// pack more leases per message but renew slightly earlier on average
/// (a lease is renewed at most one window before its half-life).
struct LeaseBatchConfig {
  bool enabled = true;
  util::SimDuration window = 100 * util::kMillisecond;
};

class LeaseRenewalManager {
 public:
  explicit LeaseRenewalManager(util::Scheduler& scheduler,
                               LeaseBatchConfig batch = {})
      : scheduler_(scheduler), batch_(batch) {}

  ~LeaseRenewalManager();

  LeaseRenewalManager(const LeaseRenewalManager&) = delete;
  LeaseRenewalManager& operator=(const LeaseRenewalManager&) = delete;

  /// Keep `lease` (granted by `lus`) alive by renewing for `duration` every
  /// time half of the remaining lifetime has elapsed.
  void manage(const Lease& lease, std::weak_ptr<LookupService> lus,
              util::SimDuration duration);

  /// Stop renewing (the lease will expire naturally).
  void release(const util::Uuid& lease_id);

  /// Stop renewing and cancel at the LUS immediately (clean shutdown).
  void cancel(const util::Uuid& lease_id);

  [[nodiscard]] std::size_t managed_count() const { return managed_.size(); }

  /// Renewals that failed because the LUS was gone or refused.
  [[nodiscard]] std::uint64_t failed_renewals() const { return failures_; }

  /// renewAll wire messages sent (batched mode only).
  [[nodiscard]] std::uint64_t batches_sent() const { return batches_sent_; }

 private:
  struct Managed {
    std::weak_ptr<LookupService> lus;
    util::SimDuration duration;
    std::uint32_t shard = 0;
    util::TimerId timer = 0;          // individual mode
    util::SimTime batch_fire = -1;    // batched mode: pending window start
  };

  struct BatchKey {
    const LookupService* lus = nullptr;  // identity only; access via weak_ptr
    std::uint32_t shard = 0;
    util::SimTime fire_at = 0;
    bool operator==(const BatchKey&) const = default;
  };
  struct BatchKeyHash {
    std::size_t operator()(const BatchKey& k) const {
      const auto h = reinterpret_cast<std::uintptr_t>(k.lus);
      return static_cast<std::size_t>(
          (h * 0x9e3779b97f4a7c15ull) ^
          (static_cast<std::uint64_t>(k.fire_at) * 0xff51afd7ed558ccdull) ^
          k.shard);
    }
  };
  struct Batch {
    std::weak_ptr<LookupService> lus;
    util::TimerId timer = 0;
    std::vector<util::Uuid> leases;
  };

  void arm(const util::Uuid& lease_id);
  void enqueue(const util::Uuid& lease_id);
  void fire_batch(const BatchKey& key);

  util::Scheduler& scheduler_;
  LeaseBatchConfig batch_;
  std::unordered_map<util::Uuid, Managed> managed_;
  std::unordered_map<BatchKey, Batch, BatchKeyHash> batches_;
  std::uint64_t failures_ = 0;
  std::uint64_t batches_sent_ = 0;
};

}  // namespace sensorcer::registry
