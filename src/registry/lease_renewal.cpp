#include "registry/lease_renewal.h"

#include "obs/metrics.h"

namespace sensorcer::registry {

namespace {

struct LeaseMetrics {
  obs::Counter& renewals;
  obs::Counter& failures;
};

LeaseMetrics& lease_metrics() {
  static LeaseMetrics m{obs::metrics().counter("lease.renewals"),
                        obs::metrics().counter("lease.renewal_failures")};
  return m;
}

}  // namespace

LeaseRenewalManager::~LeaseRenewalManager() {
  for (auto& [id, m] : managed_) scheduler_.cancel(m.timer);
}

void LeaseRenewalManager::manage(const Lease& lease,
                                 std::weak_ptr<LookupService> lus,
                                 util::SimDuration duration) {
  release(lease.id);  // replace any previous management of this lease
  managed_[lease.id] = Managed{std::move(lus), duration, 0};
  arm(lease.id);
}

void LeaseRenewalManager::arm(const util::Uuid& lease_id) {
  auto it = managed_.find(lease_id);
  if (it == managed_.end()) return;
  // Renew at half-life: late enough to be cheap, early enough to survive a
  // missed sweep.
  const util::SimDuration delay = std::max<util::SimDuration>(
      it->second.duration / 2, util::kMillisecond);
  it->second.timer = scheduler_.schedule_after(delay, [this, lease_id] {
    auto mit = managed_.find(lease_id);
    if (mit == managed_.end()) return;
    auto lus = mit->second.lus.lock();
    if (!lus || !lus->renew_lease(lease_id, mit->second.duration).is_ok()) {
      ++failures_;
      lease_metrics().failures.add(1);
      managed_.erase(mit);
      return;
    }
    lease_metrics().renewals.add(1);
    arm(lease_id);
  });
}

void LeaseRenewalManager::release(const util::Uuid& lease_id) {
  auto it = managed_.find(lease_id);
  if (it == managed_.end()) return;
  scheduler_.cancel(it->second.timer);
  managed_.erase(it);
}

void LeaseRenewalManager::cancel(const util::Uuid& lease_id) {
  auto it = managed_.find(lease_id);
  if (it == managed_.end()) return;
  scheduler_.cancel(it->second.timer);
  if (auto lus = it->second.lus.lock()) (void)lus->cancel_lease(lease_id);
  managed_.erase(it);
}

}  // namespace sensorcer::registry
