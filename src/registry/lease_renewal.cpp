#include "registry/lease_renewal.h"

#include <algorithm>

#include "obs/metrics.h"

namespace sensorcer::registry {

namespace {

struct LeaseMetrics {
  obs::Counter& renewals;
  obs::Counter& failures;
  obs::Counter& batches;
};

LeaseMetrics& lease_metrics() {
  static LeaseMetrics m{obs::metrics().counter("lease.renewals"),
                        obs::metrics().counter("lease.renewal_failures"),
                        obs::metrics().counter("lease.renewal_batches")};
  return m;
}

}  // namespace

LeaseRenewalManager::~LeaseRenewalManager() {
  for (auto& [id, m] : managed_) {
    if (m.timer != 0) scheduler_.cancel(m.timer);
  }
  for (auto& [key, batch] : batches_) scheduler_.cancel(batch.timer);
}

void LeaseRenewalManager::manage(const Lease& lease,
                                 std::weak_ptr<LookupService> lus,
                                 util::SimDuration duration) {
  release(lease.id);  // replace any previous management of this lease
  managed_[lease.id] = Managed{std::move(lus), duration, lease.shard, 0, -1};
  if (batch_.enabled) {
    enqueue(lease.id);
  } else {
    arm(lease.id);
  }
}

void LeaseRenewalManager::arm(const util::Uuid& lease_id) {
  auto it = managed_.find(lease_id);
  if (it == managed_.end()) return;
  // Renew at half-life: late enough to be cheap, early enough to survive a
  // missed sweep.
  const util::SimDuration delay = std::max<util::SimDuration>(
      it->second.duration / 2, util::kMillisecond);
  it->second.timer = scheduler_.schedule_after(delay, [this, lease_id] {
    auto mit = managed_.find(lease_id);
    if (mit == managed_.end()) return;
    auto lus = mit->second.lus.lock();
    if (!lus || !lus->renew_lease(lease_id, mit->second.duration).is_ok()) {
      ++failures_;
      lease_metrics().failures.add(1);
      managed_.erase(mit);
      return;
    }
    lease_metrics().renewals.add(1);
    arm(lease_id);
  });
}

void LeaseRenewalManager::enqueue(const util::Uuid& lease_id) {
  auto it = managed_.find(lease_id);
  if (it == managed_.end()) return;
  Managed& m = it->second;
  const util::SimTime now = scheduler_.now();
  const util::SimDuration half =
      std::max<util::SimDuration>(m.duration / 2, util::kMillisecond);
  const util::SimTime due = now + half;
  // Snap the renewal to the start of its due window: every member of the
  // window is renewed at or before its own half-life, so batching never
  // costs a lease its safety margin.
  util::SimTime fire_at = (due / batch_.window) * batch_.window;
  if (fire_at <= now) fire_at = due;  // lease shorter than ~2 windows
  m.batch_fire = fire_at;

  const BatchKey key{m.lus.lock().get(), m.shard, fire_at};
  auto [bit, fresh] = batches_.try_emplace(key);
  if (fresh) {
    bit->second.lus = m.lus;
    bit->second.timer =
        scheduler_.schedule_at(fire_at, [this, key] { fire_batch(key); });
  }
  bit->second.leases.push_back(lease_id);
}

void LeaseRenewalManager::fire_batch(const BatchKey& key) {
  auto bit = batches_.find(key);
  if (bit == batches_.end()) return;
  Batch batch = std::move(bit->second);
  batches_.erase(bit);

  // Filter to leases still managed and still assigned to this window
  // (release/cancel/re-manage leave stale ids behind in the batch vector).
  std::vector<RenewItem> items;
  std::vector<util::Uuid> ids;
  items.reserve(batch.leases.size());
  for (const util::Uuid& id : batch.leases) {
    auto mit = managed_.find(id);
    if (mit == managed_.end() || mit->second.batch_fire != key.fire_at ||
        mit->second.shard != key.shard) {
      continue;
    }
    items.push_back({id, mit->second.duration});
    ids.push_back(id);
    // Mark in-flight so a duplicate vector entry (re-manage into the same
    // window) cannot renew the lease twice.
    mit->second.batch_fire = -2;
  }
  if (items.empty()) return;

  auto lus = batch.lus.lock();
  if (!lus) {
    for (const util::Uuid& id : ids) managed_.erase(id);
    failures_ += ids.size();
    lease_metrics().failures.add(ids.size());
    return;
  }

  const RenewOutcome outcome = lus->renew_batch(key.shard, items);
  ++batches_sent_;
  lease_metrics().batches.add(1);
  lease_metrics().renewals.add(outcome.renewed);
  // Partial failure: only the denied leases lapse; the batch survives.
  for (const util::Uuid& denied : outcome.denied) {
    managed_.erase(denied);
    ++failures_;
    lease_metrics().failures.add(1);
  }
  for (const util::Uuid& id : ids) {
    if (managed_.contains(id)) enqueue(id);
  }
}

void LeaseRenewalManager::release(const util::Uuid& lease_id) {
  auto it = managed_.find(lease_id);
  if (it == managed_.end()) return;
  if (it->second.timer != 0) scheduler_.cancel(it->second.timer);
  // Batched leases need no timer bookkeeping: the window fires regardless
  // and skips ids that are no longer managed.
  managed_.erase(it);
}

void LeaseRenewalManager::cancel(const util::Uuid& lease_id) {
  auto it = managed_.find(lease_id);
  if (it == managed_.end()) return;
  if (it->second.timer != 0) scheduler_.cancel(it->second.timer);
  if (auto lus = it->second.lus.lock()) (void)lus->cancel_lease(lease_id);
  managed_.erase(it);
}

}  // namespace sensorcer::registry
