#pragma once
// The Jini Lookup Service (LUS) — compatibility spelling.
//
// PR 8 federated the registry: the monolithic LookupService became
// RegistryFederation (federation.h) over per-shard storage (shard.h). Every
// layer that held a LookupService keeps compiling through this alias; the
// protocol types (Lease, ServiceRegistration, transitions, events) now live
// in shard.h and are re-exported via the federation header.

#include "registry/federation.h"

namespace sensorcer::registry {

using LookupService = RegistryFederation;

}  // namespace sensorcer::registry
