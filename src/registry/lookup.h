#pragma once
// The Jini Lookup Service (LUS).
//
// Service providers register with a lease; requestors locate services by
// template; listeners receive remote events on registry transitions. Leases
// not renewed in time expire, and the service is disposed from the network —
// this is the health mechanism of §IV.B that the lease-churn experiment
// measures.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "registry/service_item.h"
#include "simnet/network.h"
#include "util/scheduler.h"
#include "util/status.h"

namespace sensorcer::registry {

/// A granted lease.
struct Lease {
  util::Uuid id;
  util::SimTime expiration = 0;
  util::SimDuration duration = 0;
};

/// Result of registering a service.
struct ServiceRegistration {
  ServiceId service_id;
  Lease lease;
};

/// Registry transition kinds, mirroring Jini's TRANSITION_* masks.
enum class Transition : unsigned {
  kNoMatchToMatch = 1u << 0,  // service joined (or started matching)
  kMatchToNoMatch = 1u << 1,  // service left / lease expired
  kMatchToMatch = 1u << 2,    // attributes of a matching service changed
};

/// Bitwise-or of Transition values.
using TransitionMask = unsigned;

inline constexpr TransitionMask kAllTransitions =
    static_cast<unsigned>(Transition::kNoMatchToMatch) |
    static_cast<unsigned>(Transition::kMatchToNoMatch) |
    static_cast<unsigned>(Transition::kMatchToMatch);

/// Event pushed to registered listeners.
struct ServiceEvent {
  util::Uuid registration_id;   // the event registration this belongs to
  std::uint64_t sequence = 0;   // per-registration monotonic number
  Transition transition = Transition::kNoMatchToMatch;
  ServiceItem item;             // post-transition state of the service
  util::SimTime timestamp = 0;
};

using EventListener = std::function<void(const ServiceEvent&)>;

/// Handle for an event registration (leased, like everything in Jini).
struct EventRegistration {
  util::Uuid id;
  Lease lease;
};

class LookupService : public ServiceProxy {
 public:
  /// `network` may be null for standalone/unit-test use; when present,
  /// every registry RPC is charged to it for traffic accounting.
  /// `sweep_period` controls how often expired leases are collected — the
  /// upper bound it adds to disposal latency is an ablation knob.
  LookupService(std::string name, util::Scheduler& scheduler,
                simnet::Network* network = nullptr,
                util::SimDuration sweep_period = 100 * util::kMillisecond);

  ~LookupService() override;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] simnet::Address address() const { return address_; }

  // --- registration -------------------------------------------------------

  /// Register (or re-register, keyed by item.id) a service for
  /// `lease_duration` of virtual time. A nil item id is assigned one.
  ServiceRegistration register_service(ServiceItem item,
                                       util::SimDuration lease_duration);

  /// Extend a lease by `extension` from now. kNotFound for unknown/expired.
  /// Covers both service leases and event-registration leases, so a
  /// LeaseRenewalManager can keep notify() subscriptions alive too.
  util::Status renew_lease(const util::Uuid& lease_id,
                           util::SimDuration extension);

  /// Cancel a lease, immediately disposing the service registration or
  /// event registration it guards.
  util::Status cancel_lease(const util::Uuid& lease_id);

  // --- lookup -------------------------------------------------------------

  /// All matching items, up to `max_matches`.
  [[nodiscard]] std::vector<ServiceItem> lookup(
      const ServiceTemplate& tmpl, std::size_t max_matches = SIZE_MAX) const;

  /// First match or kNotFound.
  [[nodiscard]] util::Result<ServiceItem> lookup_one(
      const ServiceTemplate& tmpl) const;

  /// Update the attributes of a registered service (fires kMatchToMatch).
  util::Status modify_attributes(ServiceId service_id, Entry new_attributes);

  // --- events -------------------------------------------------------------

  /// Register interest in transitions of services matching `tmpl`.
  EventRegistration notify(ServiceTemplate tmpl, TransitionMask mask,
                           EventListener listener,
                           util::SimDuration lease_duration);

  /// Drop an event registration.
  util::Status cancel_notify(const util::Uuid& registration_id);

  // --- introspection ------------------------------------------------------

  [[nodiscard]] std::size_t service_count() const { return services_.size(); }
  [[nodiscard]] bool contains(ServiceId id) const {
    return services_.contains(id);
  }
  [[nodiscard]] std::vector<ServiceItem> all_services() const;

  /// Registrations disposed because their lease ran out (not cancelled).
  [[nodiscard]] std::uint64_t expired_count() const { return expired_; }

  /// Event registrations dropped because their lease ran out.
  [[nodiscard]] std::uint64_t expired_event_count() const {
    return expired_events_;
  }

  /// Live event registrations.
  [[nodiscard]] std::size_t event_registration_count() const {
    return event_regs_.size();
  }

  /// Total lookup() calls served (cache-ablation metric).
  [[nodiscard]] std::uint64_t lookup_count() const {
    return lookup_calls_.load(std::memory_order_relaxed);
  }

 private:
  struct Registration {
    ServiceItem item;
    Lease lease;
  };
  struct EventReg {
    ServiceTemplate tmpl;
    TransitionMask mask;
    EventListener listener;
    Lease lease;
    std::uint64_t next_sequence = 1;
  };

  void sweep_expired();
  void fire(Transition transition, const ServiceItem& item);
  void charge_rpc(std::size_t request_bytes, std::size_t response_bytes) const;

  // Secondary indexes: interface name → ids, `name` attribute → ids. They
  // keep the common lookups (by type, by type+name) off the full scan so
  // resolution cost does not grow with the registry population (§VII).
  void index_add(const ServiceItem& item);
  void index_remove(const ServiceItem& item);
  /// Candidate ids for a template, from the most selective index available;
  /// nullptr means "no index applies, scan everything".
  const std::unordered_set<ServiceId>* candidates(
      const ServiceTemplate& tmpl) const;

  std::string name_;
  util::Scheduler& scheduler_;
  simnet::Network* network_;
  simnet::Address address_;
  util::TimerId sweep_timer_ = 0;

  std::unordered_map<ServiceId, Registration> services_;
  std::unordered_map<util::Uuid, ServiceId> lease_to_service_;
  std::unordered_map<std::string, std::unordered_set<ServiceId>> type_index_;
  std::unordered_map<std::string, std::unordered_set<ServiceId>> name_index_;
  std::unordered_map<util::Uuid, EventReg> event_regs_;
  std::unordered_map<util::Uuid, util::Uuid> lease_to_event_;  // lease → reg id
  std::uint64_t expired_ = 0;
  std::uint64_t expired_events_ = 0;
  // lookup() is served concurrently from exertion pool workers.
  mutable std::atomic<std::uint64_t> lookup_calls_{0};
};

}  // namespace sensorcer::registry
