#pragma once
// Jini-style Entry attributes.
//
// Services register with complementary attributes (name, location, comment,
// UI descriptors — see the left pane of the paper's Fig 2) and requestors
// match on attribute templates: a template matches an item when every
// template attribute is present on the item with an equal value.

#include <cstdint>
#include <map>
#include <string>
#include <variant>

namespace sensorcer::registry {

using EntryValue = std::variant<std::string, double, std::int64_t, bool>;

/// Render a value for browser/debug output.
std::string entry_value_to_string(const EntryValue& value);

/// A bag of named attributes.
class Entry {
 public:
  Entry() = default;
  Entry(std::initializer_list<std::pair<const std::string, EntryValue>> init)
      : attrs_(init) {}

  void set(const std::string& key, EntryValue value) {
    attrs_[key] = std::move(value);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return attrs_.contains(key);
  }

  /// Value for `key`, or nullptr.
  [[nodiscard]] const EntryValue* find(const std::string& key) const {
    auto it = attrs_.find(key);
    return it == attrs_.end() ? nullptr : &it->second;
  }

  /// String value for `key`, or `fallback` if absent or non-string.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const;

  /// Template match: every attribute of `this` must be present and equal
  /// on `item`. An empty template matches everything.
  [[nodiscard]] bool matches(const Entry& item) const;

  [[nodiscard]] std::size_t size() const { return attrs_.size(); }
  [[nodiscard]] auto begin() const { return attrs_.begin(); }
  [[nodiscard]] auto end() const { return attrs_.end(); }

  friend bool operator==(const Entry&, const Entry&) = default;

  /// Modeled serialized size in bytes (for traffic accounting).
  [[nodiscard]] std::size_t wire_bytes() const;

 private:
  std::map<std::string, EntryValue> attrs_;
};

/// Well-known attribute keys used throughout SenSORCER.
namespace attr {
inline constexpr const char* kName = "name";               // provider name
inline constexpr const char* kServiceType = "serviceType"; // ELEMENTARY/...
inline constexpr const char* kSensorKind = "sensorKind";   // temperature/...
inline constexpr const char* kUnit = "unit";
inline constexpr const char* kLocation = "location";       // "CP TTU/310"
inline constexpr const char* kComment = "comment";
inline constexpr const char* kOwner = "owner";             // hosting cybernode
}  // namespace attr

}  // namespace sensorcer::registry
