#pragma once
// Service items and lookup templates — the units the lookup service stores
// and matches.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "registry/entry.h"
#include "util/ids.h"

namespace sensorcer::registry {

using ServiceId = util::Uuid;

/// Marker base for service proxies. In Jini a proxy is a downloaded object
/// implementing the service's remote interfaces; here it is a shared_ptr to
/// an in-process object. Requestors recover concrete interfaces with
/// proxy_cast<T>.
class ServiceProxy {
 public:
  virtual ~ServiceProxy() = default;
};

using ProxyPtr = std::shared_ptr<ServiceProxy>;

/// Typed downcast of a looked-up proxy; nullptr when the proxy does not
/// implement `T`.
template <typename T>
std::shared_ptr<T> proxy_cast(const ProxyPtr& proxy) {
  return std::dynamic_pointer_cast<T>(proxy);
}

/// A registered service: identity, proxy, the interface names it exports,
/// and its complementary attributes.
struct ServiceItem {
  ServiceId id;
  ProxyPtr proxy;
  std::vector<std::string> types;  // exported interface names
  Entry attributes;

  [[nodiscard]] bool implements(const std::string& type) const {
    for (const auto& t : types) {
      if (t == type) return true;
    }
    return false;
  }

  /// Modeled serialized size (id + types + attributes + proxy stub).
  [[nodiscard]] std::size_t wire_bytes() const;
};

/// Match criteria: optional exact id, required interface names (all must be
/// implemented), and an attribute template.
struct ServiceTemplate {
  std::optional<ServiceId> id;
  std::vector<std::string> types;
  Entry attributes;

  [[nodiscard]] bool matches(const ServiceItem& item) const;

  /// Template that matches exactly one service id.
  static ServiceTemplate by_id(ServiceId sid) {
    ServiceTemplate t;
    t.id = sid;
    return t;
  }

  /// Template that matches all implementors of `type`.
  static ServiceTemplate by_type(std::string type) {
    ServiceTemplate t;
    t.types.push_back(std::move(type));
    return t;
  }

  /// Template that matches implementors of `type` with attribute name==`name`.
  static ServiceTemplate by_name(std::string type, const std::string& name) {
    ServiceTemplate t = by_type(std::move(type));
    t.attributes.set(attr::kName, name);
    return t;
  }
};

}  // namespace sensorcer::registry
