#pragma once
// The federated Jini Lookup Service (LUS).
//
// Service providers register with a lease; requestors locate services by
// template; listeners receive remote events on registry transitions. Leases
// not renewed in time expire, and the service is disposed from the network —
// the health mechanism of §IV.B that the lease-churn experiment measures.
//
// PR 8 federates the registry: RegistryFederation consistent-hashes service
// ids across N LusShard partitions (shard.h) so registration, renewal and
// by-id lookup cost stay flat as the population grows toward the ROADMAP's
// 10^6-sensor target. Template lookups fan out only to the shards whose type
// index can match, renewals arrive in per-shard renewAll batches (a flat
// binary wire codec below models their real byte cost), and lease expiry is
// driven by per-shard min-heaps instead of full-map scans. Event
// registrations stay at the federation front: transitions are global, so
// sharding them would turn every registration into an all-shard broadcast.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "registry/shard.h"
#include "simnet/network.h"
#include "util/scheduler.h"
#include "util/status.h"

namespace sensorcer::registry {

/// Consistent-hash ring mapping service ids to shard indexes through virtual
/// nodes, so adding or removing a shard re-homes only ~1/N of the population
/// (Wiselib's partitioned-coordination argument, PAPERS.md).
class ConsistentRing {
 public:
  static constexpr std::size_t kVirtualNodes = 64;

  explicit ConsistentRing(std::uint32_t shards = 0);

  void add_shard(std::uint32_t shard);
  void remove_shard(std::uint32_t shard);

  /// Owning shard for `id`; the ring must be non-empty.
  [[nodiscard]] std::uint32_t shard_for(const util::Uuid& id) const;

  [[nodiscard]] std::size_t shard_count() const { return shards_; }

 private:
  std::size_t shards_ = 0;
  // (ring point, shard), sorted by point.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

/// One lease in a renewAll batch.
struct RenewItem {
  util::Uuid lease_id;
  util::SimDuration extension = 0;
};

/// Outcome of a renewAll batch: leases the shard refused (unknown/expired)
/// lapse individually; the rest were extended.
struct RenewOutcome {
  std::size_t renewed = 0;
  std::vector<util::Uuid> denied;
};

/// Flat binary wire format for the batched lease protocol, columnar in the
/// style of the sorcer flat exertion codec (varint/zigzag columns; the
/// registry cannot link sorcer, so the technique is shared rather than the
/// code). A renewAll request is `varint count · count raw 16-byte lease ids ·
/// count delta-zigzag-varint extensions` — a same-duration batch (the common
/// case) costs ~17 bytes per lease after the first.
namespace wirefmt {

void encode_renew_request(const std::vector<RenewItem>& items,
                          std::vector<std::uint8_t>& out);
util::Status decode_renew_request(const std::uint8_t* data, std::size_t size,
                                  std::vector<RenewItem>& into);
void encode_renew_response(const std::vector<util::Uuid>& denied,
                           std::vector<std::uint8_t>& out);
util::Status decode_renew_response(const std::uint8_t* data, std::size_t size,
                                   std::vector<util::Uuid>& into);

}  // namespace wirefmt

class RegistryFederation : public ServiceProxy {
 public:
  static constexpr std::size_t kDefaultShards = 4;

  /// `network` may be null for standalone/unit-test use; when present,
  /// every registry RPC is charged to it for traffic accounting.
  /// `sweep_period` controls how often expired leases are collected — the
  /// upper bound it adds to disposal latency is an ablation knob.
  /// `shards` is the initial partition count (>= 1).
  RegistryFederation(std::string name, util::Scheduler& scheduler,
                     simnet::Network* network = nullptr,
                     util::SimDuration sweep_period = 100 * util::kMillisecond,
                     std::size_t shards = kDefaultShards);

  ~RegistryFederation() override;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] simnet::Address address() const { return address_; }

  // --- registration -------------------------------------------------------

  /// Register (or re-register, keyed by item.id) a service for
  /// `lease_duration` of virtual time. A nil item id is assigned one. The
  /// granted lease carries its owning shard for batched renewal routing.
  ServiceRegistration register_service(ServiceItem item,
                                       util::SimDuration lease_duration);

  /// Extend a lease by `extension` from now. kNotFound for unknown/expired.
  /// Covers both service leases and event-registration leases, so a
  /// LeaseRenewalManager can keep notify() subscriptions alive too.
  util::Status renew_lease(const util::Uuid& lease_id,
                           util::SimDuration extension);

  /// Batched renewAll: extend every lease in `items` on `shard` (or the
  /// federation front's event leases for kEventLeaseShard) in one wire
  /// message. Denied leases lapse individually; the batch survives.
  RenewOutcome renew_batch(std::uint32_t shard,
                           const std::vector<RenewItem>& items);

  /// Cancel a lease, immediately disposing the service registration or
  /// event registration it guards.
  util::Status cancel_lease(const util::Uuid& lease_id);

  // --- lookup -------------------------------------------------------------

  /// All matching items, up to `max_matches`. Fans out to the shard subset
  /// whose type index can match (one shard for by-id templates).
  [[nodiscard]] std::vector<ServiceItem> lookup(
      const ServiceTemplate& tmpl, std::size_t max_matches = SIZE_MAX) const;

  /// First match or kNotFound.
  [[nodiscard]] util::Result<ServiceItem> lookup_one(
      const ServiceTemplate& tmpl) const;

  /// Update the attributes of a registered service (fires kMatchToMatch).
  util::Status modify_attributes(ServiceId service_id, Entry new_attributes);

  // --- events -------------------------------------------------------------

  /// Register interest in transitions of services matching `tmpl`.
  EventRegistration notify(ServiceTemplate tmpl, TransitionMask mask,
                           EventListener listener,
                           util::SimDuration lease_duration);

  /// Drop an event registration.
  util::Status cancel_notify(const util::Uuid& registration_id);

  // --- topology -----------------------------------------------------------

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Live registrations per shard (balance introspection).
  [[nodiscard]] std::vector<std::size_t> shard_sizes() const;

  /// Grow the federation by one shard, migrating the ~1/N of registrations
  /// the ring re-homes. Leases survive the move (id and expiration intact).
  void add_shard();

  /// Shrink by one shard (never below one), migrating its registrations to
  /// their new ring homes.
  void remove_shard();

  // --- introspection ------------------------------------------------------

  [[nodiscard]] std::size_t service_count() const;
  [[nodiscard]] bool contains(ServiceId id) const;
  [[nodiscard]] std::vector<ServiceItem> all_services() const;

  /// Registrations disposed because their lease ran out (not cancelled).
  [[nodiscard]] std::uint64_t expired_count() const;

  /// Event registrations dropped because their lease ran out.
  [[nodiscard]] std::uint64_t expired_event_count() const {
    return expired_events_;
  }

  /// Live event registrations.
  [[nodiscard]] std::size_t event_registration_count() const {
    return event_regs_.size();
  }

  /// Total lookup() calls served. Reads the process-wide obs counter
  /// `registry.lookups` (the old per-instance atomic migrated there), so
  /// callers measure deltas around the window of interest.
  [[nodiscard]] std::uint64_t lookup_count() const;

 private:
  struct EventReg {
    ServiceTemplate tmpl;
    TransitionMask mask;
    EventListener listener;
    Lease lease;
    std::uint64_t next_sequence = 1;
  };

  void sweep_expired();
  void fire(Transition transition, const ServiceItem& item);
  void charge_rpc(simnet::Address callee, std::size_t request_bytes,
                  std::size_t response_bytes) const;
  /// Shard indexes a template must consult: the owning shard for by-id,
  /// the type-index subset for typed templates, every shard otherwise.
  void shards_for_template(const ServiceTemplate& tmpl,
                           std::vector<std::uint32_t>& out) const;
  void migrate_to_ring_homes();
  void refresh_balance_gauges() const;
  RenewOutcome renew_events(const std::vector<RenewItem>& items);

  std::string name_;
  util::Scheduler& scheduler_;
  simnet::Network* network_;
  simnet::Address address_;
  util::TimerId sweep_timer_ = 0;

  ConsistentRing ring_;
  std::vector<std::unique_ptr<LusShard>> shards_;
  std::vector<simnet::Address> shard_addrs_;  // per-shard traffic accounting

  // Event registrations are front-resident (transitions are global).
  std::unordered_map<util::Uuid, EventReg> event_regs_;
  std::unordered_map<util::Uuid, util::Uuid> lease_to_event_;  // lease → reg
  ExpiryIndex event_expiry_;
  std::uint64_t expired_events_ = 0;

  // Scratch buffers reused across renew_batch calls (codec round-trips on
  // the live path without per-batch allocation churn).
  mutable std::vector<std::uint8_t> wire_scratch_;
  mutable std::vector<RenewItem> decode_scratch_;
};

}  // namespace sensorcer::registry
