#pragma once
// Event Mailbox service (listed among the Jini infrastructure services in
// the paper's Fig 2). Stores remote events on behalf of listeners that are
// intermittently connected — e.g. the zero-install Sensor Browser on a
// mobile device — and delivers them on demand.

#include <deque>
#include <unordered_map>

#include "registry/lookup.h"

namespace sensorcer::registry {

class EventMailbox : public ServiceProxy {
 public:
  /// Events retained per mailbox before the oldest are discarded.
  explicit EventMailbox(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Open a mailbox; the returned listener can be handed to
  /// LookupService::notify to buffer events here.
  struct Mailbox {
    util::Uuid id;
    EventListener listener;
  };
  Mailbox open();

  /// Close a mailbox, dropping buffered events.
  void close(const util::Uuid& mailbox_id);

  /// Events buffered for a mailbox.
  [[nodiscard]] std::size_t pending(const util::Uuid& mailbox_id) const;

  /// Remove and return up to `max_events` buffered events, oldest first.
  std::vector<ServiceEvent> drain(const util::Uuid& mailbox_id,
                                  std::size_t max_events = SIZE_MAX);

  /// Events discarded across all mailboxes due to capacity.
  [[nodiscard]] std::uint64_t discarded() const { return discarded_; }

 private:
  std::size_t capacity_;
  std::unordered_map<util::Uuid, std::deque<ServiceEvent>> boxes_;
  std::uint64_t discarded_ = 0;
};

}  // namespace sensorcer::registry
