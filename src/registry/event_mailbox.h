#pragma once
// Event Mailbox service (listed among the Jini infrastructure services in
// the paper's Fig 2). Stores remote events on behalf of listeners that are
// intermittently connected — e.g. the zero-install Sensor Browser on a
// mobile device — and delivers them on demand.
//
// Like everything else handed out by the middleware, a mailbox is leased:
// an abandoned browser that stops renewing loses its mailbox at the next
// sweep instead of accumulating events forever. Opening with a zero lease
// (or on a mailbox service with no scheduler) keeps the old non-expiring
// behaviour for standalone use.

#include <deque>
#include <unordered_map>

#include "registry/lookup.h"
#include "util/scheduler.h"

namespace sensorcer::registry {

class EventMailbox : public ServiceProxy {
 public:
  /// Standalone (no expiry): mailboxes live until closed.
  explicit EventMailbox(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Leased mode: mailboxes opened with a lease expire unless renewed;
  /// `sweep_period` bounds how late an expired mailbox is collected.
  EventMailbox(util::Scheduler& scheduler, std::size_t capacity = 4096,
               util::SimDuration sweep_period = 100 * util::kMillisecond);

  ~EventMailbox() override;

  EventMailbox(const EventMailbox&) = delete;
  EventMailbox& operator=(const EventMailbox&) = delete;

  /// Open a mailbox; the returned listener can be handed to
  /// LookupService::notify to buffer events here.
  struct Mailbox {
    util::Uuid id;
    /// Granted lease; expiration is far-future when unleased.
    Lease lease;
    EventListener listener;
  };

  /// `lease_duration` 0 — or a mailbox service without a scheduler — opens
  /// a non-expiring mailbox.
  Mailbox open(util::SimDuration lease_duration = 0);

  /// Extend a mailbox lease by `extension` from now. kNotFound for unknown
  /// (or already collected) mailboxes.
  util::Status renew(const util::Uuid& mailbox_id, util::SimDuration extension);

  /// Close a mailbox, dropping buffered events.
  void close(const util::Uuid& mailbox_id);

  /// Events buffered for a mailbox.
  [[nodiscard]] std::size_t pending(const util::Uuid& mailbox_id) const;

  /// Remove and return up to `max_events` buffered events, oldest first.
  std::vector<ServiceEvent> drain(const util::Uuid& mailbox_id,
                                  std::size_t max_events = SIZE_MAX);

  /// Mailboxes currently open.
  [[nodiscard]] std::size_t mailbox_count() const { return boxes_.size(); }

  /// Events discarded due to per-mailbox capacity — process-wide, read from
  /// the obs registry ("mailbox.discarded").
  [[nodiscard]] static std::uint64_t discarded();

  /// Mailboxes collected because their lease ran out (this instance).
  [[nodiscard]] std::uint64_t expired_count() const { return expired_; }

 private:
  struct Box {
    std::deque<ServiceEvent> events;
    util::SimTime expiration = util::kNever;
    util::SimDuration duration = 0;
  };

  void sweep_expired();

  std::size_t capacity_;
  util::Scheduler* scheduler_ = nullptr;
  util::TimerId sweep_timer_ = 0;
  std::unordered_map<util::Uuid, Box> boxes_;
  std::uint64_t expired_ = 0;
};

}  // namespace sensorcer::registry
