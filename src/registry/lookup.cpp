#include "registry/lookup.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/log.h"

namespace sensorcer::registry {

namespace {

struct LookupMetrics {
  obs::Gauge& services;
  obs::Counter& registrations;
  obs::Counter& renewals;
  obs::Counter& cancellations;
  obs::Counter& expirations;
  obs::Counter& lookups;
  obs::Counter& events;
};

LookupMetrics& lookup_metrics() {
  static LookupMetrics m{obs::metrics().gauge("registry.services"),
                         obs::metrics().counter("registry.registrations"),
                         obs::metrics().counter("registry.renewals"),
                         obs::metrics().counter("registry.cancellations"),
                         obs::metrics().counter("registry.expirations"),
                         obs::metrics().counter("registry.lookups"),
                         obs::metrics().counter("registry.events")};
  return m;
}

}  // namespace

LookupService::LookupService(std::string name, util::Scheduler& scheduler,
                             simnet::Network* network,
                             util::SimDuration sweep_period)
    : name_(std::move(name)),
      scheduler_(scheduler),
      network_(network),
      address_(util::new_uuid()) {
  if (network_ != nullptr) {
    // The LUS is addressable so discovery can deliver unicast requests to it.
    network_->attach(address_, [](const simnet::Message&) {});
  }
  sweep_timer_ = scheduler_.schedule_every(sweep_period, [this] {
    sweep_expired();
  });
}

LookupService::~LookupService() {
  scheduler_.cancel(sweep_timer_);
  if (network_ != nullptr) network_->detach(address_);
}

void LookupService::charge_rpc(std::size_t request_bytes,
                               std::size_t response_bytes) const {
  if (network_ != nullptr) {
    network_->account_rpc(address_, address_, request_bytes, response_bytes);
  }
}

void LookupService::index_add(const ServiceItem& item) {
  for (const auto& type : item.types) type_index_[type].insert(item.id);
  const std::string name = item.attributes.get_string(attr::kName);
  if (!name.empty()) name_index_[name].insert(item.id);
}

void LookupService::index_remove(const ServiceItem& item) {
  for (const auto& type : item.types) {
    auto it = type_index_.find(type);
    if (it != type_index_.end()) {
      it->second.erase(item.id);
      if (it->second.empty()) type_index_.erase(it);
    }
  }
  const std::string name = item.attributes.get_string(attr::kName);
  auto it = name_index_.find(name);
  if (it != name_index_.end()) {
    it->second.erase(item.id);
    if (it->second.empty()) name_index_.erase(it);
  }
}

const std::unordered_set<ServiceId>* LookupService::candidates(
    const ServiceTemplate& tmpl) const {
  static const std::unordered_set<ServiceId> kEmpty{};
  const std::unordered_set<ServiceId>* best = nullptr;

  const std::string name = tmpl.attributes.get_string(attr::kName);
  if (!name.empty()) {
    auto it = name_index_.find(name);
    best = it == name_index_.end() ? &kEmpty : &it->second;
  }
  for (const auto& type : tmpl.types) {
    auto it = type_index_.find(type);
    const auto* bucket = it == type_index_.end() ? &kEmpty : &it->second;
    if (best == nullptr || bucket->size() < best->size()) best = bucket;
  }
  return best;
}

ServiceRegistration LookupService::register_service(
    ServiceItem item, util::SimDuration lease_duration) {
  if (item.id.is_nil()) item.id = util::new_uuid();

  // Re-registration replaces the previous lease and item atomically.
  if (auto it = services_.find(item.id); it != services_.end()) {
    lease_to_service_.erase(it->second.lease.id);
    index_remove(it->second.item);
    services_.erase(it);
    lookup_metrics().services.sub(1.0);
  }

  Lease lease{util::new_uuid(), scheduler_.now() + lease_duration,
              lease_duration};
  charge_rpc(item.wire_bytes(), /*response=*/32);

  Registration reg{item, lease};
  services_.emplace(item.id, reg);
  lease_to_service_.emplace(lease.id, item.id);
  index_add(item);
  lookup_metrics().registrations.add(1);
  lookup_metrics().services.add(1.0);
  fire(Transition::kNoMatchToMatch, item);
  SENSORCER_LOG_DEBUG("lus", "%s: registered %s", name_.c_str(),
                      item.attributes.get_string(attr::kName, "?").c_str());
  return {item.id, lease};
}

util::Status LookupService::renew_lease(const util::Uuid& lease_id,
                                        util::SimDuration extension) {
  auto it = lease_to_service_.find(lease_id);
  if (it == lease_to_service_.end()) {
    // Not a service lease — maybe an event-registration lease.
    auto ev = lease_to_event_.find(lease_id);
    if (ev == lease_to_event_.end()) {
      return {util::ErrorCode::kNotFound, "unknown or expired lease"};
    }
    charge_rpc(24, 8);
    lookup_metrics().renewals.add(1);
    EventReg& reg = event_regs_.at(ev->second);
    reg.lease.expiration = scheduler_.now() + extension;
    reg.lease.duration = extension;
    return util::Status::ok();
  }
  charge_rpc(24, 8);
  lookup_metrics().renewals.add(1);
  Registration& reg = services_.at(it->second);
  reg.lease.expiration = scheduler_.now() + extension;
  reg.lease.duration = extension;
  return util::Status::ok();
}

util::Status LookupService::cancel_lease(const util::Uuid& lease_id) {
  auto it = lease_to_service_.find(lease_id);
  if (it == lease_to_service_.end()) {
    auto ev = lease_to_event_.find(lease_id);
    if (ev == lease_to_event_.end()) {
      return {util::ErrorCode::kNotFound, "unknown or expired lease"};
    }
    charge_rpc(24, 8);
    lookup_metrics().cancellations.add(1);
    return cancel_notify(ev->second);
  }
  charge_rpc(24, 8);
  const ServiceId service_id = it->second;
  const ServiceItem item = services_.at(service_id).item;
  lease_to_service_.erase(it);
  index_remove(item);
  services_.erase(service_id);
  lookup_metrics().cancellations.add(1);
  lookup_metrics().services.sub(1.0);
  fire(Transition::kMatchToNoMatch, item);
  return util::Status::ok();
}

std::vector<ServiceItem> LookupService::lookup(const ServiceTemplate& tmpl,
                                               std::size_t max_matches) const {
  lookup_calls_.fetch_add(1, std::memory_order_relaxed);
  lookup_metrics().lookups.add(1);
  charge_rpc(tmpl.attributes.wire_bytes() + 48, 0);
  std::vector<ServiceItem> out;
  if (tmpl.id) {
    auto it = services_.find(*tmpl.id);
    if (it != services_.end() && tmpl.matches(it->second.item)) {
      out.push_back(it->second.item);
    }
  } else if (const auto* ids = candidates(tmpl)) {
    for (const ServiceId& id : *ids) {
      const Registration& reg = services_.at(id);
      if (tmpl.matches(reg.item)) out.push_back(reg.item);
    }
  } else {
    for (const auto& [id, reg] : services_) {
      if (tmpl.matches(reg.item)) out.push_back(reg.item);
    }
  }
  // Deterministic order (the storage map iterates in hash order): order by
  // name before truncating so lookup_one always returns the same provider.
  // partial_sort keeps truncated lookups (the common lookup_one case over a
  // large type bucket) at O(n) instead of O(n log n).
  const auto by_name = [](const ServiceItem& a, const ServiceItem& b) {
    const auto an = a.attributes.get_string(attr::kName);
    const auto bn = b.attributes.get_string(attr::kName);
    return an != bn ? an < bn : a.id < b.id;
  };
  if (out.size() > max_matches) {
    std::partial_sort(out.begin(),
                      out.begin() + static_cast<std::ptrdiff_t>(max_matches),
                      out.end(), by_name);
    out.resize(max_matches);
  } else {
    std::sort(out.begin(), out.end(), by_name);
  }
  for (const auto& item : out) charge_rpc(0, item.wire_bytes());
  return out;
}

util::Result<ServiceItem> LookupService::lookup_one(
    const ServiceTemplate& tmpl) const {
  auto matches = lookup(tmpl, 1);
  if (matches.empty()) {
    return util::Status{util::ErrorCode::kNotFound,
                        "no service matches template"};
  }
  return matches.front();
}

util::Status LookupService::modify_attributes(ServiceId service_id,
                                              Entry new_attributes) {
  auto it = services_.find(service_id);
  if (it == services_.end()) {
    return {util::ErrorCode::kNotFound, "service not registered"};
  }
  charge_rpc(new_attributes.wire_bytes() + 16, 8);
  index_remove(it->second.item);  // the name attribute may change
  it->second.item.attributes = std::move(new_attributes);
  index_add(it->second.item);
  fire(Transition::kMatchToMatch, it->second.item);
  return util::Status::ok();
}

EventRegistration LookupService::notify(ServiceTemplate tmpl,
                                        TransitionMask mask,
                                        EventListener listener,
                                        util::SimDuration lease_duration) {
  EventRegistration out;
  out.id = util::new_uuid();
  out.lease = Lease{util::new_uuid(), scheduler_.now() + lease_duration,
                    lease_duration};
  charge_rpc(tmpl.attributes.wire_bytes() + 64, 48);
  event_regs_.emplace(
      out.id, EventReg{std::move(tmpl), mask, std::move(listener), out.lease});
  lease_to_event_.emplace(out.lease.id, out.id);
  return out;
}

util::Status LookupService::cancel_notify(const util::Uuid& registration_id) {
  auto it = event_regs_.find(registration_id);
  if (it == event_regs_.end()) {
    return {util::ErrorCode::kNotFound, "unknown event registration"};
  }
  lease_to_event_.erase(it->second.lease.id);
  event_regs_.erase(it);
  return util::Status::ok();
}

std::vector<ServiceItem> LookupService::all_services() const {
  return lookup(ServiceTemplate{});
}

void LookupService::sweep_expired() {
  const util::SimTime now = scheduler_.now();

  // Expired event registrations are dropped (leases, again) — e.g. the
  // historian-push subscription of a crashed ESP stops receiving events.
  for (auto it = event_regs_.begin(); it != event_regs_.end();) {
    if (it->second.lease.expiration <= now) {
      lease_to_event_.erase(it->second.lease.id);
      it = event_regs_.erase(it);
      ++expired_events_;
      lookup_metrics().expirations.add(1);
    } else {
      ++it;
    }
  }

  std::vector<ServiceItem> disposed;
  for (auto it = services_.begin(); it != services_.end();) {
    if (it->second.lease.expiration <= now) {
      disposed.push_back(it->second.item);
      lease_to_service_.erase(it->second.lease.id);
      index_remove(it->second.item);
      it = services_.erase(it);
      ++expired_;
      lookup_metrics().expirations.add(1);
      lookup_metrics().services.sub(1.0);
    } else {
      ++it;
    }
  }
  for (const auto& item : disposed) {
    SENSORCER_LOG_DEBUG("lus", "%s: lease expired for %s", name_.c_str(),
                        item.attributes.get_string(attr::kName, "?").c_str());
    fire(Transition::kMatchToNoMatch, item);
  }
}

void LookupService::fire(Transition transition, const ServiceItem& item) {
  // Snapshot: listeners may add/cancel registrations from the callback.
  std::vector<std::pair<util::Uuid, ServiceEvent>> to_deliver;
  for (auto& [reg_id, reg] : event_regs_) {
    if ((reg.mask & static_cast<unsigned>(transition)) == 0) continue;
    if (!reg.tmpl.matches(item)) continue;
    ServiceEvent ev;
    ev.registration_id = reg_id;
    ev.sequence = reg.next_sequence++;
    ev.transition = transition;
    ev.item = item;
    ev.timestamp = scheduler_.now();
    to_deliver.emplace_back(reg_id, std::move(ev));
  }
  for (auto& [reg_id, ev] : to_deliver) {
    auto it = event_regs_.find(reg_id);
    if (it == event_regs_.end()) continue;
    charge_rpc(0, 96);  // event delivery counts as outbound traffic
    lookup_metrics().events.add(1);
    it->second.listener(ev);
  }
}

}  // namespace sensorcer::registry
