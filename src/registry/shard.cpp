#include "registry/shard.h"

namespace sensorcer::registry {

void LusShard::index_add(const ServiceItem& item) {
  for (const auto& type : item.types) type_index_[type].insert(item.id);
  const std::string name = item.attributes.get_string(attr::kName);
  if (!name.empty()) name_index_[name].insert(item.id);
}

void LusShard::index_remove(const ServiceItem& item) {
  for (const auto& type : item.types) {
    auto it = type_index_.find(type);
    if (it != type_index_.end()) {
      it->second.erase(item.id);
      if (it->second.empty()) type_index_.erase(it);
    }
  }
  const std::string name = item.attributes.get_string(attr::kName);
  auto it = name_index_.find(name);
  if (it != name_index_.end()) {
    it->second.erase(item.id);
    if (it->second.empty()) name_index_.erase(it);
  }
}

const std::unordered_set<ServiceId>* LusShard::candidates(
    const ServiceTemplate& tmpl) const {
  static const std::unordered_set<ServiceId> kEmpty{};
  const std::unordered_set<ServiceId>* best = nullptr;

  const std::string name = tmpl.attributes.get_string(attr::kName);
  if (!name.empty()) {
    auto it = name_index_.find(name);
    best = it == name_index_.end() ? &kEmpty : &it->second;
  }
  for (const auto& type : tmpl.types) {
    auto it = type_index_.find(type);
    const auto* bucket = it == type_index_.end() ? &kEmpty : &it->second;
    if (best == nullptr || bucket->size() < best->size()) best = bucket;
  }
  return best;
}

bool LusShard::register_service(ServiceItem item, Lease lease) {
  bool replaced = false;
  // Re-registration replaces the previous lease and item atomically.
  if (auto it = services_.find(item.id); it != services_.end()) {
    lease_to_service_.erase(it->second.lease.id);
    index_remove(it->second.item);
    services_.erase(it);
    replaced = true;
  }
  expiry_.arm(lease.expiration, lease.id);
  lease_to_service_.emplace(lease.id, item.id);
  index_add(item);
  services_.emplace(item.id, Registration{std::move(item), lease});
  return replaced;
}

bool LusShard::renew(const util::Uuid& lease_id, util::SimTime now,
                     util::SimDuration extension) {
  auto it = lease_to_service_.find(lease_id);
  if (it == lease_to_service_.end()) return false;
  Registration& reg = services_.at(it->second);
  reg.lease.expiration = now + extension;
  reg.lease.duration = extension;
  // The expiry heap is untouched: its entry re-arms lazily when popped.
  return true;
}

std::optional<ServiceItem> LusShard::cancel(const util::Uuid& lease_id) {
  auto it = lease_to_service_.find(lease_id);
  if (it == lease_to_service_.end()) return std::nullopt;
  const ServiceId service_id = it->second;
  ServiceItem item = services_.at(service_id).item;
  lease_to_service_.erase(it);
  index_remove(item);
  services_.erase(service_id);
  return item;
}

std::optional<ServiceItem> LusShard::modify_attributes(ServiceId service_id,
                                                       Entry new_attributes) {
  auto it = services_.find(service_id);
  if (it == services_.end()) return std::nullopt;
  index_remove(it->second.item);  // the name attribute may change
  it->second.item.attributes = std::move(new_attributes);
  index_add(it->second.item);
  return it->second.item;
}

void LusShard::lookup_into(const ServiceTemplate& tmpl,
                           std::vector<ServiceItem>& out) const {
  if (tmpl.id) {
    auto it = services_.find(*tmpl.id);
    if (it != services_.end() && tmpl.matches(it->second.item)) {
      out.push_back(it->second.item);
    }
  } else if (const auto* ids = candidates(tmpl)) {
    for (const ServiceId& id : *ids) {
      const Registration& reg = services_.at(id);
      if (tmpl.matches(reg.item)) out.push_back(reg.item);
    }
  } else {
    for (const auto& [id, reg] : services_) {
      if (tmpl.matches(reg.item)) out.push_back(reg.item);
    }
  }
}

const ServiceItem* LusShard::find(ServiceId id) const {
  auto it = services_.find(id);
  return it == services_.end() ? nullptr : &it->second.item;
}

void LusShard::sweep(util::SimTime now, std::vector<ServiceItem>& disposed) {
  expiry_.drain(
      now,
      [this](const util::Uuid& lease_id) -> util::SimTime {
        auto it = lease_to_service_.find(lease_id);
        if (it == lease_to_service_.end()) return kLeaseGone;
        return services_.at(it->second).lease.expiration;
      },
      [this, &disposed](const util::Uuid& lease_id) {
        const ServiceId service_id = lease_to_service_.at(lease_id);
        auto it = services_.find(service_id);
        disposed.push_back(it->second.item);
        lease_to_service_.erase(lease_id);
        index_remove(it->second.item);
        services_.erase(it);
        ++expired_;
      });
}

std::vector<LusShard::Registration> LusShard::extract_if_not(
    const std::function<bool(const ServiceId&)>& keep) {
  std::vector<Registration> moved;
  for (auto it = services_.begin(); it != services_.end();) {
    if (keep(it->first)) {
      ++it;
      continue;
    }
    moved.push_back(std::move(it->second));
    lease_to_service_.erase(moved.back().lease.id);
    index_remove(moved.back().item);
    it = services_.erase(it);
  }
  // Orphaned expiry entries for the moved leases resolve to kLeaseGone and
  // fall out on the next sweep.
  return moved;
}

void LusShard::adopt(Registration reg) {
  expiry_.arm(reg.lease.expiration, reg.lease.id);
  lease_to_service_.emplace(reg.lease.id, reg.item.id);
  index_add(reg.item);
  const ServiceId id = reg.item.id;
  services_.emplace(id, std::move(reg));
}

}  // namespace sensorcer::registry
