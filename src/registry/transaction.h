#pragma once
// Two-phase-commit Transaction Manager (the "Transaction Manager" service in
// the paper's Fig 2; exertions carry an optional transaction through the
// Servicer interface `service(Exertion, Transaction)`).

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/scheduler.h"
#include "util/status.h"

namespace sensorcer::registry {

enum class TxnState { kActive, kPreparing, kCommitted, kAborted };

const char* txn_state_name(TxnState state);

/// A 2PC participant. prepare() votes; commit()/abort() finalize.
struct TxnParticipant {
  std::string name;
  std::function<util::Status()> prepare;
  std::function<void()> commit;
  std::function<void()> abort;
};

/// Handle to a created transaction.
struct Transaction {
  util::Uuid id;
  util::SimTime deadline = 0;
};

class TransactionManager {
 public:
  explicit TransactionManager(util::Scheduler& scheduler)
      : scheduler_(scheduler) {}

  /// Begin a transaction that auto-aborts after `timeout` if not settled.
  Transaction create(util::SimDuration timeout);

  /// Enlist a participant; fails once the transaction is settling/settled.
  util::Status join(const util::Uuid& txn_id, TxnParticipant participant);

  /// Run 2PC: prepare all participants; any veto aborts everyone.
  util::Status commit(const util::Uuid& txn_id);

  /// Abort explicitly.
  util::Status abort(const util::Uuid& txn_id);

  [[nodiscard]] TxnState state(const util::Uuid& txn_id) const;

  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] std::uint64_t committed_count() const { return committed_; }
  [[nodiscard]] std::uint64_t aborted_count() const { return aborted_; }

 private:
  struct Txn {
    TxnState state = TxnState::kActive;
    std::vector<TxnParticipant> participants;
    util::TimerId timeout_timer = 0;
  };

  void finish_abort(Txn& txn);

  util::Scheduler& scheduler_;
  std::unordered_map<util::Uuid, Txn> txns_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
};

}  // namespace sensorcer::registry
