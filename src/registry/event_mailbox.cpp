#include "registry/event_mailbox.h"

namespace sensorcer::registry {

EventMailbox::Mailbox EventMailbox::open() {
  const util::Uuid id = util::new_uuid();
  boxes_.emplace(id, std::deque<ServiceEvent>{});
  EventListener listener = [this, id](const ServiceEvent& ev) {
    auto it = boxes_.find(id);
    if (it == boxes_.end()) return;  // mailbox closed; drop silently
    if (it->second.size() >= capacity_) {
      it->second.pop_front();
      ++discarded_;
    }
    it->second.push_back(ev);
  };
  return {id, std::move(listener)};
}

void EventMailbox::close(const util::Uuid& mailbox_id) {
  boxes_.erase(mailbox_id);
}

std::size_t EventMailbox::pending(const util::Uuid& mailbox_id) const {
  auto it = boxes_.find(mailbox_id);
  return it == boxes_.end() ? 0 : it->second.size();
}

std::vector<ServiceEvent> EventMailbox::drain(const util::Uuid& mailbox_id,
                                              std::size_t max_events) {
  std::vector<ServiceEvent> out;
  auto it = boxes_.find(mailbox_id);
  if (it == boxes_.end()) return out;
  while (!it->second.empty() && out.size() < max_events) {
    out.push_back(std::move(it->second.front()));
    it->second.pop_front();
  }
  return out;
}

}  // namespace sensorcer::registry
