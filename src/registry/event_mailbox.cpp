#include "registry/event_mailbox.h"

#include "obs/metrics.h"

namespace sensorcer::registry {

namespace {

struct MailboxMetrics {
  obs::Counter& discarded;
  obs::Counter& expired;
};

MailboxMetrics& mailbox_metrics() {
  static MailboxMetrics m{obs::metrics().counter("mailbox.discarded"),
                          obs::metrics().counter("mailbox.expired")};
  return m;
}

}  // namespace

EventMailbox::EventMailbox(util::Scheduler& scheduler, std::size_t capacity,
                           util::SimDuration sweep_period)
    : capacity_(capacity), scheduler_(&scheduler) {
  sweep_timer_ =
      scheduler_->schedule_every(sweep_period, [this] { sweep_expired(); });
}

EventMailbox::~EventMailbox() {
  if (scheduler_ != nullptr) scheduler_->cancel(sweep_timer_);
}

EventMailbox::Mailbox EventMailbox::open(util::SimDuration lease_duration) {
  const util::Uuid id = util::new_uuid();
  Box box;
  Lease lease{id, util::kNever, 0};
  if (scheduler_ != nullptr && lease_duration > 0) {
    box.expiration = scheduler_->now() + lease_duration;
    box.duration = lease_duration;
    lease.expiration = box.expiration;
    lease.duration = lease_duration;
  }
  boxes_.emplace(id, std::move(box));
  EventListener listener = [this, id](const ServiceEvent& ev) {
    auto it = boxes_.find(id);
    if (it == boxes_.end()) return;  // mailbox closed/expired; drop silently
    if (it->second.events.size() >= capacity_) {
      it->second.events.pop_front();
      mailbox_metrics().discarded.add();
    }
    it->second.events.push_back(ev);
  };
  return {id, lease, std::move(listener)};
}

util::Status EventMailbox::renew(const util::Uuid& mailbox_id,
                                 util::SimDuration extension) {
  auto it = boxes_.find(mailbox_id);
  if (it == boxes_.end()) {
    return {util::ErrorCode::kNotFound, "unknown or expired mailbox"};
  }
  if (scheduler_ != nullptr && extension > 0) {
    it->second.expiration = scheduler_->now() + extension;
    it->second.duration = extension;
  }
  return util::Status::ok();
}

void EventMailbox::close(const util::Uuid& mailbox_id) {
  boxes_.erase(mailbox_id);
}

std::size_t EventMailbox::pending(const util::Uuid& mailbox_id) const {
  auto it = boxes_.find(mailbox_id);
  return it == boxes_.end() ? 0 : it->second.events.size();
}

std::vector<ServiceEvent> EventMailbox::drain(const util::Uuid& mailbox_id,
                                              std::size_t max_events) {
  std::vector<ServiceEvent> out;
  auto it = boxes_.find(mailbox_id);
  if (it == boxes_.end()) return out;
  while (!it->second.events.empty() && out.size() < max_events) {
    out.push_back(std::move(it->second.events.front()));
    it->second.events.pop_front();
  }
  return out;
}

std::uint64_t EventMailbox::discarded() {
  return mailbox_metrics().discarded.value();
}

void EventMailbox::sweep_expired() {
  const util::SimTime now = scheduler_->now();
  for (auto it = boxes_.begin(); it != boxes_.end();) {
    if (it->second.expiration <= now) {
      it = boxes_.erase(it);
      ++expired_;
      mailbox_metrics().expired.add();
    } else {
      ++it;
    }
  }
}

}  // namespace sensorcer::registry
