#include "registry/service_item.h"

namespace sensorcer::registry {

std::size_t ServiceItem::wire_bytes() const {
  std::size_t bytes = 16;  // service id
  for (const auto& t : types) bytes += t.size() + 1;
  bytes += attributes.wire_bytes();
  bytes += 64;  // proxy stub / codebase reference
  return bytes;
}

bool ServiceTemplate::matches(const ServiceItem& item) const {
  if (id && *id != item.id) return false;
  for (const auto& type : types) {
    if (!item.implements(type)) return false;
  }
  return attributes.matches(item.attributes);
}

}  // namespace sensorcer::registry
