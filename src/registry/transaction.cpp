#include "registry/transaction.h"

namespace sensorcer::registry {

const char* txn_state_name(TxnState state) {
  switch (state) {
    case TxnState::kActive: return "ACTIVE";
    case TxnState::kPreparing: return "PREPARING";
    case TxnState::kCommitted: return "COMMITTED";
    case TxnState::kAborted: return "ABORTED";
  }
  return "?";
}

Transaction TransactionManager::create(util::SimDuration timeout) {
  Transaction txn{util::new_uuid(), scheduler_.now() + timeout};
  Txn record;
  record.timeout_timer =
      scheduler_.schedule_after(timeout, [this, id = txn.id] {
        auto it = txns_.find(id);
        if (it != txns_.end() && it->second.state == TxnState::kActive) {
          finish_abort(it->second);
        }
      });
  txns_.emplace(txn.id, std::move(record));
  return txn;
}

util::Status TransactionManager::join(const util::Uuid& txn_id,
                                      TxnParticipant participant) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return {util::ErrorCode::kNotFound, "unknown transaction"};
  }
  if (it->second.state != TxnState::kActive) {
    return {util::ErrorCode::kFailedPrecondition,
            std::string("transaction is ") + txn_state_name(it->second.state)};
  }
  it->second.participants.push_back(std::move(participant));
  return util::Status::ok();
}

util::Status TransactionManager::commit(const util::Uuid& txn_id) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return {util::ErrorCode::kNotFound, "unknown transaction"};
  }
  Txn& txn = it->second;
  if (txn.state != TxnState::kActive) {
    return {util::ErrorCode::kFailedPrecondition,
            std::string("transaction is ") + txn_state_name(txn.state)};
  }

  txn.state = TxnState::kPreparing;
  for (const auto& p : txn.participants) {
    if (util::Status vote = p.prepare(); !vote.is_ok()) {
      finish_abort(txn);
      return {util::ErrorCode::kAborted,
              "participant '" + p.name + "' vetoed: " + vote.message()};
    }
  }
  for (const auto& p : txn.participants) p.commit();
  txn.state = TxnState::kCommitted;
  scheduler_.cancel(txn.timeout_timer);
  ++committed_;
  return util::Status::ok();
}

util::Status TransactionManager::abort(const util::Uuid& txn_id) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) {
    return {util::ErrorCode::kNotFound, "unknown transaction"};
  }
  if (it->second.state == TxnState::kCommitted) {
    return {util::ErrorCode::kFailedPrecondition,
            "transaction already committed"};
  }
  if (it->second.state != TxnState::kAborted) finish_abort(it->second);
  return util::Status::ok();
}

void TransactionManager::finish_abort(Txn& txn) {
  for (const auto& p : txn.participants) p.abort();
  txn.state = TxnState::kAborted;
  scheduler_.cancel(txn.timeout_timer);
  ++aborted_;
}

TxnState TransactionManager::state(const util::Uuid& txn_id) const {
  auto it = txns_.find(txn_id);
  return it == txns_.end() ? TxnState::kAborted : it->second.state;
}

std::size_t TransactionManager::active_count() const {
  std::size_t n = 0;
  for (const auto& [id, txn] : txns_) {
    if (txn.state == TxnState::kActive) ++n;
  }
  return n;
}

}  // namespace sensorcer::registry
