#pragma once
// Jini discovery/join protocols over the simulated network.
//
// Lookup services announce themselves on a well-known multicast group and
// answer unicast requests; clients multicast requests and collect responses.
// "New services entering the network become available immediately" (§IV.B) —
// the plug-and-play bench measures exactly this join-to-discoverable latency.

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "registry/lookup.h"
#include "simnet/network.h"
#include "util/scheduler.h"

namespace sensorcer::registry {

/// The well-known discovery multicast group (Jini's 224.0.1.85 analogue).
simnet::Address discovery_group();

/// Payload of announce/response messages: a reference to the LUS "proxy".
struct LusAdvertisement {
  std::weak_ptr<LookupService> lus;
  simnet::Address lus_address;
};

/// Client- and LUS-side discovery engine.
///
/// LUS side: `advertise(lus)` joins the group, emits periodic multicast
/// announcements and answers multicast requests with unicast responses.
///
/// Client side: `start_discovery(listener)` joins the group, multicasts a
/// request, and invokes the listener once per newly discovered LUS.
class DiscoveryManager {
 public:
  using DiscoveryListener =
      std::function<void(const std::shared_ptr<LookupService>&)>;

  DiscoveryManager(simnet::Network& network, util::Scheduler& scheduler);
  ~DiscoveryManager();

  DiscoveryManager(const DiscoveryManager&) = delete;
  DiscoveryManager& operator=(const DiscoveryManager&) = delete;

  /// Make `lus` discoverable. Announcement period defaults to the Jini
  /// convention of 120s; tests shrink it.
  void advertise(std::shared_ptr<LookupService> lus,
                 util::SimDuration announce_period = 120 * util::kSecond);

  /// Stop advertising a LUS (it disappears after clients' caches age out).
  void withdraw(const std::shared_ptr<LookupService>& lus);

  /// Begin client-side discovery; previously and newly discovered LUSs are
  /// reported through `listener` exactly once each.
  void start_discovery(DiscoveryListener listener);

  /// LUSs discovered so far (expired weak refs are pruned).
  [[nodiscard]] std::vector<std::shared_ptr<LookupService>> discovered();

  [[nodiscard]] simnet::Address client_address() const { return address_; }

 private:
  void handle_message(const simnet::Message& msg);
  void note_discovered(const LusAdvertisement& ad);
  void announce(const std::shared_ptr<LookupService>& lus);

  simnet::Network& network_;
  util::Scheduler& scheduler_;
  simnet::Address address_;

  // Weak: advertising must not pin a LUS alive. A LUS destroyed without
  // withdraw() is purged from here (and from clients' known_ maps) instead
  // of being re-announced as an empty proxy forever.
  struct Advertised {
    std::weak_ptr<LookupService> lus;
    simnet::Address lus_address;
    util::TimerId announce_timer;
  };
  std::vector<Advertised> advertised_;

  /// Drop advertised entries whose LUS has been destroyed.
  void purge_dead_advertised();

  DiscoveryListener listener_;
  std::unordered_map<simnet::Address, std::weak_ptr<LookupService>> known_;
  bool discovering_ = false;
  util::SimTime discovery_started_ = -1;  // <0 = no request outstanding
};

}  // namespace sensorcer::registry
