#pragma once
// Registry shard internals: the leased storage half of the lookup service.
//
// PR 8 splits the monolithic LookupService into LusShard (per-shard item
// storage, secondary indexes and an expiry min-heap) fronted by
// RegistryFederation (federation.h), which consistent-hashes service ids
// across shards. The protocol types (Lease, ServiceRegistration, the
// transition/event vocabulary) live here because both halves — and every
// client layer — speak them.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "registry/service_item.h"
#include "util/scheduler.h"

namespace sensorcer::registry {

/// Shard routing hint carried inside a granted lease so renewals can be
/// batched per shard without a registry round-trip to rediscover placement.
/// Event-registration leases are not sharded; they live at the federation
/// front and carry this sentinel.
inline constexpr std::uint32_t kEventLeaseShard = 0xFFFFFFFFu;

/// A granted lease.
struct Lease {
  util::Uuid id;
  util::SimTime expiration = 0;
  util::SimDuration duration = 0;
  std::uint32_t shard = 0;  // owning shard, or kEventLeaseShard
};

/// Result of registering a service.
struct ServiceRegistration {
  ServiceId service_id;
  Lease lease;
};

/// Registry transition kinds, mirroring Jini's TRANSITION_* masks.
enum class Transition : unsigned {
  kNoMatchToMatch = 1u << 0,  // service joined (or started matching)
  kMatchToNoMatch = 1u << 1,  // service left / lease expired
  kMatchToMatch = 1u << 2,    // attributes of a matching service changed
};

/// Bitwise-or of Transition values.
using TransitionMask = unsigned;

inline constexpr TransitionMask kAllTransitions =
    static_cast<unsigned>(Transition::kNoMatchToMatch) |
    static_cast<unsigned>(Transition::kMatchToNoMatch) |
    static_cast<unsigned>(Transition::kMatchToMatch);

/// Event pushed to registered listeners.
struct ServiceEvent {
  util::Uuid registration_id;   // the event registration this belongs to
  std::uint64_t sequence = 0;   // per-registration monotonic number
  Transition transition = Transition::kNoMatchToMatch;
  ServiceItem item;             // post-transition state of the service
  util::SimTime timestamp = 0;
};

using EventListener = std::function<void(const ServiceEvent&)>;

/// Handle for an event registration (leased, like everything in Jini).
struct EventRegistration {
  util::Uuid id;
  Lease lease;
};

/// Sentinel a drain() resolver returns for a lease that no longer exists
/// (cancelled, replaced, or already disposed).
inline constexpr util::SimTime kLeaseGone = -1;

/// Lazy min-heap expiry index: sweep cost tracks the number of leases whose
/// scheduled expiration has arrived, not the registry population.
///
/// Invariant: every live lease has exactly one heap entry with
/// `due <= lease.expiration` (entries are armed at grant time; renewals only
/// move the true expiration later and never touch the heap). A drain at time
/// `now` therefore pops a superset of the truly-expired leases; entries whose
/// lease was renewed re-arm at the current expiration, entries whose lease
/// vanished (cancel / re-register) are dropped.
class ExpiryIndex {
 public:
  void arm(util::SimTime due, const util::Uuid& lease_id) {
    heap_.push_back({due, lease_id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Pop every entry due at or before `now`. `resolve(lease_id)` returns the
  /// lease's current expiration (kLeaseGone when unknown); `on_due(lease_id)`
  /// disposes a lease whose expiration has truly arrived.
  template <typename Resolve, typename OnDue>
  void drain(util::SimTime now, Resolve&& resolve, OnDue&& on_due) {
    while (!heap_.empty() && heap_.front().due <= now) {
      const Entry e = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      const util::SimTime expiration = resolve(e.lease_id);
      if (expiration == kLeaseGone) continue;  // cancelled/replaced: drop
      if (expiration <= now) {
        on_due(e.lease_id);
      } else {
        arm(expiration, e.lease_id);  // renewed since armed: re-index
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    util::SimTime due;
    util::Uuid lease_id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.due > b.due;  // min-heap on due time
    }
  };
  std::vector<Entry> heap_;
};

/// One shard of the federated lookup service: item storage, lease table,
/// type/name secondary indexes and an expiry heap. Shards are passive — the
/// RegistryFederation front owns time, transition events, traffic accounting
/// and metrics; shard methods take `now` explicitly and report outcomes for
/// the front to act on.
class LusShard {
 public:
  struct Registration {
    ServiceItem item;
    Lease lease;
  };

  explicit LusShard(std::uint32_t index) : index_(index) {}

  [[nodiscard]] std::uint32_t index() const { return index_; }

  /// Insert (or replace, keyed by item.id) a registration. Returns true when
  /// an existing registration was replaced (population unchanged).
  bool register_service(ServiceItem item, Lease lease);

  /// Extend a lease to `now + extension`. False for unknown leases.
  bool renew(const util::Uuid& lease_id, util::SimTime now,
             util::SimDuration extension);

  [[nodiscard]] bool has_lease(const util::Uuid& lease_id) const {
    return lease_to_service_.contains(lease_id);
  }

  /// Remove the registration guarded by `lease_id`; returns the disposed
  /// item so the front can fire kMatchToNoMatch.
  std::optional<ServiceItem> cancel(const util::Uuid& lease_id);

  /// Swap a registered service's attributes; returns the post-change item
  /// for the front's kMatchToMatch event. nullopt when not registered here.
  std::optional<ServiceItem> modify_attributes(ServiceId service_id,
                                               Entry new_attributes);

  /// Append every item matching `tmpl` to `out` (unordered; the federation
  /// front merges and orders across shards).
  void lookup_into(const ServiceTemplate& tmpl,
                   std::vector<ServiceItem>& out) const;

  [[nodiscard]] bool contains(ServiceId id) const {
    return services_.contains(id);
  }
  [[nodiscard]] const ServiceItem* find(ServiceId id) const;

  /// True when at least one registered service exports `type` — drives the
  /// federation's type-scoped shard fan-out.
  [[nodiscard]] bool has_type(const std::string& type) const {
    return type_index_.contains(type);
  }

  [[nodiscard]] std::size_t size() const { return services_.size(); }
  [[nodiscard]] std::uint64_t expired() const { return expired_; }

  /// Dispose every registration whose lease has expired by `now`, appending
  /// the disposed items to `disposed`. Cost is proportional to the number of
  /// due expiry-heap entries, not to size().
  void sweep(util::SimTime now, std::vector<ServiceItem>& disposed);

  /// Remove and return every registration for which `keep` is false —
  /// federation reshard support. No events fire; leases survive the move.
  std::vector<Registration> extract_if_not(
      const std::function<bool(const ServiceId&)>& keep);

  /// Re-home a registration moved from another shard, preserving its lease
  /// (id and expiration). The caller fixes the lease's shard field.
  void adopt(Registration reg);

 private:
  void index_add(const ServiceItem& item);
  void index_remove(const ServiceItem& item);
  const std::unordered_set<ServiceId>* candidates(
      const ServiceTemplate& tmpl) const;

  std::uint32_t index_;
  std::unordered_map<ServiceId, Registration> services_;
  std::unordered_map<util::Uuid, ServiceId> lease_to_service_;
  // Secondary indexes: interface name → ids, `name` attribute → ids. They
  // keep the common lookups (by type, by type+name) off the full scan so
  // resolution cost does not grow with the shard population (§VII).
  std::unordered_map<std::string, std::unordered_set<ServiceId>> type_index_;
  std::unordered_map<std::string, std::unordered_set<ServiceId>> name_index_;
  ExpiryIndex expiry_;
  std::uint64_t expired_ = 0;
};

}  // namespace sensorcer::registry
