#include "obs/metrics.h"

#include <algorithm>

namespace sensorcer::obs {

std::vector<double> default_latency_bounds() {
  return {1,     2,     5,      10,     25,     50,      100,     250,
          500,   1000,  2500,   5000,   10000,  25000,   50000,   100000,
          250000, 500000, 1000000, 2500000, 5000000, 10000000};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds();
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (v > mx &&
         !max_.compare_exchange_weak(mx, v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double p) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);

  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts[i];
    if (static_cast<double>(cum) < target) continue;
    // Interpolate inside bucket i: [lower, upper).
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = i < bounds_.size() ? bounds_[i] : max();
    if (upper <= lower) return std::min(upper, max());
    const double fraction =
        (target - before) / static_cast<double>(counts[i]);
    // Interpolation can overshoot the largest observed value when the bucket's
    // upper bound exceeds it; max() is tracked exactly, so cap there.
    return std::min(lower + fraction * (upper - lower), max());
  }
  return max();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

void Snapshot::merge(const Snapshot& other) {
  sim_time = std::max(sim_time, other.sim_time);
  const auto fold = [](auto& mine, const auto& theirs) {
    for (const auto& entry : theirs) {
      auto it = std::find_if(mine.begin(), mine.end(), [&](const auto& e) {
        return e.first == entry.first;
      });
      if (it == mine.end()) {
        mine.push_back(entry);
      } else {
        it->second += entry.second;
      }
    }
    std::sort(mine.begin(), mine.end());
  };
  fold(counters, other.counters);
  fold(gauges, other.gauges);
  for (const auto& h : other.histograms) {
    // Histograms do not sum meaningfully from snapshots; keep both, with
    // name collisions resolved in favour of the larger population.
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&](const auto& mine) { return mine.name == h.name; });
    if (it == histograms.end()) {
      histograms.push_back(h);
    } else if (h.count > it->count) {
      *it = h;
    }
  }
  std::sort(histograms.begin(), histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
}

std::uint64_t Snapshot::counter_or(const std::string& name,
                                   std::uint64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

double Snapshot::gauge_or(const std::string& name, double fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

const HistogramSnapshot* Snapshot::histogram(const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Snapshot Registry::snapshot(util::SimTime sim_time) const {
  std::lock_guard lock(mu_);
  Snapshot out;
  out.sim_time = sim_time;
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.mean = h->mean();
    hs.p50 = h->percentile(50);
    hs.p90 = h->percentile(90);
    hs.p99 = h->percentile(99);
    hs.max = h->max();
    out.histograms.push_back(std::move(hs));
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace sensorcer::obs
