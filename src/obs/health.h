#pragma once
// Federation health report — the observability pane of the Sensor Browser.
// Distills a metrics Snapshot (global registry merged with the Network's
// traffic registry) into the figures an operator of a sensor-federated
// network watches: registry population and lease churn, discovery traffic,
// bytes by protocol, exertion latency percentiles, provisioning activity.

#include <string>

#include "obs/metrics.h"

namespace sensorcer::obs {

/// Render the health pane from a (possibly merged) snapshot. Sections with
/// no data render as zeros, so the pane is stable for golden-output tests.
[[nodiscard]] std::string render_federation_health(const Snapshot& snapshot);

}  // namespace sensorcer::obs
