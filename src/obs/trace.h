#pragma once
// Exertion tracing — correlates one façade request through discovery,
// exertion dispatch and the probe read it ultimately triggers.
//
// A TraceContext is a (trace id, span id) pair carried on exertions and on
// simnet messages as an extra, cost-modeled protocol header (kWireBytes —
// tracing overhead is itself measurable, like every other header in
// simnet/protocol.h). Spans record both virtual (sim) and wall-clock time
// and link to their parent, so a finished trace renders as a tree:
//
//   facade.getValue:New-Composite
//   └─ exert:New-Composite.collect
//      └─ job:New-Composite.collect
//         └─ exert:a
//            └─ invoke:Neem#getValue
//               └─ probe:Neem
//
// Propagation is explicit across threads (the Jobber stamps each child
// exertion before handing it to the worker pool) and implicit within one
// thread (a thread_local current context, scoped by ContextGuard).

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/scheduler.h"
#include "util/sim_time.h"

namespace sensorcer::obs {

/// Identity of an in-flight span, carried across layers and simnet hops.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0; }

  /// Modeled serialized size when the context rides a network message
  /// (two 64-bit ids), charged as header bytes by simnet.
  static constexpr std::size_t kWireBytes = 16;
};

/// A finished (or in-flight) span as stored by the collector.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  util::SimTime sim_start = 0;
  util::SimTime sim_end = 0;
  std::int64_t wall_start_us = 0;
  std::int64_t wall_end_us = 0;
  bool ok = true;
};

/// Bounded ring buffer of finished spans. record() is thread-safe (spans
/// finish on Jobber/Spacer worker threads); when full, the oldest span is
/// overwritten and counted as dropped.
class SpanCollector {
 public:
  explicit SpanCollector(std::size_t capacity = 8192);

  void record(SpanRecord span);

  /// All retained spans, oldest first.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Retained spans belonging to `trace_id`, oldest first.
  [[nodiscard]] std::vector<SpanRecord> trace(std::uint64_t trace_id) const;

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<SpanRecord> ring_;
  std::size_t next_ = 0;  // ring_[next_] is the oldest once wrapped
  std::uint64_t recorded_ = 0;
};

class Tracer;

/// RAII span: finishes (stamps end times, records to the collector) on
/// destruction or an explicit finish(). Movable so it can cross optional<>
/// and return-value boundaries.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Context to hand to children / stamp on messages and exertions.
  [[nodiscard]] TraceContext context() const {
    return {record_.trace_id, record_.span_id};
  }

  void set_ok(bool ok) { record_.ok = ok; }

  /// Idempotent: stamps end times and records the span.
  void finish();

 private:
  friend class Tracer;
  Span(SpanCollector* collector, SpanRecord record)
      : collector_(collector), record_(std::move(record)) {}

  SpanCollector* collector_ = nullptr;  // null = finished or empty
  SpanRecord record_;
};

/// Span factory over one collector. start_span with an invalid parent opens
/// a new trace (the root span's id doubles as the trace id).
class Tracer {
 public:
  explicit Tracer(SpanCollector& collector) : collector_(collector) {}

  Span start_span(std::string name, TraceContext parent);
  /// Parent defaults to the calling thread's current context.
  Span start_span(std::string name);

  [[nodiscard]] SpanCollector& collector() { return collector_; }

 private:
  SpanCollector& collector_;
};

/// The calling thread's implicit trace context (invalid when outside any
/// ContextGuard scope).
[[nodiscard]] TraceContext current_context();

/// Scoped override of the thread's current context; restores on exit.
class ContextGuard {
 public:
  explicit ContextGuard(TraceContext ctx);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  TraceContext previous_;
};

// --- process-wide plumbing ---------------------------------------------------

/// Global collector + tracer used by the layer instrumentation hooks.
SpanCollector& span_collector();
Tracer& tracer();

/// Source of virtual time for span timestamps. A Deployment points this at
/// its scheduler; spans started with no clock installed record sim time 0.
void set_sim_clock(const util::Scheduler* scheduler);
[[nodiscard]] const util::Scheduler* sim_clock();
[[nodiscard]] util::SimTime sim_now();

}  // namespace sensorcer::obs
