#include "obs/health.h"

#include "util/sim_time.h"
#include "util/strings.h"

namespace sensorcer::obs {

namespace {

std::string us(double v) {
  return util::format_duration(static_cast<util::SimDuration>(v));
}

std::string latency_row(const Snapshot& snap, const std::string& name) {
  const HistogramSnapshot* h = snap.histogram(name);
  if (h == nullptr || h->count == 0) return "n=0";
  return util::format("n=%llu p50=%s p99=%s max=%s",
                      static_cast<unsigned long long>(h->count),
                      us(h->p50).c_str(), us(h->p99).c_str(),
                      us(h->max).c_str());
}

}  // namespace

std::string render_federation_health(const Snapshot& snap) {
  std::string out = "Federation Health\n=================\n";
  out += "as of sim time " + util::format_duration(snap.sim_time) + "\n\n";

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"registry", "services registered",
                  util::format("%.0f", snap.gauge_or("registry.services"))});
  rows.push_back({"registry", "lookups served",
                  std::to_string(snap.counter_or("registry.lookups"))});
  rows.push_back(
      {"registry", "lease renewals / expirations",
       std::to_string(snap.counter_or("registry.renewals")) + " / " +
           std::to_string(snap.counter_or("registry.expirations"))});
  // Federated registry (PR 8): shard balance of the most recently active
  // federation and the batched renewAll traffic that replaced per-lease
  // renewal messages.
  {
    std::string balance;
    for (const auto& [name, value] : snap.gauges) {
      if (!name.starts_with("registry.shard_services.")) continue;
      if (!balance.empty()) balance += " ";
      balance += util::format("%.0f", value);
    }
    rows.push_back(
        {"registry", "shards / balance / imbalance",
         util::format("%.0f", snap.gauge_or("registry.shards")) + " / [" +
             balance + "] / " +
             util::format("%.2f", snap.gauge_or("registry.shard_imbalance"))});
  }
  {
    const auto batches = snap.counter_or("registry.renew_batches");
    const auto leases = snap.counter_or("registry.renew_batch_leases");
    rows.push_back(
        {"registry", "renew batches / leases per batch",
         std::to_string(batches) + " / " +
             (batches == 0 ? std::string("n/a")
                           : util::format("%.1f", static_cast<double>(leases) /
                                                      static_cast<double>(
                                                          batches)))});
    rows.push_back({"registry", "batch renewals denied",
                    std::to_string(snap.counter_or("registry.renew_denied"))});
  }
  rows.push_back({"discovery", "latency",
                  latency_row(snap, "discovery.latency_us")});
  rows.push_back({"discovery", "announcements / discovered",
                  std::to_string(snap.counter_or("discovery.announcements")) +
                      " / " +
                      std::to_string(snap.counter_or("discovery.discovered"))});
  rows.push_back({"accessor", "cache hit / miss",
                  std::to_string(snap.counter_or("accessor.cache_hits")) +
                      " / " +
                      std::to_string(snap.counter_or("accessor.cache_misses"))});
  rows.push_back({"exertion", "tasks dispatched",
                  std::to_string(snap.counter_or("sorcer.task.invocations"))});
  rows.push_back({"exertion", "task latency",
                  latency_row(snap, "sorcer.task.latency_us")});
  rows.push_back({"exertion", "job latency",
                  latency_row(snap, "sorcer.job.latency_us")});
  rows.push_back({"exertion", "failures / substitutions",
                  std::to_string(snap.counter_or("sorcer.exert_failures")) +
                      " / " +
                      std::to_string(snap.counter_or("sorcer.substitutions"))});
  rows.push_back({"invoke", "calls wire / in-process",
                  std::to_string(snap.counter_or("invoke.wire_calls")) +
                      " / " +
                      std::to_string(snap.counter_or("invoke.inprocess_calls"))});
  rows.push_back({"invoke", "timeouts / late responses",
                  std::to_string(snap.counter_or("invoke.timeouts")) + " / " +
                      std::to_string(snap.counter_or("invoke.late_responses"))});
  rows.push_back({"invoke", "wire round-trip",
                  latency_row(snap, "invoke.rtt_us")});
  rows.push_back(
      {"invoke", "outstanding / idle waits",
       util::format("%.0f", snap.gauge_or("invoke.outstanding")) + " / " +
           std::to_string(snap.counter_or("invoke.idle_waits"))});
  rows.push_back({"invoke", "overlap saved",
                  util::format("%.3f ms",
                               static_cast<double>(snap.counter_or(
                                   "invoke.overlap_saved_ns")) /
                                   1e6)});
  // Wire-path codec health: how warm the zero-copy marshalling machinery
  // runs (sorcer/codec.h). Hit/reuse rates near 1.0 mean steady-state calls
  // ship interned ids and recycled buffers only.
  rows.push_back({"wire", "marshal time",
                  util::format("%.3f ms",
                               static_cast<double>(snap.counter_or(
                                   "invoke.marshal_ns")) /
                                   1e6)});
  {
    const auto hits = snap.counter_or("invoke.intern_hits");
    const auto misses = snap.counter_or("invoke.intern_misses");
    const double rate =
        hits + misses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
    rows.push_back({"wire", "path intern hit rate",
                    util::format("%.1f%% (%llu/%llu)", 100.0 * rate,
                                 static_cast<unsigned long long>(hits),
                                 static_cast<unsigned long long>(hits + misses))});
  }
  {
    const auto acquires = snap.counter_or("invoke.pool_acquires");
    const auto reuse = snap.counter_or("invoke.pool_reuse");
    const double rate = acquires == 0 ? 0.0
                                      : static_cast<double>(reuse) /
                                            static_cast<double>(acquires);
    rows.push_back({"wire", "buffer pool reuse rate",
                    util::format("%.1f%% (%llu/%llu)", 100.0 * rate,
                                 static_cast<unsigned long long>(reuse),
                                 static_cast<unsigned long long>(acquires))});
  }
  {
    const auto wire_calls = snap.counter_or("invoke.wire_calls");
    const auto arena = snap.counter_or("invoke.arena_bytes");
    rows.push_back(
        {"wire", "arena bytes total / per call",
         wire_calls == 0
             ? std::to_string(arena) + " / n/a"
             : std::to_string(arena) + " / " +
                   util::format("%.1f", static_cast<double>(arena) /
                                            static_cast<double>(wire_calls))});
  }
  rows.push_back({"collection", "CSP collection latency",
                  latency_row(snap, "csp.collection_latency_us")});
  rows.push_back({"mailbox", "discarded / expired",
                  std::to_string(snap.counter_or("mailbox.discarded")) +
                      " / " +
                      std::to_string(snap.counter_or("mailbox.expired"))});
  rows.push_back({"historian", "readings appended / duplicates",
                  std::to_string(snap.counter_or("hist.appends")) + " / " +
                      std::to_string(snap.counter_or("hist.duplicates"))});
  rows.push_back({"historian", "evicted readings / series",
                  std::to_string(snap.counter_or("hist.evicted")) + " / " +
                      std::to_string(snap.counter_or("hist.series_evicted"))});
  rows.push_back(
      {"historian", "queries rollup / tiered / raw",
       std::to_string(snap.counter_or("hist.query_rollup")) + " / " +
           std::to_string(snap.counter_or("hist.query_tiered")) + " / " +
           std::to_string(snap.counter_or("hist.query_raw"))});
  // Compressed retention (PR 10): sealed-chain compression, the
  // storage-class byte split and the read executor's admission queue.
  rows.push_back(
      {"historian", "compression ratio / sealed blocks",
       util::format("%.1fx", snap.gauge_or("hist.compression_ratio")) + " / " +
           util::format("%.0f", snap.gauge_or("hist.sealed_blocks"))});
  rows.push_back(
      {"historian", "bytes raw / sealed / tiered",
       util::format("%.0f / %.0f / %.0f",
                    snap.gauge_or("hist.bytes_uncompressed"),
                    snap.gauge_or("hist.bytes_sealed"),
                    snap.gauge_or("hist.bytes_tiered"))});
  rows.push_back(
      {"historian", "read queue depth / served / inline",
       util::format("%.0f", snap.gauge_or("hist.read_queue_depth")) + " / " +
           std::to_string(snap.counter_or("hist.reads_served")) + " / " +
           std::to_string(snap.counter_or("hist.read_inline"))});
  rows.push_back({"historian", "read wait",
                  latency_row(snap, "hist.read_wait_us")});
  rows.push_back({"historian", "feeder pushed / dropped",
                  std::to_string(snap.counter_or("hist.feeder_pushed")) +
                      " / " +
                      std::to_string(snap.counter_or("hist.feeder_dropped"))});
  rows.push_back({"flow", "active flows",
                  util::format("%.0f", snap.gauge_or("flow.flows"))});
  rows.push_back({"flow", "readings in / emitted",
                  std::to_string(snap.counter_or("flow.readings_in")) + " / " +
                      std::to_string(snap.counter_or("flow.emitted"))});
  rows.push_back(
      {"flow", "filtered out / duplicates dropped",
       std::to_string(snap.counter_or("flow.filtered_out")) + " / " +
           std::to_string(snap.counter_or("flow.duplicates_dropped"))});
  rows.push_back({"flow", "frames pushed / requeued",
                  std::to_string(snap.counter_or("flow.frames_pushed")) +
                      " / " +
                      std::to_string(snap.counter_or("flow.frames_requeued"))});
  rows.push_back({"flow", "sink pushed / failures",
                  std::to_string(snap.counter_or("flow.sink_pushed")) + " / " +
                      std::to_string(snap.counter_or("flow.sink_failures"))});
  rows.push_back({"provisioning", "provisions / re-provisions",
                  std::to_string(snap.counter_or("rio.provisions")) + " / " +
                      std::to_string(snap.counter_or("rio.reprovisions"))});
  rows.push_back(
      {"provisioning", "failed placements / cascade restarts",
       std::to_string(snap.counter_or("rio.failed_placements")) + " / " +
           std::to_string(snap.counter_or("rio.cascades"))});
  rows.push_back(
      {"provisioning", "placement dedups / degrade events",
       std::to_string(snap.counter_or("rio.placement_dedup")) + " / " +
           std::to_string(snap.counter_or("rio.degrade_events"))});
  rows.push_back(
      {"provisioning", "dependency edges / degraded / unplaced",
       std::to_string(static_cast<std::uint64_t>(
           snap.gauge_or("rio.dep_edges"))) +
           " / " +
           std::to_string(
               static_cast<std::uint64_t>(snap.gauge_or("rio.degraded"))) +
           " / " +
           std::to_string(
               static_cast<std::uint64_t>(snap.gauge_or("rio.unplaced")))});
  rows.push_back({"network", "messages sent / dropped",
                  std::to_string(snap.counter_or("simnet.messages_sent")) +
                      " / " +
                      std::to_string(snap.counter_or("simnet.messages_dropped"))});
  rows.push_back(
      {"network", "payload / header bytes",
       std::to_string(snap.counter_or("simnet.payload_bytes_sent")) + " / " +
           std::to_string(snap.counter_or("simnet.header_bytes_sent"))});
  rows.push_back(
      {"network", "wire bytes UDP/TCP/sess/mcast",
       std::to_string(snap.counter_or("simnet.wire_bytes.udp")) + " / " +
           std::to_string(snap.counter_or("simnet.wire_bytes.tcp")) + " / " +
           std::to_string(snap.counter_or("simnet.wire_bytes.tcp_session")) +
           " / " +
           std::to_string(snap.counter_or("simnet.wire_bytes.multicast"))});
  rows.push_back({"network", "tracing header bytes",
                  std::to_string(snap.counter_or("simnet.trace_bytes_sent"))});

  out += util::render_table({"layer", "metric", "value"}, rows);
  return out;
}

}  // namespace sensorcer::obs
