#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace sensorcer::obs {

namespace {

/// %.17g survives a double round trip but prints integral values without an
/// exponent tail; good enough for deterministic trajectory lines.
std::string number(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  return util::format("%.6g", v);
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string render_table(const Snapshot& snapshot) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, value] : snapshot.counters) {
    rows.push_back({name, "counter", std::to_string(value)});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    rows.push_back({name, "gauge", number(value)});
  }
  for (const auto& h : snapshot.histograms) {
    rows.push_back({h.name, "histogram",
                    util::format("n=%llu mean=%s p50=%s p99=%s max=%s",
                                 static_cast<unsigned long long>(h.count),
                                 number(h.mean).c_str(), number(h.p50).c_str(),
                                 number(h.p99).c_str(), number(h.max).c_str())});
  }
  std::sort(rows.begin(), rows.end());
  return util::render_table({"metric", "kind", "value"}, rows);
}

std::string to_json_line(const Snapshot& snapshot) {
  std::string out = "{\"sim_time_us\":" + std::to_string(snapshot.sim_time);

  out += ",\"counters\":{";
  auto counters = snapshot.counters;
  std::sort(counters.begin(), counters.end());
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ',';
    out += quoted(counters[i].first) + ":" + std::to_string(counters[i].second);
  }
  out += "},\"gauges\":{";
  auto gauges = snapshot.gauges;
  std::sort(gauges.begin(), gauges.end());
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ',';
    out += quoted(gauges[i].first) + ":" + number(gauges[i].second);
  }
  out += "},\"histograms\":{";
  auto histograms = snapshot.histograms;
  std::sort(histograms.begin(), histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) out += ',';
    const auto& h = histograms[i];
    out += quoted(h.name) + ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + number(h.sum) + ",\"mean\":" + number(h.mean) +
           ",\"p50\":" + number(h.p50) + ",\"p90\":" + number(h.p90) +
           ",\"p99\":" + number(h.p99) + ",\"max\":" + number(h.max) + "}";
  }
  out += "}}";
  return out;
}

std::string render_trace_tree(const std::vector<SpanRecord>& spans) {
  // Children in recorded order under each parent; parents not present in
  // `spans` promote their children to the root level.
  std::unordered_set<std::uint64_t> present;
  for (const auto& s : spans) present.insert(s.span_id);
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
  for (const auto& s : spans) {
    if (s.parent_id != 0 && present.contains(s.parent_id)) {
      children[s.parent_id].push_back(&s);
    } else {
      roots.push_back(&s);
    }
  }

  std::string out;
  const std::function<void(const SpanRecord&, const std::string&, bool, bool)>
      render = [&](const SpanRecord& span, const std::string& prefix,
                   bool last, bool root) {
        const std::string label =
            span.name + "  [" +
            util::format_duration(span.sim_end - span.sim_start) +
            (span.ok ? "]" : ", FAILED]") + "\n";
        out += root ? label : prefix + (last ? "└─ " : "├─ ") + label;
        const auto it = children.find(span.span_id);
        if (it == children.end()) return;
        const std::string child_prefix =
            root ? prefix : prefix + (last ? "   " : "│  ");
        for (std::size_t i = 0; i < it->second.size(); ++i) {
          render(*it->second[i], child_prefix, i + 1 == it->second.size(),
                 false);
        }
      };
  for (const SpanRecord* root : roots) {
    render(*root, "", true, true);
  }
  return out;
}

}  // namespace sensorcer::obs
