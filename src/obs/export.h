#pragma once
// Snapshot export — turns a metrics Snapshot into the two forms the repo
// consumes: an aligned ASCII table (browser panes, bench stdout) and a
// single JSON line (appendable into BENCH_*.json trajectory files, one
// snapshot per line).

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensorcer::obs {

/// Aligned ASCII table of every instrument in the snapshot.
[[nodiscard]] std::string render_table(const Snapshot& snapshot);

/// One-line JSON object:
/// {"sim_time_us":N,"counters":{...},"gauges":{...},"histograms":{"name":
/// {"count":..,"sum":..,"mean":..,"p50":..,"p90":..,"p99":..,"max":..}}}
/// Keys are name-sorted, numbers are locale-independent — two snapshots of
/// identical state serialize byte-identically (trajectory diffing).
[[nodiscard]] std::string to_json_line(const Snapshot& snapshot);

/// ASCII tree of the given spans (one trace, as returned by
/// SpanCollector::trace), children indented under parents, with per-span
/// sim duration. Orphans (parent not retained) print at the root.
[[nodiscard]] std::string render_trace_tree(
    const std::vector<SpanRecord>& spans);

}  // namespace sensorcer::obs
