#pragma once
// Metrics registry — the measurement substrate of the observability
// subsystem (obs/). Named counters, gauges and fixed-bucket histograms with
// atomic hot paths: instrumented layers resolve a handle once (a mutex is
// taken only at name-resolution time) and then update it with relaxed
// atomics, so recording a metric costs nanoseconds even from the Jobber's
// parallel workers. A snapshot() walks every instrument into a plain value
// struct that export.h renders as a text table or JSON line.
//
// Motivation: the paper's §II.1 argument is quantitative (protocol overhead
// vs. aggregation), and EMMA-style resource middleware lives or dies by
// visibility into per-hop cost — every layer of this repo reports through
// one registry instead of ad-hoc per-module counters.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/sim_time.h"

namespace sensorcer::obs {

/// Monotonic event count. All updates are relaxed atomics.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (population sizes, utilization). Add/sub are CAS
/// loops so concurrent adjustments never lose updates.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  void sub(double d) { add(-d); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket upper bounds suited to the framework's virtual-time latencies:
/// roughly logarithmic from 1us to 10s.
std::vector<double> default_latency_bounds();

/// Fixed-bucket histogram. Bucket bounds are immutable after construction,
/// so observe() is a binary search plus three relaxed atomic updates — safe
/// and cheap from any thread. Percentiles are estimated by linear
/// interpolation inside the owning bucket (exact enough for p50/p99 health
/// reporting; benches that need exact ranks keep their sample vectors).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = default_latency_bounds());

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Estimated value at percentile `p` in [0,100]; 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; one extra overflow bucket past the last bound.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of one histogram, for reports and JSON export.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Point-in-time copy of a whole registry. Entries are name-sorted so two
/// snapshots of identical state compare (and serialize) identically.
struct Snapshot {
  util::SimTime sim_time = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Fold another snapshot in (used to combine the global registry with a
  /// Network's private registry for the federation health report). Entries
  /// with the same name are summed.
  void merge(const Snapshot& other);

  [[nodiscard]] std::uint64_t counter_or(const std::string& name,
                                         std::uint64_t fallback = 0) const;
  [[nodiscard]] double gauge_or(const std::string& name,
                                double fallback = 0.0) const;
  [[nodiscard]] const HistogramSnapshot* histogram(
      const std::string& name) const;
};

/// Named instrument store. Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime; resolution locks, updates do not.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  [[nodiscard]] Snapshot snapshot(util::SimTime sim_time = 0) const;

  /// Zero every instrument (names and handles stay valid).
  void reset();

  /// Process-wide registry used by the layer instrumentation hooks.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for Registry::global().
inline Registry& metrics() { return Registry::global(); }

}  // namespace sensorcer::obs
