#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <utility>

namespace sensorcer::obs {

namespace {

std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<const util::Scheduler*> g_sim_clock{nullptr};
thread_local TraceContext t_current_context{};

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SpanCollector::SpanCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void SpanCollector::record(SpanRecord span) {
  std::lock_guard lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> SpanCollector::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> SpanCollector::trace(std::uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (auto& span : snapshot()) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

std::uint64_t SpanCollector::recorded() const {
  std::lock_guard lock(mu_);
  return recorded_;
}

std::uint64_t SpanCollector::dropped() const {
  std::lock_guard lock(mu_);
  return recorded_ - ring_.size();
}

void SpanCollector::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

Span::Span(Span&& other) noexcept
    : collector_(std::exchange(other.collector_, nullptr)),
      record_(std::move(other.record_)) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    collector_ = std::exchange(other.collector_, nullptr);
    record_ = std::move(other.record_);
  }
  return *this;
}

void Span::finish() {
  if (collector_ == nullptr) return;
  record_.sim_end = sim_now();
  record_.wall_end_us = wall_now_us();
  collector_->record(std::move(record_));
  collector_ = nullptr;
}

Span Tracer::start_span(std::string name, TraceContext parent) {
  SpanRecord record;
  record.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  if (parent.valid()) {
    record.trace_id = parent.trace_id;
    record.parent_id = parent.span_id;
  } else {
    record.trace_id = record.span_id;  // root span opens the trace
  }
  record.name = std::move(name);
  record.sim_start = sim_now();
  record.wall_start_us = wall_now_us();
  return Span(&collector_, std::move(record));
}

Span Tracer::start_span(std::string name) {
  return start_span(std::move(name), current_context());
}

TraceContext current_context() { return t_current_context; }

ContextGuard::ContextGuard(TraceContext ctx)
    : previous_(std::exchange(t_current_context, ctx)) {}

ContextGuard::~ContextGuard() { t_current_context = previous_; }

SpanCollector& span_collector() {
  static SpanCollector instance;
  return instance;
}

Tracer& tracer() {
  static Tracer instance{span_collector()};
  return instance;
}

void set_sim_clock(const util::Scheduler* scheduler) {
  g_sim_clock.store(scheduler, std::memory_order_release);
}

const util::Scheduler* sim_clock() {
  return g_sim_clock.load(std::memory_order_acquire);
}

util::SimTime sim_now() {
  const util::Scheduler* clock = sim_clock();
  return clock == nullptr ? 0 : clock->now();
}

}  // namespace sensorcer::obs
