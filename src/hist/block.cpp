#include "hist/block.h"

#include <bit>
#include <cstring>
#include <limits>

namespace sensorcer::hist {
namespace {

// Serialized layout (little-endian, byte-addressed):
//
//   [0]  u8  magic 0x5B
//   [1]  u8  version (1)
//   [2]  u8  flags (bit0: quality section present)
//   [3]  u8  reserved
//   [4]  u32 count
//   [8]  u32 stream_bytes          (ts/value bitstream length)
//   [12] bitstream                 (delta-of-delta ts + XOR values)
//   [12 + stream_bytes] quality    (2 bits/reading, only if flags bit0)
//   tail: 64-byte footer           (see write_footer / read_footer)
//
// Bitstream grammar, per reading after the first (which is stored raw as
// 64-bit timestamp + 64-bit value bits):
//
//   timestamp: dod = (ts - prev_ts) - prev_delta
//     '0'                    dod == 0
//     '10'    + 7 bits       dod in [-63, 64]        (stored dod + 63)
//     '110'   + 9 bits       dod in [-255, 256]      (stored dod + 255)
//     '1110'  + 12 bits      dod in [-2047, 2048]    (stored dod + 2047)
//     '11110' + 32 bits      dod fits int32          (two's complement)
//     '11111' + 64 bits      anything                (two's complement)
//
//   value: x = bits(value) XOR bits(prev_value)
//     '0'                    x == 0
//     '10'    + prev window  meaningful bits of x fit the previous
//                            leading/length window (stored in that window)
//     '11'    + 6b leading + 6b (meaningful - 1) + meaningful bits of x
constexpr std::uint8_t kMagic = 0x5B;
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagQuality = 0x01;
constexpr std::size_t kHeaderBytes = 12;
constexpr std::size_t kFooterBytes = 64;

void put_u32(std::vector<std::uint8_t>& out, std::size_t at,
             std::uint32_t v) {
  out[at] = static_cast<std::uint8_t>(v);
  out[at + 1] = static_cast<std::uint8_t>(v >> 8);
  out[at + 2] = static_cast<std::uint8_t>(v >> 16);
  out[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// MSB-first bit appender over a growing byte vector.
class BitWriter {
 public:
  /// Append the low `bits` bits of `v`, most-significant first.
  void put(std::uint64_t v, unsigned bits) {
    while (bits > 0) {
      unsigned take = 8 - fill_;
      if (take > bits) take = bits;
      std::uint64_t chunk =
          (v >> (bits - take)) & ((std::uint64_t{1} << take) - 1);
      cur_ = static_cast<std::uint8_t>((cur_ << take) | chunk);
      fill_ += take;
      bits -= take;
      if (fill_ == 8) {
        buf_.push_back(cur_);
        cur_ = 0;
        fill_ = 0;
      }
    }
  }

  /// Pad the final partial byte with zero bits and return the buffer.
  std::vector<std::uint8_t> take() {
    if (fill_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(cur_ << (8 - fill_)));
      cur_ = 0;
      fill_ = 0;
    }
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint8_t cur_ = 0;
  unsigned fill_ = 0;
};

/// Bounds-checked MSB-first bit reader over a byte span.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size, std::size_t bit_pos)
      : data_(data), bit_limit_(size * 8), bit_pos_(bit_pos) {}

  /// Read `bits` bits into `out`; false (without advancing past the end)
  /// when the stream is exhausted.
  bool get(unsigned bits, std::uint64_t& out) {
    if (bit_pos_ + bits > bit_limit_) return false;
    std::uint64_t v = 0;
    unsigned remaining = bits;
    while (remaining > 0) {
      std::size_t byte = bit_pos_ >> 3;
      unsigned offset = static_cast<unsigned>(bit_pos_ & 7);
      unsigned take = 8 - offset;
      if (take > remaining) take = remaining;
      unsigned shift = 8 - offset - take;
      std::uint64_t chunk =
          (static_cast<std::uint64_t>(data_[byte]) >> shift) &
          ((std::uint64_t{1} << take) - 1);
      v = (v << take) | chunk;
      bit_pos_ += take;
      remaining -= take;
    }
    out = v;
    return true;
  }

  [[nodiscard]] std::size_t bit_pos() const { return bit_pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t bit_limit_;
  std::size_t bit_pos_;
};

/// Sign-extend the low `bits` bits of `v`.
std::int64_t sign_extend(std::uint64_t v, unsigned bits) {
  if (bits >= 64) return static_cast<std::int64_t>(v);
  std::uint64_t sign = std::uint64_t{1} << (bits - 1);
  return static_cast<std::int64_t>((v ^ sign) - sign);
}

void encode_dod(BitWriter& w, std::int64_t dod) {
  if (dod == 0) {
    w.put(0, 1);
  } else if (dod >= -63 && dod <= 64) {
    w.put(0b10, 2);
    w.put(static_cast<std::uint64_t>(dod + 63), 7);
  } else if (dod >= -255 && dod <= 256) {
    w.put(0b110, 3);
    w.put(static_cast<std::uint64_t>(dod + 255), 9);
  } else if (dod >= -2047 && dod <= 2048) {
    w.put(0b1110, 4);
    w.put(static_cast<std::uint64_t>(dod + 2047), 12);
  } else if (dod >= std::numeric_limits<std::int32_t>::min() &&
             dod <= std::numeric_limits<std::int32_t>::max()) {
    w.put(0b11110, 5);
    w.put(static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              static_cast<std::int32_t>(dod))),
          32);
  } else {
    w.put(0b11111, 5);
    w.put(static_cast<std::uint64_t>(dod), 64);
  }
}

}  // namespace

std::shared_ptr<const SealedBlock> SealedBlock::seal(
    const std::vector<sensor::Reading>& readings) {
  if (readings.empty() || readings.size() > std::numeric_limits<std::uint32_t>::max()) {
    return nullptr;
  }

  BitWriter stream;
  util::SimTime prev_ts = 0;
  util::SimDuration prev_delta = 0;
  std::uint64_t prev_bits = 0;
  unsigned prev_leading = 0;
  unsigned prev_meaningful = 0;
  bool window_valid = false;
  bool any_non_good = false;

  Footer footer;
  footer.first_ts = readings.front().timestamp;
  footer.last_ts = readings.back().timestamp;
  footer.count = static_cast<std::uint32_t>(readings.size());

  for (std::size_t i = 0; i < readings.size(); ++i) {
    const sensor::Reading& r = readings[i];
    const std::uint64_t vbits = double_bits(r.value);
    if (i == 0) {
      stream.put(static_cast<std::uint64_t>(r.timestamp), 64);
      stream.put(vbits, 64);
      prev_ts = r.timestamp;
      prev_delta = 0;
      prev_bits = vbits;
    } else {
      const util::SimDuration delta = r.timestamp - prev_ts;
      encode_dod(stream, delta - prev_delta);
      prev_delta = delta;
      prev_ts = r.timestamp;

      const std::uint64_t x = vbits ^ prev_bits;
      if (x == 0) {
        stream.put(0, 1);
      } else {
        unsigned leading = static_cast<unsigned>(std::countl_zero(x));
        unsigned trailing = static_cast<unsigned>(std::countr_zero(x));
        if (leading > 63) leading = 63;
        if (window_valid && leading >= prev_leading &&
            trailing >= (64 - prev_leading - prev_meaningful)) {
          // Fits the previous window: '10' + meaningful bits in that window.
          stream.put(0b10, 2);
          stream.put(x >> (64 - prev_leading - prev_meaningful),
                     prev_meaningful);
        } else {
          unsigned meaningful = 64 - leading - trailing;
          stream.put(0b11, 2);
          stream.put(leading, 6);
          stream.put(meaningful - 1, 6);
          stream.put(x >> trailing, meaningful);
          prev_leading = leading;
          prev_meaningful = meaningful;
          window_valid = true;
        }
      }
      prev_bits = vbits;
    }

    if (r.quality != sensor::Quality::kGood) any_non_good = true;
    if (r.quality != sensor::Quality::kBad) {
      if (footer.good_count == 0 || r.value < footer.min) footer.min = r.value;
      if (footer.good_count == 0 || r.value > footer.max) footer.max = r.value;
      footer.sum += r.value;
      footer.last = r.value;
      footer.last_good_ts = r.timestamp;
      ++footer.good_count;
    }
  }

  std::vector<std::uint8_t> stream_bytes = stream.take();

  auto block = std::shared_ptr<SealedBlock>(new SealedBlock());
  std::vector<std::uint8_t>& out = block->bytes_;
  std::size_t quality_bytes = any_non_good ? (readings.size() + 3) / 4 : 0;
  out.reserve(kHeaderBytes + stream_bytes.size() + quality_bytes +
              kFooterBytes);
  out.resize(kHeaderBytes, 0);
  out[0] = kMagic;
  out[1] = kVersion;
  out[2] = any_non_good ? kFlagQuality : 0;
  put_u32(out, 4, footer.count);
  put_u32(out, 8, static_cast<std::uint32_t>(stream_bytes.size()));
  out.insert(out.end(), stream_bytes.begin(), stream_bytes.end());

  if (any_non_good) {
    BitWriter qw;
    for (const sensor::Reading& r : readings) {
      qw.put(static_cast<std::uint64_t>(r.quality) & 0x3, 2);
    }
    std::vector<std::uint8_t> qbytes = qw.take();
    out.insert(out.end(), qbytes.begin(), qbytes.end());
  }

  // 64-byte footer.
  put_u64(out, static_cast<std::uint64_t>(footer.first_ts));
  put_u64(out, static_cast<std::uint64_t>(footer.last_ts));
  std::size_t counts_at = out.size();
  out.resize(out.size() + 8, 0);
  put_u32(out, counts_at, footer.count);
  put_u32(out, counts_at + 4, footer.good_count);
  put_u64(out, double_bits(footer.min));
  put_u64(out, double_bits(footer.max));
  put_u64(out, double_bits(footer.sum));
  put_u64(out, double_bits(footer.last));
  put_u64(out, static_cast<std::uint64_t>(footer.last_good_ts));

  block->footer_ = footer;
  block->stream_bytes_ = stream_bytes.size();
  block->quality_offset_ = any_non_good ? kHeaderBytes + stream_bytes.size() : 0;
  return block;
}

util::Result<std::shared_ptr<const SealedBlock>> SealedBlock::open(
    std::vector<std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes + kFooterBytes) {
    return {util::ErrorCode::kInvalidArgument, "sealed block truncated"};
  }
  if (bytes[0] != kMagic) {
    return {util::ErrorCode::kInvalidArgument, "sealed block bad magic"};
  }
  if (bytes[1] != kVersion) {
    return {util::ErrorCode::kInvalidArgument, "sealed block bad version"};
  }
  const std::uint8_t flags = bytes[2];
  if ((flags & ~kFlagQuality) != 0) {
    return {util::ErrorCode::kInvalidArgument, "sealed block bad flags"};
  }
  const std::uint32_t count = get_u32(bytes.data() + 4);
  const std::uint32_t stream_bytes = get_u32(bytes.data() + 8);
  if (count == 0) {
    return {util::ErrorCode::kInvalidArgument, "sealed block empty"};
  }
  const std::size_t quality_bytes =
      (flags & kFlagQuality) != 0 ? (static_cast<std::size_t>(count) + 3) / 4
                                  : 0;
  const std::size_t expected = kHeaderBytes +
                               static_cast<std::size_t>(stream_bytes) +
                               quality_bytes + kFooterBytes;
  if (bytes.size() != expected) {
    return {util::ErrorCode::kInvalidArgument, "sealed block size mismatch"};
  }

  auto block = std::shared_ptr<SealedBlock>(new SealedBlock());
  const std::uint8_t* footer =
      bytes.data() + bytes.size() - kFooterBytes;
  Footer& f = block->footer_;
  f.first_ts = static_cast<util::SimTime>(get_u64(footer));
  f.last_ts = static_cast<util::SimTime>(get_u64(footer + 8));
  f.count = get_u32(footer + 16);
  f.good_count = get_u32(footer + 20);
  f.min = bits_double(get_u64(footer + 24));
  f.max = bits_double(get_u64(footer + 32));
  f.sum = bits_double(get_u64(footer + 40));
  f.last = bits_double(get_u64(footer + 48));
  f.last_good_ts = static_cast<util::SimTime>(get_u64(footer + 56));
  if (f.count != count || f.good_count > f.count ||
      f.last_ts < f.first_ts) {
    return {util::ErrorCode::kInvalidArgument, "sealed block bad footer"};
  }
  block->stream_bytes_ = stream_bytes;
  block->quality_offset_ =
      (flags & kFlagQuality) != 0 ? kHeaderBytes + stream_bytes : 0;
  block->bytes_ = std::move(bytes);
  return {std::shared_ptr<const SealedBlock>(std::move(block))};
}

void SealedBlock::add_footer_stats(AggregateStats& agg) const {
  if (footer_.good_count == 0) return;
  if (agg.count == 0 || footer_.min < agg.min) agg.min = footer_.min;
  if (agg.count == 0 || footer_.max > agg.max) agg.max = footer_.max;
  agg.sum += footer_.sum;
  agg.count += footer_.good_count;
  if (footer_.last_good_ts >= agg.last_ts) {
    agg.last = footer_.last;
    agg.last_ts = footer_.last_good_ts;
  }
}

SealedBlock::Cursor::Cursor(const SealedBlock& block) : block_(block) {}

bool SealedBlock::Cursor::next(sensor::Reading& out) {
  if (truncated_ || index_ >= block_.footer_.count) return false;

  BitReader stream(block_.bytes_.data() + kHeaderBytes, block_.stream_bytes_,
                   bit_pos_);
  std::uint64_t bits = 0;

  if (index_ == 0) {
    std::uint64_t raw_ts = 0;
    if (!stream.get(64, raw_ts) || !stream.get(64, bits)) {
      truncated_ = true;
      return false;
    }
    prev_ts_ = static_cast<util::SimTime>(raw_ts);
    prev_delta_ = 0;
    prev_value_bits_ = bits;
  } else {
    // Timestamp: prefix-coded delta-of-delta class.
    std::int64_t dod = 0;
    std::uint64_t b = 0;
    if (!stream.get(1, b)) {
      truncated_ = true;
      return false;
    }
    if (b == 1) {
      unsigned klass = 1;
      while (klass < 5) {
        if (!stream.get(1, b)) {
          truncated_ = true;
          return false;
        }
        if (b == 0) break;
        ++klass;
      }
      bool ok = true;
      switch (klass) {
        case 1:
          ok = stream.get(7, bits);
          dod = static_cast<std::int64_t>(bits) - 63;
          break;
        case 2:
          ok = stream.get(9, bits);
          dod = static_cast<std::int64_t>(bits) - 255;
          break;
        case 3:
          ok = stream.get(12, bits);
          dod = static_cast<std::int64_t>(bits) - 2047;
          break;
        case 4:
          ok = stream.get(32, bits);
          dod = sign_extend(bits, 32);
          break;
        default:
          ok = stream.get(64, bits);
          dod = static_cast<std::int64_t>(bits);
          break;
      }
      if (!ok) {
        truncated_ = true;
        return false;
      }
    }
    prev_delta_ += dod;
    prev_ts_ += prev_delta_;

    // Value: XOR against the previous value's bits.
    if (!stream.get(1, b)) {
      truncated_ = true;
      return false;
    }
    if (b == 1) {
      if (!stream.get(1, b)) {
        truncated_ = true;
        return false;
      }
      std::uint64_t x = 0;
      if (b == 0) {
        // Previous window.
        if (!window_valid_ || prev_meaningful_ == 0 ||
            !stream.get(prev_meaningful_, bits)) {
          truncated_ = true;
          return false;
        }
        x = bits << (64 - prev_leading_ - prev_meaningful_);
      } else {
        std::uint64_t leading = 0;
        std::uint64_t mlen = 0;
        if (!stream.get(6, leading) || !stream.get(6, mlen)) {
          truncated_ = true;
          return false;
        }
        unsigned meaningful = static_cast<unsigned>(mlen) + 1;
        if (leading + meaningful > 64 || !stream.get(meaningful, bits)) {
          truncated_ = true;
          return false;
        }
        prev_leading_ = static_cast<unsigned>(leading);
        prev_meaningful_ = meaningful;
        window_valid_ = true;
        x = bits << (64 - prev_leading_ - prev_meaningful_);
      }
      prev_value_bits_ ^= x;
    }
  }

  out.timestamp = prev_ts_;
  out.value = bits_double(prev_value_bits_);
  out.sequence = 0;
  out.quality = sensor::Quality::kGood;
  if (block_.quality_offset_ != 0) {
    const std::size_t byte = block_.quality_offset_ + index_ / 4;
    if (byte >= block_.bytes_.size() - kFooterBytes) {
      truncated_ = true;
      return false;
    }
    const unsigned shift = 6 - 2 * (index_ % 4);
    const unsigned q = (block_.bytes_[byte] >> shift) & 0x3;
    // Two-bit values cover the Quality enum exactly (kGood/kSuspect/kBad);
    // an out-of-range pattern from corruption degrades to kBad.
    out.quality = q <= 2 ? static_cast<sensor::Quality>(q)
                         : sensor::Quality::kBad;
  }

  bit_pos_ = stream.bit_pos();
  ++index_;
  return true;
}

std::shared_ptr<const TierBlock> TierBlock::from_sealed(
    const SealedBlock& block, util::SimDuration resolution) {
  auto tier = std::make_shared<TierBlock>();
  tier->resolution = resolution;
  tier->first_ts = block.first_ts();
  tier->last_ts = block.last_ts();
  SealedBlock::Cursor cursor = block.open_cursor();
  sensor::Reading r;
  while (cursor.next(r)) {
    if (r.quality == sensor::Quality::kBad) {
      ++tier->bad_dropped;
      continue;
    }
    const util::SimTime start = (r.timestamp / resolution) * resolution;
    if (tier->buckets.empty() || tier->buckets.back().start != start) {
      RollupBucket bucket;
      bucket.start = start;
      tier->buckets.push_back(bucket);
    }
    tier->buckets.back().add(r.timestamp, r.value);
    ++tier->readings;
  }
  return tier;
}

std::shared_ptr<const TierBlock> TierBlock::rebucket(
    const TierBlock& block, util::SimDuration resolution) {
  auto tier = std::make_shared<TierBlock>();
  tier->resolution = resolution;
  tier->first_ts = block.first_ts;
  tier->last_ts = block.last_ts;
  tier->readings = block.readings;
  tier->bad_dropped = block.bad_dropped;
  for (const RollupBucket& bucket : block.buckets) {
    const util::SimTime start = (bucket.start / resolution) * resolution;
    if (tier->buckets.empty() || tier->buckets.back().start != start) {
      RollupBucket merged;
      merged.start = start;
      tier->buckets.push_back(merged);
    }
    tier->buckets.back().merge(bucket);
  }
  return tier;
}

}  // namespace sensorcer::hist
