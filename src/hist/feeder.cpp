#include "hist/feeder.h"

#include <algorithm>
#include <utility>

#include "core/interfaces.h"
#include "obs/metrics.h"
#include "sorcer/exert.h"
#include "sorcer/exertion.h"

namespace sensorcer::hist {

namespace {

struct FeederMetrics {
  obs::Counter& pushed;
  obs::Counter& dropped;
  obs::Counter& failed_batches;
};

FeederMetrics& feeder_metrics() {
  static FeederMetrics m{obs::metrics().counter("hist.feeder_pushed"),
                         obs::metrics().counter("hist.feeder_dropped"),
                         obs::metrics().counter("hist.feeder_failed")};
  return m;
}

double encode_quality(sensor::Quality q) {
  switch (q) {
    case sensor::Quality::kGood: return 0.0;
    case sensor::Quality::kSuspect: return 1.0;
    case sensor::Quality::kBad: return 2.0;
  }
  return 0.0;
}

registry::ServiceTemplate historian_template() {
  return registry::ServiceTemplate::by_type(core::kDataCollectionType);
}

}  // namespace

HistorianFeeder::HistorianFeeder(std::string sensor, util::Scheduler& scheduler,
                                 sorcer::ServiceAccessor& accessor,
                                 FeederConfig config)
    : sensor_(std::move(sensor)),
      scheduler_(scheduler),
      accessor_(accessor),
      config_(config) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.flush_period > 0) {
    flush_timer_ =
        scheduler_.schedule_every(config_.flush_period, [this] { flush(); });
  }
}

HistorianFeeder::~HistorianFeeder() {
  *alive_ = false;
  scheduler_.cancel(flush_timer_);
  if (pending_flush_timer_ != 0) scheduler_.cancel(pending_flush_timer_);
  unbind();
}

void HistorianFeeder::bind(const std::shared_ptr<registry::LookupService>& lus,
                           registry::LeaseRenewalManager& lrm) {
  unbind();
  lus_ = lus;
  lrm_ = &lrm;
  registry::EventRegistration reg = lus->notify(
      historian_template(), registry::kAllTransitions,
      [this](const registry::ServiceEvent& event) { on_transition(event); },
      config_.subscription_lease);
  subscription_id_ = reg.id;
  subscription_lease_ = reg.lease.id;
  lrm.manage(reg.lease, lus, config_.subscription_lease);
  bound_ = lus->lookup_one(historian_template()).is_ok();
  if (bound_ && !pending_.empty()) schedule_flush();
}

void HistorianFeeder::unbind() {
  if (auto lus = lus_.lock()) {
    if (lrm_ != nullptr && !subscription_lease_.is_nil()) {
      lrm_->release(subscription_lease_);
    }
    if (!subscription_id_.is_nil()) {
      (void)lus->cancel_notify(subscription_id_);
    }
  }
  lus_.reset();
  lrm_ = nullptr;
  subscription_id_ = util::Uuid{};
  subscription_lease_ = util::Uuid{};
  bound_ = false;
}

void HistorianFeeder::on_transition(const registry::ServiceEvent& event) {
  if (event.transition == registry::Transition::kNoMatchToMatch) {
    bound_ = true;
    if (!pending_.empty()) schedule_flush();
    return;
  }
  if (event.transition == registry::Transition::kMatchToNoMatch) {
    // The historian that held our pushes is gone; stay bound only if
    // another DataCollection provider remains registered.
    auto lus = lus_.lock();
    bound_ = lus != nullptr && lus->lookup_one(historian_template()).is_ok();
  }
}

void HistorianFeeder::offer(const sensor::Reading& reading) {
  pending_.push_back(reading);
  while (pending_.size() > config_.pending_cap) {
    pending_.pop_front();
    ++dropped_;
    feeder_metrics().dropped.add();
  }
  if (bound_ && pending_.size() >= config_.batch_size) schedule_flush();
}

void HistorianFeeder::backfill(const sensor::DataLog& log) {
  log.for_each(0, sensor::kEndOfTime,
               [this](const sensor::Reading& r) { offer(r); });
  if (bound_) schedule_flush();
}

void HistorianFeeder::schedule_flush() {
  if (flush_scheduled_ || flushing_) return;
  flush_scheduled_ = true;
  // Zero-delay timer: all push traffic happens inside scheduler pumps, so a
  // wire-mode exert never starts from the middle of an offer().
  pending_flush_timer_ = scheduler_.schedule_after(0, [this] {
    flush_scheduled_ = false;
    pending_flush_timer_ = 0;
    flush();
  });
}

namespace {
/// Wire flushes pump the scheduler, and the pump fires OTHER feeders' flush
/// timers on this same stack — one nesting level per live feeder, and a
/// churny run mints replacement feeders (each backfill schedules a flush)
/// faster than the stack unwinds. The per-feeder flushing_ guard cannot see
/// across objects, so a thread-local depth caps the nesting; a skipped
/// feeder's readings stay pending and go out on its periodic timer (or the
/// final quiesce drain) at a shallower depth.
constexpr int kMaxNestedFlushes = 8;
thread_local int g_flush_depth = 0;

struct FlushDepthGuard {
  FlushDepthGuard() { ++g_flush_depth; }
  ~FlushDepthGuard() { --g_flush_depth; }
};
}  // namespace

std::size_t HistorianFeeder::flush() {
  if (flushing_ || !bound_ || pending_.empty()) return 0;
  if (g_flush_depth >= kMaxNestedFlushes) return 0;
  FlushDepthGuard depth_guard;
  flushing_ = true;
  // Local copy: outlives `this` if the exert below deletes the feeder.
  const std::shared_ptr<const bool> alive = alive_;
  // Snapshot the pending window: readings offered while the batch pumps the
  // fabric land behind it, and failed chunks re-queue at the front so
  // ordering survives a partial failure.
  std::vector<sensor::Reading> window(pending_.begin(), pending_.end());
  pending_.clear();

  // Marshal every max_batch chunk up front and pipeline all appendBatch
  // calls as one scatter-gather batch: K chunks cost ~one round-trip on the
  // wire, not K. The historian's timestamp dedup makes any replay of a
  // chunk whose response was lost idempotent. Columns are moved into the
  // context, where the shared wire codec (sorcer/codec.h) encodes them as
  // raw 8-byte runs with interned batch paths — the feeder never touches
  // serialization itself.
  std::vector<sorcer::ExertionPtr> chunks;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // offset, count
  chunks.reserve((window.size() + config_.max_batch - 1) / config_.max_batch);
  for (std::size_t offset = 0; offset < window.size();
       offset += config_.max_batch) {
    const std::size_t n = std::min(window.size() - offset, config_.max_batch);
    std::vector<double> timestamps;
    std::vector<double> values;
    std::vector<double> qualities;
    timestamps.reserve(n);
    values.reserve(n);
    qualities.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const sensor::Reading& r = window[offset + i];
      timestamps.push_back(static_cast<double>(r.timestamp));
      values.push_back(r.value);
      qualities.push_back(encode_quality(r.quality));
    }
    auto task = sorcer::Task::make(
        "hist-append:" + sensor_,
        {core::kDataCollectionType, core::op::kAppendBatch, ""});
    sorcer::ServiceContext& ctx = task->context();
    ctx.reserve(7);  // 4 inputs + the historian's 3 outputs, one allocation
    ctx.put(core::path::kHistSensor, sensor_, sorcer::PathDirection::kIn);
    ctx.put(core::path::kHistTimestamps, std::move(timestamps),
            sorcer::PathDirection::kIn);
    ctx.put(core::path::kHistValues, std::move(values),
            sorcer::PathDirection::kIn);
    ctx.put(core::path::kHistQualities, std::move(qualities),
            sorcer::PathDirection::kIn);
    chunks.push_back(std::move(task));
    ranges.emplace_back(offset, n);
  }
  (void)sorcer::exert_all(chunks, accessor_);

  std::size_t total = 0;
  std::vector<sensor::Reading> requeue;
  if (!*alive) {
    // The pump above destroyed this feeder (its provider was fenced or
    // undeployed mid-flight). `this` is gone; the un-acked window goes with
    // it — the replacement provider's backfill() replays the survivors.
    return 0;
  }
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const auto [offset, n] = ranges[i];
    if (chunks[i]->status() == sorcer::ExertStatus::kDone) {
      pushed_ += n;
      total += n;
      feeder_metrics().pushed.add(n);
    } else {
      ++failed_;
      feeder_metrics().failed_batches.add();
      requeue.insert(requeue.end(), window.begin() + static_cast<std::ptrdiff_t>(offset),
                     window.begin() + static_cast<std::ptrdiff_t>(offset + n));
    }
  }
  if (!requeue.empty()) {
    pending_.insert(pending_.begin(), requeue.begin(), requeue.end());
  }
  flushing_ = false;
  return total;
}

}  // namespace sensorcer::hist
