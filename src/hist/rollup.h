#pragma once
// Multi-resolution rollup rings — the aggregation substrate of the
// historian (src/hist/).
//
// A RollupRing is a fixed-capacity circular array of time-aligned buckets
// at one resolution (e.g. 600 one-second buckets). Buckets hold streaming
// aggregates (count/min/max/sum/last) and are maintained incrementally at
// append time — a reading lands in exactly one bucket per ring, never by
// rescanning raw data. A range aggregate over a ring therefore costs
// O(buckets in range) regardless of how many readings were ingested, which
// is what makes wide historical queries cheap (ISSUE 4's ≥50× bound).

#include <cstdint>
#include <functional>
#include <vector>

#include "util/sim_time.h"

namespace sensorcer::hist {

/// One time-aligned aggregate bucket: [start, start + resolution).
struct RollupBucket {
  util::SimTime start = 0;
  std::uint32_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double last = 0.0;
  util::SimTime last_ts = 0;

  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  void add(util::SimTime ts, double value);

  /// Fold another bucket's aggregates in (downsample re-binning).
  void merge(const RollupBucket& other);
};

/// Mergeable aggregate over samples and/or buckets (unlike
/// util::StatAccumulator, which cannot merge pre-aggregated partials).
struct AggregateStats {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double last = 0.0;
  util::SimTime last_ts = 0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  void add_sample(util::SimTime ts, double value);
  void add_bucket(const RollupBucket& bucket);
};

/// Circular array of aligned buckets at one resolution. Appends must be
/// time-ordered at bucket granularity going forward; readings older than
/// the retained window are dropped (the caller counts them). In-window
/// out-of-order appends (e.g. a failover backfill racing fresh samples)
/// land in their proper bucket.
class RollupRing {
 public:
  RollupRing(util::SimDuration resolution, std::size_t bucket_count);

  [[nodiscard]] util::SimDuration resolution() const { return res_; }
  [[nodiscard]] std::size_t bucket_capacity() const { return ring_.size(); }
  [[nodiscard]] bool empty() const { return !any_; }

  /// Bucket start containing `t`.
  [[nodiscard]] util::SimTime align(util::SimTime t) const {
    return (t / res_) * res_;
  }
  /// Smallest bucket boundary >= t.
  [[nodiscard]] util::SimTime align_up(util::SimTime t) const {
    return ((t + res_ - 1) / res_) * res_;
  }

  /// Start of the oldest bucket still retained (data before this aged out).
  [[nodiscard]] util::SimTime retained_from() const { return valid_from_; }
  [[nodiscard]] util::SimTime newest_start() const { return newest_start_; }

  /// True when the ring can answer a query reaching back to `from` without
  /// missing aged-out buckets.
  [[nodiscard]] bool covers(util::SimTime from) const {
    return any_ && align(from) >= valid_from_;
  }

  /// Returns false when the reading predates the retained window (dropped).
  bool append(util::SimTime ts, double value);

  /// Aggregate over the bucket-aligned window [align(from), align_up(to)),
  /// clamped to what the ring retains. O(buckets).
  [[nodiscard]] AggregateStats aggregate(util::SimTime from,
                                         util::SimTime to) const;

  /// Visit every non-empty bucket intersecting [from, to), oldest first.
  void visit(util::SimTime from, util::SimTime to,
             const std::function<void(const RollupBucket&)>& fn) const;

  /// Readings aged out of this ring (their bucket was evicted).
  [[nodiscard]] std::uint64_t evicted_readings() const {
    return evicted_readings_;
  }

  /// Fixed memory footprint of the ring.
  [[nodiscard]] std::size_t bytes() const {
    return ring_.size() * sizeof(RollupBucket);
  }

 private:
  [[nodiscard]] std::size_t index_of(util::SimTime aligned) const {
    return static_cast<std::size_t>((aligned / res_) %
                                    static_cast<util::SimTime>(ring_.size()));
  }

  util::SimDuration res_;
  std::vector<RollupBucket> ring_;
  bool any_ = false;
  util::SimTime newest_start_ = 0;
  util::SimTime valid_from_ = 0;
  std::uint64_t evicted_readings_ = 0;
};

}  // namespace sensorcer::hist
