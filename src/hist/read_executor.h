#pragma once
// ReadExecutor — the historian's read-side executor (ISSUE 10).
//
// Query serving moves off the caller's thread onto a small worker pool with
// a bounded admission queue: the Historian provider's exertion ops and the
// facade query path submit a closure, block on its future, and the scan/
// decode work runs on an executor worker. Bounding matters under dashboard
// load — when the queue is full the query runs inline on the caller (shed-
// to-caller), so a slow scan can degrade latency but can never deadlock or
// queue unboundedly. Queue depth, wait time and shed counts are mirrored
// onto the obs registry (hist.read_*) for the federation health report.
//
// Safe because SensorSeries reads are internally coordinated (bounded
// locked copy of the active block, lock-free walk of the immutable sealed
// chain) — workers never need a shard or provider lock.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/thread_pool.h"

namespace sensorcer::hist {

class ReadExecutor {
 public:
  struct Config {
    std::size_t threads = 2;
    /// Queries admitted to the queue at once; overflow runs inline on the
    /// caller's thread.
    std::size_t queue_capacity = 256;
  };

  explicit ReadExecutor(Config config);
  ReadExecutor() : ReadExecutor(Config()) {}
  ~ReadExecutor();

  ReadExecutor(const ReadExecutor&) = delete;
  ReadExecutor& operator=(const ReadExecutor&) = delete;

  /// Run `fn` on a worker (or inline when the queue is full) and return a
  /// future for its result. The caller may block on the future; workers
  /// take no external locks, so caller-blocks-on-worker cannot deadlock.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    const std::size_t depth =
        depth_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (depth > config_.queue_capacity) {
      // Shed to caller: bounded-queue overflow never waits, never deadlocks.
      depth_.fetch_sub(1, std::memory_order_relaxed);
      note_inline();
      std::packaged_task<R()> task(std::forward<F>(fn));
      std::future<R> fut = task.get_future();
      task();
      return fut;
    }
    note_depth(depth);
    const auto enqueued = std::chrono::steady_clock::now();
    return pool_.submit(
        [this, enqueued, fn = std::forward<F>(fn)]() mutable -> R {
          note_start(enqueued);
          struct Done {
            ReadExecutor* exec;
            ~Done() { exec->note_done(); }
          } done{this};
          return fn();
        });
  }

  [[nodiscard]] std::size_t depth() const {
    return depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t served() const {
    return served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t inline_runs() const {
    return inline_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t threads() const { return pool_.size(); }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void note_depth(std::size_t depth);
  void note_inline();
  void note_start(std::chrono::steady_clock::time_point enqueued);
  void note_done();

  Config config_;
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> inline_{0};
  util::ThreadPool pool_;  // last member: joins before counters die
};

}  // namespace sensorcer::hist
