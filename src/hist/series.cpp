#include "hist/series.h"

#include <algorithm>

#include "util/sim_time.h"

namespace sensorcer::hist {

namespace {

std::string ring_source(util::SimDuration resolution) {
  return "rollup:" + util::format_duration(resolution);
}

}  // namespace

SensorSeries::SensorSeries(const SeriesConfig& config)
    : raw_(config.raw_capacity) {
  std::vector<RingSpec> specs = config.rings;
  std::sort(specs.begin(), specs.end(),
            [](const RingSpec& a, const RingSpec& b) {
              return a.resolution < b.resolution;
            });
  rings_.reserve(specs.size());
  for (const RingSpec& spec : specs) {
    if (spec.resolution <= 0 || spec.buckets == 0) continue;
    rings_.emplace_back(spec.resolution, spec.buckets);
  }
  bytes_ = raw_.capacity() * sizeof(sensor::Reading);
  for (const RollupRing& ring : rings_) bytes_ += ring.bytes();
}

SensorSeries::Append SensorSeries::append(const sensor::Reading& reading) {
  if (reading.timestamp <= last_ts_) return Append::kDuplicate;
  last_ts_ = reading.timestamp;
  const bool evicts = raw_.size() == raw_.capacity();
  raw_.append(reading);
  if (reading.quality != sensor::Quality::kBad) {
    for (RollupRing& ring : rings_) {
      (void)ring.append(reading.timestamp, reading.value);
    }
  }
  ++appended_;
  return evicts ? Append::kAcceptedEvicted : Append::kAccepted;
}

const RollupRing* SensorSeries::pick_ring(
    util::SimTime from, util::SimDuration max_resolution) const {
  if (max_resolution <= 0) return nullptr;
  // Coarsest acceptable ring that still retains the window start.
  for (auto it = rings_.rbegin(); it != rings_.rend(); ++it) {
    if (it->resolution() <= max_resolution && it->covers(from)) return &*it;
  }
  return nullptr;
}

StatsResult SensorSeries::stats(util::SimTime from, util::SimTime to,
                                util::SimDuration max_resolution) const {
  StatsResult out;
  if (to <= from) {
    out.source = "raw";
    out.from_effective = from;
    out.to_effective = to;
    return out;
  }
  if (const RollupRing* ring = pick_ring(from, max_resolution)) {
    out.stats = ring->aggregate(from, to);
    out.from_effective = std::max(ring->align(from), ring->retained_from());
    out.to_effective =
        std::min(ring->align_up(to), ring->newest_start() + ring->resolution());
    if (out.to_effective < out.from_effective) {
      out.to_effective = out.from_effective;
    }
    out.source = ring_source(ring->resolution());
    out.resolution = ring->resolution();
    return out;
  }
  AggregateStats agg;
  raw_.for_each(from, to, [&agg](const sensor::Reading& r) {
    if (r.quality != sensor::Quality::kBad) {
      agg.add_sample(r.timestamp, r.value);
    }
  });
  out.stats = agg;
  out.from_effective =
      raw_.empty() ? from : std::max(from, raw_.oldest().timestamp);
  out.to_effective = to;
  out.source = "raw";
  return out;
}

SeriesResult SensorSeries::range(util::SimTime from, util::SimTime to,
                                 std::size_t max_points) const {
  SeriesResult out;
  out.source = "raw";
  raw_.for_each(from, to, [&](const sensor::Reading& r) {
    if (out.points.size() < max_points) {
      out.points.push_back({r.timestamp, r.value});
    } else {
      out.truncated = true;
    }
  });
  return out;
}

SeriesResult SensorSeries::downsample(util::SimTime from, util::SimTime to,
                                      std::size_t target_points) const {
  SeriesResult out;
  if (to <= from || target_points == 0) {
    out.source = "raw";
    return out;
  }
  const util::SimDuration width = std::max<util::SimDuration>(
      1, (to - from) / static_cast<util::SimDuration>(target_points));
  std::vector<RollupBucket> bins(target_points);
  const auto bin_for = [&](util::SimTime ts) -> RollupBucket& {
    auto idx = ts <= from ? 0
                          : static_cast<std::size_t>((ts - from) / width);
    if (idx >= bins.size()) idx = bins.size() - 1;
    bins[idx].start = from + static_cast<util::SimDuration>(idx) * width;
    return bins[idx];
  };
  if (const RollupRing* ring = pick_ring(from, width)) {
    // Re-bin the ring's buckets into the requested point count (the ring
    // may be finer than the implied spacing when no coarser ring covers).
    out.source = ring_source(ring->resolution());
    ring->visit(from, to, [&](const RollupBucket& b) {
      bin_for(b.start).merge(b);
    });
  } else {
    out.source = "raw";
    raw_.for_each(from, to, [&](const sensor::Reading& r) {
      if (r.quality == sensor::Quality::kBad) return;
      bin_for(r.timestamp).add(r.timestamp, r.value);
    });
  }
  for (const RollupBucket& b : bins) {
    if (!b.empty()) out.points.push_back({b.start, b.mean()});
  }
  return out;
}

}  // namespace sensorcer::hist
