#include "hist/series.h"

#include <algorithm>
#include <limits>

#include "util/sim_time.h"

namespace sensorcer::hist {

namespace {

std::string ring_source(util::SimDuration resolution) {
  return "rollup:" + util::format_duration(resolution);
}

util::SimTime align_to(util::SimTime t, util::SimDuration res) {
  return (t / res) * res;
}

util::SimTime align_up_to(util::SimTime t, util::SimDuration res) {
  // Overflow-safe: callers pass kEndOfTime (INT64_MAX) for "everything".
  if (t > std::numeric_limits<util::SimTime>::max() - res) return t;
  return ((t + res - 1) / res) * res;
}

}  // namespace

SensorSeries::SensorSeries(const SeriesConfig& config) : config_(config) {
  if (config_.raw_capacity == 0) config_.raw_capacity = 1;
  config_.block_readings =
      std::clamp<std::size_t>(config_.block_readings, 1, config_.raw_capacity);
  if (config_.mid_resolution <= 0) config_.mid_resolution = util::kSecond;
  config_.cold_resolution =
      std::max(config_.cold_resolution, config_.mid_resolution);

  active_ = sensor::DataLog(config_.block_readings);

  std::vector<RingSpec> specs = config_.rings;
  std::sort(specs.begin(), specs.end(),
            [](const RingSpec& a, const RingSpec& b) {
              return a.resolution < b.resolution;
            });
  rings_.reserve(specs.size());
  for (const RingSpec& spec : specs) {
    if (spec.resolution <= 0 || spec.buckets == 0) continue;
    rings_.emplace_back(spec.resolution, spec.buckets);
  }
  for (const RollupRing& ring : rings_) ring_bytes_ += ring.bytes();

  chain_ = std::make_shared<const Chain>();
}

SensorSeries::Append SensorSeries::append(const sensor::Reading& reading) {
  std::lock_guard<std::mutex> lock(hot_mu_);
  if (reading.timestamp <= last_ts_) return Append::kDuplicate;
  last_ts_ = reading.timestamp;
  active_.append(reading);
  if (reading.quality != sensor::Quality::kBad) {
    for (RollupRing& ring : rings_) {
      (void)ring.append(reading.timestamp, reading.value);
    }
  }
  ++appended_;

  const std::uint64_t demoted_before = raw_evicted_;
  if (active_.size() >= config_.block_readings) {
    seal_active_locked();
  } else if ((config_.raw_horizon > 0 || config_.mid_horizon > 0 ||
              config_.cold_horizon > 0) &&
             !(chain_->sealed.empty() && chain_->mid.empty() &&
               chain_->cold.empty())) {
    Chain next = *chain_;
    if (demote_locked(next)) publish_locked(std::move(next));
  }
  return raw_evicted_ > demoted_before ? Append::kAcceptedEvicted
                                       : Append::kAccepted;
}

void SensorSeries::seal_active_locked() {
  const std::vector<sensor::Reading> readings = active_.snapshot();
  active_.clear();
  auto block = SealedBlock::seal(readings);
  if (!block) return;
  Chain next = *chain_;
  next.sealed.push_back(block);
  next.sealed_readings += block->count();
  next.sealed_bytes += block->bytes();
  ++blocks_sealed_;
  (void)demote_locked(next);
  publish_locked(std::move(next));
}

bool SensorSeries::demote_locked(Chain& chain) {
  bool changed = false;

  const auto demote_raw_front = [&] {
    std::shared_ptr<const SealedBlock> block = chain.sealed.front();
    chain.sealed.erase(chain.sealed.begin());
    chain.sealed_readings -= block->count();
    chain.sealed_bytes -= block->bytes();
    auto tier = TierBlock::from_sealed(*block, config_.mid_resolution);
    chain.tier_bytes += tier->bytes();
    chain.mid_buckets += tier->buckets.size();
    chain.mid.push_back(std::move(tier));
    raw_evicted_ += block->count();
    ++blocks_demoted_;
    changed = true;
  };
  const auto demote_mid_front = [&] {
    std::shared_ptr<const TierBlock> tier = chain.mid.front();
    chain.mid.erase(chain.mid.begin());
    chain.tier_bytes -= tier->bytes();
    chain.mid_buckets -= tier->buckets.size();
    auto cold = TierBlock::rebucket(*tier, config_.cold_resolution);
    chain.tier_bytes += cold->bytes();
    chain.cold_buckets += cold->buckets.size();
    chain.cold.push_back(std::move(cold));
    changed = true;
  };
  const auto drop_cold_front = [&] {
    std::shared_ptr<const TierBlock> tier = chain.cold.front();
    chain.cold.erase(chain.cold.begin());
    chain.tier_bytes -= tier->bytes();
    chain.cold_buckets -= tier->buckets.size();
    tier_evicted_ += tier->readings + tier->bad_dropped;
    changed = true;
  };

  while (chain.sealed_readings + active_.size() > config_.raw_capacity &&
         !chain.sealed.empty()) {
    demote_raw_front();
  }
  if (config_.raw_horizon > 0) {
    while (!chain.sealed.empty() &&
           chain.sealed.front()->last_ts() < last_ts_ - config_.raw_horizon) {
      demote_raw_front();
    }
  }
  while (chain.mid_buckets > config_.mid_max_buckets && !chain.mid.empty()) {
    demote_mid_front();
  }
  if (config_.mid_horizon > 0) {
    while (!chain.mid.empty() &&
           chain.mid.front()->last_ts < last_ts_ - config_.mid_horizon) {
      demote_mid_front();
    }
  }
  while (chain.cold_buckets > config_.cold_max_buckets &&
         !chain.cold.empty()) {
    drop_cold_front();
  }
  if (config_.cold_horizon > 0) {
    while (!chain.cold.empty() &&
           chain.cold.front()->last_ts < last_ts_ - config_.cold_horizon) {
      drop_cold_front();
    }
  }
  return changed;
}

void SensorSeries::publish_locked(Chain&& chain) {
  chain_ = std::make_shared<const Chain>(std::move(chain));
}

std::size_t SensorSeries::shed_coldest() {
  std::lock_guard<std::mutex> lock(hot_mu_);
  // Byte-pressure eviction ladder: coldest, already-aggregated storage goes
  // first; compressed raw blocks last; the hot active block and rings never
  // (the store evicts the whole series at that point).
  Chain next = *chain_;
  std::size_t freed = 0;
  if (!next.cold.empty()) {
    const auto& tier = next.cold.front();
    freed = tier->bytes();
    next.tier_bytes -= freed;
    next.cold_buckets -= tier->buckets.size();
    tier_evicted_ += tier->readings + tier->bad_dropped;
    next.cold.erase(next.cold.begin());
  } else if (!next.mid.empty()) {
    const auto& tier = next.mid.front();
    freed = tier->bytes();
    next.tier_bytes -= freed;
    next.mid_buckets -= tier->buckets.size();
    tier_evicted_ += tier->readings + tier->bad_dropped;
    next.mid.erase(next.mid.begin());
  } else if (!next.sealed.empty()) {
    const auto& block = next.sealed.front();
    freed = block->bytes();
    next.sealed_bytes -= freed;
    next.sealed_readings -= block->count();
    raw_evicted_ += block->count();
    tier_evicted_ += block->count();
    next.sealed.erase(next.sealed.begin());
  } else {
    return 0;
  }
  publish_locked(std::move(next));
  return freed;
}

SensorSeries::ReadView SensorSeries::read_view_locked() const {
  ReadView view;
  view.chain = chain_;
  view.active = active_.snapshot();
  view.last_ts = last_ts_;
  return view;
}

const RollupRing* SensorSeries::pick_ring_locked(
    util::SimTime from, util::SimDuration max_resolution) const {
  if (max_resolution <= 0) return nullptr;
  // Coarsest acceptable ring that still retains the window start.
  for (auto it = rings_.rbegin(); it != rings_.rend(); ++it) {
    if (it->resolution() <= max_resolution && it->covers(from)) return &*it;
  }
  return nullptr;
}

const RollupRing* SensorSeries::pick_ring(
    util::SimTime from, util::SimDuration max_resolution) const {
  std::lock_guard<std::mutex> lock(hot_mu_);
  return pick_ring_locked(from, max_resolution);
}

util::SimTime SensorSeries::raw_from_of(const ReadView& view) {
  if (!view.chain->sealed.empty()) {
    return view.chain->sealed.front()->first_ts();
  }
  if (!view.active.empty()) return view.active.front().timestamp;
  return -1;
}

StatsResult SensorSeries::stats(util::SimTime from, util::SimTime to,
                                util::SimDuration max_resolution) const {
  StatsResult out;
  if (to <= from) {
    out.source = "raw";
    out.from_effective = from;
    out.to_effective = to;
    return out;
  }
  std::unique_lock<std::mutex> lock(hot_mu_);
  if (const RollupRing* ring = pick_ring_locked(from, max_resolution)) {
    out.stats = ring->aggregate(from, to);
    out.from_effective = std::max(ring->align(from), ring->retained_from());
    out.to_effective =
        std::min(ring->align_up(to), ring->newest_start() + ring->resolution());
    if (out.to_effective < out.from_effective) {
      out.to_effective = out.from_effective;
    }
    out.source = ring_source(ring->resolution());
    out.resolution = ring->resolution();
    return out;
  }
  const ReadView view = read_view_locked();
  lock.unlock();
  return deep_stats_view(view, from, to, max_resolution);
}

StatsResult SensorSeries::deep_stats(util::SimTime from, util::SimTime to,
                                     util::SimDuration max_resolution) const {
  StatsResult out;
  if (to <= from) {
    out.source = "raw";
    out.from_effective = from;
    out.to_effective = to;
    return out;
  }
  std::unique_lock<std::mutex> lock(hot_mu_);
  const ReadView view = read_view_locked();
  lock.unlock();
  return deep_stats_view(view, from, to, max_resolution);
}

SeriesResult SensorSeries::range(util::SimTime from, util::SimTime to,
                                 std::size_t max_points) const {
  SeriesResult out;
  out.source = "raw";
  std::unique_lock<std::mutex> lock(hot_mu_);
  const ReadView view = read_view_locked();
  lock.unlock();

  const auto take = [&](const sensor::Reading& r) {
    if (out.points.size() < max_points) {
      out.points.push_back({r.timestamp, r.value});
    } else {
      out.truncated = true;
    }
  };
  for (const auto& block : view.chain->sealed) {
    if (block->last_ts() < from) continue;
    if (block->first_ts() >= to || out.truncated) break;
    block->for_each(from, to, take);
  }
  if (!out.truncated) {
    for (const sensor::Reading& r : view.active) {
      if (r.timestamp < from) continue;
      if (r.timestamp >= to) break;
      take(r);
    }
  }
  return out;
}

SeriesResult SensorSeries::downsample(util::SimTime from, util::SimTime to,
                                      std::size_t target_points) const {
  SeriesResult out;
  if (to <= from || target_points == 0) {
    out.source = "raw";
    return out;
  }
  const util::SimDuration width = std::max<util::SimDuration>(
      1, (to - from) / static_cast<util::SimDuration>(target_points));
  std::vector<RollupBucket> bins(target_points);
  const auto bin_for = [&](util::SimTime ts) -> RollupBucket& {
    auto idx = ts <= from ? 0
                          : static_cast<std::size_t>((ts - from) / width);
    if (idx >= bins.size()) idx = bins.size() - 1;
    bins[idx].start = from + static_cast<util::SimDuration>(idx) * width;
    return bins[idx];
  };

  std::unique_lock<std::mutex> lock(hot_mu_);
  if (const RollupRing* ring = pick_ring_locked(from, width)) {
    // Re-bin the ring's buckets into the requested point count (the ring
    // may be finer than the implied spacing when no coarser ring covers).
    out.source = ring_source(ring->resolution());
    ring->visit(from, to, [&](const RollupBucket& b) {
      bin_for(b.start).merge(b);
    });
  } else {
    const ReadView view = read_view_locked();
    lock.unlock();
    const Chain& chain = *view.chain;
    const util::SimTime raw_from = raw_from_of(view);
    const bool cold_usable =
        !chain.cold.empty() && width >= config_.cold_resolution;
    const bool mid_usable =
        !chain.mid.empty() && width >= config_.mid_resolution;
    const bool use_tiers =
        (cold_usable || mid_usable) && (raw_from < 0 || from < raw_from);
    if (use_tiers) {
      out.source = "tiered";
      if (cold_usable) {
        const util::SimTime cfrom = align_to(from, config_.cold_resolution);
        const util::SimTime cto = align_up_to(to, config_.cold_resolution);
        for (const auto& tier : chain.cold) {
          for (const RollupBucket& b : tier->buckets) {
            if (b.start >= cfrom && b.start < cto) bin_for(b.start).merge(b);
          }
        }
      }
      if (mid_usable) {
        const util::SimTime mfrom = align_to(from, config_.mid_resolution);
        const util::SimTime mto = align_up_to(to, config_.mid_resolution);
        for (const auto& tier : chain.mid) {
          for (const RollupBucket& b : tier->buckets) {
            if (b.start >= mfrom && b.start < mto) bin_for(b.start).merge(b);
          }
        }
      }
    } else {
      out.source = "raw";
    }
    const auto add = [&](const sensor::Reading& r) {
      if (r.quality == sensor::Quality::kBad) return;
      bin_for(r.timestamp).add(r.timestamp, r.value);
    };
    for (const auto& block : chain.sealed) {
      if (block->last_ts() < from) continue;
      if (block->first_ts() >= to) break;
      block->for_each(from, to, add);
    }
    for (const sensor::Reading& r : view.active) {
      if (r.timestamp < from) continue;
      if (r.timestamp >= to) break;
      add(r);
    }
  }
  for (const RollupBucket& b : bins) {
    if (!b.empty()) out.points.push_back({b.start, b.mean()});
  }
  return out;
}

StatsResult SensorSeries::deep_stats_view(const ReadView& view,
                                          util::SimTime from, util::SimTime to,
                                          util::SimDuration max_res) const {
  StatsResult out;
  const Chain& chain = *view.chain;
  const util::SimTime raw_from = raw_from_of(view);

  AggregateStats agg;
  const auto add_raw = [&](util::SimTime lo, util::SimTime hi) {
    for (const auto& block : chain.sealed) {
      if (block->last_ts() < lo) continue;
      if (block->first_ts() >= hi) break;
      if (block->first_ts() >= lo && block->last_ts() < hi) {
        // Fully covered: fold the footer, no decode.
        block->add_footer_stats(agg);
      } else {
        block->for_each(lo, hi, [&agg](const sensor::Reading& r) {
          if (r.quality != sensor::Quality::kBad) {
            agg.add_sample(r.timestamp, r.value);
          }
        });
      }
    }
    for (const sensor::Reading& r : view.active) {
      if (r.timestamp < lo) continue;
      if (r.timestamp >= hi) break;
      if (r.quality != sensor::Quality::kBad) {
        agg.add_sample(r.timestamp, r.value);
      }
    }
  };

  // A tier contributes only when the caller tolerates its bucket width and
  // the window actually reaches past the raw tier.
  const bool cold_usable =
      !chain.cold.empty() && max_res >= config_.cold_resolution;
  const bool mid_usable =
      !chain.mid.empty() && max_res >= config_.mid_resolution;
  const bool use_tiers =
      (cold_usable || mid_usable) && (raw_from < 0 || from < raw_from);
  if (!use_tiers) {
    add_raw(from, to);
    out.stats = agg;
    out.from_effective = raw_from < 0 ? from : std::max(from, raw_from);
    out.to_effective = to;
    out.source = "raw";
    return out;
  }

  const util::SimDuration res_used =
      cold_usable ? config_.cold_resolution : config_.mid_resolution;
  util::SimTime oldest_covered = raw_from;
  if (cold_usable) {
    oldest_covered = chain.cold.front()->first_ts;
    const util::SimTime cfrom = align_to(from, config_.cold_resolution);
    const util::SimTime cto = align_up_to(to, config_.cold_resolution);
    for (const auto& tier : chain.cold) {
      for (const RollupBucket& b : tier->buckets) {
        if (b.start >= cfrom && b.start < cto) agg.add_bucket(b);
      }
    }
  }
  if (mid_usable) {
    if (!cold_usable) oldest_covered = chain.mid.front()->first_ts;
    const util::SimTime mfrom = align_to(from, config_.mid_resolution);
    const util::SimTime mto = align_up_to(to, config_.mid_resolution);
    for (const auto& tier : chain.mid) {
      for (const RollupBucket& b : tier->buckets) {
        if (b.start >= mfrom && b.start < mto) agg.add_bucket(b);
      }
    }
  }
  add_raw(from, to);

  out.stats = agg;
  out.source = "tiered";
  out.resolution = res_used;
  out.from_effective =
      std::max(align_to(from, res_used),
               oldest_covered < 0 ? from : oldest_covered);
  out.to_effective = to;
  return out;
}

util::SimTime SensorSeries::last_timestamp() const {
  std::lock_guard<std::mutex> lock(hot_mu_);
  return last_ts_;
}

std::uint64_t SensorSeries::appended() const {
  std::lock_guard<std::mutex> lock(hot_mu_);
  return appended_;
}

std::uint64_t SensorSeries::raw_evicted() const {
  std::lock_guard<std::mutex> lock(hot_mu_);
  return raw_evicted_;
}

std::uint64_t SensorSeries::tier_evicted() const {
  std::lock_guard<std::mutex> lock(hot_mu_);
  return tier_evicted_;
}

SensorSeries::Footprint SensorSeries::footprint_locked() const {
  Footprint fp;
  fp.active_bytes = active_.capacity() * sizeof(sensor::Reading);
  fp.ring_bytes = ring_bytes_;
  fp.sealed_bytes = chain_->sealed_bytes;
  fp.tier_bytes = chain_->tier_bytes;
  return fp;
}

std::size_t SensorSeries::bytes() const {
  std::lock_guard<std::mutex> lock(hot_mu_);
  return footprint_locked().total();
}

SensorSeries::Footprint SensorSeries::footprint() const {
  std::lock_guard<std::mutex> lock(hot_mu_);
  return footprint_locked();
}

SensorSeries::Retention SensorSeries::retention_of(const ReadView& view) const {
  Retention ret;
  ret.raw_from = raw_from_of(view);
  const Chain& chain = *view.chain;
  if (!chain.cold.empty()) {
    ret.tier_from = chain.cold.front()->first_ts;
  } else if (!chain.mid.empty()) {
    ret.tier_from = chain.mid.front()->first_ts;
  } else {
    ret.tier_from = ret.raw_from;
  }
  return ret;
}

SensorSeries::Retention SensorSeries::retention() const {
  std::unique_lock<std::mutex> lock(hot_mu_);
  const ReadView view = read_view_locked();
  lock.unlock();
  return retention_of(view);
}

SensorSeries::Counters SensorSeries::counters() const {
  std::lock_guard<std::mutex> lock(hot_mu_);
  Counters c;
  c.appended = appended_;
  c.raw_evicted = raw_evicted_;
  c.tier_evicted = tier_evicted_;
  c.blocks_sealed = blocks_sealed_;
  c.blocks_demoted = blocks_demoted_;
  c.sealed_readings = chain_->sealed_readings;
  c.sealed_blocks = chain_->sealed.size();
  c.tier_blocks = chain_->mid.size() + chain_->cold.size();
  c.footprint = footprint_locked();
  return c;
}

}  // namespace sensorcer::hist
