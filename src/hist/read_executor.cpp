#include "hist/read_executor.h"

#include "obs/metrics.h"

namespace sensorcer::hist {

namespace {

struct ReadMetrics {
  obs::Gauge& queue_depth;
  obs::Counter& wait_ns;
  obs::Histogram& wait_us;
  obs::Counter& served;
  obs::Counter& inline_runs;
};

ReadMetrics& read_metrics() {
  static ReadMetrics m{
      obs::metrics().gauge("hist.read_queue_depth"),
      obs::metrics().counter("hist.read_wait_ns"),
      obs::metrics().histogram("hist.read_wait_us"),
      obs::metrics().counter("hist.reads_served"),
      obs::metrics().counter("hist.read_inline"),
  };
  return m;
}

}  // namespace

ReadExecutor::ReadExecutor(Config config)
    : config_(config),
      pool_(config.threads == 0 ? 1 : config.threads) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
}

ReadExecutor::~ReadExecutor() = default;

void ReadExecutor::note_depth(std::size_t depth) {
  read_metrics().queue_depth.set(static_cast<double>(depth));
}

void ReadExecutor::note_inline() {
  inline_.fetch_add(1, std::memory_order_relaxed);
  read_metrics().inline_runs.add();
}

void ReadExecutor::note_start(std::chrono::steady_clock::time_point enqueued) {
  const auto waited = std::chrono::steady_clock::now() - enqueued;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count();
  const std::size_t depth =
      depth_.fetch_sub(1, std::memory_order_relaxed) - 1;
  ReadMetrics& m = read_metrics();
  m.queue_depth.set(static_cast<double>(depth));
  m.wait_ns.add(static_cast<std::uint64_t>(ns > 0 ? ns : 0));
  m.wait_us.observe(static_cast<double>(ns) / 1000.0);
}

void ReadExecutor::note_done() {
  served_.fetch_add(1, std::memory_order_relaxed);
  read_metrics().served.add();
}

}  // namespace sensorcer::hist
