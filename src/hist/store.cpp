#include "hist/store.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "util/strings.h"

namespace sensorcer::hist {

namespace {

/// Handles resolved once; updates are relaxed atomics (pool workers append
/// concurrently). Same pattern as the ESP/accessor instrumentation.
struct StoreMetrics {
  obs::Counter& appends;
  obs::Counter& append_batches;
  obs::Counter& duplicates;
  obs::Counter& evicted;
  obs::Counter& series_evicted;
  obs::Counter& query_raw;
  obs::Counter& query_rollup;
};

StoreMetrics& store_metrics() {
  static StoreMetrics m{
      obs::metrics().counter("hist.appends"),
      obs::metrics().counter("hist.append_batches"),
      obs::metrics().counter("hist.duplicates"),
      obs::metrics().counter("hist.evicted"),
      obs::metrics().counter("hist.series_evicted"),
      obs::metrics().counter("hist.query_raw"),
      obs::metrics().counter("hist.query_rollup"),
  };
  return m;
}

bool is_rollup_source(const std::string& source) {
  return util::starts_with(source, "rollup:");
}

}  // namespace

HistorianStore::HistorianStore(HistorianConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  shard_budget_ = config_.max_bytes == 0 ? 0 : config_.max_bytes / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

HistorianStore::Shard& HistorianStore::shard_for(const std::string& sensor) {
  return *shards_[std::hash<std::string>{}(sensor) % shards_.size()];
}

const HistorianStore::Shard& HistorianStore::shard_for(
    const std::string& sensor) const {
  return *shards_[std::hash<std::string>{}(sensor) % shards_.size()];
}

void HistorianStore::evict_for_budget(Shard& shard) {
  if (shard_budget_ == 0) return;
  while (!shard.segments.empty() && shard.bytes >= shard_budget_) {
    auto victim = shard.segments.begin();
    for (auto it = shard.segments.begin(); it != shard.segments.end(); ++it) {
      if (it->second.last_touch < victim->second.last_touch) victim = it;
    }
    shard.bytes -= victim->second.series->bytes();
    evicted_readings_base_.fetch_add(victim->second.series->raw_evicted(),
                                     std::memory_order_relaxed);
    shard.segments.erase(victim);
    evicted_series_.fetch_add(1, std::memory_order_relaxed);
    store_metrics().series_evicted.add();
  }
}

AppendOutcome HistorianStore::append(
    const std::string& sensor, const std::vector<sensor::Reading>& readings) {
  AppendOutcome out;
  if (readings.empty()) return out;
  Shard& shard = shard_for(sensor);
  std::lock_guard lock(shard.mu);
  auto it = shard.segments.find(sensor);
  if (it == shard.segments.end()) {
    evict_for_budget(shard);
    Entry entry;
    entry.series = std::make_unique<SensorSeries>(config_.series);
    shard.bytes += entry.series->bytes();
    it = shard.segments.emplace(sensor, std::move(entry)).first;
  }
  it->second.last_touch =
      touch_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t raw_evictions = 0;
  for (const sensor::Reading& r : readings) {
    switch (it->second.series->append(r)) {
      case SensorSeries::Append::kAccepted:
        ++out.accepted;
        break;
      case SensorSeries::Append::kAcceptedEvicted:
        ++out.accepted;
        ++raw_evictions;
        break;
      case SensorSeries::Append::kDuplicate:
        ++out.duplicates;
        break;
    }
  }
  appended_.fetch_add(out.accepted, std::memory_order_relaxed);
  duplicates_.fetch_add(out.duplicates, std::memory_order_relaxed);
  StoreMetrics& m = store_metrics();
  m.appends.add(out.accepted);
  m.append_batches.add();
  if (out.duplicates > 0) m.duplicates.add(out.duplicates);
  if (raw_evictions > 0) m.evicted.add(raw_evictions);
  return out;
}

util::SimTime HistorianStore::last_timestamp(const std::string& sensor) const {
  const Shard& shard = shard_for(sensor);
  std::lock_guard lock(shard.mu);
  auto it = shard.segments.find(sensor);
  return it == shard.segments.end() ? -1 : it->second.series->last_timestamp();
}

StatsResult HistorianStore::stats(const std::string& sensor, util::SimTime from,
                                  util::SimTime to,
                                  util::SimDuration max_resolution) const {
  const Shard& shard = shard_for(sensor);
  std::lock_guard lock(shard.mu);
  auto it = shard.segments.find(sensor);
  if (it == shard.segments.end()) {
    StatsResult empty;
    empty.source = "none";
    empty.from_effective = from;
    empty.to_effective = to;
    return empty;
  }
  StatsResult out = it->second.series->stats(from, to, max_resolution);
  StoreMetrics& m = store_metrics();
  (is_rollup_source(out.source) ? m.query_rollup : m.query_raw).add();
  return out;
}

SeriesResult HistorianStore::range(const std::string& sensor,
                                   util::SimTime from, util::SimTime to,
                                   std::size_t max_points) const {
  const Shard& shard = shard_for(sensor);
  std::lock_guard lock(shard.mu);
  auto it = shard.segments.find(sensor);
  if (it == shard.segments.end()) {
    SeriesResult empty;
    empty.source = "none";
    return empty;
  }
  SeriesResult out = it->second.series->range(from, to, max_points);
  store_metrics().query_raw.add();
  return out;
}

SeriesResult HistorianStore::downsample(const std::string& sensor,
                                        util::SimTime from, util::SimTime to,
                                        std::size_t target_points) const {
  const Shard& shard = shard_for(sensor);
  std::lock_guard lock(shard.mu);
  auto it = shard.segments.find(sensor);
  if (it == shard.segments.end()) {
    SeriesResult empty;
    empty.source = "none";
    return empty;
  }
  SeriesResult out = it->second.series->downsample(from, to, target_points);
  StoreMetrics& m = store_metrics();
  (is_rollup_source(out.source) ? m.query_rollup : m.query_raw).add();
  return out;
}

StoreStats HistorianStore::stats_snapshot() const {
  StoreStats out;
  out.appended = appended_.load(std::memory_order_relaxed);
  out.duplicates = duplicates_.load(std::memory_order_relaxed);
  out.evicted_series = evicted_series_.load(std::memory_order_relaxed);
  out.evicted_readings = evicted_readings_base_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.series_count += shard->segments.size();
    out.bytes += shard->bytes;
    for (const auto& [name, entry] : shard->segments) {
      (void)name;
      out.evicted_readings += entry.series->raw_evicted();
    }
  }
  return out;
}

std::vector<std::string> HistorianStore::sensors() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    for (const auto& [name, entry] : shard->segments) {
      (void)entry;
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sensorcer::hist
