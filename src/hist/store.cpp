#include "hist/store.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "util/strings.h"

namespace sensorcer::hist {

namespace {

/// Handles resolved once; updates are relaxed atomics (pool workers append
/// concurrently). Same pattern as the ESP/accessor instrumentation.
struct StoreMetrics {
  obs::Counter& appends;
  obs::Counter& append_batches;
  obs::Counter& duplicates;
  obs::Counter& evicted;
  obs::Counter& series_evicted;
  obs::Counter& query_raw;
  obs::Counter& query_rollup;
  obs::Counter& query_tiered;
  obs::Counter& blocks_sealed;
  obs::Counter& blocks_demoted;
  obs::Counter& tier_evicted;
  obs::Gauge& bytes_uncompressed;
  obs::Gauge& bytes_sealed;
  obs::Gauge& bytes_tiered;
  obs::Gauge& sealed_blocks;
  obs::Gauge& compression_ratio;
};

StoreMetrics& store_metrics() {
  static StoreMetrics m{
      obs::metrics().counter("hist.appends"),
      obs::metrics().counter("hist.append_batches"),
      obs::metrics().counter("hist.duplicates"),
      obs::metrics().counter("hist.evicted"),
      obs::metrics().counter("hist.series_evicted"),
      obs::metrics().counter("hist.query_raw"),
      obs::metrics().counter("hist.query_rollup"),
      obs::metrics().counter("hist.query_tiered"),
      obs::metrics().counter("hist.blocks_sealed"),
      obs::metrics().counter("hist.blocks_demoted"),
      obs::metrics().counter("hist.tier_evicted"),
      obs::metrics().gauge("hist.bytes_uncompressed"),
      obs::metrics().gauge("hist.bytes_sealed"),
      obs::metrics().gauge("hist.bytes_tiered"),
      obs::metrics().gauge("hist.sealed_blocks"),
      obs::metrics().gauge("hist.compression_ratio"),
  };
  return m;
}

bool is_rollup_source(const std::string& source) {
  return util::starts_with(source, "rollup:");
}

void count_query(const std::string& source) {
  StoreMetrics& m = store_metrics();
  if (is_rollup_source(source)) {
    m.query_rollup.add();
  } else if (source == "tiered") {
    m.query_tiered.add();
  } else {
    m.query_raw.add();
  }
}

}  // namespace

HistorianStore::HistorianStore(HistorianConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  shard_budget_ = config_.max_bytes == 0 ? 0 : config_.max_bytes / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

HistorianStore::Shard& HistorianStore::shard_for(const std::string& sensor) {
  return *shards_[std::hash<std::string>{}(sensor) % shards_.size()];
}

const HistorianStore::Shard& HistorianStore::shard_for(
    const std::string& sensor) const {
  return *shards_[std::hash<std::string>{}(sensor) % shards_.size()];
}

std::shared_ptr<SensorSeries> HistorianStore::find_series(
    const std::string& sensor) const {
  const Shard& shard = shard_for(sensor);
  std::lock_guard lock(shard.mu);
  auto it = shard.segments.find(sensor);
  return it == shard.segments.end() ? nullptr : it->second.series;
}

void HistorianStore::apply_series_delta(const SensorSeries::Counters& before,
                                        const SensorSeries::Counters& after) {
  const auto signed_delta = [](std::size_t b, std::size_t a) {
    return static_cast<std::int64_t>(a) - static_cast<std::int64_t>(b);
  };
  bytes_sealed_.fetch_add(signed_delta(before.footprint.sealed_bytes,
                                       after.footprint.sealed_bytes),
                          std::memory_order_relaxed);
  bytes_tiered_.fetch_add(
      signed_delta(before.footprint.tier_bytes, after.footprint.tier_bytes),
      std::memory_order_relaxed);
  sealed_blocks_.fetch_add(
      signed_delta(before.sealed_blocks, after.sealed_blocks),
      std::memory_order_relaxed);
  tier_blocks_.fetch_add(signed_delta(before.tier_blocks, after.tier_blocks),
                         std::memory_order_relaxed);
  sealed_readings_.fetch_add(
      signed_delta(before.sealed_readings, after.sealed_readings),
      std::memory_order_relaxed);
  blocks_sealed_.fetch_add(after.blocks_sealed - before.blocks_sealed,
                           std::memory_order_relaxed);
  blocks_demoted_.fetch_add(after.blocks_demoted - before.blocks_demoted,
                            std::memory_order_relaxed);
  tier_evicted_.fetch_add(after.tier_evicted - before.tier_evicted,
                          std::memory_order_relaxed);
  StoreMetrics& m = store_metrics();
  if (after.blocks_sealed > before.blocks_sealed) {
    m.blocks_sealed.add(after.blocks_sealed - before.blocks_sealed);
  }
  if (after.blocks_demoted > before.blocks_demoted) {
    m.blocks_demoted.add(after.blocks_demoted - before.blocks_demoted);
  }
  if (after.tier_evicted > before.tier_evicted) {
    m.tier_evicted.add(after.tier_evicted - before.tier_evicted);
  }
}

void HistorianStore::retire_series(const SensorSeries::Counters& counters) {
  bytes_uncompressed_.fetch_sub(
      static_cast<std::int64_t>(counters.footprint.active_bytes +
                                counters.footprint.ring_bytes),
      std::memory_order_relaxed);
  bytes_sealed_.fetch_sub(
      static_cast<std::int64_t>(counters.footprint.sealed_bytes),
      std::memory_order_relaxed);
  bytes_tiered_.fetch_sub(
      static_cast<std::int64_t>(counters.footprint.tier_bytes),
      std::memory_order_relaxed);
  sealed_blocks_.fetch_sub(static_cast<std::int64_t>(counters.sealed_blocks),
                           std::memory_order_relaxed);
  tier_blocks_.fetch_sub(static_cast<std::int64_t>(counters.tier_blocks),
                         std::memory_order_relaxed);
  sealed_readings_.fetch_sub(
      static_cast<std::int64_t>(counters.sealed_readings),
      std::memory_order_relaxed);
}

void HistorianStore::publish_gauges() const {
  StoreMetrics& m = store_metrics();
  const auto as_double = [](const std::atomic<std::int64_t>& v) {
    return static_cast<double>(v.load(std::memory_order_relaxed));
  };
  m.bytes_uncompressed.set(as_double(bytes_uncompressed_));
  m.bytes_sealed.set(as_double(bytes_sealed_));
  m.bytes_tiered.set(as_double(bytes_tiered_));
  m.sealed_blocks.set(as_double(sealed_blocks_));
  const double sealed_bytes = as_double(bytes_sealed_);
  const double logical = as_double(sealed_readings_) *
                         static_cast<double>(sizeof(sensor::Reading));
  m.compression_ratio.set(sealed_bytes > 0.0 ? logical / sealed_bytes : 0.0);
}

void HistorianStore::evict_for_budget(Shard& shard, const std::string* keep) {
  if (shard_budget_ == 0) return;
  while (!shard.segments.empty() && shard.bytes >= shard_budget_) {
    auto victim = shard.segments.begin();
    for (auto it = shard.segments.begin(); it != shard.segments.end(); ++it) {
      if (it->second.last_touch < victim->second.last_touch) victim = it;
    }
    SensorSeries& series = *victim->second.series;
    // Shed the victim's coldest storage first: dropping already-aggregated
    // tier buckets (then compressed blocks) beats losing a hot segment.
    const SensorSeries::Counters before = series.counters();
    const std::size_t freed = series.shed_coldest();
    if (freed > 0) {
      apply_series_delta(before, series.counters());
      shard.bytes -= std::min(freed, shard.bytes);
      continue;
    }
    // Only the active block and rings remain: evict the segment wholesale —
    // unless it is the segment currently being appended to, which stays
    // even if the shard then runs over budget.
    if (keep != nullptr && victim->first == *keep) break;
    retire_series(before);
    shard.bytes -= std::min(before.footprint.total(), shard.bytes);
    evicted_readings_base_.fetch_add(before.raw_evicted,
                                     std::memory_order_relaxed);
    shard.segments.erase(victim);
    evicted_series_.fetch_add(1, std::memory_order_relaxed);
    store_metrics().series_evicted.add();
  }
}

AppendOutcome HistorianStore::append(
    const std::string& sensor, const std::vector<sensor::Reading>& readings) {
  AppendOutcome out;
  if (readings.empty()) return out;
  Shard& shard = shard_for(sensor);
  std::lock_guard lock(shard.mu);
  auto it = shard.segments.find(sensor);
  if (it == shard.segments.end()) {
    evict_for_budget(shard);
    Entry entry;
    entry.series = std::make_shared<SensorSeries>(config_.series);
    const SensorSeries::Footprint fp = entry.series->footprint();
    shard.bytes += fp.total();
    bytes_uncompressed_.fetch_add(
        static_cast<std::int64_t>(fp.active_bytes + fp.ring_bytes),
        std::memory_order_relaxed);
    it = shard.segments.emplace(sensor, std::move(entry)).first;
  }
  it->second.last_touch =
      touch_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  SensorSeries& series = *it->second.series;
  const SensorSeries::Counters before = series.counters();
  for (const sensor::Reading& r : readings) {
    switch (series.append(r)) {
      case SensorSeries::Append::kAccepted:
      case SensorSeries::Append::kAcceptedEvicted:
        ++out.accepted;
        break;
      case SensorSeries::Append::kDuplicate:
        ++out.duplicates;
        break;
    }
  }
  const SensorSeries::Counters after = series.counters();
  apply_series_delta(before, after);
  const std::int64_t byte_delta =
      static_cast<std::int64_t>(after.footprint.total()) -
      static_cast<std::int64_t>(before.footprint.total());
  if (byte_delta >= 0) {
    shard.bytes += static_cast<std::size_t>(byte_delta);
  } else {
    shard.bytes -= std::min(static_cast<std::size_t>(-byte_delta), shard.bytes);
  }
  appended_.fetch_add(out.accepted, std::memory_order_relaxed);
  duplicates_.fetch_add(out.duplicates, std::memory_order_relaxed);
  StoreMetrics& m = store_metrics();
  m.appends.add(out.accepted);
  m.append_batches.add();
  if (out.duplicates > 0) m.duplicates.add(out.duplicates);
  if (after.raw_evicted > before.raw_evicted) {
    m.evicted.add(after.raw_evicted - before.raw_evicted);
  }
  if (after.blocks_sealed != before.blocks_sealed ||
      after.blocks_demoted != before.blocks_demoted) {
    // Sealing/demotion grew the segment between creations; keep the shard
    // inside its budget by shedding LRU cold storage (never wholesale-
    // evicting the segment being written). Small non-sealing appends keep
    // the legacy creation-time-only enforcement.
    if (shard_budget_ != 0 && shard.bytes >= shard_budget_) {
      evict_for_budget(shard, &sensor);
    }
    publish_gauges();
  }
  return out;
}

util::SimTime HistorianStore::last_timestamp(const std::string& sensor) const {
  const std::shared_ptr<SensorSeries> series = find_series(sensor);
  return series == nullptr ? -1 : series->last_timestamp();
}

StatsResult HistorianStore::stats(const std::string& sensor, util::SimTime from,
                                  util::SimTime to,
                                  util::SimDuration max_resolution) const {
  const std::shared_ptr<SensorSeries> series = find_series(sensor);
  if (series == nullptr) {
    StatsResult empty;
    empty.source = "none";
    empty.from_effective = from;
    empty.to_effective = to;
    return empty;
  }
  StatsResult out = series->stats(from, to, max_resolution);
  count_query(out.source);
  return out;
}

StatsResult HistorianStore::deep_stats(const std::string& sensor,
                                       util::SimTime from, util::SimTime to,
                                       util::SimDuration max_resolution) const {
  const std::shared_ptr<SensorSeries> series = find_series(sensor);
  if (series == nullptr) {
    StatsResult empty;
    empty.source = "none";
    empty.from_effective = from;
    empty.to_effective = to;
    return empty;
  }
  StatsResult out = series->deep_stats(from, to, max_resolution);
  count_query(out.source);
  return out;
}

SeriesResult HistorianStore::range(const std::string& sensor,
                                   util::SimTime from, util::SimTime to,
                                   std::size_t max_points) const {
  const std::shared_ptr<SensorSeries> series = find_series(sensor);
  if (series == nullptr) {
    SeriesResult empty;
    empty.source = "none";
    return empty;
  }
  SeriesResult out = series->range(from, to, max_points);
  store_metrics().query_raw.add();
  return out;
}

SeriesResult HistorianStore::downsample(const std::string& sensor,
                                        util::SimTime from, util::SimTime to,
                                        std::size_t target_points) const {
  const std::shared_ptr<SensorSeries> series = find_series(sensor);
  if (series == nullptr) {
    SeriesResult empty;
    empty.source = "none";
    return empty;
  }
  SeriesResult out = series->downsample(from, to, target_points);
  count_query(out.source);
  return out;
}

SensorSeries::Retention HistorianStore::retention(
    const std::string& sensor) const {
  const std::shared_ptr<SensorSeries> series = find_series(sensor);
  return series == nullptr ? SensorSeries::Retention{} : series->retention();
}

StoreStats HistorianStore::stats_snapshot() const {
  StoreStats out;
  out.appended = appended_.load(std::memory_order_relaxed);
  out.duplicates = duplicates_.load(std::memory_order_relaxed);
  out.evicted_series = evicted_series_.load(std::memory_order_relaxed);
  out.evicted_readings = evicted_readings_base_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.series_count += shard->segments.size();
    out.bytes += shard->bytes;
    for (const auto& [name, entry] : shard->segments) {
      (void)name;
      out.evicted_readings += entry.series->raw_evicted();
    }
  }
  const auto clamp0 = [](const std::atomic<std::int64_t>& v) {
    const std::int64_t x = v.load(std::memory_order_relaxed);
    return x > 0 ? static_cast<std::uint64_t>(x) : 0;
  };
  out.bytes_uncompressed = clamp0(bytes_uncompressed_);
  out.bytes_sealed = clamp0(bytes_sealed_);
  out.bytes_tiered = clamp0(bytes_tiered_);
  out.sealed_blocks = clamp0(sealed_blocks_);
  out.tier_blocks = clamp0(tier_blocks_);
  out.sealed_readings = clamp0(sealed_readings_);
  out.blocks_sealed = blocks_sealed_.load(std::memory_order_relaxed);
  out.blocks_demoted = blocks_demoted_.load(std::memory_order_relaxed);
  out.tier_evicted = tier_evicted_.load(std::memory_order_relaxed);
  if (out.bytes_sealed > 0) {
    out.compression_ratio =
        static_cast<double>(out.sealed_readings) *
        static_cast<double>(sizeof(sensor::Reading)) /
        static_cast<double>(out.bytes_sealed);
  }
  publish_gauges();
  return out;
}

std::vector<std::string> HistorianStore::sensors() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    for (const auto& [name, entry] : shard->segments) {
      (void)entry;
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sensorcer::hist
