#pragma once
// HistorianFeeder — the ESP-side push half of the historian protocol.
//
// Each sampling provider owns one feeder. Sampled readings are offered to
// it; the feeder batches them and exerts appendBatch tasks at the historian
// through the deployment's invocation pipeline (so under Transport::kWire
// every push really crosses the fabric, marshalled and byte-accounted).
//
// The binding to the historian is event-driven and lease-bound: the feeder
// registers a leased notify() subscription on the lookup service for
// DataCollection transitions. When the historian's registration disappears
// (crash — its lease lapses; or clean leave) the feeder unbinds and stops
// pushing, buffering new readings up to a cap; when a historian (re)appears
// it rebinds and drains the buffer. After an ESP failover the replacement
// provider calls backfill() with the surviving DataLog — the historian's
// timestamp dedup makes the replay idempotent, so recovery leaves no gaps
// and no double-counted readings.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "registry/lease_renewal.h"
#include "registry/lookup.h"
#include "sensor/data_log.h"
#include "sensor/reading.h"
#include "sorcer/accessor.h"
#include "util/scheduler.h"
#include "util/sim_time.h"

namespace sensorcer::hist {

struct FeederConfig {
  /// Exert a batch as soon as this many readings are pending.
  std::size_t batch_size = 32;
  /// Periodic flush of partial batches; 0 disables the timer.
  util::SimDuration flush_period = 5 * util::kSecond;
  /// Pending-buffer cap while unbound (oldest readings are dropped past it).
  std::size_t pending_cap = 4096;
  /// Max readings marshalled into one appendBatch task.
  std::size_t max_batch = 256;
  /// Lease duration of the notify() subscription.
  util::SimDuration subscription_lease = 30 * util::kSecond;
};

class HistorianFeeder {
 public:
  /// `sensor` names the series pushed by this feeder (the provider name).
  HistorianFeeder(std::string sensor, util::Scheduler& scheduler,
                  sorcer::ServiceAccessor& accessor, FeederConfig config = {});

  ~HistorianFeeder();

  HistorianFeeder(const HistorianFeeder&) = delete;
  HistorianFeeder& operator=(const HistorianFeeder&) = delete;

  /// Subscribe to DataCollection transitions on `lus`, managing the event
  /// lease through `lrm`. Binds immediately when a historian is already
  /// registered.
  void bind(const std::shared_ptr<registry::LookupService>& lus,
            registry::LeaseRenewalManager& lrm);

  /// Drop the subscription and stop pushing.
  void unbind();

  /// Enqueue one reading. Never pushes synchronously: a full batch is
  /// flushed on a zero-delay timer so all fabric traffic happens inside
  /// scheduler pumps.
  void offer(const sensor::Reading& reading);

  /// Enqueue every retained reading of `log` and flush — failover recovery.
  /// Safe to replay readings the historian already holds (server dedup).
  void backfill(const sensor::DataLog& log);

  /// Push pending readings now (also the timer body): all max_batch chunks
  /// go out as one pipelined scatter-gather batch (overlapped round-trips
  /// under wire transport); failed chunks re-queue at the front of the
  /// pending window. Returns readings successfully pushed in this call.
  std::size_t flush();

  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t failed_batches() const { return failed_; }
  [[nodiscard]] const std::string& sensor() const { return sensor_; }

 private:
  void on_transition(const registry::ServiceEvent& event);
  void schedule_flush();

  std::string sensor_;
  util::Scheduler& scheduler_;
  sorcer::ServiceAccessor& accessor_;
  FeederConfig config_;

  std::deque<sensor::Reading> pending_;
  bool bound_ = false;
  bool flushing_ = false;        // re-entrancy guard: wire pushes pump the scheduler
  bool flush_scheduled_ = false;
  util::TimerId flush_timer_ = 0;
  util::TimerId pending_flush_timer_ = 0;

  std::weak_ptr<registry::LookupService> lus_;
  registry::LeaseRenewalManager* lrm_ = nullptr;
  util::Uuid subscription_id_{};
  util::Uuid subscription_lease_{};

  std::uint64_t pushed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t failed_ = 0;

  /// Liveness token for flush(): exerting a batch pumps the scheduler, and a
  /// nested event (the provision monitor fencing this feeder's provider) can
  /// destroy the whole provider — feeder included — under the in-flight
  /// flush. The on-stack frame re-checks the token before touching members.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sensorcer::hist
