#include "hist/historian.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "core/interfaces.h"
#include "sorcer/context.h"

namespace sensorcer::hist {

namespace {

/// Time/duration inputs ride as int64 or double (batch arrays are doubles).
util::Result<util::SimTime> get_time(const sorcer::ServiceContext& ctx,
                                     const std::string& path) {
  auto raw = ctx.get(path);
  if (!raw.is_ok()) return raw.status();
  if (const auto* i = std::get_if<std::int64_t>(&raw.value())) return *i;
  if (const auto* d = std::get_if<double>(&raw.value())) {
    return static_cast<util::SimTime>(*d);
  }
  return util::Result<util::SimTime>(util::ErrorCode::kInvalidArgument,
                                     "not a time: " + path);
}

sensor::Quality decode_quality(double q) {
  switch (static_cast<int>(q)) {
    case 1: return sensor::Quality::kSuspect;
    case 2: return sensor::Quality::kBad;
    default: return sensor::Quality::kGood;
  }
}

void put_points(sorcer::ServiceContext& ctx, const SeriesResult& result) {
  std::vector<double> timestamps;
  std::vector<double> values;
  timestamps.reserve(result.points.size());
  values.reserve(result.points.size());
  for (const Point& p : result.points) {
    timestamps.push_back(static_cast<double>(p.timestamp));
    values.push_back(p.value);
  }
  ctx.put(core::path::kHistTimestamps, std::move(timestamps),
          sorcer::PathDirection::kOut);
  ctx.put(core::path::kHistValues, std::move(values),
          sorcer::PathDirection::kOut);
  ctx.put(core::path::kHistSource, result.source, sorcer::PathDirection::kOut);
  ctx.put(core::path::kHistTruncated, result.truncated,
          sorcer::PathDirection::kOut);
}

}  // namespace

Historian::Historian(std::string name, HistorianConfig config,
                     HistorianCosts costs)
    : ServiceProvider(std::move(name), {core::kDataCollectionType}),
      store_(std::move(config)),
      costs_(costs) {
  const HistorianConfig& cfg = store_.config();
  if (cfg.read_threads > 0) {
    read_exec_ = std::make_unique<ReadExecutor>(
        ReadExecutor::Config{cfg.read_threads, cfg.read_queue});
  }
  install_operations();
}

std::vector<sensor::Reading> Historian::decode_batch(
    const std::vector<double>& timestamps, const std::vector<double>& values,
    const std::vector<double>& qualities) {
  std::vector<sensor::Reading> out;
  const std::size_t n = std::min(timestamps.size(), values.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sensor::Reading r;
    r.timestamp = static_cast<util::SimTime>(timestamps[i]);
    r.value = values[i];
    r.quality = i < qualities.size() ? decode_quality(qualities[i])
                                     : sensor::Quality::kGood;
    out.push_back(r);
  }
  return out;
}

util::SimDuration Historian::extra_invocation_latency(
    const std::string& selector) const {
  (void)selector;
  return pending_extra_;
}

void Historian::install_operations() {
  add_operation(
      core::op::kAppendBatch,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        pending_extra_ = 0;
        auto sensor_name = ctx.get_string(core::path::kHistSensor);
        if (!sensor_name.is_ok()) return sensor_name.status();
        // Borrow the batch columns in place — the ingest hot path used to
        // copy all three series out of the context per call. The peeks are
        // only used to build `readings`, before any put() below moves the
        // entry storage.
        const auto* timestamps = ctx.peek_series(core::path::kHistTimestamps);
        if (timestamps == nullptr) {
          return {util::ErrorCode::kInvalidArgument,
                  "appendBatch: missing timestamps series"};
        }
        const auto* values = ctx.peek_series(core::path::kHistValues);
        if (values == nullptr) {
          return {util::ErrorCode::kInvalidArgument,
                  "appendBatch: missing values series"};
        }
        if (timestamps->size() != values->size()) {
          return {util::ErrorCode::kInvalidArgument,
                  "appendBatch: timestamps/values length mismatch"};
        }
        static const std::vector<double> kNoQualities;
        const auto* qualities = ctx.peek_series(core::path::kHistQualities);
        const auto readings = decode_batch(
            *timestamps, *values, qualities ? *qualities : kNoQualities);
        const AppendOutcome outcome =
            store_.append(sensor_name.value(), readings);
        pending_extra_ = static_cast<util::SimDuration>(readings.size()) *
                         costs_.per_reading;
        ctx.put(core::path::kHistAccepted,
                static_cast<std::int64_t>(outcome.accepted),
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistDuplicates,
                static_cast<std::int64_t>(outcome.duplicates),
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistLast,
                static_cast<std::int64_t>(
                    store_.last_timestamp(sensor_name.value())),
                sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      costs_.base);

  add_operation(
      core::op::kHistStats,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        pending_extra_ = 0;
        auto sensor_name = ctx.get_string(core::path::kHistSensor);
        if (!sensor_name.is_ok()) return sensor_name.status();
        auto from = get_time(ctx, core::path::kHistFrom);
        if (!from.is_ok()) return from.status();
        auto to = get_time(ctx, core::path::kHistTo);
        if (!to.is_ok()) return to.status();
        util::SimDuration resolution = 0;
        if (ctx.has(core::path::kHistResolution)) {
          auto r = get_time(ctx, core::path::kHistResolution);
          if (r.is_ok()) resolution = r.value();
        }
        const std::string& sensor = sensor_name.value();
        const StatsResult result = serve_read([&] {
          return store_.stats(sensor, from.value(), to.value(), resolution);
        });
        ctx.put(core::path::kHistCount,
                static_cast<std::int64_t>(result.stats.count),
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistMin, result.stats.min,
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistMax, result.stats.max,
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistSum, result.stats.sum,
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistMean, result.stats.mean(),
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistLast, result.stats.last,
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistSource, result.source,
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistFromEffective,
                static_cast<std::int64_t>(result.from_effective),
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistToEffective,
                static_cast<std::int64_t>(result.to_effective),
                sorcer::PathDirection::kOut);
        ctx.put(core::path::kHistResolution,
                static_cast<std::int64_t>(result.resolution),
                sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      costs_.base);

  add_operation(
      core::op::kHistRange,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        pending_extra_ = 0;
        auto sensor_name = ctx.get_string(core::path::kHistSensor);
        if (!sensor_name.is_ok()) return sensor_name.status();
        auto from = get_time(ctx, core::path::kHistFrom);
        if (!from.is_ok()) return from.status();
        auto to = get_time(ctx, core::path::kHistTo);
        if (!to.is_ok()) return to.status();
        std::size_t max_points = 1024;
        if (ctx.has(core::path::kHistPoints)) {
          auto p = get_time(ctx, core::path::kHistPoints);
          if (p.is_ok() && p.value() > 0) {
            max_points = static_cast<std::size_t>(p.value());
          }
        }
        const std::string& sensor = sensor_name.value();
        const SeriesResult result = serve_read([&] {
          return store_.range(sensor, from.value(), to.value(), max_points);
        });
        pending_extra_ = static_cast<util::SimDuration>(result.points.size()) *
                         costs_.per_point;
        put_points(ctx, result);
        return util::Status::ok();
      },
      costs_.base);

  add_operation(
      core::op::kHistDownsample,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        pending_extra_ = 0;
        auto sensor_name = ctx.get_string(core::path::kHistSensor);
        if (!sensor_name.is_ok()) return sensor_name.status();
        auto from = get_time(ctx, core::path::kHistFrom);
        if (!from.is_ok()) return from.status();
        auto to = get_time(ctx, core::path::kHistTo);
        if (!to.is_ok()) return to.status();
        std::size_t target_points = 64;
        if (ctx.has(core::path::kHistPoints)) {
          auto p = get_time(ctx, core::path::kHistPoints);
          if (p.is_ok() && p.value() > 0) {
            target_points = static_cast<std::size_t>(p.value());
          }
        }
        const std::string& sensor = sensor_name.value();
        const SeriesResult result = serve_read([&] {
          return store_.downsample(sensor, from.value(), to.value(),
                                   target_points);
        });
        pending_extra_ = static_cast<util::SimDuration>(result.points.size()) *
                         costs_.per_point;
        put_points(ctx, result);
        return util::Status::ok();
      },
      costs_.base);
}

}  // namespace sensorcer::hist
