#pragma once
// HistorianStore — the sharded segment map behind the Historian provider.
//
// Sensor name → SensorSeries, split across a fixed shard array (hash of the
// name) so concurrent appends from pool workers contend only per shard.
// Since PR 10 each series is internally thread-safe (active block + sealed
// chain snapshots): queries grab the segment's shared_ptr under a brief
// shard lock and then run entirely off-lock, so the read executor's workers
// never serialize behind an appender holding a shard.
//
// Byte accounting is split by storage class — uncompressed (active blocks +
// rollup rings), sealed (compressed blocks, footers included) and tiered
// (demoted rollup buckets) — and the eviction budget reflects the real
// total. Admitting past the budget first sheds the least-recently-appended
// series' coldest storage (cold tier → mid tier → oldest sealed block) and
// only evicts a segment wholesale once nothing sheddable remains. All
// ingest/query/eviction activity is mirrored onto the obs metrics registry
// (hist.*) for the federation health report.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hist/series.h"
#include "sensor/reading.h"
#include "util/sim_time.h"

namespace sensorcer::hist {

/// Storage policy of one historian node.
struct HistorianConfig {
  /// Layout of every per-sensor segment.
  SeriesConfig series;
  /// Total byte budget across all segments; 0 = unbounded.
  std::size_t max_bytes = 64 * 1024 * 1024;
  /// Shard count (power of two recommended); clamped to >= 1.
  std::size_t shards = 16;
  /// Read-side executor serving the provider's query ops: worker threads
  /// (0 = serve queries inline on the op thread) and bounded queue depth
  /// (overflow sheds the query back to the caller's thread).
  std::size_t read_threads = 2;
  std::size_t read_queue = 256;
};

/// Outcome of one append batch.
struct AppendOutcome {
  std::uint64_t accepted = 0;
  std::uint64_t duplicates = 0;  // replayed timestamps dropped by dedup
};

/// Point-in-time counters for health rows and tests.
struct StoreStats {
  std::size_t series_count = 0;
  std::size_t bytes = 0;  // total, all storage classes
  std::uint64_t appended = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t evicted_readings = 0;  // demoted out of the raw tier
  std::uint64_t evicted_series = 0;    // whole segments shed by the budget

  // Storage-class split (satellite: real byte accounting).
  std::size_t bytes_uncompressed = 0;  // active blocks + rollup rings
  std::size_t bytes_sealed = 0;        // compressed blocks incl. footers
  std::size_t bytes_tiered = 0;        // demoted tier buckets
  std::size_t sealed_blocks = 0;       // live
  std::size_t tier_blocks = 0;         // live (mid + cold)
  std::uint64_t sealed_readings = 0;   // live readings in sealed blocks
  std::uint64_t blocks_sealed = 0;     // total seals ever
  std::uint64_t blocks_demoted = 0;    // total raw->mid demotions ever
  std::uint64_t tier_evicted = 0;      // readings dropped past the cold tier
  /// Uncompressed-equivalent bytes of sealed readings / sealed bytes;
  /// 0 when nothing is sealed.
  double compression_ratio = 0.0;
};

class HistorianStore {
 public:
  explicit HistorianStore(HistorianConfig config = {});

  /// Append a batch of readings for one sensor. Creates the segment on
  /// first contact (possibly shedding/evicting cold storage to stay in
  /// budget).
  AppendOutcome append(const std::string& sensor,
                       const std::vector<sensor::Reading>& readings);

  /// Newest retained timestamp for `sensor`; -1 when unknown. Feeders use
  /// this to trim backfills after a failover.
  [[nodiscard]] util::SimTime last_timestamp(const std::string& sensor) const;

  /// Aggregate over [from, to); see SensorSeries::stats. Counts toward
  /// hist.query_rollup / hist.query_tiered / hist.query_raw depending on
  /// the path taken.
  [[nodiscard]] StatsResult stats(const std::string& sensor, util::SimTime from,
                                  util::SimTime to,
                                  util::SimDuration max_resolution) const;

  /// stats() bypassing the rollup rings — answered from the retention
  /// substrate (tiers + sealed chain + active block). Used by the chaos
  /// conservation audit and equivalence tests.
  [[nodiscard]] StatsResult deep_stats(const std::string& sensor,
                                       util::SimTime from, util::SimTime to,
                                       util::SimDuration max_resolution) const;

  /// Raw-tier readings in [from, to), capped at max_points.
  [[nodiscard]] SeriesResult range(const std::string& sensor,
                                   util::SimTime from, util::SimTime to,
                                   std::size_t max_points) const;

  /// At most target_points bucket-mean points over [from, to).
  [[nodiscard]] SeriesResult downsample(const std::string& sensor,
                                        util::SimTime from, util::SimTime to,
                                        std::size_t target_points) const;

  /// Exact retention boundaries of one segment ({-1, -1} when unknown):
  /// readings at/after raw_from are individually retrievable; readings in
  /// [tier_from, raw_from) survive as tier buckets only.
  [[nodiscard]] SensorSeries::Retention retention(
      const std::string& sensor) const;

  [[nodiscard]] StoreStats stats_snapshot() const;
  [[nodiscard]] const HistorianConfig& config() const { return config_; }

  /// Sensor names currently retained (sorted; for browser/health output).
  [[nodiscard]] std::vector<std::string> sensors() const;

 private:
  struct Entry {
    std::shared_ptr<SensorSeries> series;
    std::uint64_t last_touch = 0;  // global LRU stamp
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> segments;
    std::size_t bytes = 0;
  };

  [[nodiscard]] Shard& shard_for(const std::string& sensor);
  [[nodiscard]] const Shard& shard_for(const std::string& sensor) const;
  /// Segment lookup under a brief shard lock; queries then run off-lock.
  [[nodiscard]] std::shared_ptr<SensorSeries> find_series(
      const std::string& sensor) const;
  /// Called with the shard locked: shed/evict LRU storage until the shard
  /// fits its budget. A segment named by `keep` may be shed down to its
  /// active block but is never evicted wholesale (it is the segment being
  /// appended to right now).
  void evict_for_budget(Shard& shard, const std::string* keep = nullptr);
  /// Fold the (after - before) change of one series' counters into the
  /// store-level storage-class atomics and obs counters.
  void apply_series_delta(const SensorSeries::Counters& before,
                          const SensorSeries::Counters& after);
  /// Remove an evicted series' live storage from the atomics.
  void retire_series(const SensorSeries::Counters& counters);
  /// Refresh the hist.bytes_* / sealed-block / compression-ratio gauges.
  void publish_gauges() const;

  HistorianConfig config_;
  std::size_t shard_budget_ = 0;  // 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> touch_clock_{0};
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> evicted_series_{0};
  /// Raw-tier demotions carried by segments that were themselves evicted.
  std::atomic<std::uint64_t> evicted_readings_base_{0};

  // Storage-class accounting, maintained by before/after counter deltas at
  // every mutation site (append, shed, evict) — all signed because live
  // totals shrink on demotion/eviction.
  std::atomic<std::int64_t> bytes_uncompressed_{0};
  std::atomic<std::int64_t> bytes_sealed_{0};
  std::atomic<std::int64_t> bytes_tiered_{0};
  std::atomic<std::int64_t> sealed_blocks_{0};
  std::atomic<std::int64_t> tier_blocks_{0};
  std::atomic<std::int64_t> sealed_readings_{0};
  std::atomic<std::uint64_t> blocks_sealed_{0};
  std::atomic<std::uint64_t> blocks_demoted_{0};
  std::atomic<std::uint64_t> tier_evicted_{0};
};

}  // namespace sensorcer::hist
