#pragma once
// HistorianStore — the sharded segment map behind the Historian provider.
//
// Sensor name → SensorSeries, split across a fixed shard array (hash of the
// name) so concurrent appends from pool workers contend only per shard.
// Each shard carries a byte budget (total budget / shards); admitting a new
// series past the budget evicts the shard's least-recently-appended series
// wholesale, which models a historian node shedding cold sensors under
// memory pressure. All ingest/query/eviction activity is mirrored onto the
// obs metrics registry (hist.*) for the federation health report.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hist/series.h"
#include "sensor/reading.h"
#include "util/sim_time.h"

namespace sensorcer::hist {

/// Storage policy of one historian node.
struct HistorianConfig {
  /// Layout of every per-sensor segment.
  SeriesConfig series;
  /// Total byte budget across all segments; 0 = unbounded.
  std::size_t max_bytes = 64 * 1024 * 1024;
  /// Shard count (power of two recommended); clamped to >= 1.
  std::size_t shards = 16;
};

/// Outcome of one append batch.
struct AppendOutcome {
  std::uint64_t accepted = 0;
  std::uint64_t duplicates = 0;  // replayed timestamps dropped by dedup
};

/// Point-in-time counters for health rows and tests.
struct StoreStats {
  std::size_t series_count = 0;
  std::size_t bytes = 0;
  std::uint64_t appended = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t evicted_readings = 0;  // aged out of raw rings
  std::uint64_t evicted_series = 0;    // whole segments shed by the budget
};

class HistorianStore {
 public:
  explicit HistorianStore(HistorianConfig config = {});

  /// Append a batch of readings for one sensor. Creates the segment on
  /// first contact (possibly evicting a cold one to stay in budget).
  AppendOutcome append(const std::string& sensor,
                       const std::vector<sensor::Reading>& readings);

  /// Newest retained timestamp for `sensor`; -1 when unknown. Feeders use
  /// this to trim backfills after a failover.
  [[nodiscard]] util::SimTime last_timestamp(const std::string& sensor) const;

  /// Aggregate over [from, to); see SensorSeries::stats. Counts toward
  /// hist.query_rollup or hist.query_raw depending on the path taken.
  [[nodiscard]] StatsResult stats(const std::string& sensor, util::SimTime from,
                                  util::SimTime to,
                                  util::SimDuration max_resolution) const;

  /// Raw readings in [from, to), capped at max_points.
  [[nodiscard]] SeriesResult range(const std::string& sensor,
                                   util::SimTime from, util::SimTime to,
                                   std::size_t max_points) const;

  /// At most target_points bucket-mean points over [from, to).
  [[nodiscard]] SeriesResult downsample(const std::string& sensor,
                                        util::SimTime from, util::SimTime to,
                                        std::size_t target_points) const;

  [[nodiscard]] StoreStats stats_snapshot() const;
  [[nodiscard]] const HistorianConfig& config() const { return config_; }

  /// Sensor names currently retained (sorted; for browser/health output).
  [[nodiscard]] std::vector<std::string> sensors() const;

 private:
  struct Entry {
    std::unique_ptr<SensorSeries> series;
    std::uint64_t last_touch = 0;  // global LRU stamp
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> segments;
    std::size_t bytes = 0;
  };

  [[nodiscard]] Shard& shard_for(const std::string& sensor);
  [[nodiscard]] const Shard& shard_for(const std::string& sensor) const;
  /// Called with the shard locked: make room for one more segment.
  void evict_for_budget(Shard& shard);

  HistorianConfig config_;
  std::size_t shard_budget_ = 0;  // 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> touch_clock_{0};
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> evicted_series_{0};
  /// Raw-ring evictions carried by segments that were themselves evicted.
  std::atomic<std::uint64_t> evicted_readings_base_{0};
};

}  // namespace sensorcer::hist
