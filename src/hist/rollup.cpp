#include "hist/rollup.h"

#include <algorithm>

namespace sensorcer::hist {

void RollupBucket::add(util::SimTime ts, double value) {
  if (count == 0) {
    min = max = value;
    last = value;
    last_ts = ts;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
    if (ts >= last_ts) {
      last = value;
      last_ts = ts;
    }
  }
  sum += value;
  ++count;
}

void RollupBucket::merge(const RollupBucket& other) {
  if (other.empty()) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
    last = other.last;
    last_ts = other.last_ts;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    if (other.last_ts >= last_ts) {
      last = other.last;
      last_ts = other.last_ts;
    }
  }
  sum += other.sum;
  count += other.count;
}

void AggregateStats::add_sample(util::SimTime ts, double value) {
  if (count == 0) {
    min = max = value;
    last = value;
    last_ts = ts;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
    if (ts >= last_ts) {
      last = value;
      last_ts = ts;
    }
  }
  sum += value;
  ++count;
}

void AggregateStats::add_bucket(const RollupBucket& bucket) {
  if (bucket.empty()) return;
  if (count == 0) {
    min = bucket.min;
    max = bucket.max;
    last = bucket.last;
    last_ts = bucket.last_ts;
  } else {
    min = std::min(min, bucket.min);
    max = std::max(max, bucket.max);
    if (bucket.last_ts >= last_ts) {
      last = bucket.last;
      last_ts = bucket.last_ts;
    }
  }
  sum += bucket.sum;
  count += bucket.count;
}

RollupRing::RollupRing(util::SimDuration resolution, std::size_t bucket_count)
    : res_(resolution > 0 ? resolution : 1),
      ring_(bucket_count > 0 ? bucket_count : 1) {}

bool RollupRing::append(util::SimTime ts, double value) {
  const util::SimTime s = align(ts);
  if (!any_) {
    any_ = true;
    newest_start_ = s;
    valid_from_ = s;
    RollupBucket& b = ring_[index_of(s)];
    b = RollupBucket{};
    b.start = s;
    b.add(ts, value);
    return true;
  }
  if (s > newest_start_) {
    const auto n = static_cast<util::SimTime>(ring_.size());
    const util::SimTime steps = (s - newest_start_) / res_;
    if (steps >= n) {
      // The whole retained window ages out in one jump.
      for (RollupBucket& b : ring_) {
        evicted_readings_ += b.count;
        b = RollupBucket{};
      }
      newest_start_ = s;
      valid_from_ = s;
    } else {
      // Advance bucket by bucket, evicting whatever each slot held.
      for (util::SimTime i = 1; i <= steps; ++i) {
        const util::SimTime start = newest_start_ + i * res_;
        RollupBucket& b = ring_[index_of(start)];
        evicted_readings_ += b.count;
        b = RollupBucket{};
        b.start = start;
      }
      newest_start_ = s;
      valid_from_ = std::max(valid_from_, newest_start_ - (n - 1) * res_);
    }
    RollupBucket& b = ring_[index_of(s)];
    b.start = s;
    b.add(ts, value);
    return true;
  }
  if (s >= valid_from_) {
    // In-window, out-of-order (backfill): the slot for this bucket is live.
    RollupBucket& b = ring_[index_of(s)];
    b.start = s;
    b.add(ts, value);
    return true;
  }
  return false;  // predates the retained window
}

AggregateStats RollupRing::aggregate(util::SimTime from,
                                     util::SimTime to) const {
  AggregateStats out;
  if (!any_ || to <= from) return out;
  const util::SimTime lo = std::max(align(from), valid_from_);
  const util::SimTime hi = std::min(align_up(to), newest_start_ + res_);
  for (util::SimTime s = lo; s < hi; s += res_) {
    const RollupBucket& b = ring_[index_of(s)];
    if (!b.empty() && b.start == s) out.add_bucket(b);
  }
  return out;
}

void RollupRing::visit(
    util::SimTime from, util::SimTime to,
    const std::function<void(const RollupBucket&)>& fn) const {
  if (!any_ || to <= from) return;
  const util::SimTime lo = std::max(align(from), valid_from_);
  const util::SimTime hi = std::min(align_up(to), newest_start_ + res_);
  for (util::SimTime s = lo; s < hi; s += res_) {
    const RollupBucket& b = ring_[index_of(s)];
    if (!b.empty() && b.start == s) fn(b);
  }
}

}  // namespace sensorcer::hist
