#pragma once
// Sealed, immutable, compressed storage blocks — the retention substrate of
// the historian's raw tier (ISSUE 10 tentpole).
//
// A SealedBlock is a Gorilla-style compressed run of time-ordered readings:
// timestamps are delta-of-delta encoded (a fixed-cadence sensor costs one
// bit per sample), values are XOR-encoded against their predecessor with a
// leading/meaningful-bit window (a quantized sensor that repeats values
// costs one bit per sample), and quality flags are packed two bits each in
// a separate section so the common all-good block pays nothing. A fixed
// footer carries the block's aggregate stats (count, good-only
// min/max/sum/last, timestamp bounds) so a stats query that fully covers a
// block folds the footer in without decoding a single reading.
//
// The read API is file-like, after the sense-and-respond file-system
// abstraction (PAPERS.md, Tilak et al.): open a cursor, iterate readings,
// or read the footer — the block itself is an opaque byte buffer that could
// equally live on disk or cross a process boundary. Decoding is hardened:
// every bit read is bounds-checked, so a truncated or corrupted buffer
// yields an error (or a clean prefix) instead of an overrun.
//
// A TierBlock is what a SealedBlock demotes into when it ages past the raw
// tier's retention horizon: the same readings re-expressed as time-aligned
// rollup buckets at a coarser resolution (1s, then 60s), so old history
// keeps answering aggregate queries instead of being silently dropped.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hist/rollup.h"
#include "sensor/reading.h"
#include "util/status.h"
#include "util/sim_time.h"

namespace sensorcer::hist {

class SealedBlock {
 public:
  /// Fixed-size trailer of every sealed block. Aggregates cover good and
  /// suspect readings only (kBad is excluded from aggregates on every
  /// historian path); count covers every reading in the block.
  struct Footer {
    util::SimTime first_ts = 0;
    util::SimTime last_ts = 0;
    std::uint32_t count = 0;
    std::uint32_t good_count = 0;  // good + suspect
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double last = 0.0;  // last good/suspect value
    util::SimTime last_good_ts = 0;
  };

  /// Compress a non-empty, timestamp-sorted run of readings. Sequence
  /// numbers are not retained (the historian's query surface never exposes
  /// them; decoded readings carry sequence 0).
  static std::shared_ptr<const SealedBlock> seal(
      const std::vector<sensor::Reading>& readings);

  /// Open a block from its serialized bytes, validating the header, section
  /// sizes and footer. This is the fuzz/corruption entry point — and the
  /// seam a future on-disk backend reads through.
  static util::Result<std::shared_ptr<const SealedBlock>> open(
      std::vector<std::uint8_t> bytes);

  /// Sequential decoder over the block's readings, oldest first. All bit
  /// reads are bounds-checked: a malformed stream ends the iteration early
  /// with truncated() set instead of reading out of bounds.
  class Cursor {
   public:
    explicit Cursor(const SealedBlock& block);

    /// Decode the next reading; false at end-of-block or on a malformed
    /// stream (check truncated() to tell the two apart).
    bool next(sensor::Reading& out);

    [[nodiscard]] bool truncated() const { return truncated_; }
    [[nodiscard]] std::uint32_t decoded() const { return index_; }

   private:
    const SealedBlock& block_;
    std::size_t bit_pos_ = 0;  // into the ts/value stream
    std::uint32_t index_ = 0;
    util::SimTime prev_ts_ = 0;
    util::SimDuration prev_delta_ = 0;
    std::uint64_t prev_value_bits_ = 0;
    unsigned prev_leading_ = 0;
    unsigned prev_meaningful_ = 0;
    bool window_valid_ = false;
    bool truncated_ = false;
  };

  /// File-like open: a cursor positioned at the first reading.
  [[nodiscard]] Cursor open_cursor() const { return Cursor(*this); }

  /// Visit readings with from <= timestamp < until, oldest first, decoding
  /// at most up to the first reading past `until`.
  template <typename Fn>
  void for_each(util::SimTime from, util::SimTime until, Fn&& fn) const {
    Cursor cursor(*this);
    sensor::Reading r;
    while (cursor.next(r)) {
      if (r.timestamp >= until) break;
      if (r.timestamp >= from) fn(r);
    }
  }

  [[nodiscard]] const Footer& footer() const { return footer_; }
  [[nodiscard]] std::uint32_t count() const { return footer_.count; }
  [[nodiscard]] util::SimTime first_ts() const { return footer_.first_ts; }
  [[nodiscard]] util::SimTime last_ts() const { return footer_.last_ts; }

  /// Physical footprint: the serialized bytes (header + streams + footer).
  [[nodiscard]] std::size_t bytes() const { return bytes_.size(); }
  /// Logical footprint the block replaces: count * sizeof(Reading).
  [[nodiscard]] std::size_t uncompressed_bytes() const {
    return static_cast<std::size_t>(footer_.count) * sizeof(sensor::Reading);
  }

  /// Serialized form (for persistence tests and the corruption fuzz).
  [[nodiscard]] const std::vector<std::uint8_t>& raw_bytes() const {
    return bytes_;
  }

  /// Fold the footer's good-only aggregates into `agg` (the no-decode fast
  /// path of a stats query that fully covers this block).
  void add_footer_stats(AggregateStats& agg) const;

 private:
  SealedBlock() = default;

  std::vector<std::uint8_t> bytes_;
  Footer footer_;
  std::size_t stream_bytes_ = 0;   // ts/value bitstream length
  std::size_t quality_offset_ = 0;  // 0 when the block is all-good
};

/// A demoted block: the readings of one (or more) sealed blocks re-expressed
/// as rollup buckets at a coarser resolution. first_ts/last_ts keep the
/// exact reading bounds the tier block represents, so retention boundaries
/// stay exact across demotion (the chaos conservation audit depends on it).
struct TierBlock {
  util::SimDuration resolution = util::kSecond;
  util::SimTime first_ts = 0;
  util::SimTime last_ts = 0;
  std::uint64_t readings = 0;     // good + suspect readings aggregated
  std::uint64_t bad_dropped = 0;  // kBad readings not representable in buckets
  std::vector<RollupBucket> buckets;  // time-ordered, aligned to resolution

  [[nodiscard]] std::size_t bytes() const {
    return sizeof(TierBlock) + buckets.size() * sizeof(RollupBucket);
  }

  /// Demote a sealed block: decode and bucket every good/suspect reading.
  static std::shared_ptr<const TierBlock> from_sealed(
      const SealedBlock& block, util::SimDuration resolution);

  /// Re-demote to a coarser resolution by merging buckets (1s tier -> 60s
  /// tier); no decode involved.
  static std::shared_ptr<const TierBlock> rebucket(
      const TierBlock& block, util::SimDuration resolution);
};

}  // namespace sensorcer::hist
