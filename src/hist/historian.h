#pragma once
// Historian — the federated sensor-data historian provider (PR 4 tentpole).
//
// A ServiceProvider exporting the "DataCollection" interface. ESPs push
// reading batches at it through the PR 3 invocation pipeline (appendBatch);
// requestors query ranges, aggregates and downsampled series through the
// same pipeline (histStats / histRange / histDownsample), typically via
// SensorcerFacade. Storage is a HistorianStore: per-sensor sharded segments
// of raw ring + multi-resolution rollup rings, so wide aggregate queries
// are answered from O(buckets) rollup state instead of rescanning readings.

#include <memory>
#include <string>
#include <vector>

#include "hist/store.h"
#include "sensor/reading.h"
#include "sorcer/provider.h"
#include "util/sim_time.h"

namespace sensorcer::hist {

/// Modeled execution costs of the historian's operations.
struct HistorianCosts {
  /// Fixed per-call dispatch cost of every operation.
  util::SimDuration base = 200 * util::kMicrosecond;
  /// Per-reading ingest cost charged on top of `base` for appendBatch —
  /// batching n readings costs base + n*per_reading, vs n*(base+...) for
  /// single-reading pushes.
  util::SimDuration per_reading = 2 * util::kMicrosecond;
  /// Per-result-point cost charged to range/downsample responses.
  util::SimDuration per_point = 1 * util::kMicrosecond;
};

class Historian final : public sorcer::ServiceProvider {
 public:
  explicit Historian(std::string name, HistorianConfig config = {},
                     HistorianCosts costs = {});

  [[nodiscard]] HistorianStore& store() { return store_; }
  [[nodiscard]] const HistorianStore& store() const { return store_; }

  /// Decode an appendBatch context's parallel arrays back into readings
  /// (exposed for tests; the inverse of HistorianFeeder's marshalling).
  static std::vector<sensor::Reading> decode_batch(
      const std::vector<double>& timestamps, const std::vector<double>& values,
      const std::vector<double>& qualities);

 protected:
  /// Ingest/query costs scale with the work the last operation did.
  util::SimDuration extra_invocation_latency(
      const std::string& selector) const override;

 private:
  void install_operations();

  HistorianStore store_;
  HistorianCosts costs_;
  /// Work-proportional latency of the operation just executed; read by
  /// extra_invocation_latency under the provider's invocation lock.
  util::SimDuration pending_extra_ = 0;
};

}  // namespace sensorcer::hist
