#pragma once
// Historian — the federated sensor-data historian provider (PR 4 tentpole).
//
// A ServiceProvider exporting the "DataCollection" interface. ESPs push
// reading batches at it through the PR 3 invocation pipeline (appendBatch);
// requestors query ranges, aggregates and downsampled series through the
// same pipeline (histStats / histRange / histDownsample), typically via
// SensorcerFacade. Storage is a HistorianStore: per-sensor sharded segments
// of an active block + compressed sealed chain + demoted tiers, plus
// multi-resolution rollup rings, so wide aggregate queries are answered
// from O(buckets) rollup state instead of rescanning readings.
//
// Query ops are dispatched onto the read-side executor (read_executor.h):
// the op thread submits the store scan and blocks on the future, so heavy
// decode work runs on executor workers — never under the provider's
// invocation lock contended by ingest — and overflow sheds back inline.

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "hist/read_executor.h"
#include "hist/store.h"
#include "sensor/reading.h"
#include "sorcer/provider.h"
#include "util/sim_time.h"

namespace sensorcer::hist {

/// Modeled execution costs of the historian's operations.
struct HistorianCosts {
  /// Fixed per-call dispatch cost of every operation.
  util::SimDuration base = 200 * util::kMicrosecond;
  /// Per-reading ingest cost charged on top of `base` for appendBatch —
  /// batching n readings costs base + n*per_reading, vs n*(base+...) for
  /// single-reading pushes.
  util::SimDuration per_reading = 2 * util::kMicrosecond;
  /// Per-result-point cost charged to range/downsample responses.
  util::SimDuration per_point = 1 * util::kMicrosecond;
};

class Historian final : public sorcer::ServiceProvider {
 public:
  explicit Historian(std::string name, HistorianConfig config = {},
                     HistorianCosts costs = {});

  [[nodiscard]] HistorianStore& store() { return store_; }
  [[nodiscard]] const HistorianStore& store() const { return store_; }

  /// The read-side executor; nullptr when config.read_threads == 0
  /// (queries then run inline on the op thread).
  [[nodiscard]] ReadExecutor* read_executor() { return read_exec_.get(); }

  /// Decode an appendBatch context's parallel arrays back into readings
  /// (exposed for tests; the inverse of HistorianFeeder's marshalling).
  static std::vector<sensor::Reading> decode_batch(
      const std::vector<double>& timestamps, const std::vector<double>& values,
      const std::vector<double>& qualities);

 protected:
  /// Ingest/query costs scale with the work the last operation did.
  util::SimDuration extra_invocation_latency(
      const std::string& selector) const override;

 private:
  void install_operations();

  /// Run a store scan on the read executor and wait for its result. The
  /// closure touches only the (internally synchronized) store — never the
  /// context or the provider lock — so blocking here cannot deadlock.
  template <typename F>
  auto serve_read(F&& fn) -> std::invoke_result_t<F> {
    if (read_exec_ != nullptr) {
      return read_exec_->submit(std::forward<F>(fn)).get();
    }
    return fn();
  }

  HistorianStore store_;
  /// Declared after store_, so it joins its workers before store_ dies.
  std::unique_ptr<ReadExecutor> read_exec_;
  HistorianCosts costs_;
  /// Work-proportional latency of the operation just executed; read by
  /// extra_invocation_latency under the provider's invocation lock.
  util::SimDuration pending_extra_ = 0;
};

}  // namespace sensorcer::hist
