#pragma once
// Per-sensor storage segment of the historian.
//
// The raw tier is an active append block (sensor::DataLog — the same
// building block each ESP already uses as its local store) plus a chain of
// sealed, immutable, Gorilla-compressed blocks (hist/block.h). When the
// active block fills it is sealed whole; when the raw tier exceeds its
// reading budget or age horizon, the oldest sealed block is demoted — not
// dropped — into a 1s rollup TierBlock (the mid tier), and mid blocks past
// their own budget/horizon re-bucket into 60s cold blocks. Only the cold
// tier ever actually discards history. Rollup rings (PR 4) are unchanged
// and keep serving recent wide aggregates in O(buckets).
//
// Concurrency: one mutex guards the hot state (active block, rings,
// counters); the sealed/tier chain is an immutable copy-on-write snapshot
// behind a shared_ptr. A deep read locks only long enough to copy the
// bounded active block and grab the chain pointer, then decodes/scans
// compressed history entirely lock-free — readers never block the append
// path for more than that bounded copy (the seqlock-spirit coordination
// the read executor relies on).
//
// Queries go through a tiny planner: a stats or downsample request names
// the coarsest bucket width it can accept and is answered from the
// coarsest ring that is fine enough and still retains the window start;
// otherwise it falls to a deep scan over sealed blocks + active (exact,
// footer-accelerated), or — when the window reaches past the raw tier and
// the caller tolerates tier-width buckets — to the tiered path combining
// cold buckets, mid buckets and raw readings.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hist/block.h"
#include "hist/rollup.h"
#include "sensor/data_log.h"
#include "sensor/reading.h"
#include "util/sim_time.h"

namespace sensorcer::hist {

/// One rollup ring: bucket width and how many buckets are retained.
struct RingSpec {
  util::SimDuration resolution = util::kSecond;
  std::size_t buckets = 600;
};

/// Storage layout of one sensor's segment. The defaults retain ~1.5h of
/// 1 Hz data across three resolutions, with raw history compressed once a
/// block seals.
struct SeriesConfig {
  /// Raw readings retained across the active block and the sealed chain.
  /// Overflow demotes the oldest sealed block to the mid tier.
  std::size_t raw_capacity = 4096;
  /// Readings per sealed block: the active block seals when it reaches
  /// this size (clamped to raw_capacity).
  std::size_t block_readings = 512;
  /// Rollup resolutions; order does not matter (sorted on construction).
  std::vector<RingSpec> rings{{util::kSecond, 600},
                              {10 * util::kSecond, 360},
                              {60 * util::kSecond, 240}};

  /// Tiering: sealed blocks demote raw -> mid (1s buckets) -> cold (60s
  /// buckets) -> dropped. Bucket budgets bound each tier's footprint.
  util::SimDuration mid_resolution = util::kSecond;
  util::SimDuration cold_resolution = 60 * util::kSecond;
  std::size_t mid_max_buckets = 4096;
  std::size_t cold_max_buckets = 4096;
  /// Age horizons relative to the newest appended timestamp; 0 disables
  /// age-based demotion for that tier (size budgets still apply).
  util::SimDuration raw_horizon = 0;
  util::SimDuration mid_horizon = 0;
  util::SimDuration cold_horizon = 0;
};

/// A (timestamp, value) pair of a range or downsample result.
struct Point {
  util::SimTime timestamp = 0;
  double value = 0.0;
};

/// Result of a stats query. `from_effective`/`to_effective` report the
/// window actually answered: rollup/tier answers are bucket-aligned, and
/// every path clamps to what is retained.
struct StatsResult {
  AggregateStats stats;
  util::SimTime from_effective = 0;
  util::SimTime to_effective = 0;
  /// "raw", "rollup:<resolution>" (e.g. "rollup:60s"), or "tiered" when
  /// demoted tiers contributed buckets.
  std::string source;
  /// Bucket width used; 0 for the raw path. For "tiered" this is the
  /// coarsest tier that contributed.
  util::SimDuration resolution = 0;
};

/// Result of a range or downsample query.
struct SeriesResult {
  std::vector<Point> points;
  std::string source;
  /// True when a range query had more matching readings than max_points.
  bool truncated = false;
};

class SensorSeries {
 public:
  explicit SensorSeries(const SeriesConfig& config = {});

  SensorSeries(const SensorSeries&) = delete;
  SensorSeries& operator=(const SensorSeries&) = delete;

  enum class Append {
    kAccepted,
    kAcceptedEvicted,  // accepted; readings left the raw tier (demotion)
    kDuplicate,        // timestamp <= newest retained; dropped (dedup)
  };

  /// Byte footprint split by storage class. active/ring are uncompressed
  /// fixed allocations; sealed is compressed block bytes (headers, streams
  /// and footers included); tier is demoted rollup buckets.
  struct Footprint {
    std::size_t active_bytes = 0;
    std::size_t ring_bytes = 0;
    std::size_t sealed_bytes = 0;
    std::size_t tier_bytes = 0;
    [[nodiscard]] std::size_t total() const {
      return active_bytes + ring_bytes + sealed_bytes + tier_bytes;
    }
  };

  /// Exact retention boundaries. -1 means the region holds nothing.
  /// Readings with ts >= raw_from are individually retrievable (range);
  /// readings in [tier_from, raw_from) survive only as tier buckets.
  struct Retention {
    util::SimTime tier_from = -1;
    util::SimTime raw_from = -1;
  };

  /// Monotonic + live counters, snapshotted atomically under the series
  /// lock (the store keeps its byte accounting via before/after deltas).
  struct Counters {
    std::uint64_t appended = 0;
    std::uint64_t raw_evicted = 0;    // readings demoted out of the raw tier
    std::uint64_t tier_evicted = 0;   // readings dropped from the cold tier
    std::uint64_t blocks_sealed = 0;  // total seals ever
    std::uint64_t blocks_demoted = 0;  // total raw->mid demotions ever
    std::uint64_t sealed_readings = 0;  // live readings in sealed blocks
    std::size_t sealed_blocks = 0;      // live
    std::size_t tier_blocks = 0;        // live (mid + cold)
    Footprint footprint;
  };

  /// Append one reading. Raw keeps every quality; rollups and tiers
  /// aggregate only good/suspect readings (kBad is excluded from
  /// aggregates, matching DataLog::stats_since). Timestamps must be
  /// non-decreasing per series — an equal-or-older timestamp is treated as
  /// a replayed duplicate (the failover-backfill dedup rule) and dropped.
  Append append(const sensor::Reading& reading);

  /// Aggregate over [from, to). `max_resolution` is the coarsest bucket
  /// width the caller accepts; 0 demands the exact raw path.
  [[nodiscard]] StatsResult stats(util::SimTime from, util::SimTime to,
                                  util::SimDuration max_resolution) const;

  /// Like stats(), but never answered from the rollup rings: the answer
  /// comes from the retention substrate (tiers + sealed chain + active).
  /// This is what the chaos conservation audit and the equivalence tests
  /// probe — it proves what the tiers actually hold.
  [[nodiscard]] StatsResult deep_stats(util::SimTime from, util::SimTime to,
                                       util::SimDuration max_resolution) const;

  /// Raw-tier readings in [from, to), oldest first, capped at max_points.
  /// Served from the sealed chain + active block (demoted history is no
  /// longer individually retrievable).
  [[nodiscard]] SeriesResult range(util::SimTime from, util::SimTime to,
                                   std::size_t max_points) const;

  /// At most `target_points` (bucket-start, bucket-mean) points over
  /// [from, to), answered from the coarsest ring whose buckets are no wider
  /// than the implied point spacing, falling back to tiers + raw scan.
  [[nodiscard]] SeriesResult downsample(util::SimTime from, util::SimTime to,
                                        std::size_t target_points) const;

  /// Planner decision (exposed for tests): the ring that would answer a
  /// query reaching back to `from` at `max_resolution`, or nullptr for the
  /// deep path.
  [[nodiscard]] const RollupRing* pick_ring(
      util::SimTime from, util::SimDuration max_resolution) const;

  /// Free the coldest storage: drop the oldest cold block, else re-bucket
  /// the oldest mid block to cold, else demote the oldest sealed block
  /// straight to the cold tier. Returns bytes freed (0 when only the
  /// active block and rings remain — the caller should then evict the
  /// whole series). This is the store's eviction ladder: compressed-cold
  /// history goes first, hot uncompressed state last.
  std::size_t shed_coldest();

  // --- accessors (thread-safe unless noted) ---

  /// The active (uncompressed) append block. Test-only: not synchronized
  /// against a concurrent appender.
  [[nodiscard]] const sensor::DataLog& raw() const { return active_; }
  /// Test-only, as raw().
  [[nodiscard]] const std::vector<RollupRing>& rings() const { return rings_; }

  [[nodiscard]] util::SimTime last_timestamp() const;
  [[nodiscard]] std::uint64_t appended() const;
  /// Readings demoted out of the raw tier (they survive as tier buckets).
  [[nodiscard]] std::uint64_t raw_evicted() const;
  /// Readings dropped entirely (aged/evicted out of the cold tier).
  [[nodiscard]] std::uint64_t tier_evicted() const;
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] Footprint footprint() const;
  [[nodiscard]] Retention retention() const;
  [[nodiscard]] Counters counters() const;

 private:
  /// Immutable snapshot of all non-active storage, oldest-first within
  /// each vector; cold strictly older than mid strictly older than sealed.
  struct Chain {
    std::vector<std::shared_ptr<const SealedBlock>> sealed;
    std::vector<std::shared_ptr<const TierBlock>> mid;
    std::vector<std::shared_ptr<const TierBlock>> cold;
    std::uint64_t sealed_readings = 0;
    std::size_t sealed_bytes = 0;
    std::size_t tier_bytes = 0;
    std::size_t mid_buckets = 0;
    std::size_t cold_buckets = 0;
  };

  /// What a deep reader walks after releasing the lock: the chain snapshot
  /// plus a copy of the (bounded) active block.
  struct ReadView {
    std::shared_ptr<const Chain> chain;
    std::vector<sensor::Reading> active;
    util::SimTime last_ts = -1;
  };

  /// Oldest individually-retrievable reading of the view; -1 when none.
  [[nodiscard]] static util::SimTime raw_from_of(const ReadView& view);

  [[nodiscard]] ReadView read_view_locked() const;
  [[nodiscard]] const RollupRing* pick_ring_locked(
      util::SimTime from, util::SimDuration max_resolution) const;
  void seal_active_locked();
  /// Apply size/age demotion policy to a mutable chain copy; returns true
  /// when it changed. Updates raw_evicted_/tier_evicted_/demotion counters.
  bool demote_locked(Chain& chain);
  void publish_locked(Chain&& chain);
  [[nodiscard]] Footprint footprint_locked() const;
  [[nodiscard]] Retention retention_of(const ReadView& view) const;

  [[nodiscard]] StatsResult deep_stats_view(const ReadView& view,
                                            util::SimTime from,
                                            util::SimTime to,
                                            util::SimDuration max_res) const;

  SeriesConfig config_;  // normalized (block size clamped, rings sorted)

  mutable std::mutex hot_mu_;
  sensor::DataLog active_;
  std::vector<RollupRing> rings_;  // sorted fine -> coarse
  std::shared_ptr<const Chain> chain_;  // never null
  util::SimTime last_ts_ = -1;
  std::uint64_t appended_ = 0;
  std::uint64_t raw_evicted_ = 0;
  std::uint64_t tier_evicted_ = 0;
  std::uint64_t blocks_sealed_ = 0;
  std::uint64_t blocks_demoted_ = 0;
  std::size_t ring_bytes_ = 0;
};

}  // namespace sensorcer::hist
