#pragma once
// Per-sensor storage segment of the historian: a raw ring of recent
// readings (sensor::DataLog — the same building block each ESP already
// uses as its local store) plus one RollupRing per configured resolution,
// all maintained incrementally at append time.
//
// Queries go through a tiny planner: a stats or downsample request names
// the coarsest bucket width it can accept, and the series answers from the
// coarsest ring that (a) is at least that fine and (b) still retains the
// start of the window — falling back to a raw scan (binary-searched start,
// bounded walk) only when no ring qualifies. A wide aggregate therefore
// costs O(buckets), not O(readings).

#include <cstdint>
#include <string>
#include <vector>

#include "hist/rollup.h"
#include "sensor/data_log.h"
#include "sensor/reading.h"
#include "util/sim_time.h"

namespace sensorcer::hist {

/// One rollup ring: bucket width and how many buckets are retained.
struct RingSpec {
  util::SimDuration resolution = util::kSecond;
  std::size_t buckets = 600;
};

/// Storage layout of one sensor's segment. The defaults retain ~1.5h of
/// 1 Hz data across three resolutions in ~200 KiB per sensor.
struct SeriesConfig {
  /// Raw readings retained (FIFO ring).
  std::size_t raw_capacity = 4096;
  /// Rollup resolutions; order does not matter (sorted on construction).
  std::vector<RingSpec> rings{{util::kSecond, 600},
                              {10 * util::kSecond, 360},
                              {60 * util::kSecond, 240}};
};

/// A (timestamp, value) pair of a range or downsample result.
struct Point {
  util::SimTime timestamp = 0;
  double value = 0.0;
};

/// Result of a stats query. `from_effective`/`to_effective` report the
/// window actually answered: rollup answers are bucket-aligned, and both
/// paths clamp to what is retained.
struct StatsResult {
  AggregateStats stats;
  util::SimTime from_effective = 0;
  util::SimTime to_effective = 0;
  /// "raw" or "rollup:<resolution>", e.g. "rollup:60s".
  std::string source;
  /// Bucket width used; 0 for the raw path.
  util::SimDuration resolution = 0;
};

/// Result of a range or downsample query.
struct SeriesResult {
  std::vector<Point> points;
  std::string source;
  /// True when a range query had more matching readings than max_points.
  bool truncated = false;
};

class SensorSeries {
 public:
  explicit SensorSeries(const SeriesConfig& config = {});

  enum class Append {
    kAccepted,
    kAcceptedEvicted,  // accepted; the raw ring evicted its oldest reading
    kDuplicate,        // timestamp <= newest retained; dropped (dedup)
  };

  /// Append one reading. Raw keeps every quality; rollups aggregate only
  /// good/suspect readings (kBad is excluded from aggregates, matching
  /// DataLog::stats_since). Timestamps must be non-decreasing per series —
  /// an equal-or-older timestamp is treated as a replayed duplicate (the
  /// failover-backfill dedup rule) and dropped.
  Append append(const sensor::Reading& reading);

  [[nodiscard]] const sensor::DataLog& raw() const { return raw_; }
  [[nodiscard]] const std::vector<RollupRing>& rings() const { return rings_; }
  [[nodiscard]] util::SimTime last_timestamp() const { return last_ts_; }
  [[nodiscard]] std::uint64_t appended() const { return appended_; }

  /// Aggregate over [from, to). `max_resolution` is the coarsest bucket
  /// width the caller accepts; 0 demands the exact raw path.
  [[nodiscard]] StatsResult stats(util::SimTime from, util::SimTime to,
                                  util::SimDuration max_resolution) const;

  /// Raw readings in [from, to), oldest first, capped at max_points.
  [[nodiscard]] SeriesResult range(util::SimTime from, util::SimTime to,
                                   std::size_t max_points) const;

  /// At most `target_points` (bucket-start, bucket-mean) points over
  /// [from, to), answered from the coarsest ring whose buckets are no wider
  /// than the implied point spacing.
  [[nodiscard]] SeriesResult downsample(util::SimTime from, util::SimTime to,
                                        std::size_t target_points) const;

  /// Planner decision (exposed for tests): the ring that would answer a
  /// query reaching back to `from` at `max_resolution`, or nullptr for the
  /// raw path.
  [[nodiscard]] const RollupRing* pick_ring(
      util::SimTime from, util::SimDuration max_resolution) const;

  /// Fixed memory footprint (raw ring + all rollup rings).
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  /// Readings aged out of the raw ring.
  [[nodiscard]] std::uint64_t raw_evicted() const { return raw_.evicted(); }

 private:
  sensor::DataLog raw_;
  std::vector<RollupRing> rings_;  // sorted fine → coarse
  util::SimTime last_ts_ = -1;
  std::uint64_t appended_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace sensorcer::hist
