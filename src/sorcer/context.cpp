#include "sorcer/context.h"

#include <cstdio>

#include "util/strings.h"

namespace sensorcer::sorcer {

std::string context_value_to_string(const ContextValue& value) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "<none>"; }
    std::string operator()(double d) const {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g", d);
      return buf;
    }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const std::vector<double>& v) const {
      std::string out = "[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) out += ", ";
        char buf[48];
        std::snprintf(buf, sizeof buf, "%g", v[i]);
        out += buf;
      }
      return out + "]";
    }
  };
  return std::visit(Visitor{}, value);
}

void ServiceContext::put(const std::string& path, ContextValue value,
                         PathDirection direction) {
  values_[path] = Slot{std::move(value), direction};
}

util::Result<ContextValue> ServiceContext::get(const std::string& path) const {
  auto it = values_.find(path);
  if (it == values_.end()) {
    return util::Status{util::ErrorCode::kNotFound,
                        util::format("no context path '%s'", path.c_str())};
  }
  return it->second.value;
}

util::Result<double> ServiceContext::get_double(const std::string& path) const {
  auto v = get(path);
  if (!v.is_ok()) return v.status();
  if (const auto* d = std::get_if<double>(&v.value())) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v.value())) {
    return static_cast<double>(*i);
  }
  return util::Status{util::ErrorCode::kInvalidArgument,
                      util::format("context path '%s' is not numeric",
                                   path.c_str())};
}

util::Result<std::string> ServiceContext::get_string(
    const std::string& path) const {
  auto v = get(path);
  if (!v.is_ok()) return v.status();
  if (const auto* s = std::get_if<std::string>(&v.value())) return *s;
  return util::Status{util::ErrorCode::kInvalidArgument,
                      util::format("context path '%s' is not a string",
                                   path.c_str())};
}

util::Result<std::vector<double>> ServiceContext::get_series(
    const std::string& path) const {
  auto v = get(path);
  if (!v.is_ok()) return v.status();
  if (const auto* s = std::get_if<std::vector<double>>(&v.value())) return *s;
  return util::Status{util::ErrorCode::kInvalidArgument,
                      util::format("context path '%s' is not a series",
                                   path.c_str())};
}

std::vector<std::string> ServiceContext::paths() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [path, slot] : values_) out.push_back(path);
  return out;
}

std::vector<std::string> ServiceContext::paths_with(PathDirection d) const {
  std::vector<std::string> out;
  for (const auto& [path, slot] : values_) {
    if (slot.direction == d) out.push_back(path);
  }
  return out;
}

void ServiceContext::merge(const ServiceContext& other) {
  for (const auto& [path, slot] : other.values_) values_[path] = slot;
}

std::size_t ServiceContext::wire_bytes() const {
  std::size_t bytes = name_.size() + 4;
  for (const auto& [path, slot] : values_) {
    bytes += path.size() + 2;
    struct SizeVisitor {
      std::size_t operator()(std::monostate) const { return 1; }
      std::size_t operator()(double) const { return 8; }
      std::size_t operator()(std::int64_t) const { return 8; }
      std::size_t operator()(bool) const { return 1; }
      std::size_t operator()(const std::string& s) const {
        return s.size() + 2;
      }
      std::size_t operator()(const std::vector<double>& v) const {
        return 4 + 8 * v.size();
      }
    };
    bytes += std::visit(SizeVisitor{}, slot.value);
  }
  return bytes;
}

std::string ServiceContext::to_string() const {
  std::string out = "context";
  if (!name_.empty()) out += " '" + name_ + "'";
  out += ":\n";
  for (const auto& [path, slot] : values_) {
    out += "  " + path + " = " + context_value_to_string(slot.value) + "\n";
  }
  return out;
}

}  // namespace sensorcer::sorcer
