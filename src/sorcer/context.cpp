#include "sorcer/context.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "util/strings.h"

namespace sensorcer::sorcer {

namespace {

std::string path_str(std::string_view path) { return std::string(path); }

struct SizeVisitor {
  std::size_t operator()(std::monostate) const { return 1; }
  std::size_t operator()(double) const { return 8; }
  std::size_t operator()(std::int64_t) const { return 8; }
  std::size_t operator()(bool) const { return 1; }
  std::size_t operator()(const std::string& s) const { return s.size() + 2; }
  std::size_t operator()(const std::vector<double>& v) const {
    return 4 + 8 * v.size();
  }
};

}  // namespace

std::string context_value_to_string(const ContextValue& value) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "<none>"; }
    std::string operator()(double d) const {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g", d);
      return buf;
    }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const std::vector<double>& v) const {
      std::string out = "[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) out += ", ";
        char buf[48];
        std::snprintf(buf, sizeof buf, "%g", v[i]);
        out += buf;
      }
      return out + "]";
    }
  };
  return std::visit(Visitor{}, value);
}

const ServiceContext::Entry* ServiceContext::find_entry(
    std::string_view path) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), path,
      [](const Entry& e, std::string_view p) { return e.path < p; });
  if (it == entries_.end() || it->path != path) return nullptr;
  return &*it;
}

void ServiceContext::put(std::string_view path, ContextValue value,
                         PathDirection direction) {
  wire_bytes_dirty_ = true;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), path,
      [](const Entry& e, std::string_view p) { return e.path < p; });
  if (it != entries_.end() && it->path == path) {
    it->value = std::move(value);
    it->direction = direction;
    return;
  }
  entries_.insert(it, Entry{std::string(path), std::move(value), direction});
}

util::Result<ContextValue> ServiceContext::get(std::string_view path) const {
  const Entry* e = find_entry(path);
  if (e == nullptr) {
    return util::Status{
        util::ErrorCode::kNotFound,
        util::format("no context path '%s'", path_str(path).c_str())};
  }
  return e->value;
}

const ContextValue* ServiceContext::find(std::string_view path) const {
  const Entry* e = find_entry(path);
  return e == nullptr ? nullptr : &e->value;
}

std::optional<std::string_view> ServiceContext::peek_string(
    std::string_view path) const {
  const ContextValue* v = find(path);
  if (v == nullptr) return std::nullopt;
  const auto* s = std::get_if<std::string>(v);
  if (s == nullptr) return std::nullopt;
  return std::string_view(*s);
}

const std::vector<double>* ServiceContext::peek_series(
    std::string_view path) const {
  const ContextValue* v = find(path);
  if (v == nullptr) return nullptr;
  return std::get_if<std::vector<double>>(v);
}

util::Result<double> ServiceContext::get_double(std::string_view path) const {
  auto v = get(path);
  if (!v.is_ok()) return v.status();
  if (const auto* d = std::get_if<double>(&v.value())) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v.value())) {
    return static_cast<double>(*i);
  }
  return util::Status{util::ErrorCode::kInvalidArgument,
                      util::format("context path '%s' is not numeric",
                                   path_str(path).c_str())};
}

util::Result<std::string> ServiceContext::get_string(
    std::string_view path) const {
  auto v = get(path);
  if (!v.is_ok()) return v.status();
  if (const auto* s = std::get_if<std::string>(&v.value())) return *s;
  return util::Status{util::ErrorCode::kInvalidArgument,
                      util::format("context path '%s' is not a string",
                                   path_str(path).c_str())};
}

util::Result<std::vector<double>> ServiceContext::get_series(
    std::string_view path) const {
  auto v = get(path);
  if (!v.is_ok()) return v.status();
  if (const auto* s = std::get_if<std::vector<double>>(&v.value())) return *s;
  return util::Status{util::ErrorCode::kInvalidArgument,
                      util::format("context path '%s' is not a series",
                                   path_str(path).c_str())};
}

bool ServiceContext::remove(std::string_view path) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), path,
      [](const Entry& e, std::string_view p) { return e.path < p; });
  if (it == entries_.end() || it->path != path) return false;
  entries_.erase(it);
  wire_bytes_dirty_ = true;
  return true;
}

std::vector<std::string> ServiceContext::paths() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.path);
  return out;
}

std::vector<std::string> ServiceContext::paths_with(PathDirection d) const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.direction == d) out.push_back(e.path);
  }
  return out;
}

void ServiceContext::merge(const ServiceContext& other) {
  entries_.reserve(entries_.size() + other.entries_.size());
  for (const Entry& e : other.entries_) put(e.path, e.value, e.direction);
}

std::size_t ServiceContext::wire_bytes() const {
  if (!wire_bytes_dirty_) return wire_bytes_cache_;
  std::size_t bytes = name_.size() + 4;
  for (const Entry& e : entries_) {
    bytes += e.path.size() + 2;
    bytes += std::visit(SizeVisitor{}, e.value);
  }
  wire_bytes_cache_ = bytes;
  wire_bytes_dirty_ = false;
  return bytes;
}

std::string ServiceContext::to_string() const {
  std::string out = "context";
  if (!name_.empty()) out += " '" + name_ + "'";
  out += ":\n";
  for (const Entry& e : entries_) {
    out += "  " + e.path + " = " + context_value_to_string(e.value) + "\n";
  }
  return out;
}

void ServiceContext::reload_begin(std::string_view name) {
  name_.assign(name);
  reload_count_ = 0;
  wire_bytes_dirty_ = true;
}

ContextValue& ServiceContext::reload_slot(std::string_view path,
                                          PathDirection direction) {
  // Encoder iterates sorted, so decode appends stay sorted by construction.
  assert(reload_count_ == 0 || entries_[reload_count_ - 1].path < path);
  if (reload_count_ < entries_.size()) {
    Entry& e = entries_[reload_count_++];
    e.path.assign(path);
    e.direction = direction;
    return e.value;
  }
  entries_.push_back(Entry{std::string(path), ContextValue{}, direction});
  ++reload_count_;
  return entries_.back().value;
}

void ServiceContext::reload_end() {
  entries_.resize(reload_count_);
  wire_bytes_dirty_ = true;
}

}  // namespace sensorcer::sorcer
