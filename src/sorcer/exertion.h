#pragma once
// Exertions — SORCER's service requests (§IV.D).
//
// A Task is an elementary request bound to one provider via its Signature.
// A Job composes tasks and other jobs under a ControlStrategy (sequential or
// parallel flow; push or pull access). Exertions carry their own service
// context and collect results, a latency account and an execution trace as
// the federation runs them.

#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sorcer/context.h"
#include "util/ids.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace sensorcer::sorcer {

/// Interface type + operation selector + optional provider pin.
struct Signature {
  std::string service_type;   // provider interface name, e.g. "SensorDataAccessor"
  std::string selector;       // operation, e.g. "getValue"
  std::string provider_name;  // empty = any provider of the type

  [[nodiscard]] std::string to_string() const {
    std::string out = service_type + "#" + selector;
    if (!provider_name.empty()) out += "@" + provider_name;
    return out;
  }
};

enum class Flow { kSequence, kParallel };
enum class Access { kPush, kPull };

/// A job's collaboration control strategy.
struct ControlStrategy {
  Flow flow = Flow::kSequence;
  Access access = Access::kPush;
  bool fail_fast = true;  // sequence flow: stop at the first failed child
};

enum class ExertStatus { kInitial, kRunning, kDone, kFailed };

const char* exert_status_name(ExertStatus status);

class Exertion;
using ExertionPtr = std::shared_ptr<Exertion>;

class Exertion {
 public:
  enum class Kind { kTask, kJob };

  virtual ~Exertion() = default;

  [[nodiscard]] virtual Kind kind() const = 0;

  [[nodiscard]] const util::Uuid& id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  ServiceContext& context() { return context_; }
  [[nodiscard]] const ServiceContext& context() const { return context_; }

  [[nodiscard]] ExertStatus status() const { return status_; }
  void set_status(ExertStatus status) { status_ = status; }

  [[nodiscard]] const util::Status& error() const { return error_; }
  void set_error(util::Status error) {
    error_ = std::move(error);
    status_ = ExertStatus::kFailed;
  }

  /// Clear status and error so the exertion can be re-submitted (used by
  /// service substitution when an equivalent provider is retried). The
  /// latency account and trace are kept as an audit of all attempts.
  void reset() {
    status_ = ExertStatus::kInitial;
    error_ = util::Status::ok();
  }

  /// Accumulated modeled service latency (virtual time).
  [[nodiscard]] util::SimDuration latency() const { return latency_; }
  void add_latency(util::SimDuration d) { latency_ += d; }
  void set_latency(util::SimDuration d) { latency_ = d; }

  /// Names of providers that executed (in completion order).
  [[nodiscard]] const std::vector<std::string>& trace() const { return trace_; }
  void add_trace(std::string provider) { trace_.push_back(std::move(provider)); }

  /// Observability trace context this exertion executes under. Before
  /// dispatch it is the parent context (stamped by the submitter so the
  /// link survives hand-off to a pool worker); exert() replaces it with the
  /// exertion's own span context, which children and providers inherit.
  [[nodiscard]] const obs::TraceContext& trace_context() const {
    return trace_ctx_;
  }
  void set_trace_context(const obs::TraceContext& ctx) { trace_ctx_ = ctx; }

 protected:
  explicit Exertion(std::string name)
      : id_(util::new_uuid()), name_(std::move(name)) {}

 private:
  util::Uuid id_;
  std::string name_;
  ServiceContext context_;
  ExertStatus status_ = ExertStatus::kInitial;
  util::Status error_;
  util::SimDuration latency_ = 0;
  std::vector<std::string> trace_;
  obs::TraceContext trace_ctx_{};
};

/// Elementary request executed by a single provider.
class Task final : public Exertion {
 public:
  Task(std::string name, Signature signature)
      : Exertion(std::move(name)), signature_(std::move(signature)) {}

  [[nodiscard]] Kind kind() const override { return Kind::kTask; }
  [[nodiscard]] const Signature& signature() const { return signature_; }

  static std::shared_ptr<Task> make(std::string name, Signature signature) {
    return std::make_shared<Task>(std::move(name), std::move(signature));
  }

 private:
  Signature signature_;
};

/// Composite request executed by a federation under a control strategy.
class Job final : public Exertion {
 public:
  Job(std::string name, ControlStrategy strategy)
      : Exertion(std::move(name)), strategy_(strategy) {}

  [[nodiscard]] Kind kind() const override { return Kind::kJob; }
  [[nodiscard]] const ControlStrategy& strategy() const { return strategy_; }

  void add(ExertionPtr child) { children_.push_back(std::move(child)); }
  [[nodiscard]] const std::vector<ExertionPtr>& children() const {
    return children_;
  }

  static std::shared_ptr<Job> make(std::string name,
                                   ControlStrategy strategy = {}) {
    return std::make_shared<Job>(std::move(name), strategy);
  }

 private:
  ControlStrategy strategy_;
  std::vector<ExertionPtr> children_;
};

}  // namespace sensorcer::sorcer
