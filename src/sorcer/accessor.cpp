#include "sorcer/accessor.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"

namespace sensorcer::sorcer {

namespace {

struct AccessorMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
};

AccessorMetrics& accessor_metrics() {
  static AccessorMetrics m{obs::metrics().counter("accessor.cache_hits"),
                           obs::metrics().counter("accessor.cache_misses")};
  return m;
}

}  // namespace

void ServiceAccessor::add_lookup(
    std::shared_ptr<registry::LookupService> lus) {
  std::lock_guard lock(mu_);
  for (const auto& weak : lookups_) {
    if (auto existing = weak.lock(); existing == lus) return;
  }
  lookups_.emplace_back(std::move(lus));
}

void ServiceAccessor::attach_discovery(
    registry::DiscoveryManager& discovery) {
  discovery.start_discovery(
      [this](const std::shared_ptr<registry::LookupService>& lus) {
        add_lookup(lus);
      });
}

std::vector<std::shared_ptr<registry::LookupService>>
ServiceAccessor::lookups() {
  std::lock_guard lock(mu_);
  std::vector<std::shared_ptr<registry::LookupService>> out;
  for (auto it = lookups_.begin(); it != lookups_.end();) {
    if (auto strong = it->lock()) {
      out.push_back(std::move(strong));
      ++it;
    } else {
      it = lookups_.erase(it);
    }
  }
  return out;
}

util::Result<registry::ServiceItem> ServiceAccessor::find_item(
    const registry::ServiceTemplate& tmpl) {
  for (const auto& lus : lookups()) {
    auto found = lus->lookup_one(tmpl);
    if (found.is_ok()) return found;
  }
  return util::Status{util::ErrorCode::kNotFound,
                      "no lookup service holds a matching item"};
}

std::vector<registry::ServiceItem> ServiceAccessor::find_all(
    const registry::ServiceTemplate& tmpl) {
  std::vector<registry::ServiceItem> out;
  std::unordered_set<registry::ServiceId> seen;
  for (const auto& lus : lookups()) {
    for (auto& item : lus->lookup(tmpl)) {
      if (seen.insert(item.id).second) out.push_back(std::move(item));
    }
  }
  return out;
}

util::Result<std::shared_ptr<Servicer>> ServiceAccessor::find_servicer(
    const Signature& sig) {
  auto resolved = resolve(sig);
  if (!resolved.is_ok()) return resolved.status();
  return std::move(resolved).value().servicer;
}

util::Result<ServiceAccessor::Resolved> ServiceAccessor::resolve(
    const Signature& sig, const std::vector<registry::ServiceId>& exclude) {
  const std::string key = cache_key(sig);
  if (exclude.empty()) {
    std::lock_guard lock(mu_);
    auto it = caching_ ? cache_.find(key) : cache_.end();
    if (it != cache_.end()) {
      auto lus = it->second.lus.lock();
      if (lus && lus->contains(it->second.item.id)) {
        if (auto servicer =
                registry::proxy_cast<Servicer>(it->second.item.proxy)) {
          accessor_metrics().hits.add(1);
          return Resolved{std::move(servicer), it->second.item.id};
        }
      }
      cache_.erase(it);
    }
    accessor_metrics().misses.add(1);
  }

  const auto excluded = [&](const registry::ServiceId& id) {
    return std::find(exclude.begin(), exclude.end(), id) != exclude.end();
  };

  registry::ServiceTemplate tmpl;
  tmpl.types.push_back(sig.service_type);
  if (!sig.provider_name.empty()) {
    tmpl.attributes.set(registry::attr::kName, sig.provider_name);
  }
  for (const auto& lus : lookups()) {
    for (auto& item : lus->lookup(tmpl)) {
      if (excluded(item.id)) continue;
      auto servicer = registry::proxy_cast<Servicer>(item.proxy);
      if (!servicer) continue;  // item matched but is not an EOA peer
      const registry::ServiceId id = item.id;
      std::lock_guard lock(mu_);
      if (caching_ && exclude.empty()) {
        cache_[key] = CacheSlot{lus, std::move(item)};
      }
      return Resolved{std::move(servicer), id};
    }
  }
  return util::Status{
      util::ErrorCode::kNotFound,
      "no provider matches signature " + sig.to_string()};
}

void ServiceAccessor::clear_cache() {
  std::lock_guard lock(mu_);
  cache_.clear();
}

void ServiceAccessor::set_caching(bool enabled) {
  std::lock_guard lock(mu_);
  caching_ = enabled;
  if (!enabled) cache_.clear();
}

}  // namespace sensorcer::sorcer
