#pragma once
// The zero-copy wire path: flat binary exertion codec, interned context
// paths, arena-backed intern storage and recycled payload buffers.
//
// PR 3-6 funnelled every S2S call through sorcer/invoke, which makes the
// exertion envelope the system-wide constant factor. The legacy envelope
// (still modeled by ServiceContext::wire_bytes() for the kInProcess
// transport) re-encodes every slash-separated path as a full string on every
// hop and rebuilds a node-per-entry map on every decode. The flat codec
// replaces that with small parallel records:
//
//   [varint name_len][name bytes]
//   [varint entry_count]
//   per entry, in sorted path order:
//     [varint key = id << 1 | definition]    — interned path id
//     [definition only: varint len, bytes]   — first use of a path on this
//                                              directed endpoint pair
//     [u8 meta = type_tag | direction << 4]
//     [value payload]                        — type-tagged column encoding:
//       double: 8 raw LE bytes     int64: zigzag varint   bool: 1 byte
//       string: varint len + bytes series: varint n + 8n raw bytes
//
// Path interning is per directed endpoint pair (PathInternTable): the
// encoder assigns dense ids and emits the literal inline exactly once; the
// decoder learns id → path from the stream, so no out-of-band negotiation is
// needed and a cold table degrades gracefully to literal strings. Decoding
// reloads the target ServiceContext in place (reload_begin/slot/end), so a
// steady-state request/response cycle reuses every buffer it touched on the
// previous call: encode buffers come from a BufferPool, path bytes live in
// the table's ContextArena, and entry storage stays inside the exertion's
// own context.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sorcer/context.h"
#include "util/ids.h"
#include "util/status.h"

namespace sensorcer::sorcer {

/// Serialized payload bytes. Pooled (BufferPool) on the wire path.
using WireBuffer = std::vector<std::uint8_t>;

/// Bump allocator for codec-adjacent variable-length storage (interned path
/// literals, decode scratch) plus a free list of ServiceContext shells whose
/// entry capacity survives reuse. Blocks are never freed individually: the
/// arena owns them until it is destroyed, so views handed out by store()
/// stay stable for the arena's lifetime. Each wire endpoint pair owns its
/// arena through its intern table — dropping the peer drops the storage
/// wholesale, which is the only deallocation the steady state ever does.
class ContextArena {
 public:
  explicit ContextArena(std::size_t block_bytes = 4096)
      : block_bytes_(block_bytes ? block_bytes : 64) {}

  /// Copy `s` into arena storage; the returned view is stable until the
  /// arena dies.
  std::string_view store(std::string_view s);

  /// Bump-allocate `n` bytes (8-byte aligned).
  char* alloc(std::size_t n);

  /// A recycled context shell: cleared, entry capacity retained.
  ServiceContext acquire();
  void release(ServiceContext&& ctx);

  [[nodiscard]] std::size_t bytes_allocated() const { return total_; }
  [[nodiscard]] std::size_t retained_contexts() const { return free_.size(); }

 private:
  std::size_t block_bytes_;
  std::size_t used_ = 0;    // bytes used in the current block
  std::size_t total_ = 0;   // bytes handed out over the arena's lifetime
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<ServiceContext> free_;
};

/// Dense path-string interning for one *directed* endpoint pair. The same
/// object serves whichever role its side plays: id_for() on the encoder,
/// define()/lookup() on the decoder. Ids are assigned in first-use order on
/// the encoding side and learned from inline definitions on the decoding
/// side, so both tables agree by construction. Literal bytes live in the
/// table's arena; lookups return views into it.
class PathInternTable {
 public:
  /// Encoder side: the id for `path`. `fresh` is set when this is the first
  /// use — the caller must emit an inline definition record.
  std::uint32_t id_for(std::string_view path, bool& fresh);

  /// Decoder side: learn `id` → `path` (idempotent for replays).
  void define(std::uint32_t id, std::string_view path);

  /// Decoder side: the interned path, or empty view when unknown.
  [[nodiscard]] std::string_view lookup(std::uint32_t id) const;

  /// Loss recovery, encoder side: definitions ride only the first message
  /// that uses a path, so a dropped message strands the decoder behind this
  /// table forever. reset() forgets every assignment and advances the
  /// stream epoch — the next encode re-defines all paths inline and the
  /// decoder adopts the fresh stream by its higher epoch.
  void reset();
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Decoder side: align with the epoch stamped on an incoming encoding.
  /// A newer epoch clears learned mappings (the encoder restarted the
  /// stream); an older one marks a stale in-flight message whose ids no
  /// longer mean anything.
  enum class Adopt { kCurrent, kAdopted, kStale };
  Adopt adopt_epoch(std::uint32_t epoch);

  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] const ContextArena& arena() const { return arena_; }

 private:
  ContextArena arena_;
  std::unordered_map<std::string_view, std::uint32_t> ids_;
  std::vector<std::string_view> by_id_;
  std::uint32_t epoch_ = 0;
};

/// Flat binary codec. encode appends to `out` (cleared first); decode
/// reloads `into` in place, reusing its storage.
void encode_context(const ServiceContext& ctx, PathInternTable& interner,
                    WireBuffer& out);
util::Status decode_context(const std::uint8_t* data, std::size_t size,
                            PathInternTable& interner, ServiceContext& into);

/// The legacy string envelope (what PR 3 modeled with wire_bytes() + a
/// 64-byte envelope): full path strings on every entry, and a decode that
/// rebuilds a node-per-entry std::map exactly like the pre-flat
/// ServiceContext did. Kept as the equivalence baseline for tests and the
/// bench_exertion marshalling micro-table.
void encode_context_legacy(const ServiceContext& ctx, WireBuffer& out);
util::Status decode_context_legacy(const std::uint8_t* data, std::size_t size,
                                   ServiceContext& into);

/// Thread-safe recycling pool for wire payload buffers. acquire() hands out
/// a cleared buffer whose capacity survives round trips: the handle's
/// deleter returns the buffer to the pool (up to `max_retained`), or frees
/// it if the pool died first. invoke.pool_acquires / invoke.pool_reuse
/// count cold and recycled acquisitions.
class BufferPool : public std::enable_shared_from_this<BufferPool> {
 public:
  using Handle = std::shared_ptr<WireBuffer>;

  static std::shared_ptr<BufferPool> make(std::size_t max_retained = 64);

  Handle acquire();

  [[nodiscard]] std::size_t retained() const;

 private:
  explicit BufferPool(std::size_t max_retained)
      : max_retained_(max_retained) {}

  void give_back(std::unique_ptr<WireBuffer> buf);

  mutable std::mutex mu_;
  std::size_t max_retained_;
  std::vector<std::unique_ptr<WireBuffer>> free_;
};

/// The per-endpoint codec state a wire peer (RemoteInvoker, ServiceProvider)
/// keeps: one intern table per directed pair (encode keyed by destination,
/// decode keyed by source) and the payload-buffer pool. Tables live as long
/// as the endpoint, which is what keeps interning warm across calls.
struct WireCodecState {
  std::shared_ptr<BufferPool> buffers = BufferPool::make();
  std::unordered_map<util::Uuid, PathInternTable> encode;
  std::unordered_map<util::Uuid, PathInternTable> decode;
};

}  // namespace sensorcer::sorcer
