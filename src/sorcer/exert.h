#pragma once
// The requestor entry point of exertion-oriented programming:
//
//   Exertion.exert(Transaction) : Exertion            (§IV.D)
//
// "Requestors do not have to look up for any network provider at all; they
// can submit an exertion onto the network." exert() forms the federation:
// a task binds to a matching task peer; a job routes to a rendezvous peer —
// a Jobber under PUSH access, a Spacer under PULL.

#include "registry/transaction.h"
#include "sorcer/accessor.h"
#include "sorcer/exertion.h"

namespace sensorcer::sorcer {

/// Exert `exertion` onto the network reachable through `accessor`. On
/// routing failure (no matching provider / no rendezvous peer) the exertion
/// is returned with kFailed status and the error recorded on it; the Result
/// itself is only an error for null input.
util::Result<ExertionPtr> exert(const ExertionPtr& exertion,
                                ServiceAccessor& accessor,
                                registry::Transaction* txn = nullptr);

}  // namespace sensorcer::sorcer
