#pragma once
// The requestor entry point of exertion-oriented programming:
//
//   Exertion.exert(Transaction) : Exertion            (§IV.D)
//
// "Requestors do not have to look up for any network provider at all; they
// can submit an exertion onto the network." exert() forms the federation:
// a task binds to a matching task peer; a job routes to a rendezvous peer —
// a Jobber under PUSH access, a Spacer under PULL.

#include <vector>

#include "registry/transaction.h"
#include "sorcer/accessor.h"
#include "sorcer/exertion.h"
#include "sorcer/invoke.h"

namespace sensorcer::util {
class ThreadPool;
}

namespace sensorcer::sorcer {

/// Exert `exertion` onto the network reachable through `accessor`. On
/// routing failure (no matching provider / no rendezvous peer) the exertion
/// is returned with kFailed status and the error recorded on it; the Result
/// itself is only an error for null input.
util::Result<ExertionPtr> exert(const ExertionPtr& exertion,
                                ServiceAccessor& accessor,
                                registry::Transaction* txn = nullptr);

/// Scatter-gather exert(): submit every exertion in `batch` with the same
/// routing, substitution-retry, metric and tracing semantics as exert() —
/// but overlapped. Under wire transport every call is scattered onto the
/// fabric through begin_invoke() and one shared pump gathers them, so the
/// batch costs ~max(latency) instead of the sum; a task that times out is
/// re-resolved with exclusion and re-issued while its siblings keep flying.
/// In-process, a `pool` fans the batch across its threads; with neither,
/// the exertions run sequentially. Outcomes land on the exertions. The
/// returned FanOut says how the batch actually progressed — callers pick
/// their latency model from it (see invoke.h).
FanOut exert_all(const std::vector<ExertionPtr>& batch,
                 ServiceAccessor& accessor,
                 registry::Transaction* txn = nullptr,
                 util::ThreadPool* pool = nullptr);

}  // namespace sensorcer::sorcer
