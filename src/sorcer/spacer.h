#pragma once
// Spacer — the PULL rendezvous peer. Writes a job's tasks into the exertion
// space, takes every envelope back out, and dispatches the drained batch
// through the scatter-gather pipeline: in-process the pool's threads play
// the worker crew; under wire transport the batch overlaps on the fabric.
//
// Latency model: tasks are assigned greedily (in take order) to the
// earliest-free of `workers_` crew slots; the job pays the resulting
// makespan plus two space operations per task. With enough workers this
// converges to the Jobber's parallel model; with one worker it degenerates
// to sequential flow — the exertion bench shows the whole curve.

#include "sorcer/accessor.h"
#include "sorcer/provider.h"
#include "sorcer/space.h"
#include "util/thread_pool.h"

namespace sensorcer::sorcer {

class Spacer : public ServiceProvider {
 public:
  /// `workers` is the crew size used by both the real execution (when a
  /// pool is supplied) and the makespan model.
  Spacer(std::string name, ServiceAccessor& accessor, ExertSpace& space,
         std::size_t workers, util::ThreadPool* pool = nullptr);

  util::Result<ExertionPtr> service(ExertionPtr exertion,
                                    registry::Transaction* txn) override;

  /// Cost of one space write or take.
  static constexpr util::SimDuration kSpaceOpCost = 150 * util::kMicrosecond;

  [[nodiscard]] std::size_t worker_count() const { return workers_; }

 private:
  void execute_envelope(const ExertSpace::Envelope& env,
                        registry::Transaction* txn);

  ServiceAccessor& accessor_;
  ExertSpace& space_;
  std::size_t workers_;
  util::ThreadPool* pool_;
};

}  // namespace sensorcer::sorcer
