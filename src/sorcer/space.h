#pragma once
// Exertion space — the JavaSpaces-style tuple space behind PULL access.
//
// Under the pull strategy a rendezvous peer writes task envelopes into the
// space and worker threads take them, execute, and write results back. The
// space is the only fully thread-safe rendezvous structure in the stack.

#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "sorcer/exertion.h"

namespace sensorcer::sorcer {

class ExertSpace {
 public:
  /// A task written into the space awaiting a worker.
  struct Envelope {
    util::Uuid id;
    std::shared_ptr<Task> task;
  };

  /// Write a task; returns its envelope id.
  util::Uuid write(std::shared_ptr<Task> task);

  /// Atomically remove and return the oldest pending envelope, if any.
  std::optional<Envelope> take();

  /// Mark a taken envelope as executed.
  void complete(const util::Uuid& envelope_id);

  /// Return a taken envelope to pending (worker failed before executing).
  void requeue(const util::Uuid& envelope_id);

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::size_t in_flight() const;

  [[nodiscard]] std::uint64_t total_written() const { return written_; }
  [[nodiscard]] std::uint64_t total_completed() const { return completed_; }

 private:
  mutable std::mutex mu_;
  std::deque<Envelope> queue_;
  std::unordered_map<util::Uuid, Envelope> taken_;
  std::uint64_t written_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace sensorcer::sorcer
