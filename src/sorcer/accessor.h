#pragma once
// Service Accessor — federated method invocation's service-finding half.
//
// "First, it discovers lookup services and then finds matching services
// specified by signatures in exertions" (§V.B). Successful matches are
// cached and validated against the registry on reuse, so a provider that
// left the network is never returned stale.

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "registry/discovery.h"
#include "registry/lookup.h"
#include "sorcer/invoke.h"
#include "sorcer/servicer.h"

namespace sensorcer::sorcer {

class ServiceAccessor {
 public:
  ServiceAccessor() = default;

  /// Use a known lookup service directly (unicast discovery analogue).
  void add_lookup(std::shared_ptr<registry::LookupService> lus);

  /// Feed from multicast discovery: every LUS the manager finds (now and
  /// later) becomes available to this accessor.
  void attach_discovery(registry::DiscoveryManager& discovery);

  /// Lookup services currently known (dead ones pruned).
  [[nodiscard]] std::vector<std::shared_ptr<registry::LookupService>> lookups();

  /// Find any item matching `tmpl` across known lookup services.
  util::Result<registry::ServiceItem> find_item(
      const registry::ServiceTemplate& tmpl);

  /// All items matching `tmpl`, de-duplicated by service id.
  std::vector<registry::ServiceItem> find_all(
      const registry::ServiceTemplate& tmpl);

  /// Resolve a signature to a live Servicer proxy. Uses the cache when the
  /// cached registration is still present in its registry.
  util::Result<std::shared_ptr<Servicer>> find_servicer(const Signature& sig);

  /// A resolved provider with its registry identity (needed by requestors
  /// that must exclude providers they already tried).
  struct Resolved {
    std::shared_ptr<Servicer> servicer;
    registry::ServiceId id;
  };

  /// Like find_servicer, but skips providers whose id is in `exclude` —
  /// the mechanism behind service substitution: "the request can be passed
  /// on to the equivalent available service provider" (§V.A). The cache is
  /// bypassed when `exclude` is non-empty.
  util::Result<Resolved> resolve(
      const Signature& sig,
      const std::vector<registry::ServiceId>& exclude = {});

  /// Wire the invocation pipeline in: every dispatch routed through this
  /// accessor (exert, Jobber children, space workers, CSP fan-out, facade
  /// reads) goes via `invoker`. Null reverts to plain direct calls.
  /// Resolution cache effectiveness is tracked on the obs metrics registry
  /// (accessor.cache_hits / accessor.cache_misses).
  void set_invoker(RemoteInvoker* invoker) { invoker_ = invoker; }
  [[nodiscard]] RemoteInvoker* invoker() const { return invoker_; }

  /// True when dispatches through this accessor cross the simnet fabric —
  /// blocking wire calls pump the single-threaded virtual-time scheduler,
  /// so rendezvous peers and fan-outs must not park pool threads on them.
  [[nodiscard]] bool wire_transport() const {
    return invoker_ != nullptr && invoker_->transport() == Transport::kWire;
  }

  void clear_cache();

  /// Disable/enable the resolution cache (ablation studies; enabled by
  /// default). Disabling also clears it.
  void set_caching(bool enabled);

 private:
  struct CacheSlot {
    std::weak_ptr<registry::LookupService> lus;
    registry::ServiceItem item;
  };

  static std::string cache_key(const Signature& sig) {
    return sig.service_type + "|" + sig.provider_name;
  }

  std::mutex mu_;  // guards lookups_ + cache: parallel jobs resolve concurrently
  std::vector<std::weak_ptr<registry::LookupService>> lookups_;
  std::unordered_map<std::string, CacheSlot> cache_;
  bool caching_ = true;
  RemoteInvoker* invoker_ = nullptr;
};

}  // namespace sensorcer::sorcer
