#include "sorcer/space.h"

namespace sensorcer::sorcer {

util::Uuid ExertSpace::write(std::shared_ptr<Task> task) {
  std::lock_guard lock(mu_);
  Envelope env{util::new_uuid(), std::move(task)};
  const util::Uuid id = env.id;
  queue_.push_back(std::move(env));
  ++written_;
  return id;
}

std::optional<ExertSpace::Envelope> ExertSpace::take() {
  std::lock_guard lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Envelope env = std::move(queue_.front());
  queue_.pop_front();
  taken_.emplace(env.id, env);
  return env;
}

void ExertSpace::complete(const util::Uuid& envelope_id) {
  std::lock_guard lock(mu_);
  if (taken_.erase(envelope_id) > 0) ++completed_;
}

void ExertSpace::requeue(const util::Uuid& envelope_id) {
  std::lock_guard lock(mu_);
  auto it = taken_.find(envelope_id);
  if (it == taken_.end()) return;
  queue_.push_back(std::move(it->second));
  taken_.erase(it);
}

std::size_t ExertSpace::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

std::size_t ExertSpace::in_flight() const {
  std::lock_guard lock(mu_);
  return taken_.size();
}

}  // namespace sensorcer::sorcer
