#include "sorcer/spacer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sorcer/exert.h"

namespace sensorcer::sorcer {

namespace {

struct SpacerMetrics {
  obs::Counter& jobs;
  obs::Histogram& latency;
};

SpacerMetrics& spacer_metrics() {
  static SpacerMetrics m{obs::metrics().counter("sorcer.spacer.jobs"),
                         obs::metrics().histogram("sorcer.job.latency_us")};
  return m;
}

}  // namespace

Spacer::Spacer(std::string name, ServiceAccessor& accessor, ExertSpace& space,
               std::size_t workers, util::ThreadPool* pool)
    : ServiceProvider(std::move(name), {type::kSpacer}),
      accessor_(accessor),
      space_(space),
      workers_(workers == 0 ? 1 : workers),
      pool_(pool) {}

void Spacer::execute_envelope(const ExertSpace::Envelope& env,
                              registry::Transaction* txn) {
  // exert() gives space workers the same service-substitution behaviour as
  // push-mode dispatch.
  (void)exert(env.task, accessor_, txn);
  space_.complete(env.id);
}

util::Result<ExertionPtr> Spacer::service(ExertionPtr exertion,
                                          registry::Transaction* txn) {
  if (!exertion) {
    return util::Status{util::ErrorCode::kInvalidArgument, "null exertion"};
  }
  if (exertion->kind() == Exertion::Kind::kTask) {
    auto task = std::static_pointer_cast<Task>(exertion);
    // A task addressed to the spacer itself executes here; anything else
    // written through the spacer still goes via the space.
    const auto& types = this->types();
    if (std::find(types.begin(), types.end(),
                  task->signature().service_type) != types.end()) {
      return ServiceProvider::service(exertion, txn);
    }
    space_.write(task);
    auto env = space_.take();
    if (env) execute_envelope(*env, txn);
    exertion->add_latency(2 * kSpaceOpCost);
    return exertion;
  }

  auto job = std::static_pointer_cast<Job>(exertion);
  job->set_status(ExertStatus::kRunning);
  spacer_metrics().jobs.add(1);

  // Stamp children before they enter the space: take() may hand an envelope
  // to a pool worker whose thread-local context is unrelated to this job.
  for (const auto& child : job->children()) {
    if (!child->trace_context().valid()) {
      child->set_trace_context(job->trace_context());
    }
  }

  // Nested jobs cannot ride the space (envelopes hold tasks); run them
  // through the federation first, sequentially.
  std::vector<std::shared_ptr<Task>> tasks;
  for (const auto& child : job->children()) {
    if (child->kind() == Exertion::Kind::kJob) {
      (void)exert(child, accessor_, txn);
      job->add_latency(child->latency());
    } else {
      tasks.push_back(std::static_pointer_cast<Task>(child));
    }
  }

  for (const auto& task : tasks) space_.write(task);

  // Drain the space: take every envelope, then run the whole batch through
  // the scatter-gather pipeline — overlapped on the fabric under wire
  // transport, fanned across the pool in-process. Workers are a latency
  // model, not an execution mechanism: the makespan charge below still
  // reflects a crew of `workers_` pulling from the space.
  std::vector<ExertSpace::Envelope> taken;
  taken.reserve(tasks.size());
  while (auto env = space_.take()) taken.push_back(std::move(*env));
  std::vector<ExertionPtr> drained;
  drained.reserve(taken.size());
  for (const auto& env : taken) drained.push_back(env.task);
  (void)exert_all(drained, accessor_, txn, pool_);
  for (const auto& env : taken) space_.complete(env.id);

  // Makespan model: greedily assign task latencies to the earliest-free
  // worker, in the order tasks were written.
  std::vector<util::SimDuration> clocks(workers_, 0);
  for (const auto& task : tasks) {
    auto earliest = std::min_element(clocks.begin(), clocks.end());
    *earliest += task->latency() + 2 * kSpaceOpCost;
  }
  job->add_latency(*std::max_element(clocks.begin(), clocks.end()));
  job->add_trace(provider_name());
  spacer_metrics().latency.observe(static_cast<double>(job->latency()));

  for (const auto& child : job->children()) {
    if (child->status() == ExertStatus::kFailed && job->strategy().fail_fast) {
      job->set_error({util::ErrorCode::kAborted,
                      "child '" + child->name() +
                          "' failed: " + child->error().message()});
      return exertion;
    }
  }

  for (const auto& child : job->children()) {
    for (const auto& path : child->context().paths()) {
      auto v = child->context().get(path);
      if (v.is_ok()) {
        job->context().put(child->name() + "/" + path, std::move(v).value());
      }
    }
  }
  job->set_status(ExertStatus::kDone);
  return exertion;
}

}  // namespace sensorcer::sorcer
