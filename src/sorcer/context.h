#pragma once
// Service context — the hierarchical data an exertion's collaboration works
// on ("the metaprogram data", §IV.D). Paths are slash-separated strings;
// values are the small set of types sensor collaborations exchange.

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace sensorcer::sorcer {

using ContextValue =
    std::variant<std::monostate, double, std::int64_t, bool, std::string,
                 std::vector<double>>;

/// Render a value for traces and browser output.
std::string context_value_to_string(const ContextValue& value);

/// Direction markers: requestors mark which paths carry inputs to the
/// provider and which the provider must fill in.
enum class PathDirection { kIn, kOut, kInOut };

class ServiceContext {
 public:
  ServiceContext() = default;
  explicit ServiceContext(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- values ---------------------------------------------------------------

  void put(const std::string& path, ContextValue value,
           PathDirection direction = PathDirection::kInOut);

  [[nodiscard]] util::Result<ContextValue> get(const std::string& path) const;

  /// Typed getters; wrong type yields kInvalidArgument.
  [[nodiscard]] util::Result<double> get_double(const std::string& path) const;
  [[nodiscard]] util::Result<std::string> get_string(
      const std::string& path) const;
  [[nodiscard]] util::Result<std::vector<double>> get_series(
      const std::string& path) const;

  [[nodiscard]] bool has(const std::string& path) const {
    return values_.contains(path);
  }
  bool remove(const std::string& path) { return values_.erase(path) > 0; }

  /// All paths, sorted (map order).
  [[nodiscard]] std::vector<std::string> paths() const;

  /// Paths with the given direction marker.
  [[nodiscard]] std::vector<std::string> paths_with(PathDirection d) const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Merge every value of `other` into this context (other wins on clash).
  void merge(const ServiceContext& other);

  /// Modeled serialized size for traffic accounting.
  [[nodiscard]] std::size_t wire_bytes() const;

  /// Multi-line "path = value" rendering.
  [[nodiscard]] std::string to_string() const;

 private:
  struct Slot {
    ContextValue value;
    PathDirection direction = PathDirection::kInOut;
  };
  std::string name_;
  std::map<std::string, Slot> values_;
};

}  // namespace sensorcer::sorcer
