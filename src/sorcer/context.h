#pragma once
// Service context — the hierarchical data an exertion's collaboration works
// on ("the metaprogram data", §IV.D). Paths are slash-separated strings;
// values are the small set of types sensor collaborations exchange.
//
// Storage is a flat sorted vector of entries: hot-path lookups are a binary
// search over contiguous memory instead of red-black-tree chasing, iteration
// is a linear scan, and the wire codec (sorcer/codec.h) can bulk-reload a
// context in place, reusing the entry vector's (and each entry's string /
// series) capacity so steady-state decode allocates nothing.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.h"

namespace sensorcer::sorcer {

using ContextValue =
    std::variant<std::monostate, double, std::int64_t, bool, std::string,
                 std::vector<double>>;

/// Render a value for traces and browser output.
std::string context_value_to_string(const ContextValue& value);

/// Direction markers: requestors mark which paths carry inputs to the
/// provider and which the provider must fill in.
enum class PathDirection { kIn, kOut, kInOut };

class ServiceContext {
 public:
  ServiceContext() = default;
  explicit ServiceContext(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- values ---------------------------------------------------------------

  void put(std::string_view path, ContextValue value,
           PathDirection direction = PathDirection::kInOut);

  [[nodiscard]] util::Result<ContextValue> get(std::string_view path) const;

  /// Typed getters; wrong type yields kInvalidArgument.
  [[nodiscard]] util::Result<double> get_double(std::string_view path) const;
  [[nodiscard]] util::Result<std::string> get_string(
      std::string_view path) const;
  [[nodiscard]] util::Result<std::vector<double>> get_series(
      std::string_view path) const;

  // --- copy-free peeks ------------------------------------------------------
  // Pointers/views remain valid only until the next mutation (put / remove /
  // merge / reload): entries live in one contiguous vector that may move.

  /// The stored value, or nullptr when the path is absent.
  [[nodiscard]] const ContextValue* find(std::string_view path) const;

  /// View of a string value; nullopt when absent or not a string.
  [[nodiscard]] std::optional<std::string_view> peek_string(
      std::string_view path) const;

  /// Borrowed series; nullptr when absent or not a series.
  [[nodiscard]] const std::vector<double>* peek_series(
      std::string_view path) const;

  [[nodiscard]] bool has(std::string_view path) const {
    return find(path) != nullptr;
  }
  bool remove(std::string_view path);

  /// All paths, sorted.
  [[nodiscard]] std::vector<std::string> paths() const;

  /// Paths with the given direction marker.
  [[nodiscard]] std::vector<std::string> paths_with(PathDirection d) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Borrowed view of the i-th entry in sorted path order; same lifetime
  /// rules as the peeks above. Lets the wire codec walk a context without
  /// materializing path lists.
  struct EntryView {
    std::string_view path;
    const ContextValue& value;
    PathDirection direction;
  };
  [[nodiscard]] EntryView entry_at(std::size_t i) const {
    const Entry& e = entries_[i];
    return {e.path, e.value, e.direction};
  }

  /// Merge every value of `other` into this context (other wins on clash).
  void merge(const ServiceContext& other);

  /// Modeled serialized size for traffic accounting. Cached behind a dirty
  /// flag: mutations invalidate, repeated accounting calls recompute once.
  [[nodiscard]] std::size_t wire_bytes() const;

  /// Multi-line "path = value" rendering.
  [[nodiscard]] std::string to_string() const;

  // --- codec bulk reload ----------------------------------------------------
  // The wire codec rebuilds a decoded context in place: reload_begin() resets
  // the logical size, reload_slot() appends entries in sorted path order
  // (the encoder iterates sorted, so decode needs no re-sort) reusing the
  // retained entry storage, reload_end() trims leftovers. The returned
  // ContextValue& lets the decoder assign into an existing series/string
  // alternative so steady-state decode reuses its heap capacity.

  void reload_begin(std::string_view name);
  ContextValue& reload_slot(std::string_view path, PathDirection direction);
  void reload_end();

 private:
  struct Entry {
    std::string path;
    ContextValue value;
    PathDirection direction = PathDirection::kInOut;
  };

  [[nodiscard]] const Entry* find_entry(std::string_view path) const;

  std::string name_;
  std::vector<Entry> entries_;  // sorted by path
  std::size_t reload_count_ = 0;
  mutable std::size_t wire_bytes_cache_ = 0;
  mutable bool wire_bytes_dirty_ = true;
};

}  // namespace sensorcer::sorcer
