#include "sorcer/codec.h"

#include <cstring>
#include <map>
#include <utility>

#include "obs/metrics.h"

namespace sensorcer::sorcer {

namespace {

struct CodecMetrics {
  obs::Counter& intern_hits;
  obs::Counter& intern_misses;
  obs::Counter& arena_bytes;
  obs::Counter& pool_acquires;
  obs::Counter& pool_reuse;
};

CodecMetrics& codec_metrics() {
  static CodecMetrics m{obs::metrics().counter("invoke.intern_hits"),
                        obs::metrics().counter("invoke.intern_misses"),
                        obs::metrics().counter("invoke.arena_bytes"),
                        obs::metrics().counter("invoke.pool_acquires"),
                        obs::metrics().counter("invoke.pool_reuse")};
  return m;
}

// --- primitive writers/readers ----------------------------------------------

void put_varint(WireBuffer& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_bytes(WireBuffer& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

void put_double(WireBuffer& out, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  std::uint8_t raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(bits >> (8 * i));
  put_bytes(out, raw, 8);
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;

  [[nodiscard]] bool need(std::size_t n) const {
    return static_cast<std::size_t>(end - p) >= n;
  }

  bool varint(std::uint64_t& out) {
    out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == end) return false;
      const std::uint8_t b = *p++;
      out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return true;
    }
    return false;
  }

  bool read_double(double& out) {
    if (!need(8)) return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    p += 8;
    std::memcpy(&out, &bits, sizeof out);
    return true;
  }

  bool view(std::size_t n, std::string_view& out) {
    if (!need(n)) return false;
    out = std::string_view(reinterpret_cast<const char*>(p), n);
    p += n;
    return true;
  }
};

util::Status truncated() {
  return {util::ErrorCode::kInvalidArgument, "truncated context encoding"};
}

// Type tags. Order matches the ContextValue variant alternatives.
enum : std::uint8_t {
  kTagNone = 0,
  kTagDouble = 1,
  kTagInt = 2,
  kTagBool = 3,
  kTagString = 4,
  kTagSeries = 5,
};

void encode_value(WireBuffer& out, const ContextValue& value) {
  struct Visitor {
    WireBuffer& out;
    void operator()(std::monostate) const {}
    void operator()(double d) const { put_double(out, d); }
    void operator()(std::int64_t i) const { put_varint(out, zigzag(i)); }
    void operator()(bool b) const { out.push_back(b ? 1 : 0); }
    void operator()(const std::string& s) const {
      put_varint(out, s.size());
      put_bytes(out, s.data(), s.size());
    }
    void operator()(const std::vector<double>& v) const {
      put_varint(out, v.size());
      for (double d : v) put_double(out, d);
    }
  };
  std::visit(Visitor{out}, value);
}

std::uint8_t tag_of(const ContextValue& value) {
  return static_cast<std::uint8_t>(value.index());
}

/// Decode one value of `tag` into `slot`, reusing the slot's existing
/// alternative (string / series capacity) when the type matches.
bool decode_value(Reader& r, std::uint8_t tag, ContextValue& slot) {
  switch (tag) {
    case kTagNone:
      slot = std::monostate{};
      return true;
    case kTagDouble: {
      double d = 0;
      if (!r.read_double(d)) return false;
      slot = d;
      return true;
    }
    case kTagInt: {
      std::uint64_t raw = 0;
      if (!r.varint(raw)) return false;
      slot = unzigzag(raw);
      return true;
    }
    case kTagBool: {
      if (!r.need(1)) return false;
      slot = (*r.p++ != 0);
      return true;
    }
    case kTagString: {
      std::uint64_t n = 0;
      std::string_view bytes;
      if (!r.varint(n) || !r.view(n, bytes)) return false;
      auto* s = std::get_if<std::string>(&slot);
      if (s == nullptr) {
        slot = std::string(bytes);
      } else {
        s->assign(bytes);  // reuse capacity
      }
      return true;
    }
    case kTagSeries: {
      std::uint64_t n = 0;
      if (!r.varint(n)) return false;
      if (!r.need(8 * n)) return false;
      auto* v = std::get_if<std::vector<double>>(&slot);
      if (v == nullptr) {
        slot = std::vector<double>{};
        v = std::get_if<std::vector<double>>(&slot);
      }
      v->clear();  // reuse capacity
      v->reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        double d = 0;
        (void)r.read_double(d);
        v->push_back(d);
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

// --- ContextArena ------------------------------------------------------------

char* ContextArena::alloc(std::size_t n) {
  n = (n + 7) & ~std::size_t{7};
  if (blocks_.empty() || used_ + n > block_bytes_) {
    // Oversized requests get a dedicated block; used_ lands past
    // block_bytes_ so the next alloc opens a fresh standard block.
    const std::size_t size = n > block_bytes_ ? n : block_bytes_;
    blocks_.push_back(std::make_unique<char[]>(size));
    used_ = 0;
  }
  char* out = blocks_.back().get() + used_;
  used_ += n;
  total_ += n;
  codec_metrics().arena_bytes.add(n);
  return out;
}

std::string_view ContextArena::store(std::string_view s) {
  if (s.empty()) return {};
  char* p = alloc(s.size());
  std::memcpy(p, s.data(), s.size());
  return {p, s.size()};
}

ServiceContext ContextArena::acquire() {
  if (free_.empty()) return ServiceContext{};
  ServiceContext ctx = std::move(free_.back());
  free_.pop_back();
  ctx.reload_begin("");
  ctx.reload_end();  // logical clear, capacity retained
  return ctx;
}

void ContextArena::release(ServiceContext&& ctx) {
  if (free_.size() >= 16) return;  // let it deallocate
  free_.push_back(std::move(ctx));
}

// --- PathInternTable ---------------------------------------------------------

std::uint32_t PathInternTable::id_for(std::string_view path, bool& fresh) {
  auto it = ids_.find(path);
  if (it != ids_.end()) {
    fresh = false;
    codec_metrics().intern_hits.add(1);
    return it->second;
  }
  fresh = true;
  codec_metrics().intern_misses.add(1);
  const std::string_view stored = arena_.store(path);
  const auto id = static_cast<std::uint32_t>(by_id_.size());
  by_id_.push_back(stored);
  ids_.emplace(stored, id);
  return id;
}

void PathInternTable::define(std::uint32_t id, std::string_view path) {
  if (id < by_id_.size()) return;  // replayed definition
  const std::string_view stored = arena_.store(path);
  by_id_.resize(id + 1);
  by_id_[id] = stored;
  ids_.emplace(stored, id);
}

std::string_view PathInternTable::lookup(std::uint32_t id) const {
  if (id >= by_id_.size()) return {};
  return by_id_[id];
}

void PathInternTable::reset() {
  // Arena storage stays put (outstanding views may still point into it);
  // only the assignments are forgotten, so the next encode starts a fresh
  // definition stream under a new epoch.
  ids_.clear();
  by_id_.clear();
  ++epoch_;
}

PathInternTable::Adopt PathInternTable::adopt_epoch(std::uint32_t epoch) {
  if (epoch == epoch_) return Adopt::kCurrent;
  if (epoch < epoch_) return Adopt::kStale;
  ids_.clear();
  by_id_.clear();
  epoch_ = epoch;
  return Adopt::kAdopted;
}

// --- flat codec --------------------------------------------------------------

void encode_context(const ServiceContext& ctx, PathInternTable& interner,
                    WireBuffer& out) {
  out.clear();
  put_varint(out, interner.epoch());
  put_varint(out, ctx.name().size());
  put_bytes(out, ctx.name().data(), ctx.name().size());
  put_varint(out, ctx.size());
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const ServiceContext::EntryView e = ctx.entry_at(i);
    bool fresh = false;
    const std::uint32_t id = interner.id_for(e.path, fresh);
    put_varint(out, (static_cast<std::uint64_t>(id) << 1) | (fresh ? 1 : 0));
    if (fresh) {
      put_varint(out, e.path.size());
      put_bytes(out, e.path.data(), e.path.size());
    }
    out.push_back(static_cast<std::uint8_t>(
        tag_of(e.value) | (static_cast<std::uint8_t>(e.direction) << 4)));
    encode_value(out, e.value);
  }
}

util::Status decode_context(const std::uint8_t* data, std::size_t size,
                            PathInternTable& interner, ServiceContext& into) {
  Reader r{data, data + size};
  std::uint64_t epoch = 0;
  if (!r.varint(epoch)) return truncated();
  if (interner.adopt_epoch(static_cast<std::uint32_t>(epoch)) ==
      PathInternTable::Adopt::kStale) {
    return {util::ErrorCode::kCodecDesync,
            "stale intern epoch " + std::to_string(epoch)};
  }
  std::uint64_t name_len = 0;
  std::string_view name;
  if (!r.varint(name_len) || !r.view(name_len, name)) return truncated();
  std::uint64_t count = 0;
  if (!r.varint(count)) return truncated();

  into.reload_begin(name);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t key = 0;
    if (!r.varint(key)) return truncated();
    const auto id = static_cast<std::uint32_t>(key >> 1);
    std::string_view path;
    if (key & 1) {
      std::uint64_t len = 0;
      if (!r.varint(len) || !r.view(len, path)) return truncated();
      interner.define(id, path);
    } else {
      // Bounds-check the id itself: the empty path is a legal intern entry,
      // so an empty lookup() result cannot signal "unknown".
      if (id >= interner.size()) {
        // The message that carried this id's definition was dropped by the
        // fabric; the caller resets the stream (see PathInternTable::reset).
        return {util::ErrorCode::kCodecDesync,
                "unknown interned path id " + std::to_string(id)};
      }
      path = interner.lookup(id);
    }
    if (!r.need(1)) return truncated();
    const std::uint8_t meta = *r.p++;
    const std::uint8_t tag = meta & 0x0f;
    const auto dir = static_cast<PathDirection>((meta >> 4) & 0x03);
    ContextValue& slot = into.reload_slot(path, dir);
    if (!decode_value(r, tag, slot)) return truncated();
  }
  into.reload_end();
  return util::Status::ok();
}

// --- legacy codec ------------------------------------------------------------

void encode_context_legacy(const ServiceContext& ctx, WireBuffer& out) {
  out.clear();
  put_varint(out, ctx.name().size());
  put_bytes(out, ctx.name().data(), ctx.name().size());
  put_varint(out, ctx.size());
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const ServiceContext::EntryView e = ctx.entry_at(i);
    put_varint(out, e.path.size());
    put_bytes(out, e.path.data(), e.path.size());
    out.push_back(static_cast<std::uint8_t>(
        tag_of(e.value) | (static_cast<std::uint8_t>(e.direction) << 4)));
    encode_value(out, e.value);
  }
}

util::Status decode_context_legacy(const std::uint8_t* data, std::size_t size,
                                   ServiceContext& into) {
  Reader r{data, data + size};
  std::uint64_t name_len = 0;
  std::string_view name;
  if (!r.varint(name_len) || !r.view(name_len, name)) return truncated();
  std::uint64_t count = 0;
  if (!r.varint(count)) return truncated();

  // Reproduce the replaced design faithfully: a node-per-entry ordered map
  // built up per decode, then drained into the context. This is what every
  // wire hop paid before the flat codec.
  struct Slot {
    ContextValue value;
    PathDirection direction;
  };
  std::map<std::string, Slot> staged;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    std::string_view path;
    if (!r.varint(len) || !r.view(len, path)) return truncated();
    if (!r.need(1)) return truncated();
    const std::uint8_t meta = *r.p++;
    const std::uint8_t tag = meta & 0x0f;
    const auto dir = static_cast<PathDirection>((meta >> 4) & 0x03);
    Slot& slot = staged[std::string(path)];
    slot.direction = dir;
    if (!decode_value(r, tag, slot.value)) return truncated();
  }
  into.reload_begin(name);
  for (auto& [path, slot] : staged) {
    into.reload_slot(path, slot.direction) = std::move(slot.value);
  }
  into.reload_end();
  return util::Status::ok();
}

// --- BufferPool --------------------------------------------------------------

std::shared_ptr<BufferPool> BufferPool::make(std::size_t max_retained) {
  return std::shared_ptr<BufferPool>(new BufferPool(max_retained));
}

BufferPool::Handle BufferPool::acquire() {
  std::unique_ptr<WireBuffer> buf;
  {
    std::lock_guard lock(mu_);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  codec_metrics().pool_acquires.add(1);
  if (buf) {
    codec_metrics().pool_reuse.add(1);
    buf->clear();
  } else {
    buf = std::make_unique<WireBuffer>();
  }
  std::weak_ptr<BufferPool> weak = weak_from_this();
  WireBuffer* raw = buf.release();
  return Handle(raw, [weak](WireBuffer* b) {
    std::unique_ptr<WireBuffer> owned(b);
    if (auto pool = weak.lock()) pool->give_back(std::move(owned));
  });
}

void BufferPool::give_back(std::unique_ptr<WireBuffer> buf) {
  std::lock_guard lock(mu_);
  if (free_.size() < max_retained_) free_.push_back(std::move(buf));
}

std::size_t BufferPool::retained() const {
  std::lock_guard lock(mu_);
  return free_.size();
}

}  // namespace sensorcer::sorcer
