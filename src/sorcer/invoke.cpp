#include "sorcer/invoke.h"

#include <any>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sorcer/accessor.h"
#include "sorcer/provider.h"
#include "util/strings.h"

namespace sensorcer::sorcer {

namespace {

struct InvokeMetrics {
  obs::Counter& calls;
  obs::Counter& wire_calls;
  obs::Counter& inprocess_calls;
  obs::Counter& timeouts;
  obs::Counter& late_responses;
  obs::Counter& pings;
  obs::Counter& ping_failures;
  obs::Histogram& rtt_us;
};

InvokeMetrics& invoke_metrics() {
  static InvokeMetrics m{obs::metrics().counter("invoke.calls"),
                         obs::metrics().counter("invoke.wire_calls"),
                         obs::metrics().counter("invoke.inprocess_calls"),
                         obs::metrics().counter("invoke.timeouts"),
                         obs::metrics().counter("invoke.late_responses"),
                         obs::metrics().counter("invoke.pings"),
                         obs::metrics().counter("invoke.ping_failures"),
                         obs::metrics().histogram("invoke.rtt_us")};
  return m;
}

/// The historical direct-call path, shared by the invoker's kInProcess mode
/// and by call sites with no invoker wired at all: a direct virtual call,
/// with the RPC's bytes modeled against the provider's endpoint when it has
/// a fabric attached (exactly what ServiceProvider::service used to charge).
util::Result<ExertionPtr> in_process_call(
    ServiceProvider* provider, const std::shared_ptr<Servicer>& servicer,
    const ExertionPtr& exertion, registry::Transaction* txn) {
  const std::size_t request_bytes =
      exertion->context().wire_bytes() + wire::kRequestEnvelopeBytes;
  auto result = servicer->service(exertion, txn);
  if (provider != nullptr && provider->network() != nullptr) {
    provider->network()->account_rpc(provider->network_address(),
                                     provider->network_address(),
                                     request_bytes,
                                     exertion->context().wire_bytes());
  }
  return result;
}

}  // namespace

RemoteInvoker::RemoteInvoker(simnet::Network& net, InvokeConfig config)
    : net_(net), config_(config), addr_(util::new_uuid()) {
  net_.attach(addr_, [this](const simnet::Message& msg) { on_message(msg); });
}

RemoteInvoker::~RemoteInvoker() { net_.detach(addr_); }

void RemoteInvoker::on_message(const simnet::Message& msg) {
  if (msg.topic != wire::kResponseTopic && msg.topic != wire::kPongTopic) {
    return;
  }
  const auto* rsp = std::any_cast<wire::Response>(&msg.body);
  if (rsp == nullptr) return;
  if (pending_.erase(rsp->call_id) == 0) {
    // The call already timed out and gave up on this id.
    invoke_metrics().late_responses.add(1);
    return;
  }
  done_.emplace(rsp->call_id, rsp->transport_status);
}

bool RemoteInvoker::pump_until(std::uint64_t call_id, util::SimTime deadline) {
  util::Scheduler& sched = net_.scheduler();
  // Step event-by-event so the clock never overshoots the deadline while a
  // response is still in flight. Nested calls (a provider invoking
  // downstream mid-dispatch) pump the same scheduler recursively; lookups
  // into done_ re-check after every step because a nested pump may have
  // completed this call already.
  while (!done_.contains(call_id)) {
    const util::SimTime next = sched.next_event_time();
    if (next > deadline) break;
    sched.run_until(next);
  }
  if (done_.contains(call_id)) return true;
  // Nothing more can arrive in time; idle out the rest of the deadline so
  // the requestor's blocking wait is visible on the virtual clock.
  sched.run_until(deadline);
  return done_.contains(call_id);
}

util::Result<ExertionPtr> RemoteInvoker::invoke(
    const std::shared_ptr<Servicer>& servicer, const ExertionPtr& exertion,
    registry::Transaction* txn) {
  if (!servicer || !exertion) {
    return util::Status{util::ErrorCode::kInvalidArgument,
                        "null servicer or exertion"};
  }
  invoke_metrics().calls.add(1);
  auto* provider = dynamic_cast<ServiceProvider*>(servicer.get());
  const bool wire_eligible = config_.transport == Transport::kWire &&
                             provider != nullptr &&
                             provider->network() == &net_ &&
                             net_.is_attached(provider->network_address());
  if (!wire_eligible) {
    invoke_metrics().inprocess_calls.add(1);
    return in_process_call(provider, servicer, exertion, txn);
  }
  return invoke_wire(provider, exertion, txn);
}

util::Result<ExertionPtr> RemoteInvoker::invoke_wire(
    ServiceProvider* provider, const ExertionPtr& exertion,
    registry::Transaction* txn) {
  invoke_metrics().wire_calls.add(1);
  util::Scheduler& sched = net_.scheduler();

  obs::TraceContext parent = exertion->trace_context().valid()
                                 ? exertion->trace_context()
                                 : obs::current_context();
  obs::Span span = obs::tracer().start_span(
      "rpc:" + exertion->name() + "->" + provider->provider_name(), parent);
  obs::ContextGuard guard(span.context());

  const std::uint64_t call_id = next_call_id_++;
  const util::SimTime started = sched.now();
  const util::SimDuration accrued_before = exertion->latency();

  simnet::Message req;
  req.source = addr_;
  req.destination = provider->network_address();
  req.topic = wire::kRequestTopic;
  req.body = wire::Request{call_id, addr_, exertion, txn};
  req.payload_bytes =
      exertion->context().wire_bytes() + wire::kRequestEnvelopeBytes;
  req.protocol = simnet::Protocol::kTcp;

  pending_.insert(call_id);
  if (util::Status sent = net_.send(req); !sent.is_ok()) {
    pending_.erase(call_id);
    span.set_ok(false);
    exertion->set_error({util::ErrorCode::kUnavailable,
                         util::format("endpoint of '%s' unreachable: %s",
                                      provider->provider_name().c_str(),
                                      sent.message().c_str())});
    return util::Result<ExertionPtr>(exertion);
  }

  if (!pump_until(call_id, started + config_.call_timeout)) {
    pending_.erase(call_id);
    invoke_metrics().timeouts.add(1);
    span.set_ok(false);
    // At-most-once from the requestor's view: the request (or its response)
    // was lost to the fabric — loss, partition, or a dead endpoint. The
    // provider may still have executed; a late response is dropped.
    exertion->set_error({util::ErrorCode::kTimeout,
                         util::format("no response from '%s' within %s",
                                      provider->provider_name().c_str(),
                                      util::format_duration(
                                          config_.call_timeout)
                                          .c_str())});
    return util::Result<ExertionPtr>(exertion);
  }

  const util::Status transport_status = done_.at(call_id);
  done_.erase(call_id);

  // The round trip advanced the virtual clock by the real wire delays plus
  // the provider's modeled service time; top the exertion's latency account
  // up to what the requestor actually waited, so wire-mode latency reflects
  // transport cost too (never less than the modeled in-process figure).
  const util::SimDuration elapsed = sched.now() - started;
  const util::SimDuration accrued = exertion->latency() - accrued_before;
  if (elapsed > accrued) exertion->add_latency(elapsed - accrued);
  invoke_metrics().rtt_us.observe(static_cast<double>(elapsed));

  if (!transport_status.is_ok()) {
    span.set_ok(false);
    return transport_status;
  }
  span.set_ok(exertion->status() != ExertStatus::kFailed);
  return util::Result<ExertionPtr>(exertion);
}

util::Status RemoteInvoker::ping(simnet::Address target,
                                 util::SimDuration timeout) {
  invoke_metrics().pings.add(1);
  util::Scheduler& sched = net_.scheduler();
  const std::uint64_t call_id = next_call_id_++;

  simnet::Message msg;
  msg.source = addr_;
  msg.destination = target;
  msg.topic = wire::kPingTopic;
  msg.body = wire::Request{call_id, addr_, nullptr, nullptr};
  msg.payload_bytes = wire::kPingBytes;
  msg.protocol = simnet::Protocol::kUdp;

  pending_.insert(call_id);
  if (util::Status sent = net_.send(msg); !sent.is_ok()) {
    pending_.erase(call_id);
    invoke_metrics().ping_failures.add(1);
    return sent;
  }
  const util::SimDuration budget =
      timeout > 0 ? timeout : config_.ping_timeout;
  if (!pump_until(call_id, sched.now() + budget)) {
    pending_.erase(call_id);
    invoke_metrics().ping_failures.add(1);
    return {util::ErrorCode::kTimeout,
            "no pong from " + target.to_string() + " within " +
                util::format_duration(budget)};
  }
  done_.erase(call_id);
  return util::Status::ok();
}

util::Result<ExertionPtr> ServicerStub::exert(const ExertionPtr& exertion,
                                              registry::Transaction* txn) {
  if (invoker_ != nullptr) return invoker_->invoke(servicer_, exertion, txn);
  return in_process_call(dynamic_cast<ServiceProvider*>(servicer_.get()),
                         servicer_, exertion, txn);
}

util::Result<ExertionPtr> invoke_servicer(
    ServiceAccessor& accessor, const std::shared_ptr<Servicer>& servicer,
    const ExertionPtr& exertion, registry::Transaction* txn) {
  if (!servicer || !exertion) {
    return util::Status{util::ErrorCode::kInvalidArgument,
                        "null servicer or exertion"};
  }
  if (RemoteInvoker* invoker = accessor.invoker(); invoker != nullptr) {
    return invoker->invoke(servicer, exertion, txn);
  }
  // No invoker wired (bare accessor, unit tests): the historical direct
  // call, still byte-modeled when the provider sits on a fabric.
  return in_process_call(dynamic_cast<ServiceProvider*>(servicer.get()),
                         servicer, exertion, txn);
}

}  // namespace sensorcer::sorcer
