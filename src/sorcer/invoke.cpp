#include "sorcer/invoke.h"

#include <any>
#include <cassert>
#include <chrono>
#include <future>

#include "obs/metrics.h"
#include "sorcer/accessor.h"
#include "sorcer/provider.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sensorcer::sorcer {

namespace {

struct InvokeMetrics {
  obs::Counter& calls;
  obs::Counter& wire_calls;
  obs::Counter& inprocess_calls;
  obs::Counter& timeouts;
  obs::Counter& late_responses;
  obs::Counter& pings;
  obs::Counter& ping_failures;
  obs::Counter& idle_waits;
  obs::Counter& overlap_saved_ns;
  obs::Counter& marshal_ns;
  obs::Gauge& outstanding;
  obs::Histogram& rtt_us;
};

InvokeMetrics& invoke_metrics() {
  static InvokeMetrics m{obs::metrics().counter("invoke.calls"),
                         obs::metrics().counter("invoke.wire_calls"),
                         obs::metrics().counter("invoke.inprocess_calls"),
                         obs::metrics().counter("invoke.timeouts"),
                         obs::metrics().counter("invoke.late_responses"),
                         obs::metrics().counter("invoke.pings"),
                         obs::metrics().counter("invoke.ping_failures"),
                         obs::metrics().counter("invoke.idle_waits"),
                         obs::metrics().counter("invoke.overlap_saved_ns"),
                         obs::metrics().counter("invoke.marshal_ns"),
                         obs::metrics().gauge("invoke.outstanding"),
                         obs::metrics().histogram("invoke.rtt_us")};
  return m;
}

/// Real (wall-clock) nanoseconds spent marshalling, accumulated into
/// invoke.marshal_ns — the codec cost is genuine CPU work, not virtual time.
struct MarshalTimer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  ~MarshalTimer() {
    invoke_metrics().marshal_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
};

/// The historical direct-call path, shared by the invoker's kInProcess mode
/// and by call sites with no invoker wired at all: a direct virtual call,
/// with the RPC's bytes modeled against the provider's endpoint when it has
/// a fabric attached (exactly what ServiceProvider::service used to charge).
util::Result<ExertionPtr> in_process_call(
    ServiceProvider* provider, const std::shared_ptr<Servicer>& servicer,
    const ExertionPtr& exertion, registry::Transaction* txn) {
  const std::size_t request_bytes =
      exertion->context().wire_bytes() + wire::kRequestEnvelopeBytes;
  auto result = servicer->service(exertion, txn);
  if (provider != nullptr && provider->network() != nullptr) {
    provider->network()->account_rpc(provider->network_address(),
                                     provider->network_address(),
                                     request_bytes,
                                     exertion->context().wire_bytes());
  }
  return result;
}

}  // namespace

RemoteInvoker::PumpGuard::PumpGuard(RemoteInvoker& invoker) : inv(invoker) {
  if (inv.pump_depth_ == 0) {
    inv.pump_thread_ = std::this_thread::get_id();
  } else {
    // Only the thread that owns the outermost pump may step the scheduler:
    // nested frames are the event loop recursing in time order, but a pump
    // from a second thread would interleave two event loops over one
    // scheduler and corrupt virtual time.
    assert(inv.pump_thread_ == std::this_thread::get_id() &&
           "nested scheduler pump from a different thread");
  }
  ++inv.pump_depth_;
}

RemoteInvoker::PumpGuard::~PumpGuard() {
  if (--inv.pump_depth_ == 0) inv.pump_thread_ = {};
}

RemoteInvoker::RemoteInvoker(simnet::Network& net, InvokeConfig config)
    : net_(net), config_(config), addr_(util::new_uuid()) {
  net_.attach(addr_, [this](const simnet::Message& msg) { on_message(msg); });
}

RemoteInvoker::~RemoteInvoker() { net_.detach(addr_); }

void RemoteInvoker::on_message(const simnet::Message& msg) {
  if (msg.topic != wire::kResponseTopic && msg.topic != wire::kPongTopic) {
    return;
  }
  const auto* rsp = std::any_cast<wire::Response>(&msg.body);
  if (rsp == nullptr) return;
  if (pending_.erase(rsp->call_id) == 0) {
    // The call already timed out and gave up on this id.
    invoke_metrics().late_responses.add(1);
    return;
  }
  invoke_metrics().outstanding.set(static_cast<double>(pending_.size()));
  // Stamp the arrival time: an outer pump frame may gather this response
  // later in virtual time, and the call's RTT must not include that gap.
  // The payload handle rides along so a late harvest can still unmarshal;
  // the source address selects the per-provider decode intern table.
  done_.emplace(rsp->call_id, Arrival{rsp->transport_status,
                                      net_.scheduler().now(), rsp->payload,
                                      msg.source});
}

bool RemoteInvoker::pump_until(std::uint64_t call_id, util::SimTime deadline) {
  PumpGuard guard(*this);
  util::Scheduler& sched = net_.scheduler();
  // Step event-by-event so the clock never overshoots the deadline while a
  // response is still in flight. Nested calls (a provider invoking
  // downstream mid-dispatch) pump the same scheduler recursively; lookups
  // into done_ re-check after every step because a nested pump may have
  // completed this call already.
  while (!done_.contains(call_id) && sched.now() < deadline) {
    const util::SimTime next = sched.next_event_time();
    if (next > deadline) {
      // Nothing on the fabric can complete this call in time; fast-forward
      // the idle window so the blocking wait is visible on the virtual
      // clock without stepping through unrelated far-future events.
      invoke_metrics().idle_waits.add(1);
      sched.run_until(deadline);
      break;
    }
    sched.run_until(next);
  }
  return done_.contains(call_id);
}

util::Result<ExertionPtr> RemoteInvoker::invoke(
    const std::shared_ptr<Servicer>& servicer, const ExertionPtr& exertion,
    registry::Transaction* txn) {
  PendingCall call = begin_invoke(servicer, exertion, txn);
  if (!call.completed()) {
    PendingCall* calls[] = {&call};
    pump_until_all(calls);
  }
  util::Result<ExertionPtr> result = std::move(call.result());
  recycle(std::move(call));
  return result;
}

PendingCall RemoteInvoker::acquire_call() {
  const std::lock_guard<std::mutex> lock(call_pool_mu_);
  if (call_pool_.empty()) return {};
  PendingCall call = std::move(call_pool_.back());
  call_pool_.pop_back();
  return call;
}

void RemoteInvoker::recycle(PendingCall&& call) {
  const std::lock_guard<std::mutex> lock(call_pool_mu_);
  if (!call.completed_ || call_pool_.size() >= 64) return;
  call.call_id_ = 0;
  call.started_ = 0;
  call.deadline_ = 0;
  call.accrued_before_ = 0;
  call.elapsed_ = 0;
  call.exertion_.reset();
  call.target_name_.clear();  // capacity retained
  call.span_ = obs::Span{};
  call.completed_ = false;
  call.result_.reset();
  call_pool_.push_back(std::move(call));
}

PendingCall RemoteInvoker::begin_invoke(
    const std::shared_ptr<Servicer>& servicer, const ExertionPtr& exertion,
    registry::Transaction* txn) {
  PendingCall call = acquire_call();
  call.exertion_ = exertion;
  if (!servicer || !exertion) {
    call.completed_ = true;
    call.result_.emplace(util::Status{util::ErrorCode::kInvalidArgument,
                                      "null servicer or exertion"});
    return call;
  }
  invoke_metrics().calls.add(1);
  auto* provider = dynamic_cast<ServiceProvider*>(servicer.get());
  const bool wire_eligible = config_.transport == Transport::kWire &&
                             provider != nullptr &&
                             provider->network() == &net_ &&
                             net_.is_attached(provider->network_address());
  if (!wire_eligible) {
    invoke_metrics().inprocess_calls.add(1);
    call.completed_ = true;
    call.result_.emplace(in_process_call(provider, servicer, exertion, txn));
    return call;
  }

  invoke_metrics().wire_calls.add(1);
  util::Scheduler& sched = net_.scheduler();

  obs::TraceContext parent = exertion->trace_context().valid()
                                 ? exertion->trace_context()
                                 : obs::current_context();
  call.span_ = obs::tracer().start_span(
      "rpc:" + exertion->name() + "->" + provider->provider_name(), parent);
  // The request must be stamped with the rpc span's context so the
  // provider-side dispatch span links under it.
  obs::ContextGuard guard(call.span_.context());

  call.call_id_ = next_call_id_++;
  call.started_ = sched.now();
  call.deadline_ = call.started_ + config_.call_timeout;
  call.accrued_before_ = exertion->latency();
  call.target_name_ = provider->provider_name();

  // Marshal the request context through the flat codec into a pooled
  // buffer. The fabric charges the encoding's actual size (paths collapse to
  // interned ids once this destination's table is warm), and the provider
  // decodes the buffer back into the exertion before dispatch.
  BufferPool::Handle payload = codec_.buffers->acquire();
  {
    MarshalTimer timer;
    encode_context(exertion->context(),
                   codec_.encode[provider->network_address()], *payload);
  }

  simnet::Message req;
  req.source = addr_;
  req.destination = provider->network_address();
  req.topic = wire::kRequestTopic;
  req.payload_bytes = payload->size() + wire::kFlatRequestEnvelopeBytes;
  wire::Request body{call.call_id_, addr_, exertion, txn, std::move(payload)};
  // Re-armed on every failed decode, so a lost flagged request just means
  // the next retry carries the flag again.
  body.reset_reply_interning =
      reply_reset_.erase(provider->network_address()) > 0;
  req.body = std::move(body);
  req.protocol = simnet::Protocol::kTcp;

  if (util::Status sent = net_.send(req); !sent.is_ok()) {
    call.span_.set_ok(false);
    call.span_.finish();
    exertion->set_error({util::ErrorCode::kUnavailable,
                         util::format("endpoint of '%s' unreachable: %s",
                                      provider->provider_name().c_str(),
                                      sent.message().c_str())});
    call.call_id_ = 0;
    call.completed_ = true;
    call.result_.emplace(util::Result<ExertionPtr>(exertion));
    return call;
  }
  pending_.insert(call.call_id_);
  invoke_metrics().outstanding.set(static_cast<double>(pending_.size()));
  return call;
}

void RemoteInvoker::finish_call(PendingCall& call, const Arrival* arrival) {
  if (arrival != nullptr) {
    // The round trip advanced the virtual clock by the real wire delays
    // plus the provider's modeled service time; top the exertion's latency
    // account up to what the requestor actually waited, so wire-mode
    // latency reflects transport cost too (never less than the modeled
    // in-process figure).
    call.elapsed_ = arrival->at - call.started_;
    const util::SimDuration accrued =
        call.exertion_->latency() - call.accrued_before_;
    if (call.elapsed_ > accrued) {
      call.exertion_->add_latency(call.elapsed_ - accrued);
    }
    invoke_metrics().rtt_us.observe(static_cast<double>(call.elapsed_));
    util::Status transport_status = arrival->status;
    if (transport_status.code() == util::ErrorCode::kCodecDesync) {
      // The provider lost our request-intern stream (the message that
      // carried its definitions was dropped): restart the stream so the
      // retry re-defines every path inline.
      codec_.encode[arrival->from].reset();
    }
    if (transport_status.is_ok() && arrival->payload) {
      // Unmarshal the provider's response context back into the exertion —
      // the requestor-side half of the real codec work the payload_bytes
      // charge was sized from.
      MarshalTimer timer;
      transport_status =
          decode_context(arrival->payload->data(), arrival->payload->size(),
                         codec_.decode[arrival->from],
                         call.exertion_->context());
      if (transport_status.code() == util::ErrorCode::kCodecDesync) {
        // Our side of the response stream is broken; the next request tells
        // the provider to restart it.
        reply_reset_.insert(arrival->from);
      }
    }
    if (!transport_status.is_ok()) {
      call.span_.set_ok(false);
      // Mark the exertion too: the retry/substitution machinery keys off
      // the task's error code, not just the call result.
      call.exertion_->set_error(transport_status);
      call.result_.emplace(transport_status);
    } else {
      call.span_.set_ok(call.exertion_->status() != ExertStatus::kFailed);
      call.result_.emplace(util::Result<ExertionPtr>(call.exertion_));
    }
  } else {
    // Deadline expired: leave the pending set so a late response is dropped
    // and counted. At-most-once from the requestor's view — the request (or
    // its response) was lost to the fabric; the provider may still have
    // executed.
    pending_.erase(call.call_id_);
    invoke_metrics().outstanding.set(static_cast<double>(pending_.size()));
    invoke_metrics().timeouts.add(1);
    call.span_.set_ok(false);
    call.exertion_->set_error(
        {util::ErrorCode::kTimeout,
         util::format(
             "no response from '%s' within %s", call.target_name_.c_str(),
             util::format_duration(config_.call_timeout).c_str())});
    call.result_.emplace(util::Result<ExertionPtr>(call.exertion_));
  }
  call.span_.finish();
  call.completed_ = true;
}

void RemoteInvoker::pump_until_all(std::span<PendingCall* const> calls) {
  PumpGuard guard(*this);
  util::Scheduler& sched = net_.scheduler();
  const util::SimTime pump_started = sched.now();
  util::SimDuration gathered_rtt = 0;
  std::size_t gathered = 0;

  for (;;) {
    // Harvest pass: complete everything whose response has landed or whose
    // deadline has passed, then find the earliest deadline still open.
    bool any_open = false;
    util::SimTime earliest = util::kNever;
    for (PendingCall* call : calls) {
      if (call == nullptr || call->completed_) continue;
      if (auto it = done_.find(call->call_id_); it != done_.end()) {
        const Arrival arrival = std::move(it->second);
        done_.erase(it);
        finish_call(*call, &arrival);
        gathered_rtt += call->elapsed_;
        ++gathered;
        continue;
      }
      if (sched.now() >= call->deadline_) {
        finish_call(*call, nullptr);
        ++gathered;
        continue;
      }
      any_open = true;
      earliest = std::min(earliest, call->deadline_);
    }
    if (!any_open) break;

    // One scheduler step serves every outstanding call at once — this is
    // where N round-trips overlap instead of serializing. When the fabric
    // has no event before the earliest open deadline, fast-forward straight
    // to it instead of busy-stepping unrelated far-future events.
    const util::SimTime next = sched.next_event_time();
    if (next > earliest) {
      invoke_metrics().idle_waits.add(1);
      sched.run_until(earliest);
    } else {
      sched.run_until(next);
    }
  }

  // Overlap accounting: the sum of the gathered RTTs is what these calls
  // would have cost serialized; the batch actually advanced the clock by
  // the pump window. The difference is fabric concurrency won.
  if (gathered > 1) {
    const util::SimDuration batch_window = sched.now() - pump_started;
    if (gathered_rtt > batch_window) {
      invoke_metrics().overlap_saved_ns.add(
          static_cast<std::uint64_t>(gathered_rtt - batch_window) * 1000u);
    }
  }
}

util::Status RemoteInvoker::ping(simnet::Address target,
                                 util::SimDuration timeout) {
  invoke_metrics().pings.add(1);
  util::Scheduler& sched = net_.scheduler();
  const std::uint64_t call_id = next_call_id_++;

  simnet::Message msg;
  msg.source = addr_;
  msg.destination = target;
  msg.topic = wire::kPingTopic;
  msg.body = wire::Request{call_id, addr_, nullptr, nullptr};
  msg.payload_bytes = wire::kPingBytes;
  msg.protocol = simnet::Protocol::kUdp;

  pending_.insert(call_id);
  if (util::Status sent = net_.send(msg); !sent.is_ok()) {
    pending_.erase(call_id);
    invoke_metrics().ping_failures.add(1);
    return sent;
  }
  const util::SimDuration budget =
      timeout > 0 ? timeout : config_.ping_timeout;
  if (!pump_until(call_id, sched.now() + budget)) {
    pending_.erase(call_id);
    invoke_metrics().ping_failures.add(1);
    return {util::ErrorCode::kTimeout,
            "no pong from " + target.to_string() + " within " +
                util::format_duration(budget)};
  }
  done_.erase(call_id);
  return util::Status::ok();
}

util::Result<ExertionPtr> ServicerStub::exert(const ExertionPtr& exertion,
                                              registry::Transaction* txn) {
  if (invoker_ != nullptr) return invoker_->invoke(servicer_, exertion, txn);
  return in_process_call(dynamic_cast<ServiceProvider*>(servicer_.get()),
                         servicer_, exertion, txn);
}

util::Result<ExertionPtr> invoke_servicer(
    ServiceAccessor& accessor, const std::shared_ptr<Servicer>& servicer,
    const ExertionPtr& exertion, registry::Transaction* txn) {
  if (!servicer || !exertion) {
    return util::Status{util::ErrorCode::kInvalidArgument,
                        "null servicer or exertion"};
  }
  if (RemoteInvoker* invoker = accessor.invoker(); invoker != nullptr) {
    return invoker->invoke(servicer, exertion, txn);
  }
  // No invoker wired (bare accessor, unit tests): the historical direct
  // call, still byte-modeled when the provider sits on a fabric.
  return in_process_call(dynamic_cast<ServiceProvider*>(servicer.get()),
                         servicer, exertion, txn);
}

FanOut invoke_servicer_all(
    ServiceAccessor& accessor,
    const std::vector<std::pair<std::shared_ptr<Servicer>, ExertionPtr>>&
        calls,
    registry::Transaction* txn, util::ThreadPool* pool) {
  if (calls.empty()) return FanOut::kSequence;
  RemoteInvoker* invoker = accessor.invoker();
  if (invoker != nullptr && invoker->transport() == Transport::kWire) {
    // Scatter every request onto the fabric, then gather them with one
    // shared pump: the round-trips overlap in virtual time.
    std::vector<PendingCall> pending;
    pending.reserve(calls.size());
    for (const auto& [servicer, exertion] : calls) {
      pending.push_back(invoker->begin_invoke(servicer, exertion, txn));
    }
    std::vector<PendingCall*> open;
    open.reserve(pending.size());
    for (PendingCall& call : pending) {
      if (!call.completed()) open.push_back(&call);
    }
    if (!open.empty()) invoker->pump_until_all(open);
    // Outcomes landed on the exertions; return the call shells to the pool.
    for (PendingCall& call : pending) invoker->recycle(std::move(call));
    return FanOut::kWire;
  }
  if (pool != nullptr && calls.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(calls.size());
    for (const auto& [servicer, exertion] : calls) {
      futures.push_back(pool->submit([&accessor, servicer, exertion, txn] {
        (void)invoke_servicer(accessor, servicer, exertion, txn);
      }));
    }
    for (auto& f : futures) f.get();
    return FanOut::kPooled;
  }
  for (const auto& [servicer, exertion] : calls) {
    (void)invoke_servicer(accessor, servicer, exertion, txn);
  }
  return FanOut::kSequence;
}

}  // namespace sensorcer::sorcer
