#include "sorcer/provider.h"

#include <algorithm>
#include <any>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sorcer/codec.h"
#include "sorcer/invoke.h"
#include "util/strings.h"

namespace sensorcer::sorcer {

namespace {

struct TaskMetrics {
  obs::Counter& invocations;
  obs::Counter& failures;
  obs::Histogram& latency;
};

TaskMetrics& task_metrics() {
  static TaskMetrics m{obs::metrics().counter("sorcer.task.invocations"),
                       obs::metrics().counter("sorcer.task.failures"),
                       obs::metrics().histogram("sorcer.task.latency_us")};
  return m;
}

/// Provider-side share of the wall-clock codec cost (same counter the
/// requestor side accumulates in sorcer/invoke.cpp).
obs::Counter& marshal_ns_counter() {
  static obs::Counter& c = obs::metrics().counter("invoke.marshal_ns");
  return c;
}

struct MarshalTimer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  ~MarshalTimer() {
    marshal_ns_counter().add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
};

}  // namespace

ServiceProvider::ServiceProvider(std::string name,
                                 std::vector<std::string> types)
    : name_(std::move(name)), id_(util::new_uuid()), types_(std::move(types)) {
  if (std::find(types_.begin(), types_.end(), type::kServicer) ==
      types_.end()) {
    types_.push_back(type::kServicer);
  }
}

ServiceProvider::~ServiceProvider() {
  // Registrations are leased: if the owner forgot to leave(), the lookup
  // services will dispose of us when the lease lapses. Cancel renewal timers
  // so they do not fire into a destroyed object.
  for (auto& j : joined_) {
    if (j.lrm != nullptr) j.lrm->release(j.lease_id);
  }
  // The endpoint handler captures `this`; take it off the fabric so pending
  // deliveries are dropped instead of dispatched into a destroyed provider.
  if (net_ != nullptr) net_->detach(net_addr_);
}

void ServiceProvider::add_operation(const std::string& selector, Operation op,
                                    util::SimDuration service_time) {
  operations_[selector] = OpRecord{std::move(op), service_time};
}

void ServiceProvider::set_attributes(registry::Entry attributes) {
  attributes_ = std::move(attributes);
}

void ServiceProvider::attach_network(simnet::Network& net) {
  if (net_ != nullptr) net_->detach(net_addr_);
  net_ = &net;
  if (net_addr_.is_nil()) net_addr_ = util::new_uuid();
  if (!codec_) codec_ = std::make_unique<WireCodecState>();
  net.attach(net_addr_,
             [this](const simnet::Message& msg) { handle_network_message(msg); });
}

void ServiceProvider::handle_network_message(const simnet::Message& msg) {
  if (net_ == nullptr) return;

  if (msg.topic == wire::kPingTopic) {
    const auto* ping = std::any_cast<wire::Request>(&msg.body);
    if (ping == nullptr) return;
    simnet::Message pong;
    pong.source = net_addr_;
    pong.destination = ping->reply_to;
    pong.topic = wire::kPongTopic;
    pong.body = wire::Response{ping->call_id, util::Status::ok()};
    pong.payload_bytes = wire::kPingBytes;
    pong.protocol = simnet::Protocol::kUdp;
    (void)net_->send(pong);
    return;
  }

  if (msg.topic != wire::kRequestTopic) return;
  const auto* req = std::any_cast<wire::Request>(&msg.body);
  if (req == nullptr || !req->exertion) return;

  if (req->reset_reply_interning) {
    // The requestor could not decode an earlier response (a definition
    // message was lost): restart the response-intern stream so this reply
    // re-defines every path inline.
    codec_->encode[req->reply_to].reset();
  }

  util::Scheduler& sched = net_->scheduler();
  const util::SimTime started = sched.now();
  const util::SimDuration accrued_before = req->exertion->latency();

  // Unmarshal the request context from its flat encoding before dispatch —
  // the provider-side half of the codec work the request's payload_bytes
  // charge was sized from. A malformed payload is a transport failure: the
  // operation never runs and the requestor sees the decode status.
  if (req->payload) {
    MarshalTimer timer;
    util::Status decoded = decode_context(
        req->payload->data(), req->payload->size(), codec_->decode[msg.source],
        req->exertion->context());
    if (!decoded.is_ok()) {
      simnet::Message err;
      err.source = net_addr_;
      err.destination = req->reply_to;
      err.topic = wire::kResponseTopic;
      err.body = wire::Response{req->call_id, std::move(decoded)};
      err.payload_bytes = wire::kFlatResponseEnvelopeBytes;
      err.protocol = simnet::Protocol::kTcp;
      err.trace = obs::current_context();
      (void)net_->send(err);
      return;
    }
  }

  auto result = service(req->exertion, req->txn);

  // Marshal the post-dispatch context into a pooled buffer; the requestor
  // unmarshals it on gather. The response's intern table is keyed by the
  // requestor endpoint, so repeated calls from one peer shrink to ids.
  BufferPool::Handle payload = codec_->buffers->acquire();
  {
    MarshalTimer timer;
    encode_context(req->exertion->context(), codec_->encode[req->reply_to],
                   *payload);
  }

  simnet::Message rsp;
  rsp.source = net_addr_;
  rsp.destination = req->reply_to;
  rsp.topic = wire::kResponseTopic;
  rsp.payload_bytes = payload->size() + wire::kFlatResponseEnvelopeBytes;
  rsp.body = wire::Response{
      req->call_id, result.is_ok() ? util::Status::ok() : result.status(),
      std::move(payload)};
  rsp.protocol = simnet::Protocol::kTcp;
  // The deferred send below runs from a bare scheduler callback with no
  // thread-local trace; stamp the propagation header now.
  rsp.trace = obs::current_context();

  // The exertion's latency account says how long the dispatch *should* have
  // taken; nested wire hops already advanced the virtual clock by some of
  // that. Hold the response back for the remainder so the requestor
  // observes the modeled service time end to end.
  const util::SimDuration modeled = req->exertion->latency() - accrued_before;
  const util::SimDuration elapsed = sched.now() - started;
  const util::SimDuration defer = modeled > elapsed ? modeled - elapsed : 0;
  if (defer > 0) {
    // Capture the network by value, not `this`: the provider may be gone by
    // send time (its endpoint detached; the fabric outlives providers).
    simnet::Network* net = net_;
    sched.schedule_after(defer, [net, rsp] { (void)net->send(rsp); });
  } else {
    (void)net_->send(rsp);
  }
}

registry::ServiceItem ServiceProvider::service_item() {
  registry::ServiceItem item;
  item.id = id_;
  item.proxy = shared_from_this();
  item.types = types_;
  item.attributes = attributes_;
  item.attributes.set(registry::attr::kName, name_);
  return item;
}

util::Status ServiceProvider::join(
    const std::shared_ptr<registry::LookupService>& lus,
    registry::LeaseRenewalManager& lrm, util::SimDuration lease_duration) {
  if (!lus) {
    return {util::ErrorCode::kInvalidArgument, "null lookup service"};
  }
  auto registration = lus->register_service(service_item(), lease_duration);
  lrm.manage(registration.lease, lus, lease_duration);
  joined_.push_back(Joined{lus, &lrm, registration.lease.id});
  return util::Status::ok();
}

void ServiceProvider::leave() {
  for (auto& j : joined_) {
    if (j.lrm != nullptr) j.lrm->cancel(j.lease_id);
  }
  joined_.clear();
}

void ServiceProvider::crash() {
  for (auto& j : joined_) {
    if (j.lrm != nullptr) j.lrm->release(j.lease_id);
  }
  joined_.clear();
  if (!crashed_) {
    crashed_ = true;
    on_crashed();
  }
}

util::Result<ExertionPtr> ServiceProvider::service(
    ExertionPtr exertion, registry::Transaction* /*txn*/) {
  if (!exertion) {
    return util::Status{util::ErrorCode::kInvalidArgument, "null exertion"};
  }
  if (exertion->kind() != Exertion::Kind::kTask) {
    exertion->set_error({util::ErrorCode::kInvalidArgument,
                         "task peer cannot coordinate a job; exert it via a "
                         "rendezvous peer (Jobber/Spacer)"});
    return exertion;
  }
  auto task = std::static_pointer_cast<Task>(exertion);
  const Signature& sig = task->signature();

  if (std::find(types_.begin(), types_.end(), sig.service_type) ==
      types_.end()) {
    task->set_error({util::ErrorCode::kInvalidArgument,
                     util::format("provider '%s' does not export type '%s'",
                                  name_.c_str(), sig.service_type.c_str())});
    return exertion;
  }
  auto op = operations_.find(sig.selector);
  if (op == operations_.end()) {
    task->set_error({util::ErrorCode::kNotFound,
                     util::format("provider '%s' has no operation '%s'",
                                  name_.c_str(), sig.selector.c_str())});
    return exertion;
  }

  std::lock_guard lock(mu_);
  // Invocation span: parented on the exertion's context (stamped by exert(),
  // valid across pool-worker threads) so the provider call links into the
  // request's trace even when dispatched off-thread.
  obs::TraceContext parent = task->trace_context().valid()
                                 ? task->trace_context()
                                 : obs::current_context();
  obs::Span span =
      obs::tracer().start_span("invoke:" + name_ + "#" + sig.selector, parent);
  obs::ContextGuard trace_guard(span.context());
  task->set_status(ExertStatus::kRunning);
  // Byte accounting lives in the invocation pipeline (sorcer/invoke.*):
  // wire transport charges real request/response messages, the in-process
  // path models the same RPC via account_rpc.
  util::Status result = op->second.fn(task->context());
  const util::SimDuration modeled =
      op->second.service_time + extra_invocation_latency(sig.selector);
  task->add_latency(modeled);
  task->add_trace(name_);
  ++invocations_;
  task_metrics().invocations.add(1);
  task_metrics().latency.observe(static_cast<double>(modeled));
  if (result.is_ok()) {
    task->set_status(ExertStatus::kDone);
  } else {
    task_metrics().failures.add(1);
    span.set_ok(false);
    task->set_error(std::move(result));
  }
  return exertion;
}

Tasker::Tasker(std::string name, std::vector<std::string> extra_types)
    : ServiceProvider(std::move(name), [&extra_types] {
        std::vector<std::string> types{type::kTasker};
        for (auto& t : extra_types) types.push_back(std::move(t));
        return types;
      }()) {}

}  // namespace sensorcer::sorcer
