#pragma once
// The unified service-to-service invocation pipeline.
//
// Every exertion dispatch — exert()'s task binding, the Jobber's child
// dispatch, space workers, the CSP's direct fan-out, facade reads — funnels
// through invoke_servicer(), which routes the call through the accessor's
// RemoteInvoker. Under Transport::kWire the call really crosses the simnet
// fabric: the request is marshalled into a Message sized by the exertion's
// modeled context bytes, sent under TCP protocol headers with trace-context
// propagation, dispatched provider-side by ServiceProvider's network
// handler, and answered the same way. Loss, partitions, bandwidth shaping
// and per-call deadlines (kTimeout) all come from the fabric for free —
// once calls are messages, they can be observed, dropped, and re-routed.
//
// Transport::kInProcess (the default) keeps the historical direct virtual
// call plus account_rpc() byte modeling, so unit tests and the PR 2
// read-path numbers stay comparable.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "registry/transaction.h"
#include "simnet/network.h"
#include "sorcer/exertion.h"
#include "sorcer/servicer.h"

namespace sensorcer::sorcer {

class ServiceAccessor;
class ServiceProvider;

/// How invoke_servicer() reaches a provider.
enum class Transport {
  kInProcess,  // direct virtual call; bytes modeled via account_rpc()
  kWire,       // request/response Messages over the simnet fabric
};

/// Wire-protocol topics (application dispatch tags on Messages).
namespace wire {
inline constexpr const char* kRequestTopic = "invoke.request";
inline constexpr const char* kResponseTopic = "invoke.response";
inline constexpr const char* kPingTopic = "invoke.ping";
inline constexpr const char* kPongTopic = "invoke.pong";

/// Marshalling envelope sizes, charged on top of the exertion's modeled
/// context bytes: call id + reply address + signature on the request,
/// call id + status on the response. The request constant matches the
/// historical in-process model (context + 64), keeping byte accounting
/// continuous across transports.
inline constexpr std::size_t kRequestEnvelopeBytes = 64;
inline constexpr std::size_t kResponseEnvelopeBytes = 32;
inline constexpr std::size_t kPingBytes = 16;

/// Request body: the exertion rides by reference (the fabric charges
/// payload_bytes for the modeled serialized form).
struct Request {
  std::uint64_t call_id = 0;
  simnet::Address reply_to;
  ExertionPtr exertion;
  registry::Transaction* txn = nullptr;
};

/// Response body. `transport_status` reports dispatch-layer failures only;
/// application failures travel inside the exertion itself.
struct Response {
  std::uint64_t call_id = 0;
  util::Status transport_status = util::Status::ok();
};
}  // namespace wire

struct InvokeConfig {
  Transport transport = Transport::kInProcess;
  /// Per-call deadline: how long (virtual time) a requestor pumps the fabric
  /// for a response before failing the call with kTimeout. Generous by
  /// default so a coordinated job's child round-trips fit inside the parent
  /// call; tests shrink it to observe deadline behaviour cheaply.
  util::SimDuration call_timeout = 2 * util::kSecond;
  /// Deadline for liveness pings (Rio monitor's provider health probes).
  util::SimDuration ping_timeout = 50 * util::kMillisecond;
};

/// Client half of the pipeline ("requestor proxy" in SORCER terms — the
/// dynamically downloaded service stub). One per deployment; the accessor
/// hands it to every call site. Wire mode is single-threaded by design: a
/// blocked call pumps the virtual-time scheduler until its response lands,
/// so nested calls (provider invoking downstream providers mid-dispatch)
/// interleave on one stack, exactly like the fabric's event loop.
class RemoteInvoker {
 public:
  RemoteInvoker(simnet::Network& net, InvokeConfig config = {});
  ~RemoteInvoker();

  RemoteInvoker(const RemoteInvoker&) = delete;
  RemoteInvoker& operator=(const RemoteInvoker&) = delete;

  /// Invoke `servicer->service(exertion, txn)` through the configured
  /// transport. Wire-ineligible targets (not a ServiceProvider, or not
  /// attached to this invoker's fabric) fall back to the in-process path,
  /// so mixed deployments keep working. On deadline expiry the exertion is
  /// failed with kTimeout and returned (at-most-once semantics: the
  /// provider may still have executed; a late response is dropped).
  util::Result<ExertionPtr> invoke(const std::shared_ptr<Servicer>& servicer,
                                   const ExertionPtr& exertion,
                                   registry::Transaction* txn);

  /// Liveness probe: round-trips a ping datagram to `target`. kTimeout when
  /// no pong arrives within the deadline (partitioned / detached / dead),
  /// kNotFound when the endpoint is not attached at all.
  util::Status ping(simnet::Address target, util::SimDuration timeout = 0);

  [[nodiscard]] Transport transport() const { return config_.transport; }
  void set_transport(Transport t) { config_.transport = t; }
  void set_call_timeout(util::SimDuration t) { config_.call_timeout = t; }
  [[nodiscard]] const InvokeConfig& config() const { return config_; }

  [[nodiscard]] simnet::Network& network() { return net_; }
  [[nodiscard]] simnet::Address address() const { return addr_; }

 private:
  util::Result<ExertionPtr> invoke_in_process(
      ServiceProvider* provider, const std::shared_ptr<Servicer>& servicer,
      const ExertionPtr& exertion, registry::Transaction* txn);
  util::Result<ExertionPtr> invoke_wire(ServiceProvider* provider,
                                        const ExertionPtr& exertion,
                                        registry::Transaction* txn);
  void on_message(const simnet::Message& msg);
  /// Pump the fabric until `call_id` completes or `deadline` passes.
  /// Returns true on completion.
  bool pump_until(std::uint64_t call_id, util::SimTime deadline);

  simnet::Network& net_;
  InvokeConfig config_;
  simnet::Address addr_;
  std::uint64_t next_call_id_ = 1;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_map<std::uint64_t, util::Status> done_;
};

/// A bound stub: the pairing of a resolved Servicer proxy with the invoker
/// that reaches it. What the accessor's resolution hands back conceptually —
/// call sites that hold a provider across calls keep one of these instead
/// of re-deciding the transport each time.
class ServicerStub {
 public:
  ServicerStub(std::shared_ptr<Servicer> servicer, RemoteInvoker* invoker)
      : servicer_(std::move(servicer)), invoker_(invoker) {}

  util::Result<ExertionPtr> exert(const ExertionPtr& exertion,
                                  registry::Transaction* txn = nullptr);

  [[nodiscard]] const std::shared_ptr<Servicer>& servicer() const {
    return servicer_;
  }

 private:
  std::shared_ptr<Servicer> servicer_;
  RemoteInvoker* invoker_;  // null = plain direct call
};

/// The one call-site entry point: route `servicer->service(...)` through
/// `accessor`'s invoker (direct virtual call when none is wired).
util::Result<ExertionPtr> invoke_servicer(
    ServiceAccessor& accessor, const std::shared_ptr<Servicer>& servicer,
    const ExertionPtr& exertion, registry::Transaction* txn);

}  // namespace sensorcer::sorcer
