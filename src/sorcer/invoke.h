#pragma once
// The unified service-to-service invocation pipeline.
//
// Every exertion dispatch — exert()'s task binding, the Jobber's child
// dispatch, space workers, the CSP's direct fan-out, facade reads — funnels
// through invoke_servicer(), which routes the call through the accessor's
// RemoteInvoker. Under Transport::kWire the call really crosses the simnet
// fabric: the request is marshalled into a Message sized by the exertion's
// modeled context bytes, sent under TCP protocol headers with trace-context
// propagation, dispatched provider-side by ServiceProvider's network
// handler, and answered the same way. Loss, partitions, bandwidth shaping
// and per-call deadlines (kTimeout) all come from the fabric for free —
// once calls are messages, they can be observed, dropped, and re-routed.
//
// The pipeline is asynchronous at its core: begin_invoke() scatters a
// request and hands back a PendingCall; pump_until_all() steps the
// scheduler once for every outstanding call, completing each as its
// response (or deadline) arrives. N overlapping round-trips therefore cost
// max(child latency), not the sum — fan-out concurrency lives in the
// messaging layer, not in threads. invoke() is the one-call degenerate
// case.
//
// Transport::kInProcess (the default) keeps the historical direct virtual
// call plus account_rpc() byte modeling, so unit tests and the PR 2
// read-path numbers stay comparable.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "registry/transaction.h"
#include "simnet/network.h"
#include "sorcer/codec.h"
#include "sorcer/exertion.h"
#include "sorcer/servicer.h"

namespace sensorcer::util {
class ThreadPool;
}

namespace sensorcer::sorcer {

class ServiceAccessor;
class ServiceProvider;

/// How invoke_servicer() reaches a provider.
enum class Transport {
  kInProcess,  // direct virtual call; bytes modeled via account_rpc()
  kWire,       // request/response Messages over the simnet fabric
};

/// Wire-protocol topics (application dispatch tags on Messages).
namespace wire {
inline constexpr const char* kRequestTopic = "invoke.request";
inline constexpr const char* kResponseTopic = "invoke.response";
inline constexpr const char* kPingTopic = "invoke.ping";
inline constexpr const char* kPongTopic = "invoke.pong";

/// Marshalling envelope sizes, charged on top of the exertion's modeled
/// context bytes: call id + reply address + signature on the request,
/// call id + status on the response. The request constant matches the
/// historical in-process model (context + 64), keeping byte accounting
/// continuous across transports.
inline constexpr std::size_t kRequestEnvelopeBytes = 64;
inline constexpr std::size_t kResponseEnvelopeBytes = 32;
inline constexpr std::size_t kPingBytes = 16;

/// Envelope sizes for the flat binary codec (sorcer/codec.h) used on the
/// wire transport: the string envelope's fixed fields shrink to varint call
/// id + 16-byte reply uuid + interned signature id on the request, varint
/// call id + status code on the response. The kInProcess model keeps the
/// historical constants above so PR 2/3 byte accounting stays comparable.
inline constexpr std::size_t kFlatRequestEnvelopeBytes = 28;
inline constexpr std::size_t kFlatResponseEnvelopeBytes = 12;

/// Request body: the exertion rides by reference; `payload` is the
/// flat-codec encoding of its context (a pooled buffer — what the fabric's
/// payload_bytes charge is sized from). The provider decodes it into the
/// exertion's context before dispatch, which is the real marshalling work
/// a serialized transport would do.
struct Request {
  std::uint64_t call_id = 0;
  simnet::Address reply_to;
  ExertionPtr exertion;
  registry::Transaction* txn = nullptr;
  BufferPool::Handle payload;
  /// Loss recovery: the requestor failed to decode an earlier response
  /// (a definition-bearing message was dropped) — the provider must reset
  /// its response-intern table for reply_to before encoding.
  bool reset_reply_interning = false;
};

/// Response body. `transport_status` reports dispatch-layer failures only;
/// application failures travel inside the exertion itself. `payload` is the
/// flat-codec encoding of the post-dispatch context, decoded requestor-side
/// on gather.
struct Response {
  std::uint64_t call_id = 0;
  util::Status transport_status = util::Status::ok();
  BufferPool::Handle payload;
};
}  // namespace wire

struct InvokeConfig {
  Transport transport = Transport::kInProcess;
  /// Per-call deadline: how long (virtual time) a requestor pumps the fabric
  /// for a response before failing the call with kTimeout. Generous by
  /// default so a coordinated job's child round-trips fit inside the parent
  /// call; tests shrink it to observe deadline behaviour cheaply.
  util::SimDuration call_timeout = 2 * util::kSecond;
  /// Deadline for liveness pings (Rio monitor's provider health probes).
  util::SimDuration ping_timeout = 50 * util::kMillisecond;
};

/// One scattered invocation, owned by its issuer until gathered through
/// pump_until_all(). A call that never crossed the fabric — in-process
/// transport, wire-ineligible target, send failure — is born completed with
/// its result already in place. Move-only: the invoker keeps only the call
/// id in its pending set; the handle is the sole completion slot.
class PendingCall {
 public:
  PendingCall() = default;
  PendingCall(PendingCall&&) noexcept = default;
  PendingCall& operator=(PendingCall&&) noexcept = default;
  PendingCall(const PendingCall&) = delete;
  PendingCall& operator=(const PendingCall&) = delete;

  [[nodiscard]] bool completed() const { return completed_; }
  /// The invocation outcome; valid only once completed().
  [[nodiscard]] util::Result<ExertionPtr>& result() { return *result_; }
  [[nodiscard]] const ExertionPtr& exertion() const { return exertion_; }
  /// Virtual-time deadline of the in-flight call (0 once born completed).
  [[nodiscard]] util::SimTime deadline() const { return deadline_; }

 private:
  friend class RemoteInvoker;

  std::uint64_t call_id_ = 0;  // 0 = never crossed the fabric
  util::SimTime started_ = 0;
  util::SimTime deadline_ = 0;
  util::SimDuration accrued_before_ = 0;
  util::SimDuration elapsed_ = 0;
  ExertionPtr exertion_;
  std::string target_name_;
  obs::Span span_;
  bool completed_ = false;
  std::optional<util::Result<ExertionPtr>> result_;
};

/// Client half of the pipeline ("requestor proxy" in SORCER terms — the
/// dynamically downloaded service stub). One per deployment; the accessor
/// hands it to every call site. Wire mode is single-threaded by design: the
/// issuer of a batch pumps the virtual-time scheduler until every response
/// lands, and nested dispatches (a provider invoking downstream providers
/// mid-call) pump the same scheduler recursively on the same stack, exactly
/// like the fabric's event loop unwinding in time order. Pumping from a
/// second thread is a bug and is guarded against.
class RemoteInvoker {
 public:
  RemoteInvoker(simnet::Network& net, InvokeConfig config = {});
  ~RemoteInvoker();

  RemoteInvoker(const RemoteInvoker&) = delete;
  RemoteInvoker& operator=(const RemoteInvoker&) = delete;

  /// Invoke `servicer->service(exertion, txn)` through the configured
  /// transport. Wire-ineligible targets (not a ServiceProvider, or not
  /// attached to this invoker's fabric) fall back to the in-process path,
  /// so mixed deployments keep working. On deadline expiry the exertion is
  /// failed with kTimeout and returned (at-most-once semantics: the
  /// provider may still have executed; a late response is dropped).
  util::Result<ExertionPtr> invoke(const std::shared_ptr<Servicer>& servicer,
                                   const ExertionPtr& exertion,
                                   registry::Transaction* txn);

  /// Scatter half of invoke(): issue the request and return without
  /// waiting. The handle completes synchronously for anything that does not
  /// cross the fabric; otherwise gather it with pump_until_all(). Issuing N
  /// calls before gathering overlaps their round-trips on the fabric.
  PendingCall begin_invoke(const std::shared_ptr<Servicer>& servicer,
                           const ExertionPtr& exertion,
                           registry::Transaction* txn);

  /// Gather: step the scheduler once for *all* the given calls, completing
  /// each as its response lands or its deadline passes (timed-out ids leave
  /// the pending set, so their late responses are dropped and counted).
  /// Already-completed entries and nulls are skipped. Windows where the
  /// fabric has no event before the earliest deadline fast-forward straight
  /// to that deadline (invoke.idle_waits). Returns when every call is
  /// complete.
  void pump_until_all(std::span<PendingCall* const> calls);

  /// Liveness probe: round-trips a ping datagram to `target`. kTimeout when
  /// no pong arrives within the deadline (partitioned / detached / dead),
  /// kNotFound when the endpoint is not attached at all.
  util::Status ping(simnet::Address target, util::SimDuration timeout = 0);

  [[nodiscard]] Transport transport() const { return config_.transport; }
  void set_transport(Transport t) { config_.transport = t; }
  void set_call_timeout(util::SimDuration t) { config_.call_timeout = t; }
  [[nodiscard]] const InvokeConfig& config() const { return config_; }

  [[nodiscard]] simnet::Network& network() { return net_; }
  [[nodiscard]] simnet::Address address() const { return addr_; }

  /// Return a gathered call's shell for reuse: its string/span/result slots
  /// are cleared (capacity retained) and the next begin_invoke() recycles it
  /// instead of constructing fresh. Callers that batch (exert fan-out,
  /// invoke_servicer_all) recycle after harvesting outcomes.
  void recycle(PendingCall&& call);

  /// Per-peer codec state (intern tables + payload buffer pool); exposed so
  /// tests can observe intern warming and pool reuse.
  [[nodiscard]] const WireCodecState& codec_state() const { return codec_; }

 private:
  /// RAII nesting guard for scheduler pumping: nested frames on the pumping
  /// thread are legal (they ARE the event loop, recursing in time order);
  /// a pump from any other thread would interleave two event loops over one
  /// scheduler and is rejected.
  struct PumpGuard {
    explicit PumpGuard(RemoteInvoker& inv);
    ~PumpGuard();
    RemoteInvoker& inv;
  };
  friend struct PumpGuard;

  util::Result<ExertionPtr> invoke_in_process(
      ServiceProvider* provider, const std::shared_ptr<Servicer>& servicer,
      const ExertionPtr& exertion, registry::Transaction* txn);

  /// A response that landed but has not been gathered yet: the dispatch
  /// status, when it arrived (virtual time), its encoded context payload
  /// and the provider endpoint that sent it (selects the decode table).
  struct Arrival {
    util::Status status;
    util::SimTime at = 0;
    BufferPool::Handle payload;
    simnet::Address from;
  };

  /// Complete `call` from its arrived response (latency top-up from the
  /// response's arrival time, not the harvest time — an outer pump frame may
  /// gather it later; payload decoded into the exertion's context) or, when
  /// `arrival` is null, from deadline expiry.
  void finish_call(PendingCall& call, const Arrival* arrival);
  void on_message(const simnet::Message& msg);
  /// Pump the fabric until `call_id` completes or `deadline` passes.
  /// Returns true on completion.
  bool pump_until(std::uint64_t call_id, util::SimTime deadline);

  /// A recycled call shell, or a fresh one when the pool is dry.
  PendingCall acquire_call();

  simnet::Network& net_;
  InvokeConfig config_;
  simnet::Address addr_;
  std::uint64_t next_call_id_ = 1;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_map<std::uint64_t, Arrival> done_;
  WireCodecState codec_;
  // Providers whose response-intern stream we could not decode (a
  // definition-bearing response was lost): the next request to each carries
  // reset_reply_interning so the provider restarts its side.
  std::unordered_set<simnet::Address> reply_reset_;
  // In-process calls run invoke() concurrently from pool threads (the wire
  // path is scheduler-thread only), so the recycling pool takes a mutex.
  std::mutex call_pool_mu_;
  std::vector<PendingCall> call_pool_;
  int pump_depth_ = 0;
  std::thread::id pump_thread_{};
};

/// A bound stub: the pairing of a resolved Servicer proxy with the invoker
/// that reaches it. What the accessor's resolution hands back conceptually —
/// call sites that hold a provider across calls keep one of these instead
/// of re-deciding the transport each time.
class ServicerStub {
 public:
  ServicerStub(std::shared_ptr<Servicer> servicer, RemoteInvoker* invoker)
      : servicer_(std::move(servicer)), invoker_(invoker) {}

  util::Result<ExertionPtr> exert(const ExertionPtr& exertion,
                                  registry::Transaction* txn = nullptr);

  [[nodiscard]] const std::shared_ptr<Servicer>& servicer() const {
    return servicer_;
  }

 private:
  std::shared_ptr<Servicer> servicer_;
  RemoteInvoker* invoker_;  // null = plain direct call
};

/// The one call-site entry point: route `servicer->service(...)` through
/// `accessor`'s invoker (direct virtual call when none is wired).
util::Result<ExertionPtr> invoke_servicer(
    ServiceAccessor& accessor, const std::shared_ptr<Servicer>& servicer,
    const ExertionPtr& exertion, registry::Transaction* txn);

/// How a batch dispatch actually progressed — callers pick their latency
/// model from it. kWire means the round-trips overlapped on the fabric, so
/// the batch window already elapsed in virtual time (modeling serialized
/// per-call costs on top would double-count); kPooled means real threads
/// overlapped wall-clock work but virtual time stood still (the caller's
/// parallel model supplies the virtual cost); kSequence means the calls ran
/// one after another.
enum class FanOut { kSequence, kPooled, kWire };

/// Batch counterpart of invoke_servicer(): dispatch every (servicer,
/// exertion) pair and gather them all. Under wire transport the calls are
/// scattered through begin_invoke() and their round-trips overlap on the
/// fabric; in-process with a `pool` they fan out across its threads;
/// otherwise they run sequentially. Outcomes land on the exertions
/// themselves.
FanOut invoke_servicer_all(
    ServiceAccessor& accessor,
    const std::vector<std::pair<std::shared_ptr<Servicer>, ExertionPtr>>&
        calls,
    registry::Transaction* txn = nullptr, util::ThreadPool* pool = nullptr);

}  // namespace sensorcer::sorcer
