#include "sorcer/exert.h"

#include <future>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sorcer/invoke.h"
#include "sorcer/servicer.h"
#include "util/thread_pool.h"

namespace sensorcer::sorcer {

namespace {

struct ExertMetrics {
  obs::Counter& exertions;
  obs::Counter& failures;
  obs::Counter& substitutions;
};

ExertMetrics& exert_metrics() {
  static ExertMetrics m{obs::metrics().counter("sorcer.exertions"),
                        obs::metrics().counter("sorcer.exert_failures"),
                        obs::metrics().counter("sorcer.substitutions")};
  return m;
}

util::Result<ExertionPtr> exert_impl(const ExertionPtr& exertion,
                                     ServiceAccessor& accessor,
                                     registry::Transaction* txn) {
  if (exertion->kind() == Exertion::Kind::kTask) {
    auto task = std::static_pointer_cast<Task>(exertion);
    // Service substitution (§V.A): when a provider is unavailable — or,
    // under wire transport, unreachable within the call deadline — pass the
    // request on to an equivalent provider matching the same signature.
    // A pinned provider name means "this provider, exactly" — no
    // substitution (and the original error is preserved).
    const int kMaxAttempts = task->signature().provider_name.empty() ? 3 : 1;
    std::vector<registry::ServiceId> tried;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      auto resolved = accessor.resolve(task->signature(), tried);
      if (!resolved.is_ok()) {
        task->set_error(resolved.status());
        return util::Result<ExertionPtr>(exertion);
      }
      auto result =
          invoke_servicer(accessor, resolved.value().servicer, exertion, txn);
      const util::ErrorCode code = task->error().code();
      // An intern-stream desync is repaired by the failure itself (the
      // invoker resets the stream when it processes the error), so the
      // retry goes back to the SAME provider rather than excluding it.
      const bool desync = code == util::ErrorCode::kCodecDesync;
      const bool substitutable =
          task->status() == ExertStatus::kFailed &&
          (code == util::ErrorCode::kUnavailable ||
           code == util::ErrorCode::kTimeout || desync);
      if (!substitutable || attempt + 1 == kMaxAttempts) {
        return result;
      }
      exert_metrics().substitutions.add(1);
      if (!desync) tried.push_back(resolved.value().id);
      task->reset();
    }
    return util::Result<ExertionPtr>(exertion);  // unreachable
  }

  auto job = std::static_pointer_cast<Job>(exertion);
  const char* rendezvous_type = job->strategy().access == Access::kPull
                                    ? type::kSpacer
                                    : type::kJobber;
  auto rendezvous = accessor.find_servicer(
      Signature{rendezvous_type, "service", ""});
  if (!rendezvous.is_ok()) {
    job->set_error({util::ErrorCode::kNotFound,
                    std::string("no rendezvous peer of type ") +
                        rendezvous_type + " on the network"});
    return util::Result<ExertionPtr>(exertion);
  }
  return invoke_servicer(accessor, rendezvous.value(), exertion, txn);
}

/// One scatter-gather flight: exert()'s routing + substitution state
/// machine, advanced as its wire calls complete instead of blocking on
/// each. The flight's span plays exert()'s span; its `tried` list and
/// attempt budget reproduce the exclusion-retry loop.
struct Flight {
  ExertionPtr exertion;
  obs::Span span;
  PendingCall call;
  std::vector<registry::ServiceId> tried;
  registry::ServiceId last_provider{};
  int attempts = 0;
  int max_attempts = 1;
  bool finished = false;
  bool result_ok = true;
};

/// Resolve the flight's next target and scatter its request. Routing
/// failure (no matching provider / no rendezvous peer) finishes the flight
/// with the error on the exertion, mirroring exert_impl().
void launch_flight(Flight& f, ServiceAccessor& accessor,
                   registry::Transaction* txn) {
  RemoteInvoker* invoker = accessor.invoker();
  obs::ContextGuard guard(f.span.context());
  if (f.exertion->kind() == Exertion::Kind::kTask) {
    auto task = std::static_pointer_cast<Task>(f.exertion);
    auto resolved = accessor.resolve(task->signature(), f.tried);
    if (!resolved.is_ok()) {
      task->set_error(resolved.status());
      f.finished = true;
      return;
    }
    f.last_provider = resolved.value().id;
    ++f.attempts;
    f.call = invoker->begin_invoke(resolved.value().servicer, f.exertion, txn);
    return;
  }
  auto job = std::static_pointer_cast<Job>(f.exertion);
  const char* rendezvous_type = job->strategy().access == Access::kPull
                                    ? type::kSpacer
                                    : type::kJobber;
  auto rendezvous =
      accessor.find_servicer(Signature{rendezvous_type, "service", ""});
  if (!rendezvous.is_ok()) {
    job->set_error({util::ErrorCode::kNotFound,
                    std::string("no rendezvous peer of type ") +
                        rendezvous_type + " on the network"});
    f.finished = true;
    return;
  }
  ++f.attempts;
  f.call = invoker->begin_invoke(rendezvous.value(), f.exertion, txn);
}

/// Consume the flight's completed call: either the flight is done, or the
/// task is substitutable (kUnavailable/kTimeout, attempts left) and is
/// re-resolved with exclusion and re-scattered while sibling flights keep
/// flying.
void settle_flight(Flight& f, ServiceAccessor& accessor,
                   registry::Transaction* txn) {
  f.result_ok = f.call.result().is_ok();
  if (f.exertion->kind() == Exertion::Kind::kTask) {
    auto task = std::static_pointer_cast<Task>(f.exertion);
    const util::ErrorCode code = task->error().code();
    // A desync retry goes back to the same provider (the failed call
    // already reset the intern stream) instead of excluding it.
    const bool desync = code == util::ErrorCode::kCodecDesync;
    const bool substitutable =
        task->status() == ExertStatus::kFailed &&
        (code == util::ErrorCode::kUnavailable ||
         code == util::ErrorCode::kTimeout || desync);
    if (substitutable && f.attempts < f.max_attempts) {
      exert_metrics().substitutions.add(1);
      if (!desync) f.tried.push_back(f.last_provider);
      task->reset();
      launch_flight(f, accessor, txn);
      return;
    }
  }
  f.finished = true;
}

FanOut exert_all_wire(const std::vector<ExertionPtr>& batch,
                      ServiceAccessor& accessor, registry::Transaction* txn) {
  RemoteInvoker* invoker = accessor.invoker();
  std::vector<Flight> flights;
  flights.reserve(batch.size());
  for (const auto& exertion : batch) {
    Flight f;
    f.exertion = exertion;
    if (!exertion) {
      f.finished = true;
      f.result_ok = false;
      flights.push_back(std::move(f));
      continue;
    }
    exert_metrics().exertions.add(1);
    obs::TraceContext parent = exertion->trace_context().valid()
                                   ? exertion->trace_context()
                                   : obs::current_context();
    f.span = obs::tracer().start_span("exert:" + exertion->name(), parent);
    exertion->set_trace_context(f.span.context());
    if (exertion->kind() == Exertion::Kind::kTask) {
      auto task = std::static_pointer_cast<Task>(exertion);
      f.max_attempts = task->signature().provider_name.empty() ? 3 : 1;
    }
    launch_flight(f, accessor, txn);
    flights.push_back(std::move(f));
  }

  for (;;) {
    // Advance every flight whose current call has completed (synchronously
    // in begin_invoke, or during an earlier pump) — a settle may re-scatter
    // a substituted attempt — then gather all still-open calls with one
    // shared pump so their round-trips overlap.
    std::vector<PendingCall*> open;
    for (Flight& f : flights) {
      while (!f.finished && f.call.completed()) {
        settle_flight(f, accessor, txn);
      }
      if (!f.finished) open.push_back(&f.call);
    }
    if (open.empty()) break;
    invoker->pump_until_all(open);
  }

  for (Flight& f : flights) {
    if (!f.exertion) continue;
    const bool failed =
        !f.result_ok || f.exertion->status() == ExertStatus::kFailed;
    if (failed) exert_metrics().failures.add(1);
    f.span.set_ok(!failed);
    f.span.finish();
    // Outcomes live on the exertions; the call shell goes back to the pool.
    invoker->recycle(std::move(f.call));
  }
  return FanOut::kWire;
}

}  // namespace

util::Result<ExertionPtr> exert(const ExertionPtr& exertion,
                                ServiceAccessor& accessor,
                                registry::Transaction* txn) {
  if (!exertion) {
    return util::Status{util::ErrorCode::kInvalidArgument, "null exertion"};
  }
  exert_metrics().exertions.add(1);

  // Parent preference: a context stamped on the exertion by its submitter
  // (survives cross-thread dispatch) wins over the caller's thread-current
  // one. The span we open becomes the context the whole subtree runs under.
  obs::TraceContext parent = exertion->trace_context().valid()
                                 ? exertion->trace_context()
                                 : obs::current_context();
  obs::Span span =
      obs::tracer().start_span("exert:" + exertion->name(), parent);
  exertion->set_trace_context(span.context());
  obs::ContextGuard guard(span.context());

  auto result = exert_impl(exertion, accessor, txn);
  const bool failed =
      !result.is_ok() || exertion->status() == ExertStatus::kFailed;
  if (failed) exert_metrics().failures.add(1);
  span.set_ok(!failed);
  return result;
}

FanOut exert_all(const std::vector<ExertionPtr>& batch,
                 ServiceAccessor& accessor, registry::Transaction* txn,
                 util::ThreadPool* pool) {
  if (batch.empty()) return FanOut::kSequence;
  // Under wire transport, concurrency comes from the fabric: scatter all
  // the requests, gather with one shared pump. Threads would only serialize
  // behind the single virtual-time scheduler.
  if (accessor.wire_transport()) return exert_all_wire(batch, accessor, txn);
  if (pool != nullptr && batch.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(batch.size());
    for (const auto& exertion : batch) {
      futures.push_back(pool->submit(
          [&accessor, exertion, txn] { (void)exert(exertion, accessor, txn); }));
    }
    for (auto& f : futures) f.get();
    return FanOut::kPooled;
  }
  for (const auto& exertion : batch) (void)exert(exertion, accessor, txn);
  return FanOut::kSequence;
}

}  // namespace sensorcer::sorcer
