#include "sorcer/exert.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sorcer/invoke.h"
#include "sorcer/servicer.h"

namespace sensorcer::sorcer {

namespace {

struct ExertMetrics {
  obs::Counter& exertions;
  obs::Counter& failures;
  obs::Counter& substitutions;
};

ExertMetrics& exert_metrics() {
  static ExertMetrics m{obs::metrics().counter("sorcer.exertions"),
                        obs::metrics().counter("sorcer.exert_failures"),
                        obs::metrics().counter("sorcer.substitutions")};
  return m;
}

util::Result<ExertionPtr> exert_impl(const ExertionPtr& exertion,
                                     ServiceAccessor& accessor,
                                     registry::Transaction* txn) {
  if (exertion->kind() == Exertion::Kind::kTask) {
    auto task = std::static_pointer_cast<Task>(exertion);
    // Service substitution (§V.A): when a provider is unavailable — or,
    // under wire transport, unreachable within the call deadline — pass the
    // request on to an equivalent provider matching the same signature.
    // A pinned provider name means "this provider, exactly" — no
    // substitution (and the original error is preserved).
    const int kMaxAttempts = task->signature().provider_name.empty() ? 3 : 1;
    std::vector<registry::ServiceId> tried;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      auto resolved = accessor.resolve(task->signature(), tried);
      if (!resolved.is_ok()) {
        task->set_error(resolved.status());
        return util::Result<ExertionPtr>(exertion);
      }
      auto result =
          invoke_servicer(accessor, resolved.value().servicer, exertion, txn);
      const bool substitutable =
          task->status() == ExertStatus::kFailed &&
          (task->error().code() == util::ErrorCode::kUnavailable ||
           task->error().code() == util::ErrorCode::kTimeout);
      if (!substitutable || attempt + 1 == kMaxAttempts) {
        return result;
      }
      exert_metrics().substitutions.add(1);
      tried.push_back(resolved.value().id);
      task->reset();
    }
    return util::Result<ExertionPtr>(exertion);  // unreachable
  }

  auto job = std::static_pointer_cast<Job>(exertion);
  const char* rendezvous_type = job->strategy().access == Access::kPull
                                    ? type::kSpacer
                                    : type::kJobber;
  auto rendezvous = accessor.find_servicer(
      Signature{rendezvous_type, "service", ""});
  if (!rendezvous.is_ok()) {
    job->set_error({util::ErrorCode::kNotFound,
                    std::string("no rendezvous peer of type ") +
                        rendezvous_type + " on the network"});
    return util::Result<ExertionPtr>(exertion);
  }
  return invoke_servicer(accessor, rendezvous.value(), exertion, txn);
}

}  // namespace

util::Result<ExertionPtr> exert(const ExertionPtr& exertion,
                                ServiceAccessor& accessor,
                                registry::Transaction* txn) {
  if (!exertion) {
    return util::Status{util::ErrorCode::kInvalidArgument, "null exertion"};
  }
  exert_metrics().exertions.add(1);

  // Parent preference: a context stamped on the exertion by its submitter
  // (survives cross-thread dispatch) wins over the caller's thread-current
  // one. The span we open becomes the context the whole subtree runs under.
  obs::TraceContext parent = exertion->trace_context().valid()
                                 ? exertion->trace_context()
                                 : obs::current_context();
  obs::Span span =
      obs::tracer().start_span("exert:" + exertion->name(), parent);
  exertion->set_trace_context(span.context());
  obs::ContextGuard guard(span.context());

  auto result = exert_impl(exertion, accessor, txn);
  const bool failed =
      !result.is_ok() || exertion->status() == ExertStatus::kFailed;
  if (failed) exert_metrics().failures.add(1);
  span.set_ok(!failed);
  return result;
}

}  // namespace sensorcer::sorcer
