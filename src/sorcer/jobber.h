#pragma once
// Jobber — the PUSH rendezvous peer. Coordinates job exertions: binds each
// child to a provider through the service accessor and drives the job's
// control strategy (sequential or parallel flow).
//
// Latency model: a job's virtual latency is the sum of child latencies under
// kSequence and the max under kParallel (plus a fixed per-child coordination
// overhead). Under kParallel the real invocations also run concurrently:
// in-process across the worker pool (providers serialize their own
// invocations), under wire transport as one scatter-gather batch whose
// round-trips overlap on the fabric — concurrency comes from the messaging
// layer there, not from threads.

#include <memory>

#include "sorcer/accessor.h"
#include "sorcer/provider.h"
#include "util/thread_pool.h"

namespace sensorcer::sorcer {

class Jobber : public ServiceProvider {
 public:
  /// `pool` may be null: parallel flow then executes inline but still uses
  /// the parallel (max) latency model.
  Jobber(std::string name, ServiceAccessor& accessor,
         util::ThreadPool* pool = nullptr);

  util::Result<ExertionPtr> service(ExertionPtr exertion,
                                    registry::Transaction* txn) override;

  /// Fixed coordination overhead charged per child exertion.
  static constexpr util::SimDuration kDispatchOverhead =
      200 * util::kMicrosecond;

  [[nodiscard]] std::uint64_t jobs_coordinated() const { return jobs_; }

 private:
  util::Result<ExertionPtr> run_child(const ExertionPtr& child,
                                      registry::Transaction* txn);
  void run_sequence(Job& job, registry::Transaction* txn);
  void run_parallel(Job& job, registry::Transaction* txn);

  ServiceAccessor& accessor_;
  util::ThreadPool* pool_;
  std::uint64_t jobs_ = 0;
};

}  // namespace sensorcer::sorcer
