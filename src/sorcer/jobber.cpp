#include "sorcer/jobber.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sorcer/exert.h"

namespace sensorcer::sorcer {

namespace {

struct JobMetrics {
  obs::Counter& jobs;
  obs::Histogram& latency;
};

JobMetrics& jobber_metrics() {
  static JobMetrics m{obs::metrics().counter("sorcer.jobber.jobs"),
                      obs::metrics().histogram("sorcer.job.latency_us")};
  return m;
}

}  // namespace

Jobber::Jobber(std::string name, ServiceAccessor& accessor,
               util::ThreadPool* pool)
    : ServiceProvider(std::move(name), {type::kJobber}),
      accessor_(accessor),
      pool_(pool) {}

util::Result<ExertionPtr> Jobber::service(ExertionPtr exertion,
                                          registry::Transaction* txn) {
  if (!exertion) {
    return util::Status{util::ErrorCode::kInvalidArgument, "null exertion"};
  }
  if (exertion->kind() == Exertion::Kind::kTask) {
    // A task addressed to the jobber itself executes here (base task path);
    // any other stray task is routed on through the federation.
    auto task = std::static_pointer_cast<Task>(exertion);
    const auto& types = this->types();
    if (std::find(types.begin(), types.end(),
                  task->signature().service_type) != types.end()) {
      return ServiceProvider::service(exertion, txn);
    }
    return run_child(exertion, txn);
  }

  auto job = std::static_pointer_cast<Job>(exertion);
  job->set_status(ExertStatus::kRunning);
  ++jobs_;
  jobber_metrics().jobs.add(1);

  // Stamp children with the job's trace context before dispatch: parallel
  // flow hands them to pool workers, where thread-local context is useless.
  for (const auto& child : job->children()) {
    if (!child->trace_context().valid()) {
      child->set_trace_context(job->trace_context());
    }
  }

  if (job->strategy().flow == Flow::kParallel) {
    run_parallel(*job, txn);
  } else {
    run_sequence(*job, txn);
  }
  job->add_trace(provider_name());
  jobber_metrics().latency.observe(static_cast<double>(job->latency()));

  if (job->status() != ExertStatus::kFailed) {
    // Surface child outputs in the job context so the requestor reads one
    // context: child paths are merged under "<child-name>/".
    for (const auto& child : job->children()) {
      for (const auto& path : child->context().paths()) {
        auto v = child->context().get(path);
        if (v.is_ok()) {
          job->context().put(child->name() + "/" + path,
                             std::move(v).value());
        }
      }
    }
    job->set_status(ExertStatus::kDone);
  }
  return exertion;
}

util::Result<ExertionPtr> Jobber::run_child(const ExertionPtr& child,
                                            registry::Transaction* txn) {
  // Both kinds re-enter the federation through exert(): tasks get service
  // substitution on provider unavailability; nested jobs route to a
  // rendezvous peer appropriate to their own access strategy.
  return exert(child, accessor_, txn);
}

void Jobber::run_sequence(Job& job, registry::Transaction* txn) {
  util::SimDuration total = 0;
  for (const auto& child : job.children()) {
    (void)run_child(child, txn);
    total += child->latency() + kDispatchOverhead;
    if (child->status() == ExertStatus::kFailed) {
      if (job.strategy().fail_fast) {
        job.set_error({util::ErrorCode::kAborted,
                       "child '" + child->name() +
                           "' failed: " + child->error().message()});
        break;
      }
    }
  }
  job.add_latency(total);
  if (job.status() != ExertStatus::kFailed && !job.strategy().fail_fast) {
    // Lenient mode: the job fails only if *every* child failed.
    const bool any_ok = std::any_of(
        job.children().begin(), job.children().end(),
        [](const auto& c) { return c->status() == ExertStatus::kDone; });
    if (!any_ok && !job.children().empty()) {
      job.set_error({util::ErrorCode::kAborted, "all children failed"});
    }
  }
}

void Jobber::run_parallel(Job& job, registry::Transaction* txn) {
  const auto& children = job.children();

  // One scatter-gather batch through the invocation pipeline: under wire
  // transport the children are all scattered onto the fabric and gathered
  // with one shared pump, so their round-trips overlap in virtual time;
  // in-process they fan out across the worker pool. Each child keeps
  // exert()'s full routing and substitution-retry semantics.
  const FanOut fan_out = exert_all(children, accessor_, txn, pool_);

  // Parallel latency model: all children progress together, so the job pays
  // the slowest child plus dispatch overhead.
  util::SimDuration slowest = 0;
  for (const auto& child : children) {
    slowest = std::max(slowest, child->latency());
  }
  if (fan_out == FanOut::kWire) {
    // The fabric already charged the overlapped batch window in virtual
    // time (each child's latency carries its own round-trip); the job adds
    // one batch-dispatch overhead, not one per child — per-child costs on
    // top of measured fabric time would double-count the fan-out.
    job.add_latency(slowest + kDispatchOverhead);
  } else {
    job.add_latency(slowest +
                    static_cast<util::SimDuration>(children.size()) *
                        kDispatchOverhead);
  }

  for (const auto& child : children) {
    if (child->status() == ExertStatus::kFailed && job.strategy().fail_fast) {
      job.set_error({util::ErrorCode::kAborted,
                     "child '" + child->name() +
                         "' failed: " + child->error().message()});
      return;
    }
  }
}

}  // namespace sensorcer::sorcer
