#pragma once
// ServiceProvider — base class for every SORCER peer in the framework.
//
// A provider owns a map of operations (selector → function over the service
// context, with a modeled service time), registers itself with lookup
// services under its interface names, keeps its registrations alive through
// a LeaseRenewalManager, and executes task exertions whose signature it
// matches. Invocation is serialized per provider so the Jobber's parallel
// flow can safely fan out across providers on real threads.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "registry/lease_renewal.h"
#include "registry/lookup.h"
#include "simnet/network.h"
#include "sorcer/servicer.h"

namespace sensorcer::sorcer {

struct WireCodecState;

/// A provider operation: transforms the exertion's service context.
using Operation = std::function<util::Status(ServiceContext&)>;

class ServiceProvider : public Servicer,
                        public std::enable_shared_from_this<ServiceProvider> {
 public:
  /// `types` are the domain interface names this provider exports in
  /// addition to "Servicer".
  ServiceProvider(std::string name, std::vector<std::string> types);

  ~ServiceProvider() override;

  // --- configuration --------------------------------------------------------

  /// Register an operation. `service_time` is the modeled execution latency
  /// charged to exertions (virtual time).
  void add_operation(const std::string& selector, Operation op,
                     util::SimDuration service_time = util::kMillisecond);

  /// Complementary attributes published at registration (name and type
  /// attributes are added automatically).
  void set_attributes(registry::Entry attributes);

  /// Put this provider on the fabric: attaches an endpoint whose handler
  /// dispatches invoke.request messages through service() and answers with
  /// invoke.response (plus invoke.ping → invoke.pong liveness probes). Also
  /// enables byte accounting for in-process invocations routed through the
  /// invocation pipeline. Re-attaching moves the endpoint; the destructor
  /// detaches it.
  void attach_network(simnet::Network& net);

  [[nodiscard]] simnet::Network* network() const { return net_; }
  [[nodiscard]] simnet::Address network_address() const { return net_addr_; }

  // --- join/leave protocol --------------------------------------------------

  /// Register with `lus` for `lease_duration`, auto-renewing via `lrm`.
  /// May be called for several lookup services.
  util::Status join(const std::shared_ptr<registry::LookupService>& lus,
                    registry::LeaseRenewalManager& lrm,
                    util::SimDuration lease_duration);

  /// Cancel every registration (clean departure).
  void leave();

  /// Stop renewing but do not cancel: simulates a crashed provider whose
  /// registrations linger until their leases expire (§IV.B). Subclasses
  /// with autonomous activity (sampling timers, push feeders) stop it via
  /// the on_crashed() hook — a crashed process does no further work.
  void crash();

  /// True once crash() ran (the provider is a zombie awaiting lease lapse).
  [[nodiscard]] bool crashed() const { return crashed_; }

  [[nodiscard]] bool is_joined() const { return !joined_.empty(); }

  // --- Servicer ---------------------------------------------------------------

  util::Result<ExertionPtr> service(ExertionPtr exertion,
                                    registry::Transaction* txn) override;

  [[nodiscard]] const std::string& provider_name() const override {
    return name_;
  }

  // --- introspection ----------------------------------------------------------

  [[nodiscard]] const registry::ServiceId& service_id() const { return id_; }
  [[nodiscard]] const std::vector<std::string>& types() const { return types_; }
  [[nodiscard]] const registry::Entry& attributes() const { return attributes_; }
  [[nodiscard]] bool has_operation(const std::string& selector) const {
    return operations_.contains(selector);
  }
  [[nodiscard]] std::uint64_t invocation_count() const { return invocations_; }

  /// The ServiceItem this provider registers (useful for direct LUS tests).
  [[nodiscard]] registry::ServiceItem service_item();

  /// Failover hand-off: a replacement provider adopts whatever state of
  /// `predecessor` survives its crash (e.g. an ESP's DataLog, which then
  /// backfills the historian). Default: nothing carries over.
  virtual void assume_state_from(ServiceProvider& predecessor) {
    (void)predecessor;
  }

 protected:
  /// Per-provider invocation lock; subclasses coordinating their own state
  /// with operations may lock it too. Recursive because an operation that
  /// pumps the virtual-time scheduler (a composite's wire fan-out waiting on
  /// components) can have a queued request for this same provider dispatched
  /// on its own stack — that nested dispatch must not self-deadlock.
  std::recursive_mutex& invoke_mutex() { return mu_; }

  /// Called once from crash(): stop autonomous activity (timers, feeders).
  /// A crashed provider's registrations linger until the leases lapse, but
  /// the process behind them is gone — it must not keep sampling or pushing.
  virtual void on_crashed() {}

  /// Extra modeled latency charged to a task after `selector` ran, on top of
  /// the operation's static service time. Composite providers override this
  /// to surface the latency of the federated collection their operation
  /// triggered.
  virtual util::SimDuration extra_invocation_latency(
      const std::string& selector) const {
    (void)selector;
    return 0;
  }

 private:
  /// Endpoint handler installed by attach_network: executes wire requests
  /// and answers liveness pings.
  void handle_network_message(const simnet::Message& msg);

  struct OpRecord {
    Operation fn;
    util::SimDuration service_time;
  };
  struct Joined {
    std::weak_ptr<registry::LookupService> lus;
    registry::LeaseRenewalManager* lrm;
    util::Uuid lease_id;
  };

  std::string name_;
  registry::ServiceId id_;
  std::vector<std::string> types_;
  registry::Entry attributes_;
  std::map<std::string, OpRecord> operations_;
  std::vector<Joined> joined_;
  bool crashed_ = false;
  std::recursive_mutex mu_;
  std::uint64_t invocations_ = 0;
  simnet::Network* net_ = nullptr;
  simnet::Address net_addr_;
  /// Wire-path codec state: per-requestor intern tables plus the response
  /// payload buffer pool. Allocated on first fabric attachment.
  std::unique_ptr<WireCodecState> codec_;
};

/// Domain task peer: a plain ServiceProvider exporting the "Tasker" type.
/// Benches and tests install compute operations on it.
class Tasker final : public ServiceProvider {
 public:
  explicit Tasker(std::string name, std::vector<std::string> extra_types = {});
};

}  // namespace sensorcer::sorcer
