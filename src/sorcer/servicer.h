#pragma once
// The top-level Servicer interface: "all service providers in EOA implement
// service(Exertion, Transaction)" (§IV.D). Operations in a provider's
// domain interface are invoked only indirectly, through an exertion handed
// to this single entry point.

#include <memory>
#include <string>

#include "registry/service_item.h"
#include "registry/transaction.h"
#include "sorcer/exertion.h"

namespace sensorcer::sorcer {

class Servicer : public registry::ServiceProxy {
 public:
  /// Execute (or coordinate) `exertion`, optionally inside `txn`.
  /// The returned exertion is the same object, with its status, context,
  /// latency account and trace updated — "all results of the execution can
  /// be found in the returned exertion's service contexts".
  virtual util::Result<ExertionPtr> service(ExertionPtr exertion,
                                            registry::Transaction* txn) = 0;

  [[nodiscard]] virtual const std::string& provider_name() const = 0;
};

/// Interface-name constants used in signatures and lookup templates.
namespace type {
inline constexpr const char* kServicer = "Servicer";
inline constexpr const char* kTasker = "Tasker";
inline constexpr const char* kJobber = "Jobber";
inline constexpr const char* kSpacer = "Spacer";
/// A relay stage of a streaming dataflow (flow/): receives batched reading
/// frames push-style and runs the flow's operators over them.
inline constexpr const char* kFlowOperator = "FlowOperator";
}  // namespace type

/// Framework-level operation selectors. Domain selectors live with their
/// subsystems (core::op); pushFrame is generic — the one streaming-push
/// entry every frame-consuming servicer exports.
namespace op {
inline constexpr const char* kPushFrame = "pushFrame";
}  // namespace op

}  // namespace sensorcer::sorcer
