#include "sorcer/exertion.h"

namespace sensorcer::sorcer {

const char* exert_status_name(ExertStatus status) {
  switch (status) {
    case ExertStatus::kInitial: return "INITIAL";
    case ExertStatus::kRunning: return "RUNNING";
    case ExertStatus::kDone: return "DONE";
    case ExertStatus::kFailed: return "FAILED";
  }
  return "?";
}

}  // namespace sensorcer::sorcer
