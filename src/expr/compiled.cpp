#include "expr/compiled.h"

#include <cmath>
#include <limits>

#include "util/strings.h"

namespace sensorcer::expr {
namespace {

/// Expressions deeper than this fall back to a heap-allocated value stack;
/// everything a composite realistically evaluates fits the inline buffer.
constexpr std::size_t kInlineStack = 64;

OpCode binary_opcode(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return OpCode::kAdd;
    case BinaryOp::kSub: return OpCode::kSub;
    case BinaryOp::kMul: return OpCode::kMul;
    case BinaryOp::kDiv: return OpCode::kDiv;
    case BinaryOp::kMod: return OpCode::kMod;
    case BinaryOp::kPow: return OpCode::kPow;
    case BinaryOp::kLess: return OpCode::kLess;
    case BinaryOp::kLessEq: return OpCode::kLessEq;
    case BinaryOp::kGreater: return OpCode::kGreater;
    case BinaryOp::kGreaterEq: return OpCode::kGreaterEq;
    case BinaryOp::kEq: return OpCode::kEq;
    case BinaryOp::kNotEq: return OpCode::kNotEq;
    case BinaryOp::kAnd:
    case BinaryOp::kOr: break;  // lowered to probe + jump, never mapped
  }
  return OpCode::kAdd;  // unreachable
}

/// One-pass AST → postfix lowering with stack-depth accounting.
class Lowering {
 public:
  explicit Lowering(std::span<const std::string> slots) : slots_(slots) {}

  util::Status lower(const Node& node) {
    switch (node.kind) {
      case NodeKind::kNumber: {
        Instr in{OpCode::kConst};
        in.value = node.number;
        emit(in, +1);
        return util::Status::ok();
      }
      case NodeKind::kVariable: {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
          if (slots_[i] == node.name) {
            Instr in{OpCode::kLoad};
            in.target = static_cast<std::int32_t>(i);
            emit(in, +1);
            return util::Status::ok();
          }
        }
        return {util::ErrorCode::kNotFound,
                util::format("unbound variable '%s'", node.name.c_str())};
      }
      case NodeKind::kUnary: {
        if (auto s = lower(*node.children[0]); !s.is_ok()) return s;
        emit(Instr{node.unary_op == UnaryOp::kNegate ? OpCode::kNegate
                                                     : OpCode::kNot},
             0);
        return util::Status::ok();
      }
      case NodeKind::kBinary: {
        if (node.binary_op == BinaryOp::kAnd ||
            node.binary_op == BinaryOp::kOr) {
          if (auto s = lower(*node.children[0]); !s.is_ok()) return s;
          const std::size_t probe =
              emit(Instr{node.binary_op == BinaryOp::kAnd ? OpCode::kAndProbe
                                                          : OpCode::kOrProbe},
                   -1);
          if (auto s = lower(*node.children[1]); !s.is_ok()) return s;
          emit(Instr{OpCode::kToBool}, 0);
          patch(probe);
          return util::Status::ok();
        }
        if (auto s = lower(*node.children[0]); !s.is_ok()) return s;
        if (auto s = lower(*node.children[1]); !s.is_ok()) return s;
        emit(Instr{binary_opcode(node.binary_op)}, -1);
        return util::Status::ok();
      }
      case NodeKind::kCall: {
        const Builtin* fn = builtin_environment().lookup_func(node.name);
        if (fn == nullptr) {
          return {util::ErrorCode::kNotFound,
                  util::format("unknown function '%s'", node.name.c_str())};
        }
        if (node.children.size() >
            std::numeric_limits<std::uint16_t>::max()) {
          return {util::ErrorCode::kInvalidArgument,
                  "too many call arguments"};
        }
        for (const auto& arg : node.children) {
          if (auto s = lower(*arg); !s.is_ok()) return s;
        }
        Instr in{OpCode::kCall};
        in.argc = static_cast<std::uint16_t>(node.children.size());
        in.fn = fn;
        emit(in, 1 - static_cast<int>(node.children.size()));
        return util::Status::ok();
      }
      case NodeKind::kConditional: {
        if (auto s = lower(*node.children[0]); !s.is_ok()) return s;
        const std::size_t to_else = emit(Instr{OpCode::kJumpIfFalse}, -1);
        if (auto s = lower(*node.children[1]); !s.is_ok()) return s;
        const std::size_t to_end = emit(Instr{OpCode::kJump}, 0);
        patch(to_else);
        depth_ -= 1;  // the else branch starts where the then branch did
        if (auto s = lower(*node.children[2]); !s.is_ok()) return s;
        patch(to_end);
        return util::Status::ok();
      }
    }
    return {util::ErrorCode::kInternal, "unhandled node kind"};
  }

  [[nodiscard]] std::vector<Instr> take_code() { return std::move(code_); }
  [[nodiscard]] std::size_t max_depth() const {
    return static_cast<std::size_t>(max_depth_);
  }

 private:
  std::size_t emit(Instr in, int stack_delta) {
    code_.push_back(in);
    depth_ += stack_delta;
    max_depth_ = std::max(max_depth_, depth_);
    return code_.size() - 1;
  }

  void patch(std::size_t at) {
    code_[at].target = static_cast<std::int32_t>(code_.size());
  }

  std::span<const std::string> slots_;
  std::vector<Instr> code_;
  int depth_ = 0;
  int max_depth_ = 0;
};

}  // namespace

util::Result<CompiledProgram> bind(const Node& root,
                                   std::span<const std::string> slots) {
  Lowering lowering(slots);
  if (auto s = lowering.lower(root); !s.is_ok()) return s;
  CompiledProgram program;
  program.code_ = lowering.take_code();
  program.slot_count_ = slots.size();
  program.max_stack_ = lowering.max_depth();
  return program;
}

util::Result<double> CompiledProgram::evaluate(
    std::span<const double> slots) const {
  if (code_.empty()) {
    return util::Status{util::ErrorCode::kFailedPrecondition,
                        "evaluating an unbound program"};
  }
  if (slots.size() < slot_count_) {
    return util::Status{
        util::ErrorCode::kInvalidArgument,
        util::format("program binds %zu slot(s), got %zu value(s)",
                     slot_count_, slots.size())};
  }

  double inline_stack[kInlineStack];
  std::vector<double> heap_stack;
  double* stack = inline_stack;
  if (max_stack_ > kInlineStack) {
    heap_stack.resize(max_stack_);
    stack = heap_stack.data();
  }

  std::size_t sp = 0;
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const Instr& in = code_[pc];
    switch (in.op) {
      case OpCode::kConst:
        stack[sp++] = in.value;
        break;
      case OpCode::kLoad:
        stack[sp++] = slots[static_cast<std::size_t>(in.target)];
        break;
      case OpCode::kNegate:
        stack[sp - 1] = -stack[sp - 1];
        break;
      case OpCode::kNot:
        stack[sp - 1] = stack[sp - 1] == 0.0 ? 1.0 : 0.0;
        break;
      case OpCode::kAdd:
        --sp;
        stack[sp - 1] += stack[sp];
        break;
      case OpCode::kSub:
        --sp;
        stack[sp - 1] -= stack[sp];
        break;
      case OpCode::kMul:
        --sp;
        stack[sp - 1] *= stack[sp];
        break;
      case OpCode::kDiv:
        --sp;
        if (stack[sp] == 0.0) {
          return util::Status{util::ErrorCode::kInvalidArgument,
                              "division by zero"};
        }
        stack[sp - 1] /= stack[sp];
        break;
      case OpCode::kMod:
        --sp;
        if (stack[sp] == 0.0) {
          return util::Status{util::ErrorCode::kInvalidArgument,
                              "modulo by zero"};
        }
        stack[sp - 1] = std::fmod(stack[sp - 1], stack[sp]);
        break;
      case OpCode::kPow:
        --sp;
        stack[sp - 1] = std::pow(stack[sp - 1], stack[sp]);
        break;
      case OpCode::kLess:
        --sp;
        stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kLessEq:
        --sp;
        stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kGreater:
        --sp;
        stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kGreaterEq:
        --sp;
        stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kEq:
        --sp;
        stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kNotEq:
        --sp;
        stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kToBool:
        stack[sp - 1] = stack[sp - 1] != 0.0 ? 1.0 : 0.0;
        break;
      case OpCode::kAndProbe:
        if (stack[--sp] == 0.0) {
          stack[sp++] = 0.0;
          pc = static_cast<std::size_t>(in.target) - 1;
        }
        break;
      case OpCode::kOrProbe:
        if (stack[--sp] != 0.0) {
          stack[sp++] = 1.0;
          pc = static_cast<std::size_t>(in.target) - 1;
        }
        break;
      case OpCode::kJumpIfFalse:
        if (stack[--sp] == 0.0) {
          pc = static_cast<std::size_t>(in.target) - 1;
        }
        break;
      case OpCode::kJump:
        pc = static_cast<std::size_t>(in.target) - 1;
        break;
      case OpCode::kCall: {
        sp -= in.argc;
        auto r = (*in.fn)(std::span<const double>(stack + sp, in.argc));
        if (!r.is_ok()) return r.status();
        stack[sp++] = r.value();
        break;
      }
    }
  }
  return stack[0];
}

}  // namespace sensorcer::expr
