#include "expr/ast.h"

#include <cstdio>

namespace sensorcer::expr {

const char* binary_op_symbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kPow: return "^";
    case BinaryOp::kLess: return "<";
    case BinaryOp::kLessEq: return "<=";
    case BinaryOp::kGreater: return ">";
    case BinaryOp::kGreaterEq: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNotEq: return "!=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

NodePtr Node::make_number(double value) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kNumber;
  n->number = value;
  return n;
}

NodePtr Node::make_variable(std::string name) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kVariable;
  n->name = std::move(name);
  return n;
}

NodePtr Node::make_unary(UnaryOp op, NodePtr operand) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kUnary;
  n->unary_op = op;
  n->children.push_back(std::move(operand));
  return n;
}

NodePtr Node::make_binary(BinaryOp op, NodePtr lhs, NodePtr rhs) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kBinary;
  n->binary_op = op;
  n->children.push_back(std::move(lhs));
  n->children.push_back(std::move(rhs));
  return n;
}

NodePtr Node::make_call(std::string name, std::vector<NodePtr> args) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kCall;
  n->name = std::move(name);
  n->children = std::move(args);
  return n;
}

NodePtr Node::make_conditional(NodePtr cond, NodePtr then_e, NodePtr else_e) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kConditional;
  n->children.push_back(std::move(cond));
  n->children.push_back(std::move(then_e));
  n->children.push_back(std::move(else_e));
  return n;
}

std::string to_string(const Node& node) {
  switch (node.kind) {
    case NodeKind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%g", node.number);
      return buf;
    }
    case NodeKind::kVariable:
      return node.name;
    case NodeKind::kUnary:
      return std::string(node.unary_op == UnaryOp::kNegate ? "(-" : "(!") +
             to_string(*node.children[0]) + ")";
    case NodeKind::kBinary:
      return "(" + to_string(*node.children[0]) + " " +
             binary_op_symbol(node.binary_op) + " " +
             to_string(*node.children[1]) + ")";
    case NodeKind::kCall: {
      std::string out = node.name + "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out += ", ";
        out += to_string(*node.children[i]);
      }
      return out + ")";
    }
    case NodeKind::kConditional:
      return "(" + to_string(*node.children[0]) + " ? " +
             to_string(*node.children[1]) + " : " +
             to_string(*node.children[2]) + ")";
  }
  return "?";
}

namespace {
void collect_variables(const Node& node, std::set<std::string>& out) {
  if (node.kind == NodeKind::kVariable) out.insert(node.name);
  for (const auto& child : node.children) collect_variables(*child, out);
}
}  // namespace

std::set<std::string> variables(const Node& node) {
  std::set<std::string> out;
  collect_variables(node, out);
  return out;
}

std::size_t node_count(const Node& node) {
  std::size_t n = 1;
  for (const auto& child : node.children) n += node_count(*child);
  return n;
}

NodePtr clone(const Node& node) {
  auto n = std::make_unique<Node>();
  n->kind = node.kind;
  n->number = node.number;
  n->name = node.name;
  n->unary_op = node.unary_op;
  n->binary_op = node.binary_op;
  n->children.reserve(node.children.size());
  for (const auto& child : node.children) n->children.push_back(clone(*child));
  return n;
}

}  // namespace sensorcer::expr
