#pragma once
// AST for compute-expressions.

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace sensorcer::expr {

enum class NodeKind {
  kNumber,
  kVariable,
  kUnary,
  kBinary,
  kCall,
  kConditional,
};

enum class UnaryOp { kNegate, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod, kPow,
  kLess, kLessEq, kGreater, kGreaterEq, kEq, kNotEq,
  kAnd, kOr,
};

/// Operator spelling, e.g. "+" or "&&".
const char* binary_op_symbol(BinaryOp op);

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// A single AST node; the active fields depend on `kind`.
struct Node {
  NodeKind kind;

  double number = 0.0;                 // kNumber
  std::string name;                    // kVariable, kCall (function name)
  UnaryOp unary_op = UnaryOp::kNegate; // kUnary
  BinaryOp binary_op = BinaryOp::kAdd; // kBinary
  std::vector<NodePtr> children;       // operands / call args / cond-then-else

  static NodePtr make_number(double value);
  static NodePtr make_variable(std::string name);
  static NodePtr make_unary(UnaryOp op, NodePtr operand);
  static NodePtr make_binary(BinaryOp op, NodePtr lhs, NodePtr rhs);
  static NodePtr make_call(std::string name, std::vector<NodePtr> args);
  static NodePtr make_conditional(NodePtr cond, NodePtr then_e, NodePtr else_e);
};

/// Fully parenthesized canonical rendering (stable for tests / display).
std::string to_string(const Node& node);

/// Free variables referenced anywhere in the expression, sorted.
std::set<std::string> variables(const Node& node);

/// Deep copy.
NodePtr clone(const Node& node);

/// Total node count (complexity metric for folding tests and benches).
std::size_t node_count(const Node& node);

}  // namespace sensorcer::expr
