#pragma once
// Slot-compiled expressions — the hot read-path form of a compute-expression.
//
// bind() lowers an AST once into a flat postfix program: every variable is
// resolved to a slot index into a caller-supplied value span, every builtin
// call to a direct function pointer, and short-circuit operators and
// conditionals to explicit jumps. evaluate() is then a single loop over a
// contiguous instruction vector with a fixed-capacity value stack — no
// string hashing, no per-node recursion, and no environment allocation —
// which is what a composite provider runs on every sensor read.
//
// Name resolution failures (a variable outside the slot list, an unknown
// function) surface at bind time; data-dependent failures (division by
// zero, builtin domain errors) surface at evaluation time with exactly the
// same Status the tree-walking evaluator produces.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "expr/ast.h"
#include "expr/evaluator.h"
#include "util/status.h"

namespace sensorcer::expr {

enum class OpCode : std::uint8_t {
  kConst,        // push immediate
  kLoad,         // push slots[target]
  kNegate,       // unary -
  kNot,          // unary !
  kAdd, kSub, kMul, kDiv, kMod, kPow,
  kLess, kLessEq, kGreater, kGreaterEq, kEq, kNotEq,
  kToBool,       // top = (top != 0)
  kAndProbe,     // pop; if false push 0 and jump to target (short-circuit &&)
  kOrProbe,      // pop; if true push 1 and jump to target (short-circuit ||)
  kJumpIfFalse,  // pop; jump to target when false
  kJump,         // unconditional jump to target
  kCall,         // replace top argc values with fn(args)
};

/// One program step. `target` doubles as the slot index for kLoad and the
/// jump destination for the control opcodes.
struct Instr {
  OpCode op;
  std::uint16_t argc = 0;       // kCall
  std::int32_t target = 0;      // kLoad slot / jump destination
  double value = 0.0;           // kConst
  const Builtin* fn = nullptr;  // kCall
};

/// A bound, slot-indexed expression program. Cheap to copy, immutable after
/// bind, and safe to evaluate concurrently from many threads.
class CompiledProgram {
 public:
  CompiledProgram() = default;

  [[nodiscard]] bool is_valid() const { return !code_.empty(); }
  [[nodiscard]] std::size_t instruction_count() const { return code_.size(); }
  /// Number of slots the program reads; evaluate() requires at least this
  /// many values.
  [[nodiscard]] std::size_t slot_count() const { return slot_count_; }

  /// Run the program over `slots` (slots[i] is the value of the i-th bound
  /// variable name passed to bind()).
  [[nodiscard]] util::Result<double> evaluate(
      std::span<const double> slots) const;

 private:
  friend util::Result<CompiledProgram> bind(const Node& root,
                                            std::span<const std::string> slots);

  std::vector<Instr> code_;
  std::size_t slot_count_ = 0;
  std::size_t max_stack_ = 0;
};

/// Lower `root` into a CompiledProgram. `slots` lists the variable names in
/// slot order; a variable not in the list fails with kNotFound, as does a
/// call to a function outside the standard builtin library.
util::Result<CompiledProgram> bind(const Node& root,
                                   std::span<const std::string> slots);

}  // namespace sensorcer::expr
