#pragma once
// Evaluator for compute-expressions, plus the compiled Expression facade the
// rest of the framework uses.
//
// Variables are resolved through an Environment. Composite sensor providers
// bind variables a, b, c, ... to their child services' live values before
// each evaluation — this is the runtime "sensor computation" mechanism the
// paper delegates to Groovy.

#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>

#include "expr/ast.h"
#include "util/status.h"

namespace sensorcer::expr {

/// A builtin function: takes the evaluated argument values.
using Builtin = std::function<util::Result<double>(std::span<const double>)>;

/// Variable and function bindings.
class Environment {
 public:
  /// Starts with the standard builtin library (see builtins()).
  Environment();

  void set(const std::string& name, double value) { vars_[name] = value; }
  void unset(const std::string& name) { vars_.erase(name); }
  void clear_vars() { vars_.clear(); }
  [[nodiscard]] bool has(const std::string& name) const {
    return vars_.contains(name);
  }

  /// Register or replace a function.
  void define(const std::string& name, Builtin fn) {
    funcs_[name] = std::move(fn);
  }

  [[nodiscard]] util::Result<double> lookup_var(const std::string& name) const;
  [[nodiscard]] const Builtin* lookup_func(const std::string& name) const;

 private:
  std::map<std::string, double> vars_;
  std::map<std::string, Builtin> funcs_;
};

/// Names of the standard builtins: abs, sqrt, pow, exp, log, log10, sin,
/// cos, tan, floor, ceil, round, min, max, avg, sum, clamp, hypot.
std::span<const std::string_view> builtin_names();

/// The standard builtin library as one shared immutable environment.
/// Constant folding evaluates against it and slot binding resolves call
/// targets from it, so the function pointers stay valid for the life of
/// the process.
const Environment& builtin_environment();

/// Evaluate an AST against an environment.
util::Result<double> evaluate(const Node& node, const Environment& env);

/// Constant folding: collapse every subtree with no free variables into a
/// number, using `env` for builtin functions (variables in `env` are NOT
/// substituted — they stay dynamic). Subtrees whose evaluation would fail
/// (1/0, sqrt(-1)) are left unfolded so the error still surfaces at run
/// time. Composites fold their expression once at set_expression() time,
/// because they re-evaluate on every sensor read.
NodePtr fold_constants(const Node& node, const Environment& env);

class CompiledProgram;  // compiled.h — the slot-indexed hot-path form

/// A parsed, reusable expression. This is the type stored on composite
/// sensor providers.
class Expression {
 public:
  Expression() = default;

  /// Parse `source`; invalid input yields an error Result.
  static util::Result<Expression> compile(std::string_view source);

  [[nodiscard]] bool is_valid() const { return root_ != nullptr; }
  [[nodiscard]] const std::string& source() const { return source_; }

  /// Free variables, sorted (used by CSPs to check binding coverage).
  [[nodiscard]] std::set<std::string> variables() const;

  /// Evaluate against `env`; unbound variables produce kNotFound.
  [[nodiscard]] util::Result<double> evaluate(const Environment& env) const;

  /// Lower to a slot-indexed program (see compiled.h): variables resolve to
  /// indices into `slots`, builtin calls to direct function pointers. Done
  /// once at set-expression time so every read evaluates without name
  /// resolution. Fails with kNotFound on a variable outside `slots` or a
  /// call to an unknown function.
  [[nodiscard]] util::Result<CompiledProgram> bind(
      std::span<const std::string> slots) const;

  Expression(const Expression& other);
  Expression& operator=(const Expression& other);
  Expression(Expression&&) noexcept = default;
  Expression& operator=(Expression&&) noexcept = default;
  ~Expression() = default;

 private:
  Expression(NodePtr root, std::string source)
      : root_(std::move(root)), source_(std::move(source)) {}

  NodePtr root_;
  std::string source_;
};

}  // namespace sensorcer::expr
