#pragma once
// Hand-written lexer for the compute-expression language.

#include <string>
#include <string_view>
#include <vector>

#include "expr/token.h"
#include "util/status.h"

namespace sensorcer::expr {

/// Tokenize `source`. On success the final token is kEnd. A lexical error
/// (bad character, malformed number) is reported with its byte position.
util::Result<std::vector<Token>> tokenize(std::string_view source);

}  // namespace sensorcer::expr
