#include "expr/parser.h"

#include <vector>

#include "expr/lexer.h"
#include "util/strings.h"

namespace sensorcer::expr {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Result<NodePtr> run() {
    auto expr = conditional();
    if (!expr.is_ok()) return expr;
    if (peek().kind != TokenKind::kEnd) {
      return error(util::format("unexpected %s after expression",
                                token_kind_name(peek().kind)));
    }
    return expr;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  Token advance() { return tokens_[pos_++]; }
  bool match(TokenKind kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  util::Status error(std::string message) const {
    return {util::ErrorCode::kInvalidArgument,
            util::format("%s at position %zu", message.c_str(),
                         peek().position)};
  }

  util::Result<NodePtr> conditional() {
    auto cond = logical_or();
    if (!cond.is_ok()) return cond;
    if (!match(TokenKind::kQuestion)) return cond;
    auto then_e = conditional();
    if (!then_e.is_ok()) return then_e;
    if (!match(TokenKind::kColon)) return error("expected ':' in conditional");
    auto else_e = conditional();
    if (!else_e.is_ok()) return else_e;
    return Node::make_conditional(std::move(cond).value(),
                                  std::move(then_e).value(),
                                  std::move(else_e).value());
  }

  util::Result<NodePtr> logical_or() {
    auto lhs = logical_and();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (match(TokenKind::kOrOr)) {
      auto rhs = logical_and();
      if (!rhs.is_ok()) return rhs;
      node = Node::make_binary(BinaryOp::kOr, std::move(node),
                               std::move(rhs).value());
    }
    return node;
  }

  util::Result<NodePtr> logical_and() {
    auto lhs = equality();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (match(TokenKind::kAndAnd)) {
      auto rhs = equality();
      if (!rhs.is_ok()) return rhs;
      node = Node::make_binary(BinaryOp::kAnd, std::move(node),
                               std::move(rhs).value());
    }
    return node;
  }

  util::Result<NodePtr> equality() {
    auto lhs = relational();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (true) {
      BinaryOp op;
      if (match(TokenKind::kEqEq)) op = BinaryOp::kEq;
      else if (match(TokenKind::kBangEq)) op = BinaryOp::kNotEq;
      else return node;
      auto rhs = relational();
      if (!rhs.is_ok()) return rhs;
      node = Node::make_binary(op, std::move(node), std::move(rhs).value());
    }
  }

  util::Result<NodePtr> relational() {
    auto lhs = additive();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (true) {
      BinaryOp op;
      if (match(TokenKind::kLess)) op = BinaryOp::kLess;
      else if (match(TokenKind::kLessEq)) op = BinaryOp::kLessEq;
      else if (match(TokenKind::kGreater)) op = BinaryOp::kGreater;
      else if (match(TokenKind::kGreaterEq)) op = BinaryOp::kGreaterEq;
      else return node;
      auto rhs = additive();
      if (!rhs.is_ok()) return rhs;
      node = Node::make_binary(op, std::move(node), std::move(rhs).value());
    }
  }

  util::Result<NodePtr> additive() {
    auto lhs = multiplicative();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (true) {
      BinaryOp op;
      if (match(TokenKind::kPlus)) op = BinaryOp::kAdd;
      else if (match(TokenKind::kMinus)) op = BinaryOp::kSub;
      else return node;
      auto rhs = multiplicative();
      if (!rhs.is_ok()) return rhs;
      node = Node::make_binary(op, std::move(node), std::move(rhs).value());
    }
  }

  util::Result<NodePtr> multiplicative() {
    auto lhs = unary();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (true) {
      BinaryOp op;
      if (match(TokenKind::kStar)) op = BinaryOp::kMul;
      else if (match(TokenKind::kSlash)) op = BinaryOp::kDiv;
      else if (match(TokenKind::kPercent)) op = BinaryOp::kMod;
      else return node;
      auto rhs = unary();
      if (!rhs.is_ok()) return rhs;
      node = Node::make_binary(op, std::move(node), std::move(rhs).value());
    }
  }

  util::Result<NodePtr> unary() {
    if (match(TokenKind::kMinus)) {
      auto operand = unary();
      if (!operand.is_ok()) return operand;
      return Node::make_unary(UnaryOp::kNegate, std::move(operand).value());
    }
    if (match(TokenKind::kBang)) {
      auto operand = unary();
      if (!operand.is_ok()) return operand;
      return Node::make_unary(UnaryOp::kNot, std::move(operand).value());
    }
    return power();
  }

  util::Result<NodePtr> power() {
    auto base = primary();
    if (!base.is_ok()) return base;
    if (!match(TokenKind::kCaret)) return base;
    auto exponent = unary();  // right associative: 2^3^2 == 2^(3^2)
    if (!exponent.is_ok()) return exponent;
    return Node::make_binary(BinaryOp::kPow, std::move(base).value(),
                             std::move(exponent).value());
  }

  util::Result<NodePtr> primary() {
    if (peek().kind == TokenKind::kNumber) {
      return Node::make_number(advance().number);
    }
    if (peek().kind == TokenKind::kIdentifier) {
      Token name = advance();
      if (!match(TokenKind::kLParen)) {
        return Node::make_variable(std::move(name.text));
      }
      std::vector<NodePtr> args;
      if (!match(TokenKind::kRParen)) {
        while (true) {
          auto arg = conditional();
          if (!arg.is_ok()) return arg;
          args.push_back(std::move(arg).value());
          if (match(TokenKind::kComma)) continue;
          if (match(TokenKind::kRParen)) break;
          return error("expected ',' or ')' in argument list");
        }
      }
      return Node::make_call(std::move(name.text), std::move(args));
    }
    if (match(TokenKind::kLParen)) {
      auto inner = conditional();
      if (!inner.is_ok()) return inner;
      if (!match(TokenKind::kRParen)) return error("expected ')'");
      return inner;
    }
    return error(util::format("expected expression, found %s",
                              token_kind_name(peek().kind)));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<NodePtr> parse(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens.is_ok()) return tokens.status();
  return Parser(std::move(tokens).value()).run();
}

}  // namespace sensorcer::expr
