#include "expr/evaluator.h"

#include <array>
#include <cmath>

#include "expr/compiled.h"
#include "expr/parser.h"
#include "util/strings.h"

namespace sensorcer::expr {
namespace {

util::Status arity_error(const char* name, std::size_t want, std::size_t got) {
  return {util::ErrorCode::kInvalidArgument,
          util::format("%s expects %zu argument(s), got %zu", name, want, got)};
}

util::Result<double> require1(const char* name, std::span<const double> args,
                              double (*fn)(double)) {
  if (args.size() != 1) return arity_error(name, 1, args.size());
  return fn(args[0]);
}

util::Result<double> require2(const char* name, std::span<const double> args,
                              double (*fn)(double, double)) {
  if (args.size() != 2) return arity_error(name, 2, args.size());
  return fn(args[0], args[1]);
}

constexpr std::array<std::string_view, 18> kBuiltinNames = {
    "abs", "sqrt", "pow", "exp", "log", "log10", "sin", "cos", "tan",
    "floor", "ceil", "round", "min", "max", "avg", "sum", "clamp", "hypot"};

}  // namespace

std::span<const std::string_view> builtin_names() { return kBuiltinNames; }

const Environment& builtin_environment() {
  static const Environment env;
  return env;
}

Environment::Environment() {
  define("abs", [](std::span<const double> a) { return require1("abs", a, std::fabs); });
  define("sqrt", [](std::span<const double> a) -> util::Result<double> {
    if (a.size() != 1) return arity_error("sqrt", 1, a.size());
    if (a[0] < 0) {
      return util::Status{util::ErrorCode::kInvalidArgument,
                          "sqrt of negative value"};
    }
    return std::sqrt(a[0]);
  });
  define("pow", [](std::span<const double> a) { return require2("pow", a, std::pow); });
  define("exp", [](std::span<const double> a) { return require1("exp", a, std::exp); });
  define("log", [](std::span<const double> a) -> util::Result<double> {
    if (a.size() != 1) return arity_error("log", 1, a.size());
    if (a[0] <= 0) {
      return util::Status{util::ErrorCode::kInvalidArgument,
                          "log of non-positive value"};
    }
    return std::log(a[0]);
  });
  define("log10", [](std::span<const double> a) -> util::Result<double> {
    if (a.size() != 1) return arity_error("log10", 1, a.size());
    if (a[0] <= 0) {
      return util::Status{util::ErrorCode::kInvalidArgument,
                          "log10 of non-positive value"};
    }
    return std::log10(a[0]);
  });
  define("sin", [](std::span<const double> a) { return require1("sin", a, std::sin); });
  define("cos", [](std::span<const double> a) { return require1("cos", a, std::cos); });
  define("tan", [](std::span<const double> a) { return require1("tan", a, std::tan); });
  define("floor", [](std::span<const double> a) { return require1("floor", a, std::floor); });
  define("ceil", [](std::span<const double> a) { return require1("ceil", a, std::ceil); });
  define("round", [](std::span<const double> a) { return require1("round", a, std::round); });
  define("hypot", [](std::span<const double> a) { return require2("hypot", a, std::hypot); });
  define("min", [](std::span<const double> a) -> util::Result<double> {
    if (a.empty()) return arity_error("min", 1, 0);
    double m = a[0];
    for (double x : a) m = std::min(m, x);
    return m;
  });
  define("max", [](std::span<const double> a) -> util::Result<double> {
    if (a.empty()) return arity_error("max", 1, 0);
    double m = a[0];
    for (double x : a) m = std::max(m, x);
    return m;
  });
  define("sum", [](std::span<const double> a) -> util::Result<double> {
    double s = 0;
    for (double x : a) s += x;
    return s;
  });
  define("avg", [](std::span<const double> a) -> util::Result<double> {
    if (a.empty()) return arity_error("avg", 1, 0);
    double s = 0;
    for (double x : a) s += x;
    return s / static_cast<double>(a.size());
  });
  define("clamp", [](std::span<const double> a) -> util::Result<double> {
    if (a.size() != 3) return arity_error("clamp", 3, a.size());
    return std::clamp(a[0], a[1], a[2]);
  });
}

util::Result<double> Environment::lookup_var(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    return util::Status{util::ErrorCode::kNotFound,
                        util::format("unbound variable '%s'", name.c_str())};
  }
  return it->second;
}

const Builtin* Environment::lookup_func(const std::string& name) const {
  auto it = funcs_.find(name);
  return it == funcs_.end() ? nullptr : &it->second;
}

util::Result<double> evaluate(const Node& node, const Environment& env) {
  switch (node.kind) {
    case NodeKind::kNumber:
      return node.number;
    case NodeKind::kVariable:
      return env.lookup_var(node.name);
    case NodeKind::kUnary: {
      auto v = evaluate(*node.children[0], env);
      if (!v.is_ok()) return v;
      return node.unary_op == UnaryOp::kNegate
                 ? -v.value()
                 : (v.value() == 0.0 ? 1.0 : 0.0);
    }
    case NodeKind::kBinary: {
      // Short-circuit logical operators before evaluating the right side.
      if (node.binary_op == BinaryOp::kAnd || node.binary_op == BinaryOp::kOr) {
        auto lhs = evaluate(*node.children[0], env);
        if (!lhs.is_ok()) return lhs;
        const bool lhs_true = lhs.value() != 0.0;
        if (node.binary_op == BinaryOp::kAnd && !lhs_true) return 0.0;
        if (node.binary_op == BinaryOp::kOr && lhs_true) return 1.0;
        auto rhs = evaluate(*node.children[1], env);
        if (!rhs.is_ok()) return rhs;
        return rhs.value() != 0.0 ? 1.0 : 0.0;
      }
      auto lhs = evaluate(*node.children[0], env);
      if (!lhs.is_ok()) return lhs;
      auto rhs = evaluate(*node.children[1], env);
      if (!rhs.is_ok()) return rhs;
      const double a = lhs.value();
      const double b = rhs.value();
      switch (node.binary_op) {
        case BinaryOp::kAdd: return a + b;
        case BinaryOp::kSub: return a - b;
        case BinaryOp::kMul: return a * b;
        case BinaryOp::kDiv:
          if (b == 0.0) {
            return util::Status{util::ErrorCode::kInvalidArgument,
                                "division by zero"};
          }
          return a / b;
        case BinaryOp::kMod:
          if (b == 0.0) {
            return util::Status{util::ErrorCode::kInvalidArgument,
                                "modulo by zero"};
          }
          return std::fmod(a, b);
        case BinaryOp::kPow: return std::pow(a, b);
        case BinaryOp::kLess: return a < b ? 1.0 : 0.0;
        case BinaryOp::kLessEq: return a <= b ? 1.0 : 0.0;
        case BinaryOp::kGreater: return a > b ? 1.0 : 0.0;
        case BinaryOp::kGreaterEq: return a >= b ? 1.0 : 0.0;
        case BinaryOp::kEq: return a == b ? 1.0 : 0.0;
        case BinaryOp::kNotEq: return a != b ? 1.0 : 0.0;
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          break;  // handled above
      }
      return util::Status{util::ErrorCode::kInternal, "unhandled operator"};
    }
    case NodeKind::kCall: {
      const Builtin* fn = env.lookup_func(node.name);
      if (fn == nullptr) {
        return util::Status{
            util::ErrorCode::kNotFound,
            util::format("unknown function '%s'", node.name.c_str())};
      }
      std::vector<double> args;
      args.reserve(node.children.size());
      for (const auto& child : node.children) {
        auto v = evaluate(*child, env);
        if (!v.is_ok()) return v;
        args.push_back(v.value());
      }
      return (*fn)(args);
    }
    case NodeKind::kConditional: {
      auto cond = evaluate(*node.children[0], env);
      if (!cond.is_ok()) return cond;
      return evaluate(*node.children[cond.value() != 0.0 ? 1 : 2], env);
    }
  }
  return util::Status{util::ErrorCode::kInternal, "unhandled node kind"};
}

NodePtr fold_constants(const Node& node, const Environment& env) {
  // Fold children first, then this node if every operand became a literal.
  auto folded = std::make_unique<Node>();
  folded->kind = node.kind;
  folded->number = node.number;
  folded->name = node.name;
  folded->unary_op = node.unary_op;
  folded->binary_op = node.binary_op;
  folded->children.reserve(node.children.size());
  bool all_literal = true;
  for (const auto& child : node.children) {
    folded->children.push_back(fold_constants(*child, env));
    all_literal &= folded->children.back()->kind == NodeKind::kNumber;
  }

  switch (node.kind) {
    case NodeKind::kNumber:
      return folded;
    case NodeKind::kVariable:
      return folded;  // variables stay dynamic, even if bound in env
    case NodeKind::kUnary:
    case NodeKind::kBinary:
    case NodeKind::kCall:
    case NodeKind::kConditional:
      break;
  }
  if (!all_literal) return folded;

  // Evaluate against an empty-variable environment: only literals and
  // builtins are involved. A failure (domain error, unknown function)
  // leaves the node unfolded so the same error surfaces at evaluation.
  auto value = evaluate(*folded, env);
  if (!value.is_ok()) return folded;
  return Node::make_number(value.value());
}

util::Result<Expression> Expression::compile(std::string_view source) {
  auto parsed = parse(source);
  if (!parsed.is_ok()) return parsed.status();
  // Constant subexpressions are folded once here; composites re-evaluate
  // the expression on every read, so this pays off immediately.
  NodePtr folded = fold_constants(*parsed.value(), builtin_environment());
  return Expression{std::move(folded), std::string(source)};
}

util::Result<CompiledProgram> Expression::bind(
    std::span<const std::string> slots) const {
  if (!root_) {
    return util::Status{util::ErrorCode::kFailedPrecondition,
                        "binding an empty expression"};
  }
  return expr::bind(*root_, slots);
}

std::set<std::string> Expression::variables() const {
  return root_ ? expr::variables(*root_) : std::set<std::string>{};
}

util::Result<double> Expression::evaluate(const Environment& env) const {
  if (!root_) {
    return util::Status{util::ErrorCode::kFailedPrecondition,
                        "evaluating an empty expression"};
  }
  return expr::evaluate(*root_, env);
}

Expression::Expression(const Expression& other)
    : root_(other.root_ ? clone(*other.root_) : nullptr),
      source_(other.source_) {}

Expression& Expression::operator=(const Expression& other) {
  if (this != &other) {
    root_ = other.root_ ? clone(*other.root_) : nullptr;
    source_ = other.source_;
  }
  return *this;
}

}  // namespace sensorcer::expr
