#pragma once
// Token vocabulary for the SenSORCER compute-expression language — the
// from-scratch substitute for the paper's use of Groovy. Expressions like
// "(a + b + c) / 3" are attached to composite sensor providers and evaluated
// against dynamically bound sensor-service variables.

#include <cstddef>
#include <string>

namespace sensorcer::expr {

enum class TokenKind {
  kNumber,
  kIdentifier,
  kPlus, kMinus, kStar, kSlash, kPercent, kCaret,
  kLParen, kRParen, kComma,
  kLess, kLessEq, kGreater, kGreaterEq, kEqEq, kBangEq,
  kAndAnd, kOrOr, kBang,
  kQuestion, kColon,
  kEnd,
  kError,
};

/// Printable name for diagnostics.
const char* token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // lexeme (identifier name, number literal, operator)
  double number = 0.0;  // value when kind == kNumber
  std::size_t position = 0;  // byte offset in the source expression
};

}  // namespace sensorcer::expr
