#pragma once
// Recursive-descent / precedence-climbing parser for compute-expressions.
//
// Grammar (lowest to highest precedence):
//   conditional := or ('?' conditional ':' conditional)?
//   or          := and ('||' and)*
//   and         := equality ('&&' equality)*
//   equality    := relational (('=='|'!=') relational)*
//   relational  := additive (('<'|'<='|'>'|'>=') additive)*
//   additive    := multiplicative (('+'|'-') multiplicative)*
//   multiplicative := unary (('*'|'/'|'%') unary)*
//   unary       := ('-'|'!') unary | power
//   power       := primary ('^' unary)?            (right associative)
//   primary     := number | identifier | identifier '(' args ')' | '(' conditional ')'

#include <string_view>

#include "expr/ast.h"
#include "util/status.h"

namespace sensorcer::expr {

/// Parse an expression. Errors carry the offending position and token.
util::Result<NodePtr> parse(std::string_view source);

}  // namespace sensorcer::expr
