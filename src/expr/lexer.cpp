#include "expr/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace sensorcer::expr {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kNumber: return "number";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kBangEq: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kEnd: return "end of expression";
    case TokenKind::kError: return "error";
  }
  return "?";
}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

util::Result<std::vector<Token>> tokenize(std::string_view source) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = source.size();

  const auto simple = [&](TokenKind kind, std::size_t len) {
    out.push_back({kind, std::string(source.substr(i, len)), 0.0, i});
    i += len;
  };

  while (i < n) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      const char* begin = source.data() + i;
      char* end = nullptr;
      const double value = std::strtod(begin, &end);
      if (end == begin) {
        return util::Status{util::ErrorCode::kInvalidArgument,
                            util::format("malformed number at position %zu", i)};
      }
      const auto len = static_cast<std::size_t>(end - begin);
      out.push_back({TokenKind::kNumber, std::string(source.substr(i, len)),
                     value, i});
      i += len;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t len = 1;
      while (i + len < n && is_ident_char(source[i + len])) ++len;
      out.push_back({TokenKind::kIdentifier,
                     std::string(source.substr(i, len)), 0.0, i});
      i += len;
      continue;
    }
    switch (c) {
      case '+': simple(TokenKind::kPlus, 1); break;
      case '-': simple(TokenKind::kMinus, 1); break;
      case '*': simple(TokenKind::kStar, 1); break;
      case '/': simple(TokenKind::kSlash, 1); break;
      case '%': simple(TokenKind::kPercent, 1); break;
      case '^': simple(TokenKind::kCaret, 1); break;
      case '(': simple(TokenKind::kLParen, 1); break;
      case ')': simple(TokenKind::kRParen, 1); break;
      case ',': simple(TokenKind::kComma, 1); break;
      case '?': simple(TokenKind::kQuestion, 1); break;
      case ':': simple(TokenKind::kColon, 1); break;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') simple(TokenKind::kLessEq, 2);
        else simple(TokenKind::kLess, 1);
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') simple(TokenKind::kGreaterEq, 2);
        else simple(TokenKind::kGreater, 1);
        break;
      case '=':
        if (i + 1 < n && source[i + 1] == '=') {
          simple(TokenKind::kEqEq, 2);
        } else {
          return util::Status{
              util::ErrorCode::kInvalidArgument,
              util::format("'=' at position %zu (did you mean '=='?)", i)};
        }
        break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') simple(TokenKind::kBangEq, 2);
        else simple(TokenKind::kBang, 1);
        break;
      case '&':
        if (i + 1 < n && source[i + 1] == '&') {
          simple(TokenKind::kAndAnd, 2);
        } else {
          return util::Status{util::ErrorCode::kInvalidArgument,
                              util::format("single '&' at position %zu", i)};
        }
        break;
      case '|':
        if (i + 1 < n && source[i + 1] == '|') {
          simple(TokenKind::kOrOr, 2);
        } else {
          return util::Status{util::ErrorCode::kInvalidArgument,
                              util::format("single '|' at position %zu", i)};
        }
        break;
      default:
        return util::Status{
            util::ErrorCode::kInvalidArgument,
            util::format("unexpected character '%c' at position %zu", c, i)};
    }
  }
  out.push_back({TokenKind::kEnd, "", 0.0, n});
  return out;
}

}  // namespace sensorcer::expr
