#pragma once
// Cybernode — Rio's compute-resource service. Registers on the network like
// any other provider, advertises QoS capability, and hosts dynamically
// instantiated service beans. Killing a cybernode crashes everything it
// hosts; the provision monitor re-allocates those services elsewhere — the
// paper's fault-tolerance claim (§IV.C).

#include <memory>
#include <unordered_map>
#include <vector>

#include "rio/qos.h"
#include "sorcer/provider.h"

namespace sensorcer::rio {

inline constexpr const char* kCybernodeType = "Cybernode";

class Cybernode : public sorcer::ServiceProvider {
 public:
  Cybernode(std::string name, QosCapability capability);

  [[nodiscard]] const QosCapability& capability() const { return capability_; }

  // --- hosting ---------------------------------------------------------------

  /// Headroom left after current deployments.
  [[nodiscard]] double available_compute() const;
  [[nodiscard]] double available_memory_mb() const;

  /// Fraction of compute capacity in use, in [0,1].
  [[nodiscard]] double utilization() const;

  [[nodiscard]] bool can_host(const QosRequirement& req) const;

  /// Deploy a service instance consuming `req`. kCapacity when it does not
  /// fit, kUnavailable when the node is down.
  util::Status host(const std::shared_ptr<sorcer::ServiceProvider>& service,
                    const QosRequirement& req);

  /// Remove a hosted instance (planned undeployment; the service leaves
  /// the registries cleanly).
  util::Status evict(const registry::ServiceId& service_id);

  [[nodiscard]] std::size_t hosted_count() const { return hosted_.size(); }
  [[nodiscard]] bool hosts(const registry::ServiceId& service_id) const {
    return hosted_.contains(service_id);
  }
  [[nodiscard]] std::vector<std::shared_ptr<sorcer::ServiceProvider>> hosted()
      const;

  // --- failure ---------------------------------------------------------------

  /// Hard failure: every hosted service crashes (stops renewing leases) and
  /// the node itself withdraws. Used by the failover experiments.
  void fail();

  /// Bring a failed node back empty.
  void restart();

  [[nodiscard]] bool is_alive() const { return alive_; }

 private:
  struct Hosted {
    std::shared_ptr<sorcer::ServiceProvider> service;
    QosRequirement req;
  };

  QosCapability capability_;
  std::unordered_map<registry::ServiceId, Hosted> hosted_;
  bool alive_ = true;
};

}  // namespace sensorcer::rio
