#pragma once
// Dependency graph over provisioned instances — the resource chains of
// temoto2's RMP brought to Rio. Deployed instances are graph nodes (keyed
// by instance name, which survives re-provisioning); a directed edge
// A -> B means "A depends on B". The provision monitor registers edges at
// provision time (a CSP on its component ESPs, a history-fed ESP on its
// historian, flow relays on their sink providers) and cascades along them
// in poll_once: when a required dependency dies, its dependents are
// re-provisioned in topological order; an optional dependency's death only
// degrades its dependents (they keep running and recover when the
// dependency returns).

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace sensorcer::rio {

/// How hard a dependency edge binds.
enum class DependencyKind {
  /// Dependent cannot run correctly without the dependency: its death
  /// cascades a re-provision of the dependent (after the dependency itself
  /// has been re-placed).
  kRequired,
  /// Dependent degrades gracefully (buffers, serves stale data) while the
  /// dependency is gone; it is marked degraded but never restarted.
  kOptional,
};

const char* dependency_kind_name(DependencyKind kind);

/// One directed edge: `dependent` depends on `dependency`.
struct DependencyEdge {
  std::string dependent;
  std::string dependency;
  DependencyKind kind = DependencyKind::kRequired;
};

class DependencyGraph {
 public:
  /// Register an edge. Idempotent for an identical edge; re-adding with a
  /// different kind updates it. Fails with kInvalidArgument when the edge
  /// would close a dependency cycle.
  util::Status add(const std::string& dependent, const std::string& dependency,
                   DependencyKind kind = DependencyKind::kRequired);

  /// Drop every edge touching `name` (instance torn down). Returns the
  /// number of edges removed.
  std::size_t remove_node(const std::string& name);

  /// Drop the edges declared by `dependent` (its dependencies), keeping
  /// edges where it is the dependency of others.
  std::size_t remove_dependencies_of(const std::string& dependent);

  [[nodiscard]] bool has_edge(const std::string& dependent,
                              const std::string& dependency) const;

  /// Direct dependents of `name` (who depends on it).
  [[nodiscard]] std::vector<std::string> dependents_of(
      const std::string& name) const;

  /// Direct dependencies of `name`, optionally restricted by kind.
  [[nodiscard]] std::vector<DependencyEdge> dependencies_of(
      const std::string& name) const;

  /// Transitive dependents of the `dead` set reachable over *required*
  /// edges, excluding the dead set itself, in topological order
  /// (dependencies before their dependents) — the cascade re-provision
  /// order. Deterministic: ties broken by name.
  [[nodiscard]] std::vector<std::string> required_cascade(
      const std::vector<std::string>& dead) const;

  /// `names` reordered so dependencies come before their dependents (names
  /// unknown to the graph are unconstrained). Deterministic.
  [[nodiscard]] std::vector<std::string> topo_order(
      const std::vector<std::string>& names) const;

  /// Direct dependents reaching any of `dead` over an *optional* edge —
  /// the gracefully-degraded set.
  [[nodiscard]] std::vector<std::string> optional_dependents(
      const std::vector<std::string>& dead) const;

  [[nodiscard]] std::size_t edge_count() const;
  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] std::vector<DependencyEdge> edges() const;

  /// Human-readable edge list for ops tooling / browser panes.
  [[nodiscard]] std::string render() const;

 private:
  struct Node {
    /// Outgoing edges: what this node depends on.
    std::vector<std::pair<std::string, DependencyKind>> dependencies;
    /// Incoming edges: who depends on this node (kind mirrors the edge).
    std::vector<std::pair<std::string, DependencyKind>> dependents;
  };

  /// True when `from` can reach `to` following dependency (outgoing) edges.
  [[nodiscard]] bool reaches(const std::string& from,
                             const std::string& to) const;
  void drop_empty(const std::string& name);

  // Sorted map keeps every traversal deterministic.
  std::map<std::string, Node> nodes_;
};

}  // namespace sensorcer::rio
