#include "rio/depgraph.h"

#include <algorithm>
#include <deque>
#include <set>

#include "util/strings.h"

namespace sensorcer::rio {

const char* dependency_kind_name(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kRequired: return "required";
    case DependencyKind::kOptional: return "optional";
  }
  return "?";
}

bool DependencyGraph::reaches(const std::string& from,
                              const std::string& to) const {
  std::deque<std::string> frontier{from};
  std::set<std::string> seen{from};
  while (!frontier.empty()) {
    const std::string cur = std::move(frontier.front());
    frontier.pop_front();
    if (cur == to) return true;
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) continue;
    for (const auto& [dep, kind] : it->second.dependencies) {
      if (seen.insert(dep).second) frontier.push_back(dep);
    }
  }
  return false;
}

util::Status DependencyGraph::add(const std::string& dependent,
                                  const std::string& dependency,
                                  DependencyKind kind) {
  if (dependent == dependency) {
    return {util::ErrorCode::kInvalidArgument,
            "'" + dependent + "' cannot depend on itself"};
  }
  // A cycle exists iff the dependency already (transitively) depends on the
  // dependent.
  if (reaches(dependency, dependent)) {
    return {util::ErrorCode::kInvalidArgument,
            "edge '" + dependent + "' -> '" + dependency +
                "' would close a dependency cycle"};
  }
  auto& out = nodes_[dependent].dependencies;
  auto existing = std::find_if(out.begin(), out.end(), [&](const auto& e) {
    return e.first == dependency;
  });
  if (existing != out.end()) {
    existing->second = kind;
  } else {
    out.emplace_back(dependency, kind);
  }
  auto& in = nodes_[dependency].dependents;
  auto back = std::find_if(in.begin(), in.end(), [&](const auto& e) {
    return e.first == dependent;
  });
  if (back != in.end()) {
    back->second = kind;
  } else {
    in.emplace_back(dependent, kind);
  }
  return util::Status::ok();
}

void DependencyGraph::drop_empty(const std::string& name) {
  auto it = nodes_.find(name);
  if (it != nodes_.end() && it->second.dependencies.empty() &&
      it->second.dependents.empty()) {
    nodes_.erase(it);
  }
}

std::size_t DependencyGraph::remove_node(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return 0;
  std::size_t removed = 0;
  for (const auto& [dep, kind] : it->second.dependencies) {
    auto& in = nodes_[dep].dependents;
    removed += std::erase_if(in, [&](const auto& e) { return e.first == name; });
  }
  for (const auto& [dep, kind] : it->second.dependents) {
    auto& out = nodes_[dep].dependencies;
    removed +=
        std::erase_if(out, [&](const auto& e) { return e.first == name; });
  }
  nodes_.erase(name);
  // Counterparts left with no edges disappear too.
  for (auto n = nodes_.begin(); n != nodes_.end();) {
    if (n->second.dependencies.empty() && n->second.dependents.empty()) {
      n = nodes_.erase(n);
    } else {
      ++n;
    }
  }
  return removed;
}

std::size_t DependencyGraph::remove_dependencies_of(
    const std::string& dependent) {
  auto it = nodes_.find(dependent);
  if (it == nodes_.end()) return 0;
  std::size_t removed = it->second.dependencies.size();
  for (const auto& [dep, kind] : it->second.dependencies) {
    auto& in = nodes_[dep].dependents;
    std::erase_if(in, [&](const auto& e) { return e.first == dependent; });
    drop_empty(dep);
  }
  it->second.dependencies.clear();
  drop_empty(dependent);
  return removed;
}

bool DependencyGraph::has_edge(const std::string& dependent,
                               const std::string& dependency) const {
  auto it = nodes_.find(dependent);
  if (it == nodes_.end()) return false;
  return std::any_of(
      it->second.dependencies.begin(), it->second.dependencies.end(),
      [&](const auto& e) { return e.first == dependency; });
}

std::vector<std::string> DependencyGraph::dependents_of(
    const std::string& name) const {
  std::vector<std::string> out;
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return out;
  out.reserve(it->second.dependents.size());
  for (const auto& [dep, kind] : it->second.dependents) out.push_back(dep);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<DependencyEdge> DependencyGraph::dependencies_of(
    const std::string& name) const {
  std::vector<DependencyEdge> out;
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return out;
  for (const auto& [dep, kind] : it->second.dependencies) {
    out.push_back(DependencyEdge{name, dep, kind});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.dependency < b.dependency;
  });
  return out;
}

std::vector<std::string> DependencyGraph::required_cascade(
    const std::vector<std::string>& dead) const {
  // BFS the reverse (dependent) edges restricted to required kind.
  std::set<std::string> dead_set(dead.begin(), dead.end());
  std::set<std::string> tainted;
  std::deque<std::string> frontier(dead.begin(), dead.end());
  std::set<std::string> visited = dead_set;
  while (!frontier.empty()) {
    const std::string cur = std::move(frontier.front());
    frontier.pop_front();
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) continue;
    for (const auto& [dep, kind] : it->second.dependents) {
      if (kind != DependencyKind::kRequired) continue;
      if (!dead_set.contains(dep)) tainted.insert(dep);
      if (visited.insert(dep).second) frontier.push_back(dep);
    }
  }
  // Kahn's algorithm over the subgraph induced by the tainted set: a node
  // is ready once none of its tainted dependencies remain unordered. The
  // ready set iterates in name order, so the result is deterministic.
  std::vector<std::string> order;
  std::set<std::string> remaining = tainted;
  while (!remaining.empty()) {
    bool progressed = false;
    for (auto it = remaining.begin(); it != remaining.end();) {
      auto node = nodes_.find(*it);
      bool ready = true;
      if (node != nodes_.end()) {
        for (const auto& [dep, kind] : node->second.dependencies) {
          if (remaining.contains(dep) && dep != *it) {
            ready = false;
            break;
          }
        }
      }
      if (ready) {
        order.push_back(*it);
        it = remaining.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
    // The graph is acyclic by construction; this is belt-and-braces against
    // future invariants breaking, not a reachable path.
    if (!progressed) {
      order.insert(order.end(), remaining.begin(), remaining.end());
      break;
    }
  }
  return order;
}

std::vector<std::string> DependencyGraph::topo_order(
    const std::vector<std::string>& names) const {
  // Same Kahn loop as required_cascade, over the caller's set: a name is
  // ready once none of its in-set dependencies remain unordered. Unknown
  // names have no edges and come out first (in name order).
  std::vector<std::string> order;
  std::set<std::string> remaining(names.begin(), names.end());
  while (!remaining.empty()) {
    bool progressed = false;
    for (auto it = remaining.begin(); it != remaining.end();) {
      auto node = nodes_.find(*it);
      bool ready = true;
      if (node != nodes_.end()) {
        for (const auto& [dep, kind] : node->second.dependencies) {
          if (remaining.contains(dep) && dep != *it) {
            ready = false;
            break;
          }
        }
      }
      if (ready) {
        order.push_back(*it);
        it = remaining.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
    if (!progressed) {  // unreachable while the graph stays acyclic
      order.insert(order.end(), remaining.begin(), remaining.end());
      break;
    }
  }
  return order;
}

std::vector<std::string> DependencyGraph::optional_dependents(
    const std::vector<std::string>& dead) const {
  std::set<std::string> dead_set(dead.begin(), dead.end());
  std::set<std::string> out;
  for (const auto& name : dead) {
    auto it = nodes_.find(name);
    if (it == nodes_.end()) continue;
    for (const auto& [dep, kind] : it->second.dependents) {
      if (kind == DependencyKind::kOptional && !dead_set.contains(dep)) {
        out.insert(dep);
      }
    }
  }
  return {out.begin(), out.end()};
}

std::size_t DependencyGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [name, node] : nodes_) n += node.dependencies.size();
  return n;
}

std::size_t DependencyGraph::node_count() const { return nodes_.size(); }

std::vector<DependencyEdge> DependencyGraph::edges() const {
  std::vector<DependencyEdge> out;
  for (const auto& [name, node] : nodes_) {
    for (const auto& [dep, kind] : node.dependencies) {
      out.push_back(DependencyEdge{name, dep, kind});
    }
  }
  return out;
}

std::string DependencyGraph::render() const {
  std::vector<std::vector<std::string>> rows;
  for (const DependencyEdge& e : edges()) {
    rows.push_back({e.dependent, e.dependency,
                    std::string(dependency_kind_name(e.kind))});
  }
  return util::render_table({"dependent", "dependency", "kind"}, rows);
}

}  // namespace sensorcer::rio
