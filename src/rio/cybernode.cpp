#include "rio/cybernode.h"

#include "util/log.h"

namespace sensorcer::rio {

Cybernode::Cybernode(std::string name, QosCapability capability)
    : ServiceProvider(std::move(name), {kCybernodeType}),
      capability_(std::move(capability)) {
  registry::Entry attrs;
  attrs.set(registry::attr::kComment, "Rio compute resource");
  attrs.set("qos", capability_.to_string());
  set_attributes(attrs);
}

double Cybernode::available_compute() const {
  double used = 0;
  for (const auto& [id, h] : hosted_) used += h.req.compute_units;
  return capability_.compute_units - used;
}

double Cybernode::available_memory_mb() const {
  double used = 0;
  for (const auto& [id, h] : hosted_) used += h.req.memory_mb;
  return capability_.memory_mb - used;
}

double Cybernode::utilization() const {
  if (capability_.compute_units <= 0) return 1.0;
  return (capability_.compute_units - available_compute()) /
         capability_.compute_units;
}

bool Cybernode::can_host(const QosRequirement& req) const {
  return alive_ && satisfies(capability_, available_compute(),
                             available_memory_mb(), req);
}

util::Status Cybernode::host(
    const std::shared_ptr<sorcer::ServiceProvider>& service,
    const QosRequirement& req) {
  if (!alive_) {
    return {util::ErrorCode::kUnavailable, "cybernode is down"};
  }
  if (!can_host(req)) {
    return {util::ErrorCode::kCapacity,
            "cybernode '" + provider_name() + "' cannot satisfy " +
                req.to_string()};
  }
  hosted_[service->service_id()] = Hosted{service, req};
  return util::Status::ok();
}

util::Status Cybernode::evict(const registry::ServiceId& service_id) {
  auto it = hosted_.find(service_id);
  if (it == hosted_.end()) {
    return {util::ErrorCode::kNotFound, "service not hosted here"};
  }
  it->second.service->leave();
  hosted_.erase(it);
  return util::Status::ok();
}

std::vector<std::shared_ptr<sorcer::ServiceProvider>> Cybernode::hosted()
    const {
  std::vector<std::shared_ptr<sorcer::ServiceProvider>> out;
  out.reserve(hosted_.size());
  for (const auto& [id, h] : hosted_) out.push_back(h.service);
  return out;
}

void Cybernode::fail() {
  if (!alive_) return;
  alive_ = false;
  SENSORCER_LOG_INFO("rio", "cybernode '%s' failed with %zu hosted services",
                     provider_name().c_str(), hosted_.size());
  for (auto& [id, h] : hosted_) h.service->crash();
  hosted_.clear();
  crash();  // the node's own registration lapses too
}

void Cybernode::restart() {
  alive_ = true;
  hosted_.clear();
}

}  // namespace sensorcer::rio
