#pragma once
// Provision Monitor — deploys operational strings onto QoS-matching
// cybernodes with load balancing, watches deployments, and re-provisions
// instances whose cybernode failed ("fault tolerance achieved by
// dynamically allocating the service to a different compute node, if the
// original node fails", §IV.C).

#include <memory>
#include <string>
#include <vector>

#include "registry/lease_renewal.h"
#include "rio/cybernode.h"
#include "rio/opstring.h"
#include "sorcer/accessor.h"
#include "util/scheduler.h"

namespace sensorcer::rio {

/// Tuning knobs for the monitor.
struct MonitorConfig {
  /// Lease granted to provisioned services on each lookup service.
  util::SimDuration service_lease = 30 * util::kSecond;
  /// How often deployments are checked against their planned state.
  util::SimDuration poll_period = 1 * util::kSecond;
  /// Modeled time to instantiate one service on a cybernode.
  util::SimDuration activation_cost = 50 * util::kMillisecond;
  /// Deadline for per-node liveness pings under wire transport (a dead or
  /// partitioned node costs this much virtual time per poll).
  util::SimDuration ping_timeout = 10 * util::kMillisecond;
};

class ProvisionMonitor : public sorcer::ServiceProvider {
 public:
  ProvisionMonitor(std::string name, sorcer::ServiceAccessor& accessor,
                   registry::LeaseRenewalManager& lrm,
                   util::Scheduler& scheduler, MonitorConfig config = {});

  ~ProvisionMonitor() override;

  // --- deployment -------------------------------------------------------------

  /// Deploy every element of `opstring` at its planned count. Instances are
  /// placed on the least-utilized cybernode satisfying their QoS. Fails with
  /// kCapacity if any instance cannot be placed (already-placed instances
  /// stay deployed and will be retried by the poll loop).
  util::Status deploy(OperationalString opstring);

  /// Tear an operational string down: evict and deregister all instances.
  util::Status undeploy(const std::string& opstring_name);

  /// Instances currently deployed for an opstring (all opstrings when "").
  [[nodiscard]] std::vector<std::shared_ptr<sorcer::ServiceProvider>>
  deployed_instances(const std::string& opstring_name = "") const;

  // --- monitoring --------------------------------------------------------------

  /// One monitoring pass: replace instances whose cybernode died. Runs
  /// automatically every poll_period; exposed for deterministic tests.
  void poll_once();

  [[nodiscard]] std::uint64_t provision_count() const { return provisions_; }
  [[nodiscard]] std::uint64_t reprovision_count() const {
    return reprovisions_;
  }
  [[nodiscard]] std::uint64_t failed_placements() const {
    return failed_placements_;
  }

  /// Cybernodes currently discoverable through the accessor.
  std::vector<std::shared_ptr<Cybernode>> known_cybernodes();

 private:
  struct Deployment {
    std::string opstring;
    std::size_t element_index;
    std::string instance_name;
    std::shared_ptr<sorcer::ServiceProvider> service;
    std::weak_ptr<Cybernode> node;
  };

  util::Result<std::shared_ptr<Cybernode>> pick_node(
      const ServiceElement& element);
  /// Node health for the poll loop. Beyond local bookkeeping (is_alive /
  /// hosts), a node on the fabric is pinged over the wire when the
  /// accessor's pipeline runs in wire transport, so partitions and dead
  /// endpoints are detected by the transport itself.
  bool node_healthy(const std::shared_ptr<Cybernode>& node);
  util::Status place(const std::string& opstring_name,
                     std::size_t element_index, const ServiceElement& element,
                     const std::string& instance_name);
  void register_instance(
      const std::shared_ptr<sorcer::ServiceProvider>& service);

  sorcer::ServiceAccessor& accessor_;
  registry::LeaseRenewalManager& lrm_;
  util::Scheduler& scheduler_;
  MonitorConfig config_;
  util::TimerId poll_timer_ = 0;
  bool polling_ = false;  // wire pings pump the scheduler; bar re-entry

  std::vector<OperationalString> opstrings_;
  std::vector<Deployment> deployments_;
  std::uint64_t provisions_ = 0;
  std::uint64_t reprovisions_ = 0;
  std::uint64_t failed_placements_ = 0;
};

}  // namespace sensorcer::rio
