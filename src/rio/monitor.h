#pragma once
// Provision Monitor — deploys operational strings onto QoS-matching
// cybernodes with load balancing, watches deployments, and re-provisions
// instances whose cybernode failed ("fault tolerance achieved by
// dynamically allocating the service to a different compute node, if the
// original node fails", §IV.C).
//
// Deployed instances form a dependency graph (see rio/depgraph.h): when a
// dependency dies, poll_once cascades along required edges in topological
// order — the dependency is re-placed first, then each dependent is
// restarted with state hand-off — while optional edges merely mark their
// dependents degraded until the dependency returns. Identical in-flight
// placement requests within one sweep are deduplicated: a fan-out of N
// dependents needing the same dead dependency issues one placement query.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "registry/lease_renewal.h"
#include "rio/cybernode.h"
#include "rio/depgraph.h"
#include "rio/opstring.h"
#include "sorcer/accessor.h"
#include "util/scheduler.h"

namespace sensorcer::rio {

/// Tuning knobs for the monitor.
struct MonitorConfig {
  /// Lease granted to provisioned services on each lookup service.
  util::SimDuration service_lease = 30 * util::kSecond;
  /// How often deployments are checked against their planned state.
  util::SimDuration poll_period = 1 * util::kSecond;
  /// Modeled time to instantiate one service on a cybernode.
  util::SimDuration activation_cost = 50 * util::kMillisecond;
  /// Deadline for per-node liveness pings under wire transport (a dead or
  /// partitioned node costs this much virtual time per poll).
  util::SimDuration ping_timeout = 10 * util::kMillisecond;
};

class ProvisionMonitor : public sorcer::ServiceProvider {
 public:
  ProvisionMonitor(std::string name, sorcer::ServiceAccessor& accessor,
                   registry::LeaseRenewalManager& lrm,
                   util::Scheduler& scheduler, MonitorConfig config = {});

  ~ProvisionMonitor() override;

  // --- deployment -------------------------------------------------------------

  /// Deploy every element of `opstring` at its planned count. Instances are
  /// placed on the least-utilized cybernode satisfying their QoS. Fails with
  /// kCapacity if any instance cannot be placed (already-placed instances
  /// stay deployed and will be retried by the poll loop).
  util::Status deploy(OperationalString opstring);

  /// Tear an operational string down: evict and deregister all instances,
  /// and drop their dependency-graph nodes so stale edges cannot cascade a
  /// re-provision of an undeployed opstring.
  util::Status undeploy(const std::string& opstring_name);

  /// Instances currently deployed for an opstring (all opstrings when "").
  [[nodiscard]] std::vector<std::shared_ptr<sorcer::ServiceProvider>>
  deployed_instances(const std::string& opstring_name = "") const;

  // --- dependencies -----------------------------------------------------------

  /// Declare that deployed instance `dependent` depends on instance
  /// `dependency`. Names are instance names (which survive re-provisioning);
  /// neither side has to be deployed by this monitor — foreign names simply
  /// never trigger a cascade. Fails when the edge would close a cycle.
  util::Status add_dependency(const std::string& dependent,
                              const std::string& dependency,
                              DependencyKind kind = DependencyKind::kRequired);

  [[nodiscard]] const DependencyGraph& dependencies() const { return graph_; }
  [[nodiscard]] DependencyGraph& dependencies() { return graph_; }

  // --- monitoring --------------------------------------------------------------

  /// One monitoring pass: replace instances whose cybernode died, cascade
  /// along dependency edges, recompute the degraded set. Runs automatically
  /// every poll_period; exposed for deterministic tests.
  void poll_once();

  [[nodiscard]] std::uint64_t provision_count() const;
  [[nodiscard]] std::uint64_t reprovision_count() const;
  [[nodiscard]] std::uint64_t failed_placements() const;
  /// Dependents restarted because a required dependency died.
  [[nodiscard]] std::uint64_t cascade_count() const;
  /// Placement requests answered from the per-sweep single-flight cache.
  [[nodiscard]] std::uint64_t placement_dedup_count() const;

  /// Instances currently degraded: their dependency (required, awaiting
  /// capacity, or optional) is gone and has not been re-placed yet. The set
  /// is recomputed every poll, so it self-heals.
  [[nodiscard]] std::vector<std::string> degraded_instances() const;
  [[nodiscard]] bool is_degraded(const std::string& instance) const {
    return degraded_.contains(instance);
  }

  /// Deployment records whose node is gone (kept for retry — capacity may
  /// return). Cheap bookkeeping check, no wire pings.
  [[nodiscard]] std::size_t unplaced_count() const;

  /// True when every deployed instance sits on a live node that still hosts
  /// it and nothing is degraded — the chaos harness's convergence check.
  [[nodiscard]] bool converged() const {
    return unplaced_count() == 0 && degraded_.empty();
  }

  /// Cybernodes currently discoverable through the accessor.
  std::vector<std::shared_ptr<Cybernode>> known_cybernodes();

 private:
  struct Deployment {
    std::string opstring;
    std::size_t element_index;
    std::string instance_name;
    std::shared_ptr<sorcer::ServiceProvider> service;
    std::weak_ptr<Cybernode> node;
  };

  util::Result<std::shared_ptr<Cybernode>> pick_node(
      const ServiceElement& element);
  /// Node health for the poll loop. Beyond local bookkeeping (is_alive /
  /// hosts), a node on the fabric is pinged over the wire when the
  /// accessor's pipeline runs in wire transport, so partitions and dead
  /// endpoints are detected by the transport itself.
  bool node_healthy(const std::shared_ptr<Cybernode>& node);
  util::Status place(const std::string& opstring_name,
                     std::size_t element_index, const ServiceElement& element,
                     const std::string& instance_name);
  void register_instance(
      const std::shared_ptr<sorcer::ServiceProvider>& service);

  /// Re-provision one lost deployment, at most once per sweep: repeated
  /// requests for the same instance (the dependency shared by N dependents)
  /// return the first placement's outcome from the single-flight cache.
  util::Status ensure_placed(const Deployment& d);
  /// Restart a live dependent whose required dependency died: evict, place
  /// afresh, hand state over. Rolls back onto the old node on failure.
  bool restart_dependent(const Deployment& d);
  [[nodiscard]] const OperationalString* find_opstring(
      const std::string& name) const;

  sorcer::ServiceAccessor& accessor_;
  registry::LeaseRenewalManager& lrm_;
  util::Scheduler& scheduler_;
  MonitorConfig config_;
  util::TimerId poll_timer_ = 0;
  bool polling_ = false;  // wire pings pump the scheduler; bar re-entry

  std::vector<OperationalString> opstrings_;
  std::vector<Deployment> deployments_;
  DependencyGraph graph_;
  std::set<std::string> degraded_;

  // Per-sweep state. `sweep_outcome_` is the single-flight placement cache;
  // `undeployed_in_sweep_` records opstrings undeployed while a wire ping
  // was pumping the scheduler, so an in-flight re-provision can abort
  // instead of resurrecting a torn-down opstring.
  std::map<std::string, util::Status> sweep_outcome_;
  std::set<std::string> undeployed_in_sweep_;
  std::map<const Cybernode*, bool> health_cache_;

  // Counters live on the process-global obs registry; per-monitor views are
  // deltas against the values captured at construction.
  std::uint64_t provisions_base_ = 0;
  std::uint64_t reprovisions_base_ = 0;
  std::uint64_t failed_placements_base_ = 0;
  std::uint64_t cascades_base_ = 0;
  std::uint64_t dedup_base_ = 0;
};

}  // namespace sensorcer::rio
