#include "rio/qos.h"

#include <algorithm>

#include "util/strings.h"

namespace sensorcer::rio {

std::string QosCapability::to_string() const {
  std::string tags;
  for (const auto& l : labels) {
    if (!tags.empty()) tags += ",";
    tags += l;
  }
  return util::format("compute=%.2f mem=%.0fMB arch=%s labels=[%s]",
                      compute_units, memory_mb, arch.c_str(), tags.c_str());
}

std::string QosRequirement::to_string() const {
  std::string tags;
  for (const auto& l : labels) {
    if (!tags.empty()) tags += ",";
    tags += l;
  }
  return util::format("compute>=%.2f mem>=%.0fMB arch=%s labels=[%s]",
                      compute_units, memory_mb,
                      arch.empty() ? "*" : arch.c_str(), tags.c_str());
}

bool satisfies(const QosCapability& platform, double available_compute,
               double available_memory_mb, const QosRequirement& req) {
  if (available_compute < req.compute_units) return false;
  if (available_memory_mb < req.memory_mb) return false;
  if (!req.arch.empty() && req.arch != platform.arch) return false;
  return std::all_of(req.labels.begin(), req.labels.end(),
                     [&](const std::string& label) {
                       return platform.labels.contains(label);
                     });
}

}  // namespace sensorcer::rio
