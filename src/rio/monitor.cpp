#include "rio/monitor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/log.h"
#include "util/strings.h"

namespace sensorcer::rio {

namespace {

struct RioMetrics {
  obs::Counter& provisions;
  obs::Counter& reprovisions;
  obs::Counter& failed_placements;
};

RioMetrics& rio_metrics() {
  static RioMetrics m{obs::metrics().counter("rio.provisions"),
                      obs::metrics().counter("rio.reprovisions"),
                      obs::metrics().counter("rio.failed_placements")};
  return m;
}

}  // namespace

ProvisionMonitor::ProvisionMonitor(std::string name,
                                   sorcer::ServiceAccessor& accessor,
                                   registry::LeaseRenewalManager& lrm,
                                   util::Scheduler& scheduler,
                                   MonitorConfig config)
    : ServiceProvider(std::move(name), {"ProvisionMonitor"}),
      accessor_(accessor),
      lrm_(lrm),
      scheduler_(scheduler),
      config_(config) {
  poll_timer_ =
      scheduler_.schedule_every(config_.poll_period, [this] { poll_once(); });
}

ProvisionMonitor::~ProvisionMonitor() { scheduler_.cancel(poll_timer_); }

std::vector<std::shared_ptr<Cybernode>> ProvisionMonitor::known_cybernodes() {
  std::vector<std::shared_ptr<Cybernode>> out;
  for (const auto& item :
       accessor_.find_all(registry::ServiceTemplate::by_type(kCybernodeType))) {
    if (auto node = registry::proxy_cast<Cybernode>(item.proxy)) {
      if (node->is_alive()) out.push_back(std::move(node));
    }
  }
  return out;
}

util::Result<std::shared_ptr<Cybernode>> ProvisionMonitor::pick_node(
    const ServiceElement& element) {
  // Least-utilized placement spreads load across the fleet unless the
  // element brings its own policy.
  const auto score = [&element](const Cybernode& node) {
    return element.placement_score ? element.placement_score(node)
                                   : -node.utilization();
  };
  std::shared_ptr<Cybernode> best;
  double best_score = 0.0;
  for (auto& node : known_cybernodes()) {
    if (!node->can_host(element.qos)) continue;
    const double s = score(*node);
    if (!best || s > best_score) {
      best = std::move(node);
      best_score = s;
    }
  }
  if (!best) {
    return util::Status{util::ErrorCode::kCapacity,
                        "no cybernode satisfies " + element.qos.to_string()};
  }
  return best;
}

void ProvisionMonitor::register_instance(
    const std::shared_ptr<sorcer::ServiceProvider>& service) {
  // Provisioned instances are full network citizens: attached to the same
  // fabric as the pipeline so wire-mode exertions can reach them.
  if (auto* invoker = accessor_.invoker();
      invoker != nullptr && service->network() == nullptr) {
    service->attach_network(invoker->network());
  }
  for (const auto& lus : accessor_.lookups()) {
    (void)service->join(lus, lrm_, config_.service_lease);
  }
}

bool ProvisionMonitor::node_healthy(const std::shared_ptr<Cybernode>& node) {
  if (!node->is_alive()) return false;
  auto* invoker = accessor_.invoker();
  if (invoker != nullptr &&
      invoker->transport() == sorcer::Transport::kWire &&
      node->network() == &invoker->network()) {
    // Wire transport: trust the fabric, not the object — a partitioned or
    // detached node fails its ping even though is_alive() says otherwise.
    return invoker->ping(node->network_address(), config_.ping_timeout)
        .is_ok();
  }
  return true;
}

util::Status ProvisionMonitor::place(const std::string& opstring_name,
                                     std::size_t element_index,
                                     const ServiceElement& element,
                                     const std::string& instance_name) {
  auto node = pick_node(element);
  if (!node.is_ok()) {
    ++failed_placements_;
    rio_metrics().failed_placements.add(1);
    return node.status();
  }
  std::shared_ptr<sorcer::ServiceProvider> service =
      element.factory(instance_name);
  if (!service) {
    return {util::ErrorCode::kInternal,
            "factory for '" + element.name + "' returned null"};
  }
  if (util::Status hosted = node.value()->host(service, element.qos);
      !hosted.is_ok()) {
    ++failed_placements_;
    rio_metrics().failed_placements.add(1);
    return hosted;
  }
  // Activation is not instantaneous: the instance becomes discoverable only
  // after the modeled instantiation time — provisioning and failover benches
  // therefore see a realistic deploy latency.
  std::weak_ptr<Cybernode> weak_node = node.value();
  scheduler_.schedule_after(
      config_.activation_cost, [this, service, weak_node] {
        auto n = weak_node.lock();
        if (n && n->is_alive()) register_instance(service);
      });
  deployments_.push_back(Deployment{opstring_name, element_index,
                                    instance_name, service, node.value()});
  ++provisions_;
  rio_metrics().provisions.add(1);
  SENSORCER_LOG_INFO("rio", "provisioned '%s' on cybernode '%s'",
                     instance_name.c_str(),
                     node.value()->provider_name().c_str());
  return util::Status::ok();
}

util::Status ProvisionMonitor::deploy(OperationalString opstring) {
  util::Status first_error = util::Status::ok();
  for (std::size_t e = 0; e < opstring.elements.size(); ++e) {
    const ServiceElement& element = opstring.elements[e];
    for (std::size_t i = 0; i < element.planned; ++i) {
      const std::string instance_name =
          element.planned == 1
              ? element.name
              : util::format("%s-%zu", element.name.c_str(), i + 1);
      if (util::Status placed =
              place(opstring.name, e, element, instance_name);
          !placed.is_ok() && first_error.is_ok()) {
        first_error = placed;
      }
    }
  }
  opstrings_.push_back(std::move(opstring));
  return first_error;
}

util::Status ProvisionMonitor::undeploy(const std::string& opstring_name) {
  const auto known = std::any_of(
      opstrings_.begin(), opstrings_.end(),
      [&](const auto& os) { return os.name == opstring_name; });
  if (!known) {
    return {util::ErrorCode::kNotFound,
            "unknown operational string '" + opstring_name + "'"};
  }
  for (auto& d : deployments_) {
    if (d.opstring != opstring_name) continue;
    if (auto node = d.node.lock()) {
      (void)node->evict(d.service->service_id());
    } else {
      d.service->leave();
    }
  }
  std::erase_if(deployments_,
                [&](const auto& d) { return d.opstring == opstring_name; });
  std::erase_if(opstrings_,
                [&](const auto& os) { return os.name == opstring_name; });
  return util::Status::ok();
}

std::vector<std::shared_ptr<sorcer::ServiceProvider>>
ProvisionMonitor::deployed_instances(const std::string& opstring_name) const {
  std::vector<std::shared_ptr<sorcer::ServiceProvider>> out;
  for (const auto& d : deployments_) {
    if (opstring_name.empty() || d.opstring == opstring_name) {
      out.push_back(d.service);
    }
  }
  return out;
}

void ProvisionMonitor::poll_once() {
  // Wire-mode pings pump the scheduler, which can fire this poll's own
  // timer re-entrantly mid-sweep; one pass at a time.
  if (polling_) return;
  polling_ = true;

  // Find deployments whose node is gone and put them back to plan.
  std::vector<Deployment> lost;
  std::erase_if(deployments_, [&](const Deployment& d) {
    auto node = d.node.lock();
    // A restarted node comes back empty, so liveness alone is not health:
    // the node must still actually host the instance.
    if (node && node_healthy(node) &&
        node->hosts(d.service->service_id())) {
      return false;
    }
    lost.push_back(d);
    return true;
  });

  for (const auto& d : lost) {
    const OperationalString* opstring = nullptr;
    for (const auto& os : opstrings_) {
      if (os.name == d.opstring) {
        opstring = &os;
        break;
      }
    }
    if (opstring == nullptr || d.element_index >= opstring->elements.size()) {
      continue;  // opstring was undeployed meanwhile
    }
    const ServiceElement& element = opstring->elements[d.element_index];
    if (place(d.opstring, d.element_index, element, d.instance_name)
            .is_ok()) {
      // State hand-off: the replacement adopts whatever survives of the dead
      // instance (an ESP's DataLog backfills the historian from here).
      deployments_.back().service->assume_state_from(*d.service);
      ++reprovisions_;
      rio_metrics().reprovisions.add(1);
      SENSORCER_LOG_INFO("rio", "re-provisioned '%s' (was on a failed node)",
                         d.instance_name.c_str());
    } else {
      // Keep the record so the next poll retries (capacity may return).
      deployments_.push_back(d);
    }
  }
  polling_ = false;
}

}  // namespace sensorcer::rio
