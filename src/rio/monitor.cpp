#include "rio/monitor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/log.h"
#include "util/strings.h"

namespace sensorcer::rio {

namespace {

struct RioMetrics {
  obs::Counter& provisions;
  obs::Counter& reprovisions;
  obs::Counter& failed_placements;
  obs::Counter& cascades;
  obs::Counter& placement_dedup;
  obs::Counter& degrade_events;
  obs::Gauge& degraded;
  obs::Gauge& unplaced;
  obs::Gauge& dep_edges;
};

RioMetrics& rio_metrics() {
  static RioMetrics m{obs::metrics().counter("rio.provisions"),
                      obs::metrics().counter("rio.reprovisions"),
                      obs::metrics().counter("rio.failed_placements"),
                      obs::metrics().counter("rio.cascades"),
                      obs::metrics().counter("rio.placement_dedup"),
                      obs::metrics().counter("rio.degrade_events"),
                      obs::metrics().gauge("rio.degraded"),
                      obs::metrics().gauge("rio.unplaced"),
                      obs::metrics().gauge("rio.dep_edges")};
  return m;
}

}  // namespace

ProvisionMonitor::ProvisionMonitor(std::string name,
                                   sorcer::ServiceAccessor& accessor,
                                   registry::LeaseRenewalManager& lrm,
                                   util::Scheduler& scheduler,
                                   MonitorConfig config)
    : ServiceProvider(std::move(name), {"ProvisionMonitor"}),
      accessor_(accessor),
      lrm_(lrm),
      scheduler_(scheduler),
      config_(config),
      provisions_base_(rio_metrics().provisions.value()),
      reprovisions_base_(rio_metrics().reprovisions.value()),
      failed_placements_base_(rio_metrics().failed_placements.value()),
      cascades_base_(rio_metrics().cascades.value()),
      dedup_base_(rio_metrics().placement_dedup.value()) {
  poll_timer_ =
      scheduler_.schedule_every(config_.poll_period, [this] { poll_once(); });
}

ProvisionMonitor::~ProvisionMonitor() { scheduler_.cancel(poll_timer_); }

std::uint64_t ProvisionMonitor::provision_count() const {
  return rio_metrics().provisions.value() - provisions_base_;
}

std::uint64_t ProvisionMonitor::reprovision_count() const {
  return rio_metrics().reprovisions.value() - reprovisions_base_;
}

std::uint64_t ProvisionMonitor::failed_placements() const {
  return rio_metrics().failed_placements.value() - failed_placements_base_;
}

std::uint64_t ProvisionMonitor::cascade_count() const {
  return rio_metrics().cascades.value() - cascades_base_;
}

std::uint64_t ProvisionMonitor::placement_dedup_count() const {
  return rio_metrics().placement_dedup.value() - dedup_base_;
}

std::vector<std::string> ProvisionMonitor::degraded_instances() const {
  return {degraded_.begin(), degraded_.end()};
}

std::size_t ProvisionMonitor::unplaced_count() const {
  std::size_t n = 0;
  for (const auto& d : deployments_) {
    auto node = d.node.lock();
    if (!node || !node->is_alive() || !node->hosts(d.service->service_id())) {
      ++n;
    }
  }
  return n;
}

std::vector<std::shared_ptr<Cybernode>> ProvisionMonitor::known_cybernodes() {
  std::vector<std::shared_ptr<Cybernode>> out;
  for (const auto& item :
       accessor_.find_all(registry::ServiceTemplate::by_type(kCybernodeType))) {
    if (auto node = registry::proxy_cast<Cybernode>(item.proxy)) {
      if (node->is_alive()) out.push_back(std::move(node));
    }
  }
  return out;
}

util::Result<std::shared_ptr<Cybernode>> ProvisionMonitor::pick_node(
    const ServiceElement& element) {
  // Least-utilized placement spreads load across the fleet unless the
  // element brings its own policy.
  const auto score = [&element](const Cybernode& node) {
    return element.placement_score ? element.placement_score(node)
                                   : -node.utilization();
  };
  std::shared_ptr<Cybernode> best;
  double best_score = 0.0;
  for (auto& node : known_cybernodes()) {
    if (!node->can_host(element.qos)) continue;
    const double s = score(*node);
    if (!best || s > best_score) {
      best = std::move(node);
      best_score = s;
    }
  }
  if (!best) {
    return util::Status{util::ErrorCode::kCapacity,
                        "no cybernode satisfies " + element.qos.to_string()};
  }
  return best;
}

void ProvisionMonitor::register_instance(
    const std::shared_ptr<sorcer::ServiceProvider>& service) {
  // Provisioned instances are full network citizens: attached to the same
  // fabric as the pipeline so wire-mode exertions can reach them.
  if (auto* invoker = accessor_.invoker();
      invoker != nullptr && service->network() == nullptr) {
    service->attach_network(invoker->network());
  }
  for (const auto& lus : accessor_.lookups()) {
    (void)service->join(lus, lrm_, config_.service_lease);
  }
}

bool ProvisionMonitor::node_healthy(const std::shared_ptr<Cybernode>& node) {
  if (!node->is_alive()) return false;
  // One verdict per node per sweep: a node hosting N instances is pinged
  // once, not N times (a dead node's ping costs ping_timeout each).
  if (auto it = health_cache_.find(node.get()); it != health_cache_.end()) {
    return it->second;
  }
  bool healthy = true;
  auto* invoker = accessor_.invoker();
  if (invoker != nullptr &&
      invoker->transport() == sorcer::Transport::kWire &&
      node->network() == &invoker->network()) {
    // Wire transport: trust the fabric, not the object — a partitioned or
    // detached node fails its ping even though is_alive() says otherwise.
    healthy =
        invoker->ping(node->network_address(), config_.ping_timeout).is_ok();
  }
  health_cache_[node.get()] = healthy;
  return healthy;
}

util::Status ProvisionMonitor::place(const std::string& opstring_name,
                                     std::size_t element_index,
                                     const ServiceElement& element,
                                     const std::string& instance_name) {
  auto node = pick_node(element);
  if (!node.is_ok()) {
    rio_metrics().failed_placements.add(1);
    return node.status();
  }
  // The factory may re-enter the monitor (wire pings pump the scheduler;
  // an undeploy can land mid-call) and destroy the element this reference
  // points into — including the std::function closure that is currently
  // executing. Copy everything that must outlive the call.
  const auto factory = element.factory;
  const std::string element_name = element.name;
  const QosRequirement qos = element.qos;
  std::shared_ptr<sorcer::ServiceProvider> service = factory(instance_name);
  if (!service) {
    return {util::ErrorCode::kInternal,
            "factory for '" + element_name + "' returned null"};
  }
  if (util::Status hosted = node.value()->host(service, qos);
      !hosted.is_ok()) {
    rio_metrics().failed_placements.add(1);
    return hosted;
  }
  // Activation is not instantaneous: the instance becomes discoverable only
  // after the modeled instantiation time — provisioning and failover benches
  // therefore see a realistic deploy latency.
  std::weak_ptr<Cybernode> weak_node = node.value();
  scheduler_.schedule_after(
      config_.activation_cost, [this, service, weak_node] {
        auto n = weak_node.lock();
        // The node must still host the instance: an undeploy (or a lost
        // placement race) between place() and activation would otherwise
        // register a torn-down instance that then renews its lease forever.
        if (n && n->is_alive() && n->hosts(service->service_id())) {
          register_instance(service);
        }
      });
  deployments_.push_back(Deployment{opstring_name, element_index,
                                    instance_name, service, node.value()});
  rio_metrics().provisions.add(1);
  SENSORCER_LOG_INFO("rio", "provisioned '%s' on cybernode '%s'",
                     instance_name.c_str(),
                     node.value()->provider_name().c_str());
  return util::Status::ok();
}

util::Status ProvisionMonitor::deploy(OperationalString opstring) {
  util::Status first_error = util::Status::ok();
  for (std::size_t e = 0; e < opstring.elements.size(); ++e) {
    const ServiceElement& element = opstring.elements[e];
    for (std::size_t i = 0; i < element.planned; ++i) {
      const std::string instance_name =
          element.planned == 1
              ? element.name
              : util::format("%s-%zu", element.name.c_str(), i + 1);
      if (util::Status placed =
              place(opstring.name, e, element, instance_name);
          !placed.is_ok() && first_error.is_ok()) {
        first_error = placed;
      }
    }
  }
  opstrings_.push_back(std::move(opstring));
  return first_error;
}

util::Status ProvisionMonitor::undeploy(const std::string& opstring_name) {
  const auto known = std::any_of(
      opstrings_.begin(), opstrings_.end(),
      [&](const auto& os) { return os.name == opstring_name; });
  if (!known) {
    return {util::ErrorCode::kNotFound,
            "unknown operational string '" + opstring_name + "'"};
  }
  for (auto& d : deployments_) {
    if (d.opstring != opstring_name) continue;
    if (auto node = d.node.lock()) {
      (void)node->evict(d.service->service_id());
    } else {
      d.service->leave();
    }
    // Torn-down instances leave the dependency graph entirely: edges from
    // survivors onto them must not cascade a re-provision of an undeployed
    // opstring, and their own dependencies are moot.
    graph_.remove_node(d.instance_name);
    degraded_.erase(d.instance_name);
  }
  std::erase_if(deployments_,
                [&](const auto& d) { return d.opstring == opstring_name; });
  std::erase_if(opstrings_,
                [&](const auto& os) { return os.name == opstring_name; });
  if (polling_) undeployed_in_sweep_.insert(opstring_name);
  rio_metrics().dep_edges.set(static_cast<double>(graph_.edge_count()));
  return util::Status::ok();
}

std::vector<std::shared_ptr<sorcer::ServiceProvider>>
ProvisionMonitor::deployed_instances(const std::string& opstring_name) const {
  std::vector<std::shared_ptr<sorcer::ServiceProvider>> out;
  for (const auto& d : deployments_) {
    if (opstring_name.empty() || d.opstring == opstring_name) {
      out.push_back(d.service);
    }
  }
  return out;
}

util::Status ProvisionMonitor::add_dependency(const std::string& dependent,
                                              const std::string& dependency,
                                              DependencyKind kind) {
  util::Status added = graph_.add(dependent, dependency, kind);
  if (added.is_ok()) {
    rio_metrics().dep_edges.set(static_cast<double>(graph_.edge_count()));
  }
  return added;
}

const OperationalString* ProvisionMonitor::find_opstring(
    const std::string& name) const {
  for (const auto& os : opstrings_) {
    if (os.name == name) return &os;
  }
  return nullptr;
}

util::Status ProvisionMonitor::ensure_placed(const Deployment& d) {
  if (auto it = sweep_outcome_.find(d.instance_name);
      it != sweep_outcome_.end()) {
    // Single-flight: another dependent (or the dead-set pass) already
    // resolved this instance in this sweep — reuse the outcome.
    rio_metrics().placement_dedup.add(1);
    return it->second;
  }
  const OperationalString* opstring = find_opstring(d.opstring);
  if (opstring == nullptr || d.element_index >= opstring->elements.size() ||
      undeployed_in_sweep_.contains(d.opstring)) {
    // Opstring undeployed meanwhile (possibly during this sweep's wire
    // pings): nothing to resurrect.
    return sweep_outcome_[d.instance_name] = util::Status{
               util::ErrorCode::kNotFound,
               "opstring '" + d.opstring + "' undeployed"};
  }
  const ServiceElement& element = opstring->elements[d.element_index];
  util::Status placed =
      place(d.opstring, d.element_index, element, d.instance_name);
  if (placed.is_ok()) {
    if (undeployed_in_sweep_.contains(d.opstring)) {
      // undeploy() raced the in-flight re-provision: tear the fresh
      // instance straight back down instead of leaking it.
      Deployment fresh = deployments_.back();
      deployments_.pop_back();
      if (auto node = fresh.node.lock()) {
        (void)node->evict(fresh.service->service_id());
      }
      return sweep_outcome_[d.instance_name] = util::Status{
                 util::ErrorCode::kNotFound,
                 "opstring '" + d.opstring + "' undeployed mid-placement"};
    }
    // State hand-off: the replacement adopts whatever survives of the dead
    // instance (an ESP's DataLog backfills the historian from here).
    deployments_.back().service->assume_state_from(*d.service);
    rio_metrics().reprovisions.add(1);
    SENSORCER_LOG_INFO("rio", "re-provisioned '%s' (was on a failed node)",
                       d.instance_name.c_str());
  } else {
    // Keep the record so the next poll retries (capacity may return).
    deployments_.push_back(d);
  }
  return sweep_outcome_[d.instance_name] = placed;
}

bool ProvisionMonitor::restart_dependent(const Deployment& d) {
  const OperationalString* opstring = find_opstring(d.opstring);
  if (opstring == nullptr || d.element_index >= opstring->elements.size()) {
    return false;
  }
  const ServiceElement& element = opstring->elements[d.element_index];
  auto old_node = d.node.lock();
  if (old_node) (void)old_node->evict(d.service->service_id());
  std::erase_if(deployments_, [&](const Deployment& cur) {
    return cur.service.get() == d.service.get();
  });
  util::Status placed =
      place(d.opstring, d.element_index, element, d.instance_name);
  if (!placed.is_ok()) {
    // Roll back: re-host the still-live instance on its old node rather
    // than losing it to a transient capacity dip.
    if (old_node && old_node->is_alive() &&
        old_node->host(d.service, element.qos).is_ok()) {
      deployments_.push_back(d);
      return false;
    }
    deployments_.push_back(d);  // node-less retry record for the next poll
    return false;
  }
  deployments_.back().service->assume_state_from(*d.service);
  d.service->crash();  // fence the superseded instance
  rio_metrics().reprovisions.add(1);
  rio_metrics().cascades.add(1);
  sweep_outcome_[d.instance_name] = placed;
  SENSORCER_LOG_INFO("rio", "cascade-restarted '%s' (required dependency "
                     "was re-provisioned)", d.instance_name.c_str());
  return true;
}

void ProvisionMonitor::poll_once() {
  // Wire-mode pings pump the scheduler, which can fire this poll's own
  // timer re-entrantly mid-sweep; one pass at a time.
  if (polling_) return;
  polling_ = true;
  sweep_outcome_.clear();
  undeployed_in_sweep_.clear();
  health_cache_.clear();

  // Phase 1 — liveness. node_healthy may pump the scheduler (wire pings),
  // and anything pumped may call undeploy()/deploy() on us, so health is
  // decided over a snapshot and the losers erased by identity afterwards —
  // never while iterating deployments_ itself.
  std::vector<Deployment> snapshot = deployments_;
  std::vector<Deployment> lost;
  std::set<const sorcer::ServiceProvider*> lost_ids;
  for (const auto& d : snapshot) {
    auto node = d.node.lock();
    // A restarted node comes back empty, so liveness alone is not health:
    // the node must still actually host the instance.
    if (node && node_healthy(node) && node->hosts(d.service->service_id())) {
      continue;
    }
    // Fencing: a partitioned node's object is still alive and still hosts
    // the instance. Left alone it would run in parallel with its
    // replacement (split brain — duplicate readings, double execution), so
    // the stranded instance is evicted and crashed before re-provisioning.
    if (node && node->hosts(d.service->service_id())) {
      (void)node->evict(d.service->service_id());
    }
    if (!d.service->crashed()) d.service->crash();
    lost.push_back(d);
    lost_ids.insert(d.service.get());
  }
  std::erase_if(deployments_, [&](const Deployment& d) {
    return lost_ids.contains(d.service.get());
  });

  // Phase 2 — re-provision the dead, dependencies before dependents. The
  // single-flight cache in ensure_placed makes later requests for the same
  // instance (from any number of dependents) free.
  std::map<std::string, Deployment> lost_by_name;
  std::vector<std::string> dead_names;
  for (const auto& d : lost) {
    if (lost_by_name.emplace(d.instance_name, d).second) {
      dead_names.push_back(d.instance_name);
    }
  }
  for (const std::string& name : graph_.topo_order(dead_names)) {
    (void)ensure_placed(lost_by_name.at(name));
  }

  // Phase 3 — cascade: live dependents bound to a dead required dependency
  // restart (in topological order) once every required dependency has been
  // re-placed; while any is still unplaced they only degrade.
  std::set<std::string> unplaced_now;
  for (const auto& [name, outcome] : sweep_outcome_) {
    if (!outcome.is_ok()) unplaced_now.insert(name);
  }
  std::set<std::string> fresh_degraded;
  for (const std::string& name : graph_.required_cascade(dead_names)) {
    if (lost_by_name.contains(name)) continue;  // handled in phase 2
    const auto dep_it =
        std::find_if(deployments_.begin(), deployments_.end(),
                     [&](const Deployment& d) {
                       return d.instance_name == name;
                     });
    if (dep_it == deployments_.end()) continue;  // not managed here
    bool deps_ok = true;
    for (const DependencyEdge& edge : graph_.dependencies_of(name)) {
      if (edge.kind != DependencyKind::kRequired) continue;
      if (auto lit = lost_by_name.find(edge.dependency);
          lit != lost_by_name.end() && !ensure_placed(lit->second).is_ok()) {
        deps_ok = false;
      }
      if (unplaced_now.contains(edge.dependency)) deps_ok = false;
    }
    if (!deps_ok) {
      fresh_degraded.insert(name);
      continue;
    }
    const Deployment dependent = *dep_it;  // restart mutates deployments_
    if (restart_dependent(dependent)) {
      unplaced_now.erase(name);
    } else {
      fresh_degraded.insert(name);
      unplaced_now.insert(name);
    }
  }

  // Phase 4 — the degraded set: dependents (required or optional) of
  // anything that stayed unplaced this sweep, recomputed from scratch so a
  // later successful re-provision heals them.
  for (const auto& [name, outcome] : sweep_outcome_) {
    if (!outcome.is_ok()) unplaced_now.insert(name);
  }
  for (const std::string& gone : unplaced_now) {
    for (const std::string& dep : graph_.dependents_of(gone)) {
      if (!unplaced_now.contains(dep)) fresh_degraded.insert(dep);
    }
  }
  for (const std::string& name : fresh_degraded) {
    if (!degraded_.contains(name)) {
      rio_metrics().degrade_events.add(1);
      SENSORCER_LOG_INFO("rio", "'%s' degraded (dependency unavailable)",
                         name.c_str());
    }
  }
  degraded_ = std::move(fresh_degraded);

  rio_metrics().degraded.set(static_cast<double>(degraded_.size()));
  rio_metrics().unplaced.set(static_cast<double>(unplaced_count()));
  rio_metrics().dep_edges.set(static_cast<double>(graph_.edge_count()));
  polling_ = false;
}

}  // namespace sensorcer::rio
