#pragma once
// Quality-of-service vocabulary for provisioning (§IV.C): cybernodes
// advertise capabilities, service elements declare requirements, and the
// provision monitor matches them — "running sensor service on the compute
// resource available in the network that matches required QoS".

#include <set>
#include <string>

namespace sensorcer::rio {

/// What a cybernode offers.
struct QosCapability {
  double compute_units = 1.0;   // abstract CPU capacity
  double memory_mb = 512.0;
  std::string arch = "x86_64";  // platform tag
  std::set<std::string> labels; // free-form placement tags, e.g. "edge"

  [[nodiscard]] std::string to_string() const;
};

/// What a service element demands.
struct QosRequirement {
  double compute_units = 0.1;
  double memory_mb = 16.0;
  std::string arch;                    // empty = any
  std::set<std::string> labels;        // all must be present on the node

  [[nodiscard]] std::string to_string() const;
};

/// True when `available` (remaining headroom of a node with platform
/// `platform_arch` and `platform_labels`) satisfies `req`.
bool satisfies(const QosCapability& platform, double available_compute,
               double available_memory_mb, const QosRequirement& req);

}  // namespace sensorcer::rio
