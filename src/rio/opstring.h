#pragma once
// Operational strings — Rio's deployment descriptors: "a model to
// dynamically instantiate, monitor and manage service components as
// described in a deployment descriptor called an OperationalString" (§IV.C).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rio/qos.h"
#include "sorcer/provider.h"

namespace sensorcer::rio {

class Cybernode;

/// Creates a fresh service instance. `instance_name` is unique per replica
/// ("Neem-Sensor", "New-Composite-2", ...).
using ServiceFactory = std::function<std::shared_ptr<sorcer::ServiceProvider>(
    const std::string& instance_name)>;

/// Ranks QoS-eligible cybernodes for one element; the highest score wins.
/// Lets deployers encode placement policy beyond hard QoS matching (the
/// flow subsystem steers relays away from "edge"-labeled nodes this way).
using NodeScorer = std::function<double(const Cybernode&)>;

/// One deployable service type within an operational string.
struct ServiceElement {
  std::string name;          // base name for instances
  ServiceFactory factory;
  std::size_t planned = 1;   // desired replica count
  QosRequirement qos;
  /// Optional ranking over eligible nodes; default is least-utilized.
  NodeScorer placement_score;
};

/// A named deployment: the set of service elements that must be kept
/// running at their planned counts.
struct OperationalString {
  std::string name;
  std::vector<ServiceElement> elements;
};

}  // namespace sensorcer::rio
