#include "flow/placement.h"

#include <algorithm>

#include "util/strings.h"

namespace sensorcer::flow {

std::vector<NodeLoad> snapshot_loads(
    const std::vector<std::shared_ptr<rio::Cybernode>>& nodes) {
  std::vector<NodeLoad> out;
  out.reserve(nodes.size());
  for (const auto& node : nodes) {
    if (!node || !node->is_alive()) continue;
    out.push_back(NodeLoad{node->provider_name(), node->utilization(),
                           node->capability().labels.contains("edge")});
  }
  return out;
}

std::function<double(const rio::Cybernode&)> relay_node_scorer() {
  return [](const rio::Cybernode& node) {
    double score = 1.0 - node.utilization();
    if (node.capability().labels.contains("edge")) score -= 10.0;
    return score;
  };
}

PlacementPlan plan_placement(const FlowSpec& spec,
                             util::SimDuration sample_period,
                             const std::vector<NodeLoad>& nodes) {
  PlacementPlan plan;
  plan.stage_reduction =
      spec.selectivity_hint * spec.window.reduction(sample_period);

  // Input rate across the flow's sensors, readings per second of virtual
  // time. With background sampling off the model still ranks the options by
  // per-reading cost (rate cancels), so use 1 Hz as the neutral rate.
  const double per_sensor_hz =
      sample_period > 0
          ? static_cast<double>(util::kSecond) / static_cast<double>(sample_period)
          : 1.0;
  const double rate = per_sensor_hz * static_cast<double>(spec.sensors.size());

  // Only historian emissions cross the fabric after the stages; trigger and
  // listener sinks deliver to in-process callbacks wherever the stage runs.
  const double emission_rate =
      spec.sink.kind == SinkKind::kHistorian ? rate * plan.stage_reduction
                                             : 0.0;
  plan.edge_bytes_per_sec = emission_rate * kBytesPerReading;
  plan.central_bytes_per_sec =
      rate * kBytesPerReading + emission_rate * kBytesPerReading;

  // The relay would land on the least-utilized non-edge candidate; its load
  // surcharges the central option.
  double best_util = 1.0;
  bool any_backbone = false;
  for (const NodeLoad& node : nodes) {
    if (node.edge_labeled) continue;
    any_backbone = true;
    best_util = std::min(best_util, node.utilization);
  }
  // Edge: emissions cross the sensor uplink, plus the compute premium.
  // Central: raw crosses the uplink, onward emissions ride discounted
  // backbone links, all weighted by the best candidate's load.
  const double raw_bytes = rate * kBytesPerReading;
  plan.edge_cost = plan.edge_bytes_per_sec * (1.0 + kEdgeComputePremium);
  plan.central_cost =
      (raw_bytes + kBackboneDiscount * plan.edge_bytes_per_sec) *
      (1.0 + best_util);

  switch (spec.placement) {
    case Placement::kForceEdge:
      plan.edge = true;
      plan.explanation = "forced edge";
      return plan;
    case Placement::kForceCentral:
      plan.edge = false;
      plan.explanation = "forced central";
      return plan;
    case Placement::kAuto:
      break;
  }
  if (nodes.empty() || !any_backbone) {
    plan.edge = true;
    plan.explanation = "edge: no backbone cybernode to host a relay";
    return plan;
  }
  plan.edge = plan.edge_cost <= plan.central_cost;
  plan.explanation = util::format(
      "%s: edge cost %.1f (emissions %.1f B/s, x%.2f compute premium) vs "
      "central cost %.1f (raw %.1f B/s uplink, best node util %.2f), "
      "stage reduction %.3f",
      plan.edge ? "edge" : "central", plan.edge_cost, plan.edge_bytes_per_sec,
      1.0 + kEdgeComputePremium, plan.central_cost,
      plan.central_bytes_per_sec - plan.edge_bytes_per_sec, best_util,
      plan.stage_reduction);
  return plan;
}

}  // namespace sensorcer::flow
