#pragma once
// FlowSpec — declarative description of a push-based streaming pipeline:
// source(sensor selector) → filter → window(count|time) → map → sink.
//
// A spec is pure data; the FlowManager compiles its filter/map expressions
// into slot-indexed programs (expr/compiled.h), decides where the movable
// stages run (placement.h), and instantiates the operators. The shape
// mirrors EMMA's service choreographies of operators placed on nodes: the
// declaration says *what* flows, the cost model says *where* it runs.

#include <functional>
#include <string>
#include <vector>

#include "registry/lookup.h"
#include "expr/compiled.h"
#include "sensor/reading.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace sensorcer::flow {

/// The flow manager's interface name (signatures and lookup templates).
inline constexpr const char* kFlowManagerType = "FlowManager";

/// Context paths of the pushFrame operation: a frame of n readings rides as
/// three parallel vector<double> arrays, like the historian's appendBatch.
namespace path {
inline constexpr const char* kFlow = "flow/name";
inline constexpr const char* kSensor = "flow/sensor";
inline constexpr const char* kTimestamps = "flow/timestamps";
inline constexpr const char* kValues = "flow/values";
inline constexpr const char* kQualities = "flow/qualities";
inline constexpr const char* kAccepted = "flow/accepted";
inline constexpr const char* kDuplicates = "flow/duplicates";
// FlowManager introspection operations.
inline constexpr const char* kReport = "flow/report";
inline constexpr const char* kPlacement = "flow/placement";
inline constexpr const char* kReadingsIn = "flow/readings_in";
inline constexpr const char* kEmitted = "flow/emitted";
}  // namespace path

/// FlowManager service selectors (pushFrame is framework-level and lives in
/// sorcer::op — relays answer it under the FlowOperator type).
namespace op {
inline constexpr const char* kListFlows = "listFlows";
inline constexpr const char* kFlowStats = "flowStats";
}  // namespace op

enum class WindowKind {
  kNone,   // pass each accepted reading through
  kCount,  // aggregate every `count` accepted readings
  kTime,   // aggregate per `span` bucket of virtual time
};

enum class Aggregate { kLast, kMean, kMin, kMax, kSum, kCount };

const char* window_kind_name(WindowKind kind);
const char* aggregate_name(Aggregate agg);

struct WindowSpec {
  WindowKind kind = WindowKind::kNone;
  std::size_t count = 0;        // kCount: readings per emission
  util::SimDuration span = 0;   // kTime: bucket width
  Aggregate aggregate = Aggregate::kMean;

  /// Expected output readings per input reading (cost-model input).
  [[nodiscard]] double reduction(util::SimDuration sample_period) const;
};

enum class SinkKind {
  kHistorian,  // appendBatch at the DataCollection service, series "<flow>/<sensor>"
  kTrigger,    // local callback (e.g. threshold-watch push evaluation)
  kListener,   // registry event listener (e.g. an EventMailbox)
};

const char* sink_kind_name(SinkKind kind);

using TriggerFn =
    std::function<void(const std::string& sensor, const sensor::Reading&)>;

struct SinkSpec {
  SinkKind kind = SinkKind::kHistorian;
  TriggerFn trigger;                  // kTrigger
  registry::EventListener listener;   // kListener

  static SinkSpec historian() { return {}; }
  static SinkSpec to_trigger(TriggerFn fn) {
    return {SinkKind::kTrigger, std::move(fn), nullptr};
  }
  static SinkSpec to_listener(registry::EventListener listener) {
    return {SinkKind::kListener, nullptr, std::move(listener)};
  }
};

/// Where the movable stages (filter/window/map) execute.
enum class Placement {
  kAuto,          // cost model decides
  kForceEdge,     // fuse into the per-sensor sources
  kForceCentral,  // relay operator provisioned onto a cybernode
};

const char* placement_name(Placement placement);

struct FlowSpec {
  std::string name;
  std::vector<std::string> sensors;
  /// Filter expression over variable `v` (the reading's value); empty keeps
  /// every reading.
  std::string filter;
  WindowSpec window;
  /// Map expression over `v` applied to emitted values; empty is identity.
  std::string map;
  SinkSpec sink;
  Placement placement = Placement::kAuto;
  /// Estimated fraction of readings the filter passes — the requestor's
  /// hint to the placement cost model (measured selectivity would need the
  /// flow to already run somewhere).
  double selectivity_hint = 1.0;
};

/// Structural validation: name/sensors present, window parameters coherent,
/// sink callbacks present for their kind, selectivity hint in (0,1].
util::Status validate(const FlowSpec& spec);

/// The movable stages of a spec, lowered to slot-indexed programs over the
/// single slot `v`. Immutable after compile; cheap to copy into operator
/// factories (replacement relay instances rebuild from the same programs).
struct CompiledStages {
  bool has_filter = false;
  expr::CompiledProgram filter;
  bool has_map = false;
  expr::CompiledProgram map;
  WindowSpec window;
};

/// Parse + bind the spec's filter/map. Fails with the expression error on
/// invalid source or variables other than `v`.
util::Result<CompiledStages> compile_stages(const FlowSpec& spec);

}  // namespace sensorcer::flow
