#pragma once
// Flow operators — the executable stages a FlowSpec compiles into.
//
// StageRunner is the movable middle of a pipeline (dedup → filter → window
// → map → sink adapter). It runs in one of two places, decided by the
// placement cost model:
//   - fused into the per-sensor edge sources (only post-stage emissions
//     ever cross the fabric), or
//   - inside a FlowOperator relay provisioned onto a cybernode, fed batched
//     FlowFrames through the pushFrame wire operation.
//
// FlowSource is the upstream half under central placement: it taps a
// sensor's recorded readings, batches them into pooled frames, and pushes
// them at the relay feeder-style — lease-bound notify() binding on the
// relay's registration, buffer-while-unbound, rebind-and-drain, failed
// frames re-queued at the front. A per-sensor timestamp watermark in the
// runner makes frame replays idempotent, so source retries after a relay
// failover never double-deliver (mirroring the historian's dedup).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flow/frame.h"
#include "flow/spec.h"
#include "registry/lease_renewal.h"
#include "registry/lookup.h"
#include "sorcer/accessor.h"
#include "sorcer/provider.h"
#include "util/scheduler.h"

namespace sensorcer::flow {

/// Sink/push batching knobs shared by edge-fused runners and relays.
struct FlushConfig {
  /// Flush as soon as this many emissions (or frames, for sources) pend.
  std::size_t batch_size = 32;
  /// Periodic flush of partial batches; 0 disables the timer.
  util::SimDuration flush_period = 5 * util::kSecond;
  /// Pending cap while the downstream is unreachable (oldest dropped past it).
  std::size_t pending_cap = 4096;
  /// Max readings marshalled into one task.
  std::size_t max_batch = 256;
  /// Lease duration of a source's notify() subscription.
  util::SimDuration subscription_lease = 30 * util::kSecond;
};

/// Counters one runner/source accumulates (merged into FlowStats).
struct StageCounters {
  std::uint64_t readings_in = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t filtered_out = 0;
  std::uint64_t emitted = 0;
  std::uint64_t sink_pushed = 0;
  std::uint64_t sink_failures = 0;
  std::uint64_t dropped = 0;
};

/// Executes the movable stages over a stream of (sensor, reading) pairs and
/// adapts emissions to the sink. Historian emissions are written under the
/// series "<flow>/<sensor>" (never the raw series, which the historian
/// feeder owns) and are batched through the same pipelined appendBatch path
/// the feeder uses. Not a provider itself — it is owned by either a relay
/// FlowOperator or the flow's edge sources.
class StageRunner {
 public:
  StageRunner(std::string flow, CompiledStages stages, SinkSpec sink,
              sorcer::ServiceAccessor& accessor, util::Scheduler& scheduler,
              FlushConfig config = {});
  ~StageRunner();

  StageRunner(const StageRunner&) = delete;
  StageRunner& operator=(const StageRunner&) = delete;

  /// Run one reading through dedup → filter → window → map → sink. Returns
  /// true when the reading was accepted (not a replay duplicate).
  bool ingest(const std::string& sensor, const sensor::Reading& reading);

  /// Push pending historian emissions now (also the timer body). Trigger
  /// and listener sinks deliver synchronously in ingest and never pend.
  std::size_t flush_sink();

  /// Failover hand-off: adopt the predecessor runner's watermarks, window
  /// state, pending emissions and counters, so a re-placed relay resumes
  /// mid-window with no gap and replayed frames still dedup.
  void adopt(StageRunner& predecessor);

  [[nodiscard]] const StageCounters& counters() const { return counters_; }
  [[nodiscard]] std::size_t pending_sink() const { return pending_.size(); }
  [[nodiscard]] const std::string& flow() const { return flow_; }

 private:
  struct WindowState {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double last = 0.0;
    util::SimTime last_timestamp = 0;
    /// kTime: bucket index currently accumulating; -1 = none yet.
    std::int64_t bucket = -1;
  };

  struct PerSensor {
    /// Highest timestamp already processed — replayed frames dedup here.
    util::SimTime watermark = -1;
    WindowState window;
  };

  struct Emission {
    std::string sensor;
    sensor::Reading reading;
  };

  void emit(const std::string& sensor, const sensor::Reading& reading);
  void deliver(const std::string& sensor, const sensor::Reading& reading);
  /// Fold `reading` into the window; returns an aggregate reading when the
  /// window closes.
  bool window_accept(WindowState& w, const sensor::Reading& reading,
                     sensor::Reading& out);
  [[nodiscard]] double aggregate_value(const WindowState& w) const;
  void schedule_flush();

  std::string flow_;
  CompiledStages stages_;
  SinkSpec sink_;
  sorcer::ServiceAccessor& accessor_;
  util::Scheduler& scheduler_;
  FlushConfig config_;

  std::map<std::string, PerSensor> sensors_;
  std::deque<Emission> pending_;
  bool flushing_ = false;  // wire pushes pump the scheduler; bar re-entry
  bool flush_scheduled_ = false;
  util::TimerId flush_timer_ = 0;
  util::TimerId pending_flush_timer_ = 0;
  std::uint64_t event_sequence_ = 0;
  StageCounters counters_;
};

/// The relay form: a provisioned ServiceProvider exporting pushFrame. On
/// node failure the provision monitor re-places it and hands state over via
/// assume_state_from — which also *retires* the predecessor, so late frames
/// reaching the dead instance's still-attached endpoint bounce with
/// kUnavailable (and get re-queued by the source) instead of vanishing.
class FlowOperator : public sorcer::ServiceProvider {
 public:
  FlowOperator(std::string name, std::string flow, CompiledStages stages,
               SinkSpec sink, sorcer::ServiceAccessor& accessor,
               util::Scheduler& scheduler, FlushConfig config = {});

  [[nodiscard]] StageRunner& runner() { return *runner_; }
  [[nodiscard]] const StageRunner& runner() const { return *runner_; }

  /// Refuse further frames (handed over to a successor).
  void retire() { retired_ = true; }
  [[nodiscard]] bool retired() const { return retired_; }

  void assume_state_from(sorcer::ServiceProvider& predecessor) override;

 private:
  std::unique_ptr<StageRunner> runner_;
  /// Receive-side scratch frame: every pushFrame unmarshals into it in
  /// place, so steady-state ingest reuses one set of backing vectors
  /// (dispatch is serialized per provider by the invoke mutex).
  FlowFrame rx_frame_;
  bool retired_ = false;
};

/// Per-sensor upstream stage under central placement: batches tapped
/// readings into pooled frames and pushes them at the relay named
/// `relay_name` as pushFrame exertions (one scatter-gather batch per
/// flush). Under edge placement no FlowSource exists — the tap feeds the
/// fused StageRunner directly.
class FlowSource {
 public:
  FlowSource(std::string flow, std::string sensor, std::string relay_name,
             util::Scheduler& scheduler, sorcer::ServiceAccessor& accessor,
             FlushConfig config = {});
  ~FlowSource();

  FlowSource(const FlowSource&) = delete;
  FlowSource& operator=(const FlowSource&) = delete;

  /// Subscribe to the relay's registration transitions on `lus`: pushes
  /// run only while a relay instance is registered; in between, frames
  /// buffer (up to pending_cap readings) and drain on rebind.
  void bind(const std::shared_ptr<registry::LookupService>& lus,
            registry::LeaseRenewalManager& lrm);
  void unbind();

  /// Enqueue one tapped reading. Never pushes synchronously — full frames
  /// go out on a zero-delay timer so fabric traffic happens inside
  /// scheduler pumps (the feeder discipline).
  void offer(const sensor::Reading& reading);

  /// Push every queued frame now as one pipelined scatter-gather batch.
  /// Failed frames re-queue at the front. Returns readings pushed.
  std::size_t flush();

  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] std::size_t pending_readings() const;
  [[nodiscard]] std::uint64_t frames_pushed() const { return frames_pushed_; }
  [[nodiscard]] std::uint64_t frames_requeued() const {
    return frames_requeued_;
  }
  [[nodiscard]] std::uint64_t readings_pushed() const {
    return readings_pushed_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t rebinds() const { return rebinds_; }
  [[nodiscard]] const std::string& sensor() const { return sensor_; }

 private:
  void on_transition(const registry::ServiceEvent& event);
  void schedule_flush();
  void seal_current();

  std::string flow_;
  std::string sensor_;
  std::string relay_name_;
  util::Scheduler& scheduler_;
  sorcer::ServiceAccessor& accessor_;
  FlushConfig config_;

  FramePool pool_;
  FlowFrame current_;
  bool current_open_ = false;
  std::deque<FlowFrame> queued_;
  bool bound_ = false;
  bool flushing_ = false;
  bool flush_scheduled_ = false;
  util::TimerId flush_timer_ = 0;
  util::TimerId pending_flush_timer_ = 0;

  std::weak_ptr<registry::LookupService> lus_;
  registry::LeaseRenewalManager* lrm_ = nullptr;
  util::Uuid subscription_id_{};
  util::Uuid subscription_lease_{};

  std::uint64_t frames_pushed_ = 0;
  std::uint64_t frames_requeued_ = 0;
  std::uint64_t readings_pushed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t rebinds_ = 0;
};

}  // namespace sensorcer::flow
