#pragma once
// FlowFrame — the batched wire unit of a streaming flow.
//
// Readings never cross the fabric one at a time: a source accumulates them
// into a frame (SensCord-style: preallocated, recycled through a pool so
// the steady state allocates nothing) and ships the frame as one pushFrame
// exertion. On the wire a frame of n readings marshals as three parallel
// vector<double> context values — 3·(4+8n) payload bytes plus one request
// envelope, instead of n envelopes.

#include <string>
#include <vector>

#include "sensor/reading.h"
#include "sorcer/context.h"

namespace sensorcer::flow {

struct FlowFrame {
  std::string sensor;
  std::vector<double> timestamps;
  std::vector<double> values;
  std::vector<double> qualities;

  [[nodiscard]] std::size_t size() const { return timestamps.size(); }
  [[nodiscard]] bool empty() const { return timestamps.empty(); }

  void clear() {
    sensor.clear();
    timestamps.clear();
    values.clear();
    qualities.clear();
  }

  void reserve(std::size_t n) {
    timestamps.reserve(n);
    values.reserve(n);
    qualities.reserve(n);
  }

  void push(const sensor::Reading& reading);

  /// Reading i of the frame (quality decoded; sequence not carried).
  [[nodiscard]] sensor::Reading reading_at(std::size_t i) const;
};

/// Recycles frames so a long-lived source reuses the same backing vectors.
/// acquire() hands out a cleared frame with `frame_capacity` reserved;
/// release() takes it back (up to `max_retained` kept).
class FramePool {
 public:
  explicit FramePool(std::size_t frame_capacity, std::size_t max_retained = 16)
      : frame_capacity_(frame_capacity ? frame_capacity : 1),
        max_retained_(max_retained) {}

  FlowFrame acquire();
  void release(FlowFrame&& frame);

  [[nodiscard]] std::size_t retained() const { return free_.size(); }

 private:
  std::size_t frame_capacity_;
  std::size_t max_retained_;
  std::vector<FlowFrame> free_;
};

/// Marshal `frame` into the pushFrame input paths of `ctx`.
void marshal_frame(const std::string& flow_name, const FlowFrame& frame,
                   sorcer::ServiceContext& ctx);

/// Rebuild a frame from pushFrame inputs; kInvalidArgument on missing or
/// length-mismatched arrays.
util::Result<FlowFrame> unmarshal_frame(const sorcer::ServiceContext& ctx);

/// In-place variant: fill `frame` (typically a pooled one) from pushFrame
/// inputs, reusing its vector capacity instead of allocating a fresh frame
/// per unmarshal. `frame` is cleared first; same error contract as above.
util::Status unmarshal_frame_into(const sorcer::ServiceContext& ctx,
                                  FlowFrame& frame);

}  // namespace sensorcer::flow
