#pragma once
// FlowManager — the provider that turns FlowSpecs into running pipelines.
//
// create_flow() compiles the spec's expressions, prices the two placements
// (placement.h), and instantiates the operators: under edge placement one
// shared StageRunner is fed straight from the sensors' reading taps and
// only emissions ever touch the fabric; under central placement a relay
// FlowOperator is deployed through the provision monitor (cost-model node
// scorer attached to its ServiceElement) and per-sensor FlowSources stream
// batched frames at it. Relays ride the existing failover machinery: the
// monitor re-places them on node death and hands state over, while sources
// buffer and rebind through their leased notify() subscriptions.
//
// The host environment injects a SourceBinder — the hook that attaches a
// reading tap to a named sensor (core wires it to the ESP's record() path,
// so a flow consumes the same sampled readings the historian feeder does:
// zero additional sensor reads).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flow/operator.h"
#include "flow/placement.h"
#include "flow/spec.h"
#include "registry/lease_renewal.h"
#include "rio/monitor.h"
#include "sorcer/accessor.h"
#include "sorcer/provider.h"
#include "util/scheduler.h"

namespace sensorcer::flow {

struct FlowManagerConfig {
  /// Frame batching of central-placement sources.
  FlushConfig source;
  /// Emission batching of the stage runner's historian sink.
  FlushConfig sink;
  /// QoS a relay operator demands of its hosting cybernode.
  rio::QosRequirement relay_qos{0.25, 32.0, "", {}};
  /// Sensors' sampling period — the cost model's rate input.
  util::SimDuration sample_period = util::kSecond;
};

/// Releases a reading tap installed by a SourceBinder.
struct TapHandle {
  std::function<void()> release;
};

/// Attach `tap` to every reading the named sensor records. Injected by the
/// host (core/deployment) so the flow layer stays below core.
using SourceBinder = std::function<util::Result<TapHandle>(
    const std::string& sensor,
    std::function<void(const sensor::Reading&)> tap)>;

/// Aggregated per-flow counters (sources + stage runner).
struct FlowStats {
  std::string name;
  std::string placement;    // "edge" / "central"
  std::string explanation;  // cost-model decision trace
  std::size_t sensors = 0;
  bool relay_deployed = false;
  std::uint64_t readings_in = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t filtered_out = 0;
  std::uint64_t emitted = 0;
  std::uint64_t sink_pushed = 0;
  std::uint64_t sink_failures = 0;
  std::uint64_t dropped = 0;
  std::uint64_t frames_pushed = 0;
  std::uint64_t frames_requeued = 0;
  std::uint64_t rebinds = 0;
  std::size_t pending = 0;
};

class FlowManager : public sorcer::ServiceProvider {
 public:
  /// `monitor` may be null (no Rio in the deployment): flows then always
  /// run edge-placed; kForceCentral fails with kFailedPrecondition.
  FlowManager(std::string name, sorcer::ServiceAccessor& accessor,
              util::Scheduler& scheduler, registry::LeaseRenewalManager& lrm,
              rio::ProvisionMonitor* monitor = nullptr,
              FlowManagerConfig config = {});

  ~FlowManager() override;

  void set_source_binder(SourceBinder binder) { binder_ = std::move(binder); }

  /// Cost-model rate input (deployment wires its sampling policy through).
  void set_sample_period(util::SimDuration period) {
    config_.sample_period = period;
  }

  // --- flow lifecycle ---------------------------------------------------------

  util::Status create_flow(const FlowSpec& spec);
  util::Status destroy_flow(const std::string& name);

  // --- introspection ----------------------------------------------------------

  [[nodiscard]] std::vector<FlowStats> list_flows() const;
  [[nodiscard]] util::Result<FlowStats> stats(const std::string& name) const;
  /// The placement decision for `name`, or null.
  [[nodiscard]] const PlacementPlan* plan(const std::string& name) const;
  /// Flows table for the browser / ops tooling.
  [[nodiscard]] std::string render_flows() const;
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  [[nodiscard]] const FlowManagerConfig& config() const { return config_; }

 private:
  struct ActiveFlow {
    FlowSpec spec;
    PlacementPlan plan;
    /// Edge placement: the fused runner every tap feeds.
    std::unique_ptr<StageRunner> runner;
    /// Central placement: per-sensor frame pushers + the relay's names.
    std::vector<std::unique_ptr<FlowSource>> sources;
    std::string relay_name;
    std::string opstring;
    std::vector<TapHandle> taps;
  };

  [[nodiscard]] FlowStats stats_for(const ActiveFlow& flow) const;
  void release_taps(ActiveFlow& flow);
  [[nodiscard]] FlowOperator* relay_for(const ActiveFlow& flow) const;

  sorcer::ServiceAccessor& accessor_;
  util::Scheduler& scheduler_;
  registry::LeaseRenewalManager& lrm_;
  rio::ProvisionMonitor* monitor_;
  FlowManagerConfig config_;
  SourceBinder binder_;
  std::map<std::string, ActiveFlow> flows_;
};

}  // namespace sensorcer::flow
