#include "flow/frame.h"

#include <utility>

#include "flow/spec.h"

namespace sensorcer::flow {

namespace {

double encode_quality(sensor::Quality q) {
  switch (q) {
    case sensor::Quality::kGood: return 0.0;
    case sensor::Quality::kSuspect: return 1.0;
    case sensor::Quality::kBad: return 2.0;
  }
  return 0.0;
}

sensor::Quality decode_quality(double q) {
  if (q >= 2.0) return sensor::Quality::kBad;
  if (q >= 1.0) return sensor::Quality::kSuspect;
  return sensor::Quality::kGood;
}

}  // namespace

void FlowFrame::push(const sensor::Reading& reading) {
  timestamps.push_back(static_cast<double>(reading.timestamp));
  values.push_back(reading.value);
  qualities.push_back(encode_quality(reading.quality));
}

sensor::Reading FlowFrame::reading_at(std::size_t i) const {
  return sensor::Reading{static_cast<util::SimTime>(timestamps[i]), values[i],
                         decode_quality(qualities[i]), 0};
}

FlowFrame FramePool::acquire() {
  if (free_.empty()) {
    FlowFrame frame;
    frame.reserve(frame_capacity_);
    return frame;
  }
  FlowFrame frame = std::move(free_.back());
  free_.pop_back();
  frame.clear();
  return frame;
}

void FramePool::release(FlowFrame&& frame) {
  if (free_.size() >= max_retained_) return;  // let it deallocate
  free_.push_back(std::move(frame));
}

void marshal_frame(const std::string& flow_name, const FlowFrame& frame,
                   sorcer::ServiceContext& ctx) {
  ctx.put(path::kFlow, flow_name, sorcer::PathDirection::kIn);
  ctx.put(path::kSensor, frame.sensor, sorcer::PathDirection::kIn);
  ctx.put(path::kTimestamps, frame.timestamps, sorcer::PathDirection::kIn);
  ctx.put(path::kValues, frame.values, sorcer::PathDirection::kIn);
  ctx.put(path::kQualities, frame.qualities, sorcer::PathDirection::kIn);
}

util::Status unmarshal_frame_into(const sorcer::ServiceContext& ctx,
                                  FlowFrame& frame) {
  frame.clear();
  // Borrow every column in place; the only copies are the assigns into the
  // frame's own (capacity-retaining) vectors.
  const auto sensor = ctx.peek_string(path::kSensor);
  if (!sensor.has_value()) {
    return {util::ErrorCode::kInvalidArgument, "frame missing sensor name"};
  }
  const auto* timestamps = ctx.peek_series(path::kTimestamps);
  const auto* values = ctx.peek_series(path::kValues);
  const auto* qualities = ctx.peek_series(path::kQualities);
  if (timestamps == nullptr || values == nullptr || qualities == nullptr) {
    return {util::ErrorCode::kInvalidArgument, "frame missing data arrays"};
  }
  if (values->size() != timestamps->size() ||
      qualities->size() != timestamps->size()) {
    return {util::ErrorCode::kInvalidArgument,
            "frame arrays disagree on length"};
  }
  frame.sensor = *sensor;
  frame.timestamps = *timestamps;
  frame.values = *values;
  frame.qualities = *qualities;
  return util::Status::ok();
}

util::Result<FlowFrame> unmarshal_frame(const sorcer::ServiceContext& ctx) {
  FlowFrame frame;
  if (util::Status s = unmarshal_frame_into(ctx, frame); !s.is_ok()) return s;
  return frame;
}

}  // namespace sensorcer::flow
