#pragma once
// Placement cost model — decides where a flow's movable stages run.
//
// The paper's header-overhead argument (§II) cuts both ways: shipping every
// raw reading to a central operator costs the fabric the full sample rate,
// while fusing filter/window into the edge sources costs only the
// post-stage emission rate — at the price of spending sensor-side compute.
// The model prices the scarce resource — sensor-uplink bytes per second.
// Edge emissions cross the uplink directly and carry a fixed sensor-compute
// premium (weak, battery-bound devices). A central relay takes the full raw
// rate over the uplink, but its onward emissions ride provisioned backbone
// links priced at a deep discount, and the whole option is weighted by the
// load of the best candidate cybernode (a busy fleet makes relaying
// dearer). Reduction-heavy flows therefore fuse at the edge; near-pass-
// through flows relay centrally. kForceEdge/kForceCentral bypass the
// comparison (benchmarks use them as the two ends of the sweep).

#include <functional>
#include <string>
#include <vector>

#include "flow/spec.h"
#include "rio/cybernode.h"

namespace sensorcer::flow {

/// Modeled marshalled cost of one reading inside a frame: three doubles of
/// the parallel arrays (envelope and array headers amortize across the
/// frame).
inline constexpr double kBytesPerReading = 24.0;

/// Sensor-side compute premium: running stages on the (weak, battery-bound)
/// edge devices is charged this fraction on top of the byte cost.
inline constexpr double kEdgeComputePremium = 0.25;

/// Backbone links are provisioned for bulk transfer; bytes a central relay
/// forwards to its sink cost this fraction of a sensor-uplink byte.
inline constexpr double kBackboneDiscount = 0.1;

/// Load view of one candidate cybernode.
struct NodeLoad {
  std::string name;
  double utilization = 0.0;  // [0,1]
  bool edge_labeled = false;  // advertises the "edge" QoS label
};

struct PlacementPlan {
  /// True: stages fuse into the per-sensor sources, only emissions cross
  /// the fabric. False: a relay FlowOperator is provisioned centrally.
  bool edge = true;
  /// Filter selectivity × window reduction (expected emissions per reading).
  double stage_reduction = 1.0;
  /// Modeled fabric load of each option, bytes/second.
  double edge_bytes_per_sec = 0.0;
  double central_bytes_per_sec = 0.0;
  /// Load-weighted costs the decision compared.
  double edge_cost = 0.0;
  double central_cost = 0.0;
  /// Human-readable decision trace (health report / browser).
  std::string explanation;
};

/// Price both placements for `spec` given the sensors' sample period and
/// the current fleet load, honoring spec.placement overrides. An empty
/// `nodes` list forces edge placement (nowhere to relay).
PlacementPlan plan_placement(const FlowSpec& spec,
                             util::SimDuration sample_period,
                             const std::vector<NodeLoad>& nodes);

/// Snapshot a cybernode list into the cost model's load view.
std::vector<NodeLoad> snapshot_loads(
    const std::vector<std::shared_ptr<rio::Cybernode>>& nodes);

/// Node scorer for the relay's ServiceElement: prefer the least-utilized
/// node and penalize "edge"-labeled ones — a relay concentrates the flow's
/// traffic and belongs on backbone compute, not on a sensor-side device.
std::function<double(const rio::Cybernode&)> relay_node_scorer();

}  // namespace sensorcer::flow
