#include "flow/operator.h"

#include <algorithm>
#include <utility>

#include "core/interfaces.h"
#include "obs/metrics.h"
#include "sorcer/exert.h"
#include "sorcer/exertion.h"
#include "util/strings.h"

namespace sensorcer::flow {

namespace {

struct FlowMetrics {
  obs::Counter& readings_in;
  obs::Counter& duplicates_dropped;
  obs::Counter& filtered_out;
  obs::Counter& emitted;
  obs::Counter& sink_pushed;
  obs::Counter& sink_failures;
  obs::Counter& frames_pushed;
  obs::Counter& frames_requeued;
  obs::Counter& dropped;
  obs::Counter& rebinds;
};

FlowMetrics& flow_metrics() {
  static FlowMetrics m{obs::metrics().counter("flow.readings_in"),
                       obs::metrics().counter("flow.duplicates_dropped"),
                       obs::metrics().counter("flow.filtered_out"),
                       obs::metrics().counter("flow.emitted"),
                       obs::metrics().counter("flow.sink_pushed"),
                       obs::metrics().counter("flow.sink_failures"),
                       obs::metrics().counter("flow.frames_pushed"),
                       obs::metrics().counter("flow.frames_requeued"),
                       obs::metrics().counter("flow.dropped"),
                       obs::metrics().counter("flow.rebinds")};
  return m;
}

registry::ServiceTemplate relay_template(const std::string& relay_name) {
  return registry::ServiceTemplate::by_name(sorcer::type::kFlowOperator,
                                            relay_name);
}

}  // namespace

// --- StageRunner -------------------------------------------------------------

StageRunner::StageRunner(std::string flow, CompiledStages stages,
                         SinkSpec sink, sorcer::ServiceAccessor& accessor,
                         util::Scheduler& scheduler, FlushConfig config)
    : flow_(std::move(flow)),
      stages_(std::move(stages)),
      sink_(std::move(sink)),
      accessor_(accessor),
      scheduler_(scheduler),
      config_(config) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (sink_.kind == SinkKind::kHistorian && config_.flush_period > 0) {
    flush_timer_ = scheduler_.schedule_every(config_.flush_period,
                                             [this] { flush_sink(); });
  }
}

StageRunner::~StageRunner() {
  scheduler_.cancel(flush_timer_);
  if (pending_flush_timer_ != 0) scheduler_.cancel(pending_flush_timer_);
}

bool StageRunner::ingest(const std::string& sensor,
                         const sensor::Reading& reading) {
  PerSensor& state = sensors_[sensor];
  // Replay dedup: a frame whose response was lost is re-sent by the source,
  // and after a relay failover the successor adopts the watermark — either
  // way an already-processed timestamp must not re-enter the window.
  if (reading.timestamp <= state.watermark) {
    ++counters_.duplicates_dropped;
    flow_metrics().duplicates_dropped.add(1);
    return false;
  }
  state.watermark = reading.timestamp;
  ++counters_.readings_in;
  flow_metrics().readings_in.add(1);

  if (stages_.has_filter) {
    const double slots[] = {reading.value};
    auto keep = stages_.filter.evaluate(slots);
    // An evaluation error (domain fault on this value) rejects the reading,
    // like a predicate returning false.
    if (!keep.is_ok() || keep.value() == 0.0) {
      ++counters_.filtered_out;
      flow_metrics().filtered_out.add(1);
      return true;
    }
  }

  sensor::Reading out;
  if (window_accept(state.window, reading, out)) emit(sensor, out);
  return true;
}

bool StageRunner::window_accept(WindowState& w, const sensor::Reading& reading,
                                sensor::Reading& out) {
  const auto fold = [&w](const sensor::Reading& r) {
    if (w.count == 0) {
      w.min = w.max = r.value;
    } else {
      w.min = std::min(w.min, r.value);
      w.max = std::max(w.max, r.value);
    }
    ++w.count;
    w.sum += r.value;
    w.last = r.value;
    w.last_timestamp = r.timestamp;
  };
  const auto close = [this, &w]() {
    sensor::Reading aggregate{w.last_timestamp, aggregate_value(w),
                             sensor::Quality::kGood, 0};
    w.count = 0;
    w.sum = 0.0;
    return aggregate;
  };

  switch (stages_.window.kind) {
    case WindowKind::kNone:
      out = reading;
      return true;
    case WindowKind::kCount:
      fold(reading);
      if (w.count >= stages_.window.count) {
        out = close();
        return true;
      }
      return false;
    case WindowKind::kTime: {
      const auto bucket = static_cast<std::int64_t>(
          reading.timestamp / stages_.window.span);
      if (w.bucket >= 0 && bucket != w.bucket && w.count > 0) {
        out = close();
        w.bucket = bucket;
        fold(reading);
        return true;
      }
      w.bucket = bucket;
      fold(reading);
      return false;
    }
  }
  return false;
}

double StageRunner::aggregate_value(const WindowState& w) const {
  switch (stages_.window.aggregate) {
    case Aggregate::kLast: return w.last;
    case Aggregate::kMean:
      return w.count > 0 ? w.sum / static_cast<double>(w.count) : 0.0;
    case Aggregate::kMin: return w.min;
    case Aggregate::kMax: return w.max;
    case Aggregate::kSum: return w.sum;
    case Aggregate::kCount: return static_cast<double>(w.count);
  }
  return w.last;
}

void StageRunner::emit(const std::string& sensor,
                       const sensor::Reading& reading) {
  sensor::Reading mapped = reading;
  if (stages_.has_map) {
    const double slots[] = {reading.value};
    auto value = stages_.map.evaluate(slots);
    if (!value.is_ok()) {
      ++counters_.dropped;
      flow_metrics().dropped.add(1);
      return;
    }
    mapped.value = value.value();
  }
  ++counters_.emitted;
  flow_metrics().emitted.add(1);
  deliver(sensor, mapped);
}

void StageRunner::deliver(const std::string& sensor,
                          const sensor::Reading& reading) {
  switch (sink_.kind) {
    case SinkKind::kHistorian:
      pending_.push_back(Emission{sensor, reading});
      while (pending_.size() > config_.pending_cap) {
        pending_.pop_front();
        ++counters_.dropped;
        flow_metrics().dropped.add(1);
      }
      if (pending_.size() >= config_.batch_size) schedule_flush();
      return;
    case SinkKind::kTrigger:
      sink_.trigger(sensor, reading);
      ++counters_.sink_pushed;
      flow_metrics().sink_pushed.add(1);
      return;
    case SinkKind::kListener: {
      registry::ServiceEvent event;
      event.sequence = ++event_sequence_;
      event.transition = registry::Transition::kMatchToMatch;
      event.timestamp = reading.timestamp;
      event.item.attributes.set("flow", flow_);
      event.item.attributes.set(registry::attr::kName, sensor);
      event.item.attributes.set("value", reading.value);
      event.item.attributes.set(
          "timestamp", static_cast<std::int64_t>(reading.timestamp));
      sink_.listener(event);
      ++counters_.sink_pushed;
      flow_metrics().sink_pushed.add(1);
      return;
    }
  }
}

void StageRunner::schedule_flush() {
  if (flush_scheduled_ || flushing_) return;
  flush_scheduled_ = true;
  // Zero-delay timer: sink pushes pump the fabric, so they must start from
  // a scheduler callback, never from the middle of an ingest.
  pending_flush_timer_ = scheduler_.schedule_after(0, [this] {
    flush_scheduled_ = false;
    pending_flush_timer_ = 0;
    flush_sink();
  });
}

std::size_t StageRunner::flush_sink() {
  if (flushing_ || pending_.empty()) return 0;
  flushing_ = true;
  std::vector<Emission> window(pending_.begin(), pending_.end());
  pending_.clear();

  // Group the window by sensor (emissions from concurrent flows interleave
  // S0,S1,S2,... — run-length chunking would ship one reading per call),
  // then cut each group into max_batch appendBatch chunks, pipelined as a
  // single scatter-gather batch. Per-sensor order is preserved; order
  // across sensors is immaterial (distinct series). Emissions land under
  // the flow-qualified series so they never collide with the feeder's raw
  // push of the same sensor — and the historian's timestamp dedup still
  // makes chunk replays after a lost response idempotent.
  std::vector<std::pair<std::string, std::vector<sensor::Reading>>> groups;
  for (const Emission& emission : window) {
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [&](const auto& g) { return g.first == emission.sensor; });
    if (it == groups.end()) {
      groups.emplace_back(emission.sensor, std::vector<sensor::Reading>{});
      it = std::prev(groups.end());
    }
    it->second.push_back(emission.reading);
  }

  std::vector<sorcer::ExertionPtr> chunks;
  std::vector<std::vector<Emission>> chunk_emissions;
  for (const auto& [sensor, readings] : groups) {
    std::size_t offset = 0;
    while (offset < readings.size()) {
      const std::size_t n =
          std::min(config_.max_batch, readings.size() - offset);
      std::vector<double> timestamps;
      std::vector<double> values;
      std::vector<double> qualities;
      timestamps.reserve(n);
      values.reserve(n);
      qualities.reserve(n);
      std::vector<Emission> carried;
      carried.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const sensor::Reading& r = readings[offset + i];
        timestamps.push_back(static_cast<double>(r.timestamp));
        values.push_back(r.value);
        qualities.push_back(0.0);
        carried.push_back(Emission{sensor, r});
      }
      auto task = sorcer::Task::make(
          "flow-sink:" + flow_,
          {core::kDataCollectionType, core::op::kAppendBatch, ""});
      sorcer::ServiceContext& ctx = task->context();
      ctx.put(core::path::kHistSensor, flow_ + "/" + sensor,
              sorcer::PathDirection::kIn);
      ctx.put(core::path::kHistTimestamps, std::move(timestamps),
              sorcer::PathDirection::kIn);
      ctx.put(core::path::kHistValues, std::move(values),
              sorcer::PathDirection::kIn);
      ctx.put(core::path::kHistQualities, std::move(qualities),
              sorcer::PathDirection::kIn);
      chunks.push_back(std::move(task));
      chunk_emissions.push_back(std::move(carried));
      offset += n;
    }
  }
  (void)sorcer::exert_all(chunks, accessor_);

  std::size_t total = 0;
  std::vector<Emission> requeue;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const std::size_t n = chunk_emissions[i].size();
    if (chunks[i]->status() == sorcer::ExertStatus::kDone) {
      total += n;
      counters_.sink_pushed += n;
      flow_metrics().sink_pushed.add(n);
    } else {
      ++counters_.sink_failures;
      flow_metrics().sink_failures.add(1);
      requeue.insert(requeue.end(), chunk_emissions[i].begin(),
                     chunk_emissions[i].end());
    }
  }
  if (!requeue.empty()) {
    pending_.insert(pending_.begin(), requeue.begin(), requeue.end());
  }
  flushing_ = false;
  return total;
}

void StageRunner::adopt(StageRunner& predecessor) {
  // The successor is freshly built: take over the per-sensor watermarks and
  // mid-accumulation windows wholesale, put the predecessor's un-pushed
  // emissions ahead of anything local, and carry the counters so flow stats
  // survive the failover.
  sensors_ = predecessor.sensors_;
  pending_.insert(pending_.begin(), predecessor.pending_.begin(),
                  predecessor.pending_.end());
  predecessor.pending_.clear();
  event_sequence_ = std::max(event_sequence_, predecessor.event_sequence_);
  counters_.readings_in += predecessor.counters_.readings_in;
  counters_.duplicates_dropped += predecessor.counters_.duplicates_dropped;
  counters_.filtered_out += predecessor.counters_.filtered_out;
  counters_.emitted += predecessor.counters_.emitted;
  counters_.sink_pushed += predecessor.counters_.sink_pushed;
  counters_.sink_failures += predecessor.counters_.sink_failures;
  counters_.dropped += predecessor.counters_.dropped;
  if (!pending_.empty()) schedule_flush();
}

// --- FlowOperator ------------------------------------------------------------

FlowOperator::FlowOperator(std::string name, std::string flow,
                           CompiledStages stages, SinkSpec sink,
                           sorcer::ServiceAccessor& accessor,
                           util::Scheduler& scheduler, FlushConfig config)
    : ServiceProvider(std::move(name), {sorcer::type::kFlowOperator}),
      runner_(std::make_unique<StageRunner>(std::move(flow), std::move(stages),
                                            std::move(sink), accessor,
                                            scheduler, config)) {
  registry::Entry attrs;
  attrs.set("flow", runner_->flow());
  set_attributes(attrs);

  add_operation(
      sorcer::op::kPushFrame,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        if (retired_) {
          return {util::ErrorCode::kUnavailable,
                  "flow operator retired (state handed to successor)"};
        }
        if (util::Status s = unmarshal_frame_into(ctx, rx_frame_);
            !s.is_ok()) {
          return s;
        }
        std::int64_t accepted = 0;
        std::int64_t duplicates = 0;
        for (std::size_t i = 0; i < rx_frame_.size(); ++i) {
          if (runner_->ingest(rx_frame_.sensor, rx_frame_.reading_at(i))) {
            ++accepted;
          } else {
            ++duplicates;
          }
        }
        ctx.put(path::kAccepted, accepted, sorcer::PathDirection::kOut);
        ctx.put(path::kDuplicates, duplicates, sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      500 * util::kMicrosecond);
}

void FlowOperator::assume_state_from(sorcer::ServiceProvider& predecessor) {
  auto* relay = dynamic_cast<FlowOperator*>(&predecessor);
  if (relay == nullptr) return;
  runner_->adopt(relay->runner());
  // The dead node's instance stays attached to the fabric until destroyed;
  // without retirement a late frame would be absorbed there — after the
  // state hand-off — and be lost to the flow forever.
  relay->retire();
}

// --- FlowSource --------------------------------------------------------------

FlowSource::FlowSource(std::string flow, std::string sensor,
                       std::string relay_name, util::Scheduler& scheduler,
                       sorcer::ServiceAccessor& accessor, FlushConfig config)
    : flow_(std::move(flow)),
      sensor_(std::move(sensor)),
      relay_name_(std::move(relay_name)),
      scheduler_(scheduler),
      accessor_(accessor),
      config_(config),
      pool_(config.batch_size ? config.batch_size : 1) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.flush_period > 0) {
    flush_timer_ =
        scheduler_.schedule_every(config_.flush_period, [this] { flush(); });
  }
}

FlowSource::~FlowSource() {
  scheduler_.cancel(flush_timer_);
  if (pending_flush_timer_ != 0) scheduler_.cancel(pending_flush_timer_);
  unbind();
}

void FlowSource::bind(const std::shared_ptr<registry::LookupService>& lus,
                      registry::LeaseRenewalManager& lrm) {
  unbind();
  lus_ = lus;
  lrm_ = &lrm;
  registry::EventRegistration reg = lus->notify(
      relay_template(relay_name_), registry::kAllTransitions,
      [this](const registry::ServiceEvent& event) { on_transition(event); },
      config_.subscription_lease);
  subscription_id_ = reg.id;
  subscription_lease_ = reg.lease.id;
  lrm.manage(reg.lease, lus, config_.subscription_lease);
  bound_ = lus->lookup_one(relay_template(relay_name_)).is_ok();
  if (bound_ && !queued_.empty()) schedule_flush();
}

void FlowSource::unbind() {
  if (auto lus = lus_.lock()) {
    if (lrm_ != nullptr && !subscription_lease_.is_nil()) {
      lrm_->release(subscription_lease_);
    }
    if (!subscription_id_.is_nil()) {
      (void)lus->cancel_notify(subscription_id_);
    }
  }
  lus_.reset();
  lrm_ = nullptr;
  subscription_id_ = util::Uuid{};
  subscription_lease_ = util::Uuid{};
  bound_ = false;
}

void FlowSource::on_transition(const registry::ServiceEvent& event) {
  if (event.transition == registry::Transition::kNoMatchToMatch) {
    if (!bound_) {
      bound_ = true;
      ++rebinds_;
      flow_metrics().rebinds.add(1);
      // The relay moved: a cached resolution for its name would point at
      // the retired instance until its lease lapses; start clean.
      accessor_.clear_cache();
    }
    if (pending_readings() > 0) schedule_flush();
    return;
  }
  if (event.transition == registry::Transition::kMatchToNoMatch) {
    auto lus = lus_.lock();
    bound_ =
        lus != nullptr && lus->lookup_one(relay_template(relay_name_)).is_ok();
  }
}

void FlowSource::seal_current() {
  if (!current_open_ || current_.empty()) return;
  queued_.push_back(std::move(current_));
  current_ = FlowFrame{};
  current_open_ = false;
  std::size_t total = pending_readings();
  while (total > config_.pending_cap && !queued_.empty()) {
    const std::size_t n = queued_.front().size();
    pool_.release(std::move(queued_.front()));
    queued_.pop_front();
    dropped_ += n;
    flow_metrics().dropped.add(n);
    total = pending_readings();
  }
}

void FlowSource::offer(const sensor::Reading& reading) {
  if (!current_open_) {
    current_ = pool_.acquire();
    current_.sensor = sensor_;
    current_open_ = true;
  }
  current_.push(reading);
  if (current_.size() >= config_.batch_size) {
    seal_current();
    if (bound_) schedule_flush();
  }
}

std::size_t FlowSource::pending_readings() const {
  std::size_t total = current_open_ ? current_.size() : 0;
  for (const auto& frame : queued_) total += frame.size();
  return total;
}

void FlowSource::schedule_flush() {
  if (flush_scheduled_ || flushing_) return;
  flush_scheduled_ = true;
  pending_flush_timer_ = scheduler_.schedule_after(0, [this] {
    flush_scheduled_ = false;
    pending_flush_timer_ = 0;
    flush();
  });
}

std::size_t FlowSource::flush() {
  if (flushing_ || !bound_) return 0;
  seal_current();
  if (queued_.empty()) return 0;
  flushing_ = true;
  std::vector<FlowFrame> frames(std::make_move_iterator(queued_.begin()),
                                std::make_move_iterator(queued_.end()));
  queued_.clear();

  // All queued frames leave as one scatter-gather batch: K frames overlap
  // their wire round-trips instead of serializing. The relay is pinned by
  // instance name — there is exactly one legitimate target, so failures are
  // re-queued for the rebind path rather than substituted away.
  std::vector<sorcer::ExertionPtr> batch;
  batch.reserve(frames.size());
  for (const FlowFrame& frame : frames) {
    auto task = sorcer::Task::make(
        "flow-push:" + flow_ + ":" + sensor_,
        {sorcer::type::kFlowOperator, sorcer::op::kPushFrame, relay_name_});
    marshal_frame(flow_, frame, task->context());
    batch.push_back(std::move(task));
  }
  (void)sorcer::exert_all(batch, accessor_);

  std::size_t pushed = 0;
  std::vector<FlowFrame> requeue;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i]->status() == sorcer::ExertStatus::kDone) {
      ++frames_pushed_;
      pushed += frames[i].size();
      readings_pushed_ += frames[i].size();
      flow_metrics().frames_pushed.add(1);
      pool_.release(std::move(frames[i]));
    } else {
      ++frames_requeued_;
      flow_metrics().frames_requeued.add(1);
      requeue.push_back(std::move(frames[i]));
    }
  }
  for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
    queued_.push_front(std::move(*it));
  }
  flushing_ = false;
  return pushed;
}

}  // namespace sensorcer::flow
