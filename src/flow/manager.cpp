#include "flow/manager.h"

#include <utility>

#include "obs/metrics.h"
#include "util/log.h"
#include "util/strings.h"

namespace sensorcer::flow {

namespace {

std::string relay_name_for(const std::string& flow) { return "flow-op:" + flow; }
std::string opstring_for(const std::string& flow) { return "flow:" + flow; }

}  // namespace

FlowManager::FlowManager(std::string name, sorcer::ServiceAccessor& accessor,
                         util::Scheduler& scheduler,
                         registry::LeaseRenewalManager& lrm,
                         rio::ProvisionMonitor* monitor,
                         FlowManagerConfig config)
    : ServiceProvider(std::move(name), {kFlowManagerType}),
      accessor_(accessor),
      scheduler_(scheduler),
      lrm_(lrm),
      monitor_(monitor),
      config_(std::move(config)) {
  add_operation(
      op::kListFlows,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        ctx.put(path::kReport, render_flows(), sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      util::kMillisecond);
  add_operation(
      op::kFlowStats,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto flow = ctx.get_string(path::kFlow);
        if (!flow.is_ok()) return flow.status();
        auto s = stats(flow.value());
        if (!s.is_ok()) return s.status();
        ctx.put(path::kPlacement, s.value().placement,
                sorcer::PathDirection::kOut);
        ctx.put(path::kReadingsIn,
                static_cast<std::int64_t>(s.value().readings_in),
                sorcer::PathDirection::kOut);
        ctx.put(path::kEmitted, static_cast<std::int64_t>(s.value().emitted),
                sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      util::kMillisecond);
}

FlowManager::~FlowManager() {
  // Local teardown only: release the sensor taps and drop runners/sources.
  // The destructor must not reach into the provision monitor — a lookup
  // registration's proxy can hold the last reference to this manager and
  // release it during registry teardown, after the monitor is already gone.
  // Undeploying a live flow's relay is destroy_flow()'s concern.
  for (auto& [name, flow] : flows_) {
    release_taps(flow);
    for (auto& source : flow.sources) source->unbind();
  }
  flows_.clear();
}

util::Status FlowManager::create_flow(const FlowSpec& spec) {
  if (flows_.contains(spec.name)) {
    return {util::ErrorCode::kInvalidArgument,
            "flow '" + spec.name + "' already exists"};
  }
  if (!binder_) {
    return {util::ErrorCode::kFailedPrecondition,
            "flow manager has no source binder (deployment wiring missing)"};
  }
  auto stages = compile_stages(spec);
  if (!stages.is_ok()) return stages.status();

  // Price the placements against the current fleet. Without a provision
  // monitor there is nowhere to relay, so everything runs edge.
  std::vector<NodeLoad> loads;
  if (monitor_ != nullptr) loads = snapshot_loads(monitor_->known_cybernodes());
  if (monitor_ == nullptr && spec.placement == Placement::kForceCentral) {
    return {util::ErrorCode::kFailedPrecondition,
            "central placement requires a provision monitor"};
  }
  ActiveFlow flow;
  flow.spec = spec;
  flow.plan = plan_placement(spec, config_.sample_period, loads);
  if (monitor_ == nullptr) {
    flow.plan.edge = true;
    flow.plan.explanation = "edge: no provision monitor in this deployment";
  }

  if (flow.plan.edge) {
    // Stages fuse into the sources: one shared runner fed by every tap.
    flow.runner = std::make_unique<StageRunner>(
        spec.name, stages.value(), spec.sink, accessor_, scheduler_,
        config_.sink);
  } else {
    // Central: deploy the relay through the monitor, then aim one frame
    // source per sensor at its registration.
    flow.relay_name = relay_name_for(spec.name);
    flow.opstring = opstring_for(spec.name);
    rio::ServiceElement element;
    element.name = flow.relay_name;
    element.qos = config_.relay_qos;
    element.placement_score = relay_node_scorer();
    // The factory re-runs on failover; it captures only immutable copies so
    // a replacement instance rebuilds the same pipeline.
    const CompiledStages compiled = stages.value();
    const SinkSpec sink = spec.sink;
    const std::string flow_name = spec.name;
    sorcer::ServiceAccessor& accessor = accessor_;
    util::Scheduler& scheduler = scheduler_;
    const FlushConfig sink_config = config_.sink;
    element.factory =
        [flow_name, compiled, sink, &accessor, &scheduler,
         sink_config](const std::string& instance_name) {
          return std::make_shared<FlowOperator>(instance_name, flow_name,
                                                compiled, sink, accessor,
                                                scheduler, sink_config);
        };
    if (util::Status deployed = monitor_->deploy(
            rio::OperationalString{flow.opstring, {std::move(element)}});
        !deployed.is_ok()) {
      return deployed;
    }
    // Losing a source sensor thins the stream but the relay keeps running
    // on whatever still flows, so the edges are optional: the relay shows
    // degraded until the monitor re-places the sensor (undeploying the
    // relay drops its graph node and these edges with it).
    for (const std::string& sensor : spec.sensors) {
      (void)monitor_->add_dependency(flow.relay_name, sensor,
                                     rio::DependencyKind::kOptional);
    }
    auto lookups = accessor_.lookups();
    if (lookups.empty()) {
      (void)monitor_->undeploy(flow.opstring);
      return {util::ErrorCode::kFailedPrecondition,
              "no lookup service for flow source subscriptions"};
    }
    for (const std::string& sensor : spec.sensors) {
      auto source = std::make_unique<FlowSource>(spec.name, sensor,
                                                 flow.relay_name, scheduler_,
                                                 accessor_, config_.source);
      source->bind(lookups.front(), lrm_);
      flow.sources.push_back(std::move(source));
    }
  }

  // Tap every sensor's record() path — the flow consumes the very readings
  // the sampling loop already produced, never re-reading the hardware.
  for (std::size_t i = 0; i < spec.sensors.size(); ++i) {
    const std::string& sensor = spec.sensors[i];
    util::Result<TapHandle> tap =
        flow.plan.edge
            ? binder_(sensor,
                      [runner = flow.runner.get(), sensor](
                          const sensor::Reading& reading) {
                        (void)runner->ingest(sensor, reading);
                      })
            : binder_(sensor, [source = flow.sources[i].get()](
                                  const sensor::Reading& reading) {
                source->offer(reading);
              });
    if (!tap.is_ok()) {
      release_taps(flow);
      for (auto& source : flow.sources) source->unbind();
      if (!flow.opstring.empty()) (void)monitor_->undeploy(flow.opstring);
      return tap.status();
    }
    flow.taps.push_back(std::move(tap).value());
  }

  SENSORCER_LOG_INFO("flow", "flow '%s' created (%s)", spec.name.c_str(),
                     flow.plan.explanation.c_str());
  flows_.emplace(spec.name, std::move(flow));
  obs::metrics().gauge("flow.flows").set(static_cast<double>(flows_.size()));
  return util::Status::ok();
}

util::Status FlowManager::destroy_flow(const std::string& name) {
  auto it = flows_.find(name);
  if (it == flows_.end()) {
    return {util::ErrorCode::kNotFound, "unknown flow '" + name + "'"};
  }
  ActiveFlow& flow = it->second;
  release_taps(flow);
  for (auto& source : flow.sources) source->unbind();
  if (!flow.opstring.empty() && monitor_ != nullptr) {
    (void)monitor_->undeploy(flow.opstring);
  }
  flows_.erase(it);
  obs::metrics().gauge("flow.flows").set(static_cast<double>(flows_.size()));
  return util::Status::ok();
}

void FlowManager::release_taps(ActiveFlow& flow) {
  for (auto& tap : flow.taps) {
    if (tap.release) tap.release();
  }
  flow.taps.clear();
}

FlowOperator* FlowManager::relay_for(const ActiveFlow& flow) const {
  if (monitor_ == nullptr || flow.opstring.empty()) return nullptr;
  FlowOperator* found = nullptr;
  for (const auto& instance : monitor_->deployed_instances(flow.opstring)) {
    auto* relay = dynamic_cast<FlowOperator*>(instance.get());
    if (relay == nullptr) continue;
    // Prefer the live successor over a retired predecessor.
    if (found == nullptr || !relay->retired()) found = relay;
  }
  return found;
}

FlowStats FlowManager::stats_for(const ActiveFlow& flow) const {
  FlowStats s;
  s.name = flow.spec.name;
  s.placement = flow.plan.edge ? "edge" : "central";
  s.explanation = flow.plan.explanation;
  s.sensors = flow.spec.sensors.size();
  const StageRunner* runner = flow.runner.get();
  if (!flow.plan.edge) {
    FlowOperator* relay = relay_for(flow);
    s.relay_deployed = relay != nullptr;
    if (relay != nullptr) runner = &relay->runner();
  }
  if (runner != nullptr) {
    const StageCounters& c = runner->counters();
    s.readings_in = c.readings_in;
    s.duplicates_dropped = c.duplicates_dropped;
    s.filtered_out = c.filtered_out;
    s.emitted = c.emitted;
    s.sink_pushed = c.sink_pushed;
    s.sink_failures = c.sink_failures;
    s.dropped = c.dropped;
    s.pending += runner->pending_sink();
  }
  for (const auto& source : flow.sources) {
    s.frames_pushed += source->frames_pushed();
    s.frames_requeued += source->frames_requeued();
    s.rebinds += source->rebinds();
    s.dropped += source->dropped();
    s.pending += source->pending_readings();
  }
  return s;
}

std::vector<FlowStats> FlowManager::list_flows() const {
  std::vector<FlowStats> out;
  out.reserve(flows_.size());
  for (const auto& [name, flow] : flows_) out.push_back(stats_for(flow));
  return out;
}

util::Result<FlowStats> FlowManager::stats(const std::string& name) const {
  auto it = flows_.find(name);
  if (it == flows_.end()) {
    return util::Status{util::ErrorCode::kNotFound,
                        "unknown flow '" + name + "'"};
  }
  return stats_for(it->second);
}

const PlacementPlan* FlowManager::plan(const std::string& name) const {
  auto it = flows_.find(name);
  return it == flows_.end() ? nullptr : &it->second.plan;
}

std::string FlowManager::render_flows() const {
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, flow] : flows_) {
    const FlowStats s = stats_for(flow);
    rows.push_back({name, s.placement, util::format("%zu", s.sensors),
                    util::format("%llu", (unsigned long long)s.readings_in),
                    util::format("%llu", (unsigned long long)s.emitted),
                    util::format("%llu", (unsigned long long)s.sink_pushed),
                    util::format("%zu", s.pending)});
  }
  return util::render_table(
      {"flow", "placement", "sensors", "in", "emitted", "sunk", "pending"},
      rows);
}

}  // namespace sensorcer::flow
