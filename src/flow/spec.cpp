#include "flow/spec.h"

#include "expr/evaluator.h"

namespace sensorcer::flow {

const char* window_kind_name(WindowKind kind) {
  switch (kind) {
    case WindowKind::kNone: return "none";
    case WindowKind::kCount: return "count";
    case WindowKind::kTime: return "time";
  }
  return "?";
}

const char* aggregate_name(Aggregate agg) {
  switch (agg) {
    case Aggregate::kLast: return "last";
    case Aggregate::kMean: return "mean";
    case Aggregate::kMin: return "min";
    case Aggregate::kMax: return "max";
    case Aggregate::kSum: return "sum";
    case Aggregate::kCount: return "count";
  }
  return "?";
}

const char* sink_kind_name(SinkKind kind) {
  switch (kind) {
    case SinkKind::kHistorian: return "historian";
    case SinkKind::kTrigger: return "trigger";
    case SinkKind::kListener: return "listener";
  }
  return "?";
}

const char* placement_name(Placement placement) {
  switch (placement) {
    case Placement::kAuto: return "auto";
    case Placement::kForceEdge: return "edge";
    case Placement::kForceCentral: return "central";
  }
  return "?";
}

double WindowSpec::reduction(util::SimDuration sample_period) const {
  switch (kind) {
    case WindowKind::kNone:
      return 1.0;
    case WindowKind::kCount:
      return count > 1 ? 1.0 / static_cast<double>(count) : 1.0;
    case WindowKind::kTime: {
      if (span <= 0 || sample_period <= 0) return 1.0;
      const double r =
          static_cast<double>(sample_period) / static_cast<double>(span);
      return r < 1.0 ? r : 1.0;
    }
  }
  return 1.0;
}

util::Status validate(const FlowSpec& spec) {
  if (spec.name.empty()) {
    return {util::ErrorCode::kInvalidArgument, "flow needs a name"};
  }
  if (spec.sensors.empty()) {
    return {util::ErrorCode::kInvalidArgument,
            "flow '" + spec.name + "' selects no sensors"};
  }
  if (spec.window.kind == WindowKind::kCount && spec.window.count < 2) {
    return {util::ErrorCode::kInvalidArgument,
            "count window needs count >= 2"};
  }
  if (spec.window.kind == WindowKind::kTime && spec.window.span <= 0) {
    return {util::ErrorCode::kInvalidArgument,
            "time window needs a positive span"};
  }
  if (spec.sink.kind == SinkKind::kTrigger && !spec.sink.trigger) {
    return {util::ErrorCode::kInvalidArgument,
            "trigger sink needs a callback"};
  }
  if (spec.sink.kind == SinkKind::kListener && !spec.sink.listener) {
    return {util::ErrorCode::kInvalidArgument,
            "listener sink needs a listener"};
  }
  if (!(spec.selectivity_hint > 0.0) || spec.selectivity_hint > 1.0) {
    return {util::ErrorCode::kInvalidArgument,
            "selectivity hint must be in (0, 1]"};
  }
  return util::Status::ok();
}

namespace {

util::Result<expr::CompiledProgram> compile_over_v(const std::string& source) {
  auto parsed = expr::Expression::compile(source);
  if (!parsed.is_ok()) return parsed.status();
  static const std::string kSlots[] = {"v"};
  return parsed.value().bind(kSlots);
}

}  // namespace

util::Result<CompiledStages> compile_stages(const FlowSpec& spec) {
  if (util::Status valid = validate(spec); !valid.is_ok()) return valid;
  CompiledStages stages;
  stages.window = spec.window;
  if (!spec.filter.empty()) {
    auto program = compile_over_v(spec.filter);
    if (!program.is_ok()) return program.status();
    stages.filter = program.value();
    stages.has_filter = true;
  }
  if (!spec.map.empty()) {
    auto program = compile_over_v(spec.map);
    if (!program.is_ok()) return program.status();
    stages.map = program.value();
    stages.has_map = true;
  }
  return stages;
}

}  // namespace sensorcer::flow
