#pragma once
// Threshold Watch — remote sensor status without a site visit.
//
// Motivation §II.2: "In adverse weather conditions, there are no solid
// tools available for him, which can give the status information of the
// sensor in place." This provider watches sensor services through the
// federation, raises alarms when a value leaves its configured band, when a
// service becomes unreachable, and when it recovers — delivering them to a
// listener (e.g. an EventMailbox for intermittently connected browsers) and
// keeping a bounded history.

#include <deque>
#include <functional>
#include <map>

#include "core/interfaces.h"
#include "flow/spec.h"
#include "sorcer/accessor.h"
#include "sorcer/provider.h"
#include "util/scheduler.h"

namespace sensorcer::core {

/// Permitted value band for one watched sensor service.
struct AlarmRule {
  std::string sensor;
  double low = -1e300;
  double high = 1e300;
};

enum class AlarmKind {
  kLow,          // value fell below the band
  kHigh,         // value rose above the band
  kUnreachable,  // the service cannot be read
  kRecovered,    // back in band / reachable again
};

const char* alarm_kind_name(AlarmKind kind);

/// One raised alarm.
struct Alarm {
  util::SimTime when = 0;
  std::string sensor;
  AlarmKind kind = AlarmKind::kRecovered;
  double value = 0.0;  // meaningless for kUnreachable

  [[nodiscard]] std::string to_string() const;
};

using AlarmListener = std::function<void(const Alarm&)>;

class ThresholdWatch : public sorcer::ServiceProvider {
 public:
  /// Polls every `period` of virtual time; `history_capacity` bounds the
  /// retained alarm log.
  ThresholdWatch(std::string name, sorcer::ServiceAccessor& accessor,
                 util::Scheduler& scheduler,
                 util::SimDuration period = util::kSecond,
                 std::size_t history_capacity = 1024);

  ~ThresholdWatch() override;

  // --- configuration ---------------------------------------------------------

  /// Watch (or re-band) a sensor service. Alarms fire on state *changes*,
  /// so a sensor already out of band alarms once, not every poll.
  void watch(AlarmRule rule);

  /// Stop watching; any active alarm for it is dropped silently.
  void unwatch(const std::string& sensor);

  void set_listener(AlarmListener listener) {
    listener_ = std::move(listener);
  }

  // --- push evaluation --------------------------------------------------------

  /// Evaluate one pushed value against the sensor's rule (same state
  /// machine as polling). `reachable = false` models a bad/unreachable
  /// reading. Unwatched sensors are ignored.
  void ingest(const std::string& sensor, double value, bool reachable = true);

  /// Mark a sensor's rule as fed by a flow: the poll loop stops reading it
  /// through the federation (ingest() is the only evaluation path), so a
  /// watch riding a flow adds zero sensor reads of its own.
  void set_flow_fed(const std::string& sensor, bool flow_fed = true);

  // --- state -----------------------------------------------------------------

  /// Evaluate every rule now (also runs automatically on the period).
  void poll_once();

  /// Sensors currently out of band or unreachable.
  [[nodiscard]] std::size_t active_alarm_count() const;

  /// Raised alarms, oldest first (bounded by history_capacity).
  [[nodiscard]] const std::deque<Alarm>& history() const { return history_; }

  [[nodiscard]] std::size_t watched_count() const { return rules_.size(); }

 private:
  enum class SensorState { kNormal, kLow, kHigh, kUnreachable };

  struct Watched {
    AlarmRule rule;
    SensorState state = SensorState::kNormal;
    bool flow_fed = false;
  };

  void raise(const std::string& sensor, AlarmKind kind, double value);
  /// Shared transition logic of the poll and push paths.
  void apply(const std::string& sensor, Watched& watched, bool reachable,
             double value);

  sorcer::ServiceAccessor& accessor_;
  util::Scheduler& scheduler_;
  std::size_t history_capacity_;
  util::TimerId poll_timer_ = 0;
  std::map<std::string, Watched> rules_;
  AlarmListener listener_;
  std::deque<Alarm> history_;
};

/// Adapt `watch` into a flow trigger sink: flow emissions push-evaluate
/// their sensor's rule via ingest(). Pair with set_flow_fed so the watch
/// also stops polling those sensors — alarms then cost no reads beyond the
/// sampling the flow already taps. The watch must outlive the flow.
flow::SinkSpec watch_sink(ThresholdWatch& watch);

}  // namespace sensorcer::core
