#include "core/sensor_computation.h"

#include <algorithm>

#include "util/strings.h"

namespace sensorcer::core {

std::string component_variable_name(std::size_t index) {
  std::string name;
  std::size_t n = index;
  while (true) {
    name.insert(name.begin(), static_cast<char>('a' + n % 26));
    if (n < 26) break;
    n = n / 26 - 1;
  }
  return name;
}

util::Status SensorComputation::set_expression(
    const std::string& source,
    const std::vector<std::string>& bound_variables) {
  auto compiled = expr::Expression::compile(source);
  if (!compiled.is_ok()) return compiled.status();

  for (const auto& var : compiled.value().variables()) {
    if (std::find(bound_variables.begin(), bound_variables.end(), var) ==
        bound_variables.end()) {
      return {util::ErrorCode::kInvalidArgument,
              util::format("expression uses variable '%s' but only %zu "
                           "component service(s) are composed",
                           var.c_str(), bound_variables.size())};
    }
  }
  // Slot-bind once here — every read then evaluates the flat program. This
  // also front-loads unknown-function errors to set time instead of
  // surfacing them on the first read.
  auto program = compiled.value().bind(bound_variables);
  if (!program.is_ok()) return program.status();

  variables_ = compiled.value().variables();
  expression_ = std::move(compiled).value();
  program_ = std::move(program).value();
  return util::Status::ok();
}

bool SensorComputation::rebind(
    const std::vector<std::string>& bound_variables) {
  if (!expression_.is_valid()) return false;
  auto program = expression_.bind(bound_variables);
  if (!program.is_ok()) {
    clear_expression();
    return false;
  }
  program_ = std::move(program).value();
  return true;
}

util::Result<double> SensorComputation::evaluate(
    const std::vector<double>& values) const {
  if (!program_.is_valid()) {
    if (values.empty()) {
      return util::Status{util::ErrorCode::kFailedPrecondition,
                          "composite has no components to aggregate"};
    }
    double sum = 0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  }
  return program_.evaluate(values);
}

}  // namespace sensorcer::core
