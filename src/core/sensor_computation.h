#pragma once
// Sensor Computation — "provides capabilities of specifying required
// computing power to CSPs ... The user can provide expressions, treating
// services as the variables inside the CSP expression" (§V.B).
//
// Variables are allotted dynamically in insertion order: the first composed
// service becomes 'a', the second 'b', and so on (after 'z': 'aa', 'ab', …),
// exactly as the paper's Fig 3 describes.

#include <string>
#include <vector>

#include "expr/evaluator.h"
#include "util/status.h"

namespace sensorcer::core {

/// The variable name for component index `i`: 0→"a", 25→"z", 26→"aa".
std::string component_variable_name(std::size_t index);

class SensorComputation {
 public:
  SensorComputation() = default;

  /// Install a compute expression. Fails on syntax errors, or when the
  /// expression references variables beyond the `bound_variables` the
  /// composite currently defines.
  util::Status set_expression(const std::string& source,
                              const std::vector<std::string>& bound_variables);

  void clear_expression() { expression_ = expr::Expression{}; }
  [[nodiscard]] bool has_expression() const { return expression_.is_valid(); }
  [[nodiscard]] const std::string& expression_source() const {
    return expression_.source();
  }

  /// Evaluate against component values (`values[i]` binds to variable i).
  /// Without an expression, the default computation is the component
  /// average — the natural aggregate for a sensor subnet.
  util::Result<double> evaluate(const std::vector<double>& values) const;

 private:
  expr::Expression expression_;
};

}  // namespace sensorcer::core
