#pragma once
// Sensor Computation — "provides capabilities of specifying required
// computing power to CSPs ... The user can provide expressions, treating
// services as the variables inside the CSP expression" (§V.B).
//
// Variables are allotted dynamically in insertion order: the first composed
// service becomes 'a', the second 'b', and so on (after 'z': 'aa', 'ab', …),
// exactly as the paper's Fig 3 describes.
//
// Expressions are slot-compiled at set time (see expr/compiled.h): variable
// names resolve to indices into the composite's component order once, so a
// read evaluates a flat program over the collected values with no string
// hashing and no environment allocation.

#include <set>
#include <string>
#include <vector>

#include "expr/compiled.h"
#include "expr/evaluator.h"
#include "util/status.h"

namespace sensorcer::core {

/// The variable name for component index `i`: 0→"a", 25→"z", 26→"aa".
std::string component_variable_name(std::size_t index);

class SensorComputation {
 public:
  SensorComputation() = default;

  /// Install a compute expression and bind it against `bound_variables`
  /// (slot i ↔ bound_variables[i] ↔ values[i] at evaluation). Fails on
  /// syntax errors, unknown functions, or when the expression references
  /// variables beyond the ones the composite currently defines.
  util::Status set_expression(const std::string& source,
                              const std::vector<std::string>& bound_variables);

  void clear_expression() {
    expression_ = expr::Expression{};
    program_ = expr::CompiledProgram{};
    variables_.clear();
  }
  [[nodiscard]] bool has_expression() const { return expression_.is_valid(); }
  [[nodiscard]] const std::string& expression_source() const {
    return expression_.source();
  }

  /// Free variables of the installed expression, computed once at set time
  /// (empty without an expression).
  [[nodiscard]] const std::set<std::string>& variables() const {
    return variables_;
  }

  /// Re-resolve variable slots after the composite's component list changed
  /// (component removal shifts the value order while surviving components
  /// keep their variable names). Clears the expression — returning false —
  /// when it references a variable no longer bound.
  bool rebind(const std::vector<std::string>& bound_variables);

  /// Evaluate against component values (`values[i]` binds to the i-th bound
  /// variable). Without an expression, the default computation is the
  /// component average — the natural aggregate for a sensor subnet.
  util::Result<double> evaluate(const std::vector<double>& values) const;

 private:
  expr::Expression expression_;
  expr::CompiledProgram program_;
  std::set<std::string> variables_;
};

}  // namespace sensorcer::core
