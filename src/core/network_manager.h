#pragma once
// Sensor Network Manager — creates, composes and dissolves the logical
// sensor network (§V.A "Network Management": add/remove sensor nodes,
// subnets, and create dynamic grouping). Management never touches physical
// resources: it only rearranges which services a composite contains.

#include <memory>
#include <string>
#include <vector>

#include "core/composite_provider.h"
#include "core/elementary_provider.h"
#include "obs/metrics.h"
#include "registry/lease_renewal.h"
#include "simnet/network.h"
#include "sorcer/accessor.h"

namespace sensorcer::core {

/// Shared service-lifecycle settings.
struct ManagerConfig {
  util::SimDuration lease_duration = 30 * util::kSecond;
  CollectionPolicy collection;
  SamplingPolicy sampling;
  /// Attach a HistorianFeeder to every ESP registered through the manager,
  /// bound to the first known lookup service, so sampled readings flow to
  /// the deployment's historian.
  bool history_push = false;
  hist::FeederConfig history_feed;
};

class SensorNetworkManager {
 public:
  SensorNetworkManager(sorcer::ServiceAccessor& accessor,
                       util::Scheduler& scheduler,
                       registry::LeaseRenewalManager& lrm,
                       ManagerConfig config = {});

  // --- node / subnet lifecycle -------------------------------------------------

  /// Create an elementary sensor service around `probe` and join it to all
  /// known lookup services.
  std::shared_ptr<ElementarySensorProvider> register_elementary(
      const std::string& name, sensor::ProbePtr probe,
      const std::string& location = "");

  /// Create an empty composite sensor service and join it.
  std::shared_ptr<CompositeSensorProvider> create_composite(
      const std::string& name);

  /// Adopt an externally created provider (e.g. one the provisioner
  /// deployed) into this manager's bookkeeping without re-registering it.
  void adopt(std::shared_ptr<sorcer::ServiceProvider> provider);

  /// Remove a managed service from the network (clean leave).
  util::Status remove_service(const std::string& name);

  // --- grouping ----------------------------------------------------------------

  /// Compose `children` into the composite named `composite` — forming a
  /// sensor subnet (all-elementary children) or network (mixed).
  util::Status compose(const std::string& composite,
                       const std::vector<std::string>& children);

  /// Attach a compute expression to a composite.
  util::Status set_expression(const std::string& composite,
                              const std::string& expression);

  // --- queries -----------------------------------------------------------------

  /// The SensorDataAccessor registered under `name`, if any.
  util::Result<std::shared_ptr<SensorDataAccessor>> find_sensor(
      const std::string& name);

  /// Info cards of every sensor service on the network, sorted by name.
  std::vector<SensorInfo> list_services();

  /// ASCII containment tree rooted at `root` (Fig 3's logical sensor
  /// network rendering), with live values when `with_values`.
  std::string render_tree(const std::string& root, bool with_values = false);

  // --- observability -----------------------------------------------------------

  /// Point the manager at the simulated fabric so health snapshots include
  /// its per-network traffic counters.
  void attach_network(simnet::Network* network) { network_ = network; }

  /// Merged metric snapshot: the process-wide registry (registry, sorcer,
  /// rio, esp/csp and facade hooks) plus the attached network's counters.
  [[nodiscard]] obs::Snapshot health_snapshot() const;

  /// Rendered federation health report (discovery latency, lease churn,
  /// exertion percentiles, bytes by protocol) for the browser's health pane.
  [[nodiscard]] std::string health_report() const;

  [[nodiscard]] const ManagerConfig& config() const { return config_; }

 private:
  util::Result<std::shared_ptr<CompositeSensorProvider>> find_composite(
      const std::string& name);
  void join_all(const std::shared_ptr<sorcer::ServiceProvider>& provider);
  void render_node(const std::string& name, const std::string& prefix,
                   bool last, bool with_values, std::string& out,
                   int depth);

  sorcer::ServiceAccessor& accessor_;
  util::Scheduler& scheduler_;
  registry::LeaseRenewalManager& lrm_;
  ManagerConfig config_;
  simnet::Network* network_ = nullptr;
  // The manager keeps its creations alive; registries hold only proxies.
  std::vector<std::shared_ptr<sorcer::ServiceProvider>> owned_;
};

}  // namespace sensorcer::core
