#pragma once
// The uniform sensor-service interfaces of SenSORCER (§V.A):
// every sensor provider — elementary or composite — implements
// SensorDataAccessor, giving requestors one way to read any sensor on the
// network regardless of technology or aggregation level.

#include <string>
#include <vector>

#include "registry/service_item.h"
#include "sensor/reading.h"
#include "util/status.h"

namespace sensorcer::core {

/// Interface name exported by all sensor services (used in signatures and
/// lookup templates).
inline constexpr const char* kSensorDataAccessorType = "SensorDataAccessor";
/// Additional types for the two provider species.
inline constexpr const char* kElementaryServiceType = "ElementarySensorService";
inline constexpr const char* kCompositeServiceType = "CompositeSensorService";
/// The façade's type.
inline constexpr const char* kFacadeType = "SensorcerFacade";

/// Service-type tag shown in the browser ("Service Type:: COMPOSITE").
enum class SensorServiceKind { kElementary, kComposite };

const char* sensor_service_kind_name(SensorServiceKind kind);

/// The info card content of the paper's Fig 2/3 "Sensor Service Information"
/// panel.
struct SensorInfo {
  std::string name;
  SensorServiceKind kind = SensorServiceKind::kElementary;
  registry::ServiceId id;
  std::string measurement;               // "temperature", ...
  std::string unit;                      // "degC", ...
  std::vector<std::string> contained;    // composite: child service names
  std::string expression;                // composite: compute expression
  std::string location;
};

/// Uniform read interface.
class SensorDataAccessor {
 public:
  virtual ~SensorDataAccessor() = default;

  /// Current calibrated value of the (possibly composite) sensor.
  virtual util::Result<double> get_value() = 0;

  /// Current value with timestamp/quality/sequence.
  virtual util::Result<sensor::Reading> get_reading() = 0;

  /// Service self-description for browsers and management tools.
  [[nodiscard]] virtual SensorInfo info() const = 0;
};

/// Context paths used by sensor-service operations.
namespace path {
inline constexpr const char* kValue = "sensor/value";
inline constexpr const char* kTimestamp = "sensor/timestamp";
inline constexpr const char* kQuality = "sensor/quality";
inline constexpr const char* kUnit = "sensor/unit";
inline constexpr const char* kLogValues = "sensor/log/values";
inline constexpr const char* kLogSince = "sensor/log/since";
inline constexpr const char* kInfoName = "sensor/info/name";
inline constexpr const char* kInfoKind = "sensor/info/kind";
inline constexpr const char* kInfoMeasurement = "sensor/info/measurement";
inline constexpr const char* kExpression = "composite/expression";
inline constexpr const char* kComponentName = "composite/component";
}  // namespace path

/// Operation selectors.
namespace op {
inline constexpr const char* kGetValue = "getValue";
inline constexpr const char* kGetReading = "getReading";
inline constexpr const char* kGetLog = "getLog";
inline constexpr const char* kGetInfo = "getInfo";
inline constexpr const char* kAddComponent = "addComponent";
inline constexpr const char* kRemoveComponent = "removeComponent";
inline constexpr const char* kSetExpression = "setExpression";
}  // namespace op

}  // namespace sensorcer::core
