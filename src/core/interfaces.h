#pragma once
// The uniform sensor-service interfaces of SenSORCER (§V.A):
// every sensor provider — elementary or composite — implements
// SensorDataAccessor, giving requestors one way to read any sensor on the
// network regardless of technology or aggregation level.

#include <string>
#include <vector>

#include "registry/service_item.h"
#include "sensor/reading.h"
#include "util/status.h"

namespace sensorcer::core {

/// Interface name exported by all sensor services (used in signatures and
/// lookup templates).
inline constexpr const char* kSensorDataAccessorType = "SensorDataAccessor";
/// Additional types for the two provider species.
inline constexpr const char* kElementaryServiceType = "ElementarySensorService";
inline constexpr const char* kCompositeServiceType = "CompositeSensorService";
/// The façade's type.
inline constexpr const char* kFacadeType = "SensorcerFacade";
/// The historian's type (the "DataCollection" service of federated sensor
/// networks: readings pushed by ESPs, queried over ranges).
inline constexpr const char* kDataCollectionType = "DataCollection";

/// Service-type tag shown in the browser ("Service Type:: COMPOSITE").
enum class SensorServiceKind { kElementary, kComposite };

const char* sensor_service_kind_name(SensorServiceKind kind);

/// The info card content of the paper's Fig 2/3 "Sensor Service Information"
/// panel.
struct SensorInfo {
  std::string name;
  SensorServiceKind kind = SensorServiceKind::kElementary;
  registry::ServiceId id;
  std::string measurement;               // "temperature", ...
  std::string unit;                      // "degC", ...
  std::vector<std::string> contained;    // composite: child service names
  std::string expression;                // composite: compute expression
  std::string location;
};

/// Uniform read interface.
class SensorDataAccessor {
 public:
  virtual ~SensorDataAccessor() = default;

  /// Current calibrated value of the (possibly composite) sensor.
  virtual util::Result<double> get_value() = 0;

  /// Current value with timestamp/quality/sequence.
  virtual util::Result<sensor::Reading> get_reading() = 0;

  /// Service self-description for browsers and management tools.
  [[nodiscard]] virtual SensorInfo info() const = 0;
};

/// Context paths used by sensor-service operations.
namespace path {
inline constexpr const char* kValue = "sensor/value";
inline constexpr const char* kTimestamp = "sensor/timestamp";
inline constexpr const char* kQuality = "sensor/quality";
inline constexpr const char* kUnit = "sensor/unit";
inline constexpr const char* kLogValues = "sensor/log/values";
inline constexpr const char* kLogSince = "sensor/log/since";
inline constexpr const char* kInfoName = "sensor/info/name";
inline constexpr const char* kInfoKind = "sensor/info/kind";
inline constexpr const char* kInfoMeasurement = "sensor/info/measurement";
inline constexpr const char* kExpression = "composite/expression";
inline constexpr const char* kComponentName = "composite/component";
// Historian paths (hist/): appendBatch inputs ride as parallel arrays so a
// batch of n readings marshals as three vector<double> values.
inline constexpr const char* kHistSensor = "hist/sensor";
inline constexpr const char* kHistFrom = "hist/from";
inline constexpr const char* kHistTo = "hist/to";
inline constexpr const char* kHistResolution = "hist/resolution";
inline constexpr const char* kHistPoints = "hist/points";
inline constexpr const char* kHistTimestamps = "hist/timestamps";
inline constexpr const char* kHistValues = "hist/values";
inline constexpr const char* kHistQualities = "hist/qualities";
inline constexpr const char* kHistCount = "hist/count";
inline constexpr const char* kHistMin = "hist/min";
inline constexpr const char* kHistMax = "hist/max";
inline constexpr const char* kHistSum = "hist/sum";
inline constexpr const char* kHistMean = "hist/mean";
inline constexpr const char* kHistLast = "hist/last";
inline constexpr const char* kHistAccepted = "hist/accepted";
inline constexpr const char* kHistDuplicates = "hist/duplicates";
inline constexpr const char* kHistSource = "hist/source";
inline constexpr const char* kHistFromEffective = "hist/from_effective";
inline constexpr const char* kHistToEffective = "hist/to_effective";
inline constexpr const char* kHistTruncated = "hist/truncated";
}  // namespace path

/// Operation selectors.
namespace op {
inline constexpr const char* kGetValue = "getValue";
inline constexpr const char* kGetReading = "getReading";
inline constexpr const char* kGetLog = "getLog";
inline constexpr const char* kGetInfo = "getInfo";
inline constexpr const char* kAddComponent = "addComponent";
inline constexpr const char* kRemoveComponent = "removeComponent";
inline constexpr const char* kSetExpression = "setExpression";
// Historian operations.
inline constexpr const char* kAppendBatch = "appendBatch";
inline constexpr const char* kHistStats = "histStats";
inline constexpr const char* kHistRange = "histRange";
inline constexpr const char* kHistDownsample = "histDownsample";
}  // namespace op

}  // namespace sensorcer::core
