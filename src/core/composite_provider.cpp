#include "core/composite_provider.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "sorcer/jobber.h"
#include "util/strings.h"

namespace sensorcer::core {

namespace {

struct CspMetrics {
  obs::Counter& reads;
  obs::Counter& collections;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& coalesced;
  obs::Histogram& collection_latency;
};

CspMetrics& csp_metrics() {
  static CspMetrics m{
      obs::metrics().counter("csp.reads"),
      obs::metrics().counter("csp.collections"),
      obs::metrics().counter("csp.cache_hits"),
      obs::metrics().counter("csp.cache_misses"),
      obs::metrics().counter("csp.coalesced"),
      obs::metrics().histogram("csp.collection_latency_us")};
  return m;
}

}  // namespace

CompositeSensorProvider::CompositeSensorProvider(
    std::string name, sorcer::ServiceAccessor& accessor,
    util::Scheduler& scheduler, CollectionPolicy policy)
    : ServiceProvider(std::move(name),
                      {kSensorDataAccessorType, kCompositeServiceType}),
      accessor_(accessor),
      scheduler_(scheduler),
      policy_(policy) {
  registry::Entry attrs;
  attrs.set(registry::attr::kServiceType,
            std::string(sensor_service_kind_name(SensorServiceKind::kComposite)));
  set_attributes(attrs);
  install_operations();
}

bool CompositeSensorProvider::would_cycle(
    const SensorDataAccessor& candidate) const {
  if (&candidate == static_cast<const SensorDataAccessor*>(this)) return true;
  const auto* composite =
      dynamic_cast<const CompositeSensorProvider*>(&candidate);
  if (composite == nullptr) return false;
  for (const auto& comp : composite->components_) {
    auto item =
        accessor_.find_item(registry::ServiceTemplate::by_id(comp.id));
    if (!item.is_ok()) continue;
    auto child = registry::proxy_cast<SensorDataAccessor>(item.value().proxy);
    if (child && would_cycle(*child)) return true;
  }
  return false;
}

void CompositeSensorProvider::invalidate_cache(bool plan_too) {
  std::lock_guard lock(collect_mu_);
  cache_valid_ = false;
  if (plan_too) plan_.clear();
}

util::Status CompositeSensorProvider::add_component(
    const std::string& service_name) {
  if (service_name == provider_name()) {
    return {util::ErrorCode::kInvalidArgument,
            "a composite cannot contain itself"};
  }
  for (const auto& comp : components_) {
    if (comp.name == service_name) {
      return {util::ErrorCode::kFailedPrecondition,
              "'" + service_name + "' is already composed"};
    }
  }
  auto item = accessor_.find_item(registry::ServiceTemplate::by_name(
      kSensorDataAccessorType, service_name));
  if (!item.is_ok()) {
    return {util::ErrorCode::kNotFound,
            "no sensor service named '" + service_name + "' on the network"};
  }
  auto child = registry::proxy_cast<SensorDataAccessor>(item.value().proxy);
  if (!child) {
    return {util::ErrorCode::kInvalidArgument,
            "'" + service_name + "' does not implement SensorDataAccessor"};
  }
  if (would_cycle(*child)) {
    return {util::ErrorCode::kInvalidArgument,
            "composing '" + service_name + "' would create a containment cycle"};
  }
  // Dynamic variable creation: the new component binds the next free letter.
  components_.push_back(Component{item.value().id, service_name,
                                  component_variable_name(next_variable_++)});
  invalidate_cache(/*plan_too=*/true);
  return util::Status::ok();
}

util::Status CompositeSensorProvider::remove_component(
    const std::string& service_name) {
  auto it = std::find_if(components_.begin(), components_.end(),
                         [&](const Component& c) {
                           return c.name == service_name;
                         });
  if (it == components_.end()) {
    return {util::ErrorCode::kNotFound,
            "'" + service_name + "' is not composed here"};
  }
  const std::string freed_variable = it->variable;
  components_.erase(it);
  invalidate_cache(/*plan_too=*/true);

  if (computation_.has_expression()) {
    if (computation_.variables().contains(freed_variable)) {
      // The expression referenced the removed service; it can no longer be
      // evaluated, so fall back to the default aggregate.
      computation_.clear_expression();
    } else {
      // Surviving components keep their variables but their value order
      // shifted — re-resolve the expression's slots against the new order.
      (void)computation_.rebind(component_variables());
    }
  }
  return util::Status::ok();
}

std::vector<std::string> CompositeSensorProvider::component_names() const {
  std::vector<std::string> out;
  out.reserve(components_.size());
  for (const auto& c : components_) out.push_back(c.name);
  return out;
}

std::vector<std::string> CompositeSensorProvider::component_variables() const {
  std::vector<std::string> out;
  out.reserve(components_.size());
  for (const auto& c : components_) out.push_back(c.variable);
  return out;
}

util::Status CompositeSensorProvider::set_expression(
    const std::string& source) {
  auto status = computation_.set_expression(source, component_variables());
  if (status.is_ok()) invalidate_cache(/*plan_too=*/false);
  return status;
}

void CompositeSensorProvider::assume_state_from(
    sorcer::ServiceProvider& predecessor) {
  auto* csp = dynamic_cast<CompositeSensorProvider*>(&predecessor);
  if (csp == nullptr) return;
  // Adopt the composition verbatim (ids included — reads resolve by name,
  // so a component that was itself re-provisioned rebinds transparently on
  // the next collection) and re-attach the expression over the same
  // variables. The plan cache starts cold in the replacement.
  components_ = csp->components_;
  next_variable_ = csp->next_variable_;
  if (csp->computation_.has_expression()) {
    (void)set_expression(csp->expression());
  }
  invalidate_cache(/*plan_too=*/true);
}

std::vector<std::optional<double>> CompositeSensorProvider::fan_out(
    const std::vector<PlanEntry>& plan, util::SimDuration* latency) {
  std::vector<std::shared_ptr<sorcer::Task>> tasks;
  tasks.reserve(plan.size());
  for (const auto& entry : plan) {
    tasks.push_back(sorcer::Task::make(entry.task_name, entry.signature));
  }

  // Prefer the federation: a rendezvous peer coordinates the fan-out.
  bool federated = false;
  if (!tasks.empty()) {
    // Lenient collection must not abort on the first unreachable child;
    // strictness is enforced after the fan-out, per component.
    auto strategy = policy_.strategy;
    strategy.fail_fast = false;
    auto job = sorcer::Job::make(provider_name() + ".collect", strategy);
    for (const auto& t : tasks) job->add(t);
    (void)sorcer::exert(job, accessor_);
    federated = job->error().code() != util::ErrorCode::kNotFound ||
                job->status() != sorcer::ExertStatus::kFailed;
    if (federated) *latency = job->latency();
  }
  if (!federated) {
    // No rendezvous peer on the network: resolve the prebuilt plan to
    // servicers and issue it as one batch through the invocation pipeline —
    // scatter-gathered on the fabric under wire transport, fanned across
    // the policy pool in-process. invoke_servicer_all (not exert) keeps the
    // historical no-substitution semantics and metric counts of the direct
    // path. A pooled batch costs the slowest child plus the per-child
    // dispatch overhead — the Jobber's parallel latency model; a wire batch
    // already paid its overlapped window in fabric time, so only one batch
    // dispatch overhead rides on top; a sequential one degrades to the
    // child-latency sum.
    std::vector<std::pair<std::shared_ptr<sorcer::Servicer>,
                          sorcer::ExertionPtr>>
        calls;
    calls.reserve(tasks.size());
    for (const auto& task : tasks) {
      auto servicer = accessor_.find_servicer(task->signature());
      if (servicer.is_ok()) calls.emplace_back(servicer.value(), task);
    }
    const sorcer::FanOut fan_out =
        sorcer::invoke_servicer_all(accessor_, calls, nullptr, policy_.pool);
    if (fan_out != sorcer::FanOut::kSequence) {
      util::SimDuration slowest = 0;
      for (const auto& task : tasks) {
        slowest = std::max(slowest, task->latency());
      }
      const auto dispatches = fan_out == sorcer::FanOut::kWire
                                  ? static_cast<util::SimDuration>(1)
                                  : static_cast<util::SimDuration>(tasks.size());
      *latency = slowest + dispatches * sorcer::Jobber::kDispatchOverhead;
    } else {
      util::SimDuration total = 0;
      for (const auto& task : tasks) total += task->latency();
      *latency = total;
    }
  }

  std::vector<std::optional<double>> out;
  out.reserve(tasks.size());
  for (const auto& task : tasks) {
    // Borrow the reply value in place (this is the collection hot path —
    // one lookup per component per read).
    const sorcer::ContextValue* v = task->context().find(path::kValue);
    const double* d = v != nullptr ? std::get_if<double>(v) : nullptr;
    if (task->status() == sorcer::ExertStatus::kDone && d != nullptr) {
      out.emplace_back(*d);
    } else {
      out.emplace_back(std::nullopt);
    }
  }
  return out;
}

CompositeSensorProvider::Collected CompositeSensorProvider::collect() {
  std::unique_lock lock(collect_mu_);

  // Freshness window: a collection newer than the TTL answers the read
  // outright — no task build, no fan-out, no latency charge.
  if (cache_valid_ && policy_.freshness > 0 &&
      scheduler_.now() - cache_time_ <= policy_.freshness) {
    csp_metrics().cache_hits.add(1);
    last_collection_latency_.store(0, std::memory_order_relaxed);
    return Collected{cached_values_, cache_time_, true};
  }

  // Single-flight: if another reader is already collecting, wait for its
  // flight to land and share the result instead of fanning out again.
  if (collect_in_flight_) {
    if (collect_owner_ == std::this_thread::get_id()) {
      // Re-entrant read on the collecting thread itself — under wire
      // transport the in-flight fan-out pumps the virtual-time scheduler,
      // which can fire a timer (watch poll, sampler) that reads this CSP
      // again on the same stack. Waiting would self-deadlock; serve the
      // previous collection if one exists, else run an independent fan-out
      // without touching the single-flight state.
      if (cache_valid_) {
        csp_metrics().coalesced.add(1);
        last_collection_latency_.store(0, std::memory_order_relaxed);
        return Collected{cached_values_, cache_time_, true};
      }
      const std::vector<PlanEntry> plan = plan_;
      lock.unlock();
      util::SimDuration latency = 0;
      std::vector<std::optional<double>> values = fan_out(plan, &latency);
      return Collected{std::move(values), scheduler_.now(), false};
    }
    csp_metrics().coalesced.add(1);
    const std::uint64_t waited_for = collect_generation_;
    collect_cv_.wait(lock,
                     [&] { return collect_generation_ != waited_for; });
    last_collection_latency_.store(0, std::memory_order_relaxed);
    return Collected{cached_values_, cache_time_, true};
  }
  collect_in_flight_ = true;
  collect_owner_ = std::this_thread::get_id();

  // The fan-out plan (task name + signature per component) is prebuilt and
  // survives across reads until the composition changes.
  if (plan_.empty()) {
    plan_.reserve(components_.size());
    for (const auto& comp : components_) {
      plan_.push_back(PlanEntry{
          comp.variable,
          sorcer::Signature{kSensorDataAccessorType, op::kGetValue,
                            comp.name}});
    }
  }
  const std::vector<PlanEntry> plan = plan_;
  lock.unlock();

  csp_metrics().cache_misses.add(1);
  csp_metrics().collections.add(1);
  util::SimDuration latency = 0;
  std::vector<std::optional<double>> values = fan_out(plan, &latency);
  last_collection_latency_.store(latency, std::memory_order_relaxed);
  csp_metrics().collection_latency.observe(static_cast<double>(latency));

  lock.lock();
  cached_values_ = values;
  cache_time_ = scheduler_.now();
  cache_valid_ = true;
  collect_in_flight_ = false;
  collect_owner_ = {};
  ++collect_generation_;
  const util::SimTime at = cache_time_;
  lock.unlock();
  collect_cv_.notify_all();
  return Collected{std::move(values), at, false};
}

util::Result<double> CompositeSensorProvider::read_value(
    Collected* collected_out) {
  if (components_.empty()) {
    return util::Status{util::ErrorCode::kFailedPrecondition,
                        "composite '" + provider_name() +
                            "' has no composed services"};
  }
  Collected collected = collect();

  std::vector<double> values;
  values.reserve(collected.values.size());
  for (std::size_t i = 0; i < collected.values.size(); ++i) {
    if (collected.values[i]) {
      values.push_back(*collected.values[i]);
    } else if (policy_.strict || computation_.has_expression()) {
      return util::Status{
          util::ErrorCode::kUnavailable,
          util::format("component '%s' (variable %s) is unreachable",
                       components_[i].name.c_str(),
                       components_[i].variable.c_str())};
    }
  }
  if (values.empty()) {
    return util::Status{util::ErrorCode::kUnavailable,
                        "no composed service is reachable"};
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  csp_metrics().reads.add(1);
  if (collected_out != nullptr) *collected_out = std::move(collected);
  return computation_.evaluate(values);
}

util::Result<double> CompositeSensorProvider::get_value() {
  return read_value(nullptr);
}

util::Result<sensor::Reading> CompositeSensorProvider::get_reading() {
  Collected collected;
  auto value = read_value(&collected);
  if (!value.is_ok()) return value.status();
  sensor::Reading reading;
  // Cache-served reads carry the timestamp of the collection they were
  // answered from, so consumers can see the (bounded) staleness.
  reading.timestamp = collected.from_cache ? collected.at : scheduler_.now();
  reading.value = value.value();
  reading.quality = sensor::Quality::kGood;
  reading.sequence = reads_.load(std::memory_order_relaxed);
  return reading;
}

SensorInfo CompositeSensorProvider::info() const {
  SensorInfo out;
  out.name = provider_name();
  out.kind = SensorServiceKind::kComposite;
  out.id = service_id();
  out.measurement = "composite";
  out.contained = component_names();
  out.expression = computation_.expression_source();
  return out;
}

void CompositeSensorProvider::install_operations() {
  add_operation(
      op::kGetValue,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto reading = get_reading();
        if (!reading.is_ok()) return reading.status();
        ctx.put(path::kValue, reading.value().value,
                sorcer::PathDirection::kOut);
        ctx.put(path::kTimestamp,
                static_cast<std::int64_t>(reading.value().timestamp),
                sorcer::PathDirection::kOut);
        ctx.put(path::kQuality,
                std::string(sensor::quality_name(reading.value().quality)),
                sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      1 * util::kMillisecond);

  add_operation(
      op::kGetInfo,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        const SensorInfo i = info();
        ctx.put(path::kInfoName, i.name, sorcer::PathDirection::kOut);
        ctx.put(path::kInfoKind, std::string(sensor_service_kind_name(i.kind)),
                sorcer::PathDirection::kOut);
        ctx.put(path::kExpression, i.expression, sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      200 * util::kMicrosecond);

  add_operation(
      op::kAddComponent,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto name = ctx.get_string(path::kComponentName);
        if (!name.is_ok()) return name.status();
        return add_component(name.value());
      },
      500 * util::kMicrosecond);

  add_operation(
      op::kRemoveComponent,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto name = ctx.get_string(path::kComponentName);
        if (!name.is_ok()) return name.status();
        return remove_component(name.value());
      },
      500 * util::kMicrosecond);

  add_operation(
      op::kSetExpression,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto source = ctx.get_string(path::kExpression);
        if (!source.is_ok()) return source.status();
        return set_expression(source.value());
      },
      500 * util::kMicrosecond);
}

}  // namespace sensorcer::core
