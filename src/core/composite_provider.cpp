#include "core/composite_provider.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/strings.h"

namespace sensorcer::core {

namespace {

struct CspMetrics {
  obs::Counter& reads;
  obs::Counter& collections;
  obs::Histogram& collection_latency;
};

CspMetrics& csp_metrics() {
  static CspMetrics m{
      obs::metrics().counter("csp.reads"),
      obs::metrics().counter("csp.collections"),
      obs::metrics().histogram("csp.collection_latency_us")};
  return m;
}

}  // namespace

CompositeSensorProvider::CompositeSensorProvider(
    std::string name, sorcer::ServiceAccessor& accessor,
    util::Scheduler& scheduler, CollectionPolicy policy)
    : ServiceProvider(std::move(name),
                      {kSensorDataAccessorType, kCompositeServiceType}),
      accessor_(accessor),
      scheduler_(scheduler),
      policy_(policy) {
  registry::Entry attrs;
  attrs.set(registry::attr::kServiceType,
            std::string(sensor_service_kind_name(SensorServiceKind::kComposite)));
  set_attributes(attrs);
  install_operations();
}

bool CompositeSensorProvider::would_cycle(
    const SensorDataAccessor& candidate) const {
  if (&candidate == static_cast<const SensorDataAccessor*>(this)) return true;
  const auto* composite =
      dynamic_cast<const CompositeSensorProvider*>(&candidate);
  if (composite == nullptr) return false;
  for (const auto& comp : composite->components_) {
    auto item = const_cast<sorcer::ServiceAccessor&>(accessor_).find_item(
        registry::ServiceTemplate::by_id(comp.id));
    if (!item.is_ok()) continue;
    auto child = registry::proxy_cast<SensorDataAccessor>(item.value().proxy);
    if (child && would_cycle(*child)) return true;
  }
  return false;
}

util::Status CompositeSensorProvider::add_component(
    const std::string& service_name) {
  if (service_name == provider_name()) {
    return {util::ErrorCode::kInvalidArgument,
            "a composite cannot contain itself"};
  }
  for (const auto& comp : components_) {
    if (comp.name == service_name) {
      return {util::ErrorCode::kFailedPrecondition,
              "'" + service_name + "' is already composed"};
    }
  }
  auto item = accessor_.find_item(registry::ServiceTemplate::by_name(
      kSensorDataAccessorType, service_name));
  if (!item.is_ok()) {
    return {util::ErrorCode::kNotFound,
            "no sensor service named '" + service_name + "' on the network"};
  }
  auto child = registry::proxy_cast<SensorDataAccessor>(item.value().proxy);
  if (!child) {
    return {util::ErrorCode::kInvalidArgument,
            "'" + service_name + "' does not implement SensorDataAccessor"};
  }
  if (would_cycle(*child)) {
    return {util::ErrorCode::kInvalidArgument,
            "composing '" + service_name + "' would create a containment cycle"};
  }
  // Dynamic variable creation: the new component binds the next free letter.
  components_.push_back(Component{item.value().id, service_name,
                                  component_variable_name(next_variable_++)});
  return util::Status::ok();
}

util::Status CompositeSensorProvider::remove_component(
    const std::string& service_name) {
  auto it = std::find_if(components_.begin(), components_.end(),
                         [&](const Component& c) {
                           return c.name == service_name;
                         });
  if (it == components_.end()) {
    return {util::ErrorCode::kNotFound,
            "'" + service_name + "' is not composed here"};
  }
  const std::string freed_variable = it->variable;
  components_.erase(it);

  if (computation_.has_expression()) {
    auto compiled = expr::Expression::compile(computation_.expression_source());
    if (compiled.is_ok() &&
        compiled.value().variables().contains(freed_variable)) {
      // The expression referenced the removed service; it can no longer be
      // evaluated, so fall back to the default aggregate.
      computation_.clear_expression();
    }
  }
  return util::Status::ok();
}

std::vector<std::string> CompositeSensorProvider::component_names() const {
  std::vector<std::string> out;
  out.reserve(components_.size());
  for (const auto& c : components_) out.push_back(c.name);
  return out;
}

std::vector<std::string> CompositeSensorProvider::component_variables() const {
  std::vector<std::string> out;
  out.reserve(components_.size());
  for (const auto& c : components_) out.push_back(c.variable);
  return out;
}

util::Status CompositeSensorProvider::set_expression(
    const std::string& source) {
  return computation_.set_expression(source, component_variables());
}

std::vector<std::optional<double>> CompositeSensorProvider::collect() {
  csp_metrics().collections.add(1);
  std::vector<std::shared_ptr<sorcer::Task>> tasks;
  tasks.reserve(components_.size());
  for (const auto& comp : components_) {
    tasks.push_back(sorcer::Task::make(
        comp.variable,
        sorcer::Signature{kSensorDataAccessorType, op::kGetValue, comp.name}));
  }

  // Prefer the federation: a rendezvous peer coordinates the fan-out.
  bool federated = false;
  if (!tasks.empty()) {
    // Lenient collection must not abort on the first unreachable child;
    // strictness is enforced after the fan-out, per component.
    auto strategy = policy_.strategy;
    strategy.fail_fast = false;
    auto job = sorcer::Job::make(provider_name() + ".collect", strategy);
    for (const auto& t : tasks) job->add(t);
    (void)sorcer::exert(job, accessor_);
    federated = job->error().code() != util::ErrorCode::kNotFound ||
                job->status() != sorcer::ExertStatus::kFailed;
    if (federated) last_collection_latency_ = job->latency();
  }
  if (!federated) {
    // No rendezvous peer on the network: invoke components directly,
    // sequentially — the collection then costs the sum of child latencies.
    util::SimDuration total = 0;
    for (const auto& task : tasks) {
      auto servicer = accessor_.find_servicer(task->signature());
      if (servicer.is_ok()) (void)servicer.value()->service(task, nullptr);
      total += task->latency();
    }
    last_collection_latency_ = total;
  }
  csp_metrics().collection_latency.observe(
      static_cast<double>(last_collection_latency_));

  std::vector<std::optional<double>> out;
  out.reserve(tasks.size());
  for (const auto& task : tasks) {
    auto v = task->context().get_double(path::kValue);
    if (task->status() == sorcer::ExertStatus::kDone && v.is_ok()) {
      out.emplace_back(v.value());
    } else {
      out.emplace_back(std::nullopt);
    }
  }
  return out;
}

util::Result<double> CompositeSensorProvider::get_value() {
  if (components_.empty()) {
    return util::Status{util::ErrorCode::kFailedPrecondition,
                        "composite '" + provider_name() +
                            "' has no composed services"};
  }
  const auto collected = collect();

  std::vector<double> values;
  values.reserve(collected.size());
  for (std::size_t i = 0; i < collected.size(); ++i) {
    if (collected[i]) {
      values.push_back(*collected[i]);
    } else if (policy_.strict || computation_.has_expression()) {
      return util::Status{
          util::ErrorCode::kUnavailable,
          util::format("component '%s' (variable %s) is unreachable",
                       components_[i].name.c_str(),
                       components_[i].variable.c_str())};
    }
  }
  if (values.empty()) {
    return util::Status{util::ErrorCode::kUnavailable,
                        "no composed service is reachable"};
  }
  ++reads_;
  csp_metrics().reads.add(1);
  return computation_.evaluate(values);
}

util::Result<sensor::Reading> CompositeSensorProvider::get_reading() {
  auto value = get_value();
  if (!value.is_ok()) return value.status();
  sensor::Reading reading;
  reading.timestamp = scheduler_.now();
  reading.value = value.value();
  reading.quality = sensor::Quality::kGood;
  reading.sequence = reads_;
  return reading;
}

SensorInfo CompositeSensorProvider::info() const {
  SensorInfo out;
  out.name = provider_name();
  out.kind = SensorServiceKind::kComposite;
  out.id = service_id();
  out.measurement = "composite";
  out.contained = component_names();
  out.expression = computation_.expression_source();
  return out;
}

void CompositeSensorProvider::install_operations() {
  add_operation(
      op::kGetValue,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto reading = get_reading();
        if (!reading.is_ok()) return reading.status();
        ctx.put(path::kValue, reading.value().value,
                sorcer::PathDirection::kOut);
        ctx.put(path::kTimestamp,
                static_cast<std::int64_t>(reading.value().timestamp),
                sorcer::PathDirection::kOut);
        ctx.put(path::kQuality,
                std::string(sensor::quality_name(reading.value().quality)),
                sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      1 * util::kMillisecond);

  add_operation(
      op::kGetInfo,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        const SensorInfo i = info();
        ctx.put(path::kInfoName, i.name, sorcer::PathDirection::kOut);
        ctx.put(path::kInfoKind, std::string(sensor_service_kind_name(i.kind)),
                sorcer::PathDirection::kOut);
        ctx.put(path::kExpression, i.expression, sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      200 * util::kMicrosecond);

  add_operation(
      op::kAddComponent,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto name = ctx.get_string(path::kComponentName);
        if (!name.is_ok()) return name.status();
        return add_component(name.value());
      },
      500 * util::kMicrosecond);

  add_operation(
      op::kRemoveComponent,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto name = ctx.get_string(path::kComponentName);
        if (!name.is_ok()) return name.status();
        return remove_component(name.value());
      },
      500 * util::kMicrosecond);

  add_operation(
      op::kSetExpression,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto source = ctx.get_string(path::kExpression);
        if (!source.is_ok()) return source.status();
        return set_expression(source.value());
      },
      500 * util::kMicrosecond);
}

}  // namespace sensorcer::core
