#pragma once
// Sensor Browser — the zero-install service UI of §V.B/§VII, rendered as
// text (our substitute for the Inca X screenshots in Fig 2/3). Follows the
// MVC pattern the paper prescribes: the model snapshots the network
// configuration, views render the panes, and the controller maps user
// operations onto the façade.

#include <optional>
#include <string>
#include <vector>

#include "core/facade.h"

namespace sensorcer::core {

/// The browser's model: a snapshot of what the panes display.
struct BrowserModel {
  /// Left pane: one block per lookup service, with all registered services.
  struct LusListing {
    std::string lus_name;
    /// (service name, comma-joined interface types).
    std::vector<std::pair<std::string, std::string>> services;
  };
  std::vector<LusListing> registries;

  /// Middle pane: names of sensor services ("Get Sensor List").
  std::vector<std::string> sensor_services;

  /// Right pane: "Sensor Service Information" for the selection.
  std::optional<SensorInfo> selection;

  /// Fig 2's bottom-left "Entry Value" table: the selected service's
  /// registry attributes, as (key, rendered value) pairs.
  std::vector<std::pair<std::string, std::string>> selection_attributes;

  /// "Sensor Value" pane: per-service readouts.
  struct ValueRow {
    std::string name;
    bool ok = false;
    double value = 0.0;
    std::string error;  // when !ok
  };
  std::vector<ValueRow> values;
};

class SensorBrowser {
 public:
  explicit SensorBrowser(SensorcerFacade& facade) : facade_(facade) {}

  // --- controller -----------------------------------------------------------

  /// Rebuild the registry and sensor-service listings.
  void refresh();

  /// Select a service for the information pane.
  util::Status select(const std::string& service_name);

  /// Read the current value of every sensor service into the value pane.
  void read_values();

  // --- views ------------------------------------------------------------------

  /// The left "Services" pane (Fig 2's service tree).
  [[nodiscard]] std::string render_services() const;

  /// The "Sensor Service Information" card for the selection.
  [[nodiscard]] std::string render_information() const;

  /// The "Entry Value" attribute table for the selection (Fig 2).
  [[nodiscard]] std::string render_entries() const;

  /// The "Sensor Value" pane.
  [[nodiscard]] std::string render_values() const;

  /// The "Federation Health" pane: discovery latency, lease churn, exertion
  /// percentiles and traffic totals from the manager's merged obs snapshot.
  [[nodiscard]] std::string render_health() const;

  /// All panes combined.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] const BrowserModel& model() const { return model_; }

 private:
  SensorcerFacade& facade_;
  BrowserModel model_;
};

}  // namespace sensorcer::core
