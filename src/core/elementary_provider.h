#pragma once
// Elementary Sensor Provider (ESP) — "the basic building block of this
// framework" (§V.B). Wraps one sensor probe, samples it on a schedule into
// a local DataLog (the data-flow-reversal buffer of §II), and serves values
// through both the SensorDataAccessor interface and exertion operations.

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/interfaces.h"
#include "hist/feeder.h"
#include "sensor/data_log.h"
#include "sensor/probe.h"
#include "sorcer/provider.h"
#include "util/scheduler.h"

namespace sensorcer::core {

/// ESP sampling configuration.
struct SamplingPolicy {
  /// Period of autonomous probe sampling into the log; 0 disables
  /// background sampling (values then come from on-demand reads only).
  util::SimDuration sample_period = 1 * util::kSecond;
  std::size_t log_capacity = 1024;
};

class ElementarySensorProvider : public sorcer::ServiceProvider,
                                 public SensorDataAccessor {
 public:
  /// Takes ownership of the probe and connects it. Background sampling
  /// starts immediately when the policy enables it.
  ElementarySensorProvider(std::string name, sensor::ProbePtr probe,
                           util::Scheduler& scheduler,
                           SamplingPolicy policy = {});

  ~ElementarySensorProvider() override;

  // --- SensorDataAccessor -----------------------------------------------------

  util::Result<double> get_value() override;
  util::Result<sensor::Reading> get_reading() override;
  [[nodiscard]] SensorInfo info() const override;

  // --- local store --------------------------------------------------------------

  [[nodiscard]] const sensor::DataLog& log() const { return log_; }

  /// Take one sample into the log right now (also used by the timer).
  void sample_once();

  /// The probe (fault injection in tests/examples).
  sensor::SensorProbe& probe() { return *probe_; }

  void set_location(const std::string& location);

  // --- historian push ------------------------------------------------------------

  /// Start pushing every logged reading at the deployment's historian
  /// through `accessor` (batched appendBatch exertions). The caller binds
  /// the returned feeder to a lookup service so pushes start/stop with the
  /// historian's registration.
  hist::HistorianFeeder& enable_history(sorcer::ServiceAccessor& accessor,
                                        hist::FeederConfig config = {});

  /// The push feeder, or null when history is not enabled.
  [[nodiscard]] hist::HistorianFeeder* history_feeder() {
    return feeder_.get();
  }

  // --- reading taps --------------------------------------------------------------

  /// Observe every reading this provider records (sampled or read on
  /// demand), at the single ingest point the feeder already hangs off —
  /// consumers like flows ride the sampling loop instead of issuing reads
  /// of their own. Returns an id for remove_reading_tap.
  std::uint64_t add_reading_tap(
      std::function<void(const sensor::Reading&)> tap);
  void remove_reading_tap(std::uint64_t id);
  [[nodiscard]] std::size_t reading_tap_count() const { return taps_.size(); }

  /// Failover: adopt the predecessor ESP's surviving DataLog and replay it
  /// at the historian (idempotent — the historian dedups timestamps), so a
  /// re-provisioned sensor leaves no gap in recorded history.
  void assume_state_from(sorcer::ServiceProvider& predecessor) override;

 protected:
  /// A crashed ESP's process is gone: stop the sampling timer and the
  /// historian push so the zombie (alive in memory until its registrations
  /// lapse) cannot keep recording or double-pushing readings.
  void on_crashed() override;

 private:
  void install_operations();

  /// Single ingest point: append to the local log and offer to the feeder.
  void record(const sensor::Reading& reading);

  sensor::ProbePtr probe_;
  util::Scheduler& scheduler_;
  SamplingPolicy policy_;
  sensor::DataLog log_;
  util::TimerId sample_timer_ = 0;
  std::string location_;
  std::unique_ptr<hist::HistorianFeeder> feeder_;
  std::vector<
      std::pair<std::uint64_t, std::function<void(const sensor::Reading&)>>>
      taps_;
  std::uint64_t next_tap_id_ = 1;
};

}  // namespace sensorcer::core
