#include "core/facade.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sorcer/exert.h"

namespace sensorcer::core {

namespace {

obs::Counter& facade_requests() {
  static obs::Counter& c = obs::metrics().counter("facade.requests");
  return c;
}

}  // namespace

SensorcerFacade::SensorcerFacade(std::string name,
                                 sorcer::ServiceAccessor& accessor,
                                 SensorNetworkManager& manager,
                                 SensorServiceProvisioner* provisioner)
    : ServiceProvider(std::move(name), {kFacadeType}),
      accessor_(accessor),
      manager_(manager),
      provisioner_(provisioner) {
  registry::Entry attrs;
  attrs.set(registry::attr::kComment, "SenSORCER Facade");
  set_attributes(attrs);
}

std::vector<SensorInfo> SensorcerFacade::get_sensor_list() {
  return manager_.list_services();
}

util::Result<double> SensorcerFacade::get_value(
    const std::string& service_name) {
  facade_requests().add(1);
  // Root span for the whole request: the exertion and the probe reads it
  // triggers all nest below this context.
  obs::Span span =
      obs::tracer().start_span("facade.getValue:" + service_name);
  obs::ContextGuard guard(span.context());
  // Facade reads are service-to-service calls like any other: a task
  // exertion routed through the invocation pipeline, so they are
  // byte-accounted — and really cross the fabric under wire transport —
  // instead of short-circuiting into the provider object.
  auto task = sorcer::Task::make(
      "facade.read:" + service_name,
      sorcer::Signature{kSensorDataAccessorType, op::kGetValue, service_name});
  (void)sorcer::exert(task, accessor_);
  if (task->status() != sorcer::ExertStatus::kDone) {
    span.set_ok(false);
    return task->error();
  }
  auto value = task->context().get_double(path::kValue);
  span.set_ok(value.is_ok());
  return value;
}

util::Status SensorcerFacade::compose_service(
    const std::string& composite, const std::vector<std::string>& children) {
  return manager_.compose(composite, children);
}

util::Status SensorcerFacade::add_expression(const std::string& composite,
                                             const std::string& expression) {
  return manager_.set_expression(composite, expression);
}

util::Status SensorcerFacade::create_service(const std::string& name,
                                             const rio::QosRequirement& qos) {
  if (provisioner_ == nullptr) {
    return {util::ErrorCode::kUnavailable,
            "no provisioning service is deployed"};
  }
  return provisioner_->provision_composite(name, qos);
}

std::shared_ptr<CompositeSensorProvider> SensorcerFacade::create_local_service(
    const std::string& name) {
  return manager_.create_composite(name);
}

util::Result<SensorInfo> SensorcerFacade::service_information(
    const std::string& name) {
  auto sensor = manager_.find_sensor(name);
  if (!sensor.is_ok()) return sensor.status();
  return sensor.value()->info();
}

std::string SensorcerFacade::topology(const std::string& root,
                                      bool with_values) {
  return manager_.render_tree(root, with_values);
}

}  // namespace sensorcer::core
