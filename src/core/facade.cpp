#include "core/facade.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sorcer/exert.h"
#include "util/strings.h"

namespace sensorcer::core {

namespace {

obs::Counter& facade_requests() {
  static obs::Counter& c = obs::metrics().counter("facade.requests");
  return c;
}

}  // namespace

SensorcerFacade::SensorcerFacade(std::string name,
                                 sorcer::ServiceAccessor& accessor,
                                 SensorNetworkManager& manager,
                                 SensorServiceProvisioner* provisioner)
    : ServiceProvider(std::move(name), {kFacadeType}),
      accessor_(accessor),
      manager_(manager),
      provisioner_(provisioner) {
  registry::Entry attrs;
  attrs.set(registry::attr::kComment, "SenSORCER Facade");
  set_attributes(attrs);
}

std::vector<SensorInfo> SensorcerFacade::get_sensor_list() {
  return manager_.list_services();
}

util::Result<double> SensorcerFacade::get_value(
    const std::string& service_name) {
  facade_requests().add(1);
  // Root span for the whole request: the exertion and the probe reads it
  // triggers all nest below this context.
  obs::Span span =
      obs::tracer().start_span("facade.getValue:" + service_name);
  obs::ContextGuard guard(span.context());
  // Facade reads are service-to-service calls like any other: a task
  // exertion routed through the invocation pipeline, so they are
  // byte-accounted — and really cross the fabric under wire transport —
  // instead of short-circuiting into the provider object.
  auto task = sorcer::Task::make(
      "facade.read:" + service_name,
      sorcer::Signature{kSensorDataAccessorType, op::kGetValue, service_name});
  (void)sorcer::exert(task, accessor_);
  if (task->status() != sorcer::ExertStatus::kDone) {
    span.set_ok(false);
    return task->error();
  }
  auto value = task->context().get_double(path::kValue);
  span.set_ok(value.is_ok());
  return value;
}

std::vector<util::Result<double>> SensorcerFacade::get_values(
    const std::vector<std::string>& service_names) {
  facade_requests().add(1);
  obs::Span span = obs::tracer().start_span(
      util::format("facade.getValues[%zu]", service_names.size()));
  obs::ContextGuard guard(span.context());
  std::vector<sorcer::ExertionPtr> batch;
  batch.reserve(service_names.size());
  for (const std::string& name : service_names) {
    batch.push_back(sorcer::Task::make(
        "facade.read:" + name,
        sorcer::Signature{kSensorDataAccessorType, op::kGetValue, name}));
  }
  (void)sorcer::exert_all(batch, accessor_);
  std::vector<util::Result<double>> out;
  out.reserve(batch.size());
  bool all_ok = true;
  for (const auto& task : batch) {
    if (task->status() != sorcer::ExertStatus::kDone) {
      out.emplace_back(task->error());
      all_ok = false;
      continue;
    }
    auto value = task->context().get_double(path::kValue);
    if (!value.is_ok()) all_ok = false;
    out.push_back(std::move(value));
  }
  span.set_ok(all_ok);
  return out;
}

namespace {

/// Exert a historian query task and hand back its filled context.
util::Result<sorcer::ExertionPtr> exert_hist_query(
    sorcer::ServiceAccessor& accessor, const char* selector,
    const std::string& sensor, util::SimTime from, util::SimTime to,
    std::int64_t extra, const char* extra_path) {
  facade_requests().add(1);
  obs::Span span = obs::tracer().start_span(
      std::string("facade.") + selector + ":" + sensor);
  obs::ContextGuard guard(span.context());
  auto task = sorcer::Task::make(
      std::string("facade.hist:") + sensor,
      sorcer::Signature{kDataCollectionType, selector, ""});
  sorcer::ServiceContext& ctx = task->context();
  ctx.put(path::kHistSensor, sensor, sorcer::PathDirection::kIn);
  ctx.put(path::kHistFrom, static_cast<std::int64_t>(from),
          sorcer::PathDirection::kIn);
  ctx.put(path::kHistTo, static_cast<std::int64_t>(to),
          sorcer::PathDirection::kIn);
  ctx.put(extra_path, extra, sorcer::PathDirection::kIn);
  (void)sorcer::exert(task, accessor);
  if (task->status() != sorcer::ExertStatus::kDone) {
    span.set_ok(false);
    return task->error();
  }
  return sorcer::ExertionPtr(task);
}

std::int64_t int_or(const sorcer::ServiceContext& ctx, const char* path,
                    std::int64_t fallback = 0) {
  const sorcer::ContextValue* v = ctx.find(path);
  if (v == nullptr) return fallback;
  if (const auto* i = std::get_if<std::int64_t>(v)) return *i;
  if (const auto* d = std::get_if<double>(v)) {
    return static_cast<std::int64_t>(*d);
  }
  return fallback;
}

hist::SeriesResult parse_series(const sorcer::ServiceContext& ctx) {
  hist::SeriesResult out;
  // Borrow the reply columns in place instead of copying both series out of
  // the context (`ctx` is not mutated while the borrows live).
  const auto* timestamps = ctx.peek_series(path::kHistTimestamps);
  const auto* values = ctx.peek_series(path::kHistValues);
  if (timestamps != nullptr && values != nullptr) {
    const std::size_t n = std::min(timestamps->size(), values->size());
    out.points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.points.push_back(
          {static_cast<util::SimTime>((*timestamps)[i]), (*values)[i]});
    }
  }
  out.source = ctx.peek_string(path::kHistSource).value_or("");
  if (const sorcer::ContextValue* t = ctx.find(path::kHistTruncated)) {
    if (const auto* b = std::get_if<bool>(t)) out.truncated = *b;
  }
  return out;
}

}  // namespace

util::Result<hist::StatsResult> SensorcerFacade::query_stats(
    const std::string& sensor, util::SimTime from, util::SimTime to,
    util::SimDuration max_resolution) {
  auto done = exert_hist_query(accessor_, op::kHistStats, sensor, from, to,
                               static_cast<std::int64_t>(max_resolution),
                               path::kHistResolution);
  if (!done.is_ok()) return done.status();
  const sorcer::ServiceContext& ctx = done.value()->context();
  hist::StatsResult out;
  out.stats.count = static_cast<std::uint64_t>(int_or(ctx, path::kHistCount));
  out.stats.min = ctx.get_double(path::kHistMin).value_or(0.0);
  out.stats.max = ctx.get_double(path::kHistMax).value_or(0.0);
  out.stats.sum = ctx.get_double(path::kHistSum).value_or(0.0);
  out.stats.last = ctx.get_double(path::kHistLast).value_or(0.0);
  out.from_effective = int_or(ctx, path::kHistFromEffective, from);
  out.to_effective = int_or(ctx, path::kHistToEffective, to);
  out.source = ctx.peek_string(path::kHistSource).value_or("");
  out.resolution = int_or(ctx, path::kHistResolution);
  return out;
}

util::Result<hist::SeriesResult> SensorcerFacade::query_range(
    const std::string& sensor, util::SimTime from, util::SimTime to,
    std::size_t max_points) {
  auto done = exert_hist_query(accessor_, op::kHistRange, sensor, from, to,
                               static_cast<std::int64_t>(max_points),
                               path::kHistPoints);
  if (!done.is_ok()) return done.status();
  return parse_series(done.value()->context());
}

util::Result<hist::SeriesResult> SensorcerFacade::query_downsample(
    const std::string& sensor, util::SimTime from, util::SimTime to,
    std::size_t points) {
  auto done = exert_hist_query(accessor_, op::kHistDownsample, sensor, from,
                               to, static_cast<std::int64_t>(points),
                               path::kHistPoints);
  if (!done.is_ok()) return done.status();
  return parse_series(done.value()->context());
}

std::vector<util::Result<hist::SeriesResult>>
SensorcerFacade::query_downsample_many(const std::vector<std::string>& sensors,
                                       util::SimTime from, util::SimTime to,
                                       std::size_t points) {
  facade_requests().add(1);
  obs::Span span = obs::tracer().start_span(
      util::format("facade.histDownsampleMany[%zu]", sensors.size()));
  obs::ContextGuard guard(span.context());
  std::vector<sorcer::ExertionPtr> batch;
  batch.reserve(sensors.size());
  for (const std::string& sensor : sensors) {
    auto task = sorcer::Task::make(
        "facade.hist:" + sensor,
        sorcer::Signature{kDataCollectionType, op::kHistDownsample, ""});
    sorcer::ServiceContext& ctx = task->context();
    ctx.put(path::kHistSensor, sensor, sorcer::PathDirection::kIn);
    ctx.put(path::kHistFrom, static_cast<std::int64_t>(from),
            sorcer::PathDirection::kIn);
    ctx.put(path::kHistTo, static_cast<std::int64_t>(to),
            sorcer::PathDirection::kIn);
    ctx.put(path::kHistPoints, static_cast<std::int64_t>(points),
            sorcer::PathDirection::kIn);
    batch.push_back(std::move(task));
  }
  (void)sorcer::exert_all(batch, accessor_);
  std::vector<util::Result<hist::SeriesResult>> out;
  out.reserve(batch.size());
  bool all_ok = true;
  for (const auto& task : batch) {
    if (task->status() != sorcer::ExertStatus::kDone) {
      out.emplace_back(task->error());
      all_ok = false;
      continue;
    }
    out.emplace_back(parse_series(task->context()));
  }
  span.set_ok(all_ok);
  return out;
}

util::Status SensorcerFacade::compose_service(
    const std::string& composite, const std::vector<std::string>& children) {
  util::Status composed = manager_.compose(composite, children);
  if (composed.is_ok() && provisioner_ != nullptr) {
    // A CSP needs its components: record required edges so the monitor
    // cascade-restarts the composite when a re-provisioned child comes back
    // under the same name (the CSP re-resolves components by name).
    for (const std::string& child : children) {
      (void)provisioner_->declare_dependency(composite, child,
                                             rio::DependencyKind::kRequired);
    }
  }
  return composed;
}

util::Status SensorcerFacade::add_expression(const std::string& composite,
                                             const std::string& expression) {
  return manager_.set_expression(composite, expression);
}

util::Status SensorcerFacade::create_service(const std::string& name,
                                             const rio::QosRequirement& qos) {
  if (provisioner_ == nullptr) {
    return {util::ErrorCode::kUnavailable,
            "no provisioning service is deployed"};
  }
  return provisioner_->provision_composite(name, qos);
}

util::Status SensorcerFacade::create_flow(const flow::FlowSpec& spec) {
  if (flows_ == nullptr) {
    return {util::ErrorCode::kUnavailable, "no flow manager is deployed"};
  }
  return flows_->create_flow(spec);
}

util::Status SensorcerFacade::destroy_flow(const std::string& name) {
  if (flows_ == nullptr) {
    return {util::ErrorCode::kUnavailable, "no flow manager is deployed"};
  }
  return flows_->destroy_flow(name);
}

std::vector<flow::FlowStats> SensorcerFacade::list_flows() {
  if (flows_ == nullptr) return {};
  return flows_->list_flows();
}

util::Result<flow::FlowStats> SensorcerFacade::flow_stats(
    const std::string& name) {
  if (flows_ == nullptr) {
    return util::Status{util::ErrorCode::kUnavailable,
                        "no flow manager is deployed"};
  }
  return flows_->stats(name);
}

std::shared_ptr<CompositeSensorProvider> SensorcerFacade::create_local_service(
    const std::string& name) {
  return manager_.create_composite(name);
}

util::Result<SensorInfo> SensorcerFacade::service_information(
    const std::string& name) {
  auto sensor = manager_.find_sensor(name);
  if (!sensor.is_ok()) return sensor.status();
  return sensor.value()->info();
}

std::string SensorcerFacade::topology(const std::string& root,
                                      bool with_values) {
  return manager_.render_tree(root, with_values);
}

}  // namespace sensorcer::core
