#include "core/facade.h"

namespace sensorcer::core {

SensorcerFacade::SensorcerFacade(std::string name,
                                 sorcer::ServiceAccessor& accessor,
                                 SensorNetworkManager& manager,
                                 SensorServiceProvisioner* provisioner)
    : ServiceProvider(std::move(name), {kFacadeType}),
      accessor_(accessor),
      manager_(manager),
      provisioner_(provisioner) {
  registry::Entry attrs;
  attrs.set(registry::attr::kComment, "SenSORCER Facade");
  set_attributes(attrs);
}

std::vector<SensorInfo> SensorcerFacade::get_sensor_list() {
  return manager_.list_services();
}

util::Result<double> SensorcerFacade::get_value(
    const std::string& service_name) {
  auto sensor = manager_.find_sensor(service_name);
  if (!sensor.is_ok()) return sensor.status();
  return sensor.value()->get_value();
}

util::Status SensorcerFacade::compose_service(
    const std::string& composite, const std::vector<std::string>& children) {
  return manager_.compose(composite, children);
}

util::Status SensorcerFacade::add_expression(const std::string& composite,
                                             const std::string& expression) {
  return manager_.set_expression(composite, expression);
}

util::Status SensorcerFacade::create_service(const std::string& name,
                                             const rio::QosRequirement& qos) {
  if (provisioner_ == nullptr) {
    return {util::ErrorCode::kUnavailable,
            "no provisioning service is deployed"};
  }
  return provisioner_->provision_composite(name, qos);
}

std::shared_ptr<CompositeSensorProvider> SensorcerFacade::create_local_service(
    const std::string& name) {
  return manager_.create_composite(name);
}

util::Result<SensorInfo> SensorcerFacade::service_information(
    const std::string& name) {
  auto sensor = manager_.find_sensor(name);
  if (!sensor.is_ok()) return sensor.status();
  return sensor.value()->info();
}

std::string SensorcerFacade::topology(const std::string& root,
                                      bool with_values) {
  return manager_.render_tree(root, with_values);
}

}  // namespace sensorcer::core
