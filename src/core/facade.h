#pragma once
// Sensorcer Façade — "the single entry point of the SenSORCER system" (§V.B).
// It bundles the Sensor Network Manager, the Service Accessor and the Sensor
// Service Provisioner behind the uniform operations the Sensor Browser's
// buttons map to: Get Sensor List / Get Value / Compose Service /
// Add Expression / Create Service.

#include <memory>
#include <string>
#include <vector>

#include "core/network_manager.h"
#include "core/provisioner.h"
#include "flow/manager.h"
#include "hist/series.h"
#include "sorcer/provider.h"

namespace sensorcer::core {

class SensorcerFacade : public sorcer::ServiceProvider {
 public:
  /// `provisioner` may be null when the deployment has no Rio monitor; the
  /// Create Service (provision) operation then fails with kUnavailable.
  SensorcerFacade(std::string name, sorcer::ServiceAccessor& accessor,
                  SensorNetworkManager& manager,
                  SensorServiceProvisioner* provisioner = nullptr);

  // --- browser-button operations ------------------------------------------------

  /// "Get Sensor List": every sensor service on the network.
  std::vector<SensorInfo> get_sensor_list();

  /// "Get Value": current value of the named sensor service.
  util::Result<double> get_value(const std::string& service_name);

  /// Multi-sensor "Get Value": one read task per name, issued as a single
  /// scatter-gather batch through the invocation pipeline — under wire
  /// transport the reads overlap on the fabric and the whole page refresh
  /// costs ~one round-trip, not N. Results are positional with
  /// `service_names`.
  std::vector<util::Result<double>> get_values(
      const std::vector<std::string>& service_names);

  /// "Compose Service": add child services to a composite.
  util::Status compose_service(const std::string& composite,
                               const std::vector<std::string>& children);

  /// "Add Expression": attach a compute expression to a composite.
  util::Status add_expression(const std::string& composite,
                              const std::string& expression);

  /// "Create Service": provision a new composite onto a QoS-matching
  /// cybernode through Rio.
  util::Status create_service(const std::string& name,
                              const rio::QosRequirement& qos = {});

  /// Create a composite hosted locally (no provisioning).
  std::shared_ptr<CompositeSensorProvider> create_local_service(
      const std::string& name);

  // --- historian queries ----------------------------------------------------------

  /// Aggregate stats of `sensor` over [from, to), answered by the
  /// historian from the coarsest rollup ring no wider than
  /// `max_resolution` (0 demands the exact raw path). Routed through the
  /// invocation pipeline like every other service-to-service call.
  util::Result<hist::StatsResult> query_stats(
      const std::string& sensor, util::SimTime from, util::SimTime to,
      util::SimDuration max_resolution = 60 * util::kSecond);

  /// Raw retained readings of `sensor` in [from, to).
  util::Result<hist::SeriesResult> query_range(const std::string& sensor,
                                               util::SimTime from,
                                               util::SimTime to,
                                               std::size_t max_points = 1024);

  /// At most `points` downsampled (bucket-start, mean) pairs over [from, to).
  util::Result<hist::SeriesResult> query_downsample(const std::string& sensor,
                                                    util::SimTime from,
                                                    util::SimTime to,
                                                    std::size_t points = 64);

  /// Dashboard fan-out: one downsample query per sensor, exerted as a
  /// scatter-gather batch (overlapped wire round-trips, like get_values)
  /// and served by the historian's read executor. Results are positional.
  std::vector<util::Result<hist::SeriesResult>> query_downsample_many(
      const std::vector<std::string>& sensors, util::SimTime from,
      util::SimTime to, std::size_t points = 64);

  // --- streaming dataflows --------------------------------------------------------

  /// The deployment wires its FlowManager in; null leaves the flow
  /// operations failing with kUnavailable.
  void set_flow_manager(flow::FlowManager* flows) { flows_ = flows; }
  [[nodiscard]] flow::FlowManager* flow_manager() { return flows_; }

  /// "Create Flow": compile, place and start a streaming dataflow.
  util::Status create_flow(const flow::FlowSpec& spec);
  util::Status destroy_flow(const std::string& name);
  std::vector<flow::FlowStats> list_flows();
  util::Result<flow::FlowStats> flow_stats(const std::string& name);

  /// Info card for the browser's "Sensor Service Information" pane.
  util::Result<SensorInfo> service_information(const std::string& name);

  /// Containment tree (Fig 3) rooted at a composite.
  std::string topology(const std::string& root, bool with_values = false);

  [[nodiscard]] SensorNetworkManager& manager() { return manager_; }
  [[nodiscard]] sorcer::ServiceAccessor& accessor() { return accessor_; }

 private:
  sorcer::ServiceAccessor& accessor_;
  SensorNetworkManager& manager_;
  SensorServiceProvisioner* provisioner_;
  flow::FlowManager* flows_ = nullptr;
};

}  // namespace sensorcer::core
