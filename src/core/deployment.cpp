#include "core/deployment.h"

#include "obs/trace.h"
#include "util/strings.h"

namespace sensorcer::core {

Deployment::Deployment(DeploymentConfig config)
    : config_(config),
      network_(scheduler_, config.seed),
      lrm_(scheduler_, config.lease_batch),
      txn_manager_(scheduler_),
      mailbox_(scheduler_),
      discovery_(network_, scheduler_) {
  network_.set_latency(config_.network_latency);
  // Spans record this deployment's virtual time (last deployment wins when
  // several coexist, e.g. in one test binary — fine for reports and tests).
  obs::set_sim_clock(&scheduler_);

  // The invocation pipeline: every service-to-service dispatch routed
  // through this accessor goes via the invoker (in-process by default;
  // kWire puts the calls on the fabric as messages).
  invoker_ = std::make_unique<sorcer::RemoteInvoker>(network_, config_.invoke);
  accessor_.set_invoker(invoker_.get());

  // Lookup services: advertised over multicast discovery and also handed to
  // the accessor directly (unicast discovery), so clients work immediately.
  for (std::size_t i = 0; i < config_.lookup_services; ++i) {
    auto lus = std::make_shared<registry::LookupService>(
        util::format("lus-%zu", i), scheduler_, &network_,
        100 * util::kMillisecond, config_.lus_shards);
    discovery_.advertise(lus);
    accessor_.add_lookup(lus);
    lookups_.push_back(std::move(lus));
  }

  if (config_.worker_threads > 0) {
    pool_ = std::make_unique<util::ThreadPool>(config_.worker_threads);
  }

  if (config_.with_jobber) {
    jobber_ = std::make_shared<sorcer::Jobber>("Jobber", accessor_,
                                               pool_.get());
    jobber_->attach_network(network_);
    for (const auto& lus : lookups_) {
      (void)jobber_->join(lus, lrm_, config_.lease_duration);
    }
  }
  if (config_.with_spacer) {
    spacer_ = std::make_shared<sorcer::Spacer>(
        "Spacer", accessor_, space_, config_.spacer_workers, pool_.get());
    spacer_->attach_network(network_);
    for (const auto& lus : lookups_) {
      (void)spacer_->join(lus, lrm_, config_.lease_duration);
    }
  }

  for (std::size_t i = 0; i < config_.cybernodes; ++i) {
    auto node = std::make_shared<rio::Cybernode>(
        util::format("Cybernode-%zu", i + 1), config_.cybernode_capability);
    node->attach_network(network_);
    for (const auto& lus : lookups_) {
      (void)node->join(lus, lrm_, config_.lease_duration);
    }
    cybernodes_.push_back(std::move(node));
  }

  rio::MonitorConfig monitor_config = config_.monitor;
  monitor_config.service_lease = config_.lease_duration;
  monitor_ = std::make_shared<rio::ProvisionMonitor>(
      "Monitor", accessor_, lrm_, scheduler_, monitor_config);
  monitor_->attach_network(network_);
  for (const auto& lus : lookups_) {
    (void)monitor_->join(lus, lrm_, config_.lease_duration);
  }

  if (config_.with_historian) {
    historian_ = std::make_shared<hist::Historian>("Historian",
                                                   config_.historian);
    historian_->attach_network(network_);
    for (const auto& lus : lookups_) {
      (void)historian_->join(lus, lrm_, config_.lease_duration);
    }
  }

  ManagerConfig manager_config;
  manager_config.lease_duration = config_.lease_duration;
  manager_config.collection = config_.collection;
  // Composites created through the manager/provisioner fan out their direct
  // (no-rendezvous) collections across the deployment's worker pool.
  manager_config.collection.pool = pool_.get();
  manager_config.sampling = config_.sampling;
  manager_config.history_push = config_.with_historian;
  manager_config.history_feed = config_.history_feed;
  manager_ = std::make_unique<SensorNetworkManager>(accessor_, scheduler_,
                                                    lrm_, manager_config);
  manager_->attach_network(&network_);
  provisioner_ = std::make_unique<SensorServiceProvisioner>(
      *monitor_, accessor_, scheduler_, manager_config.collection,
      config_.sampling);
  if (config_.with_historian && !lookups_.empty()) {
    provisioner_->enable_history(config_.history_feed, lookups_.front(),
                                 &lrm_);
  }
  if (config_.with_flow) {
    flow::FlowManagerConfig flow_config = config_.flow;
    flow_config.sample_period = config_.sampling.sample_period;
    flow_manager_ = std::make_shared<flow::FlowManager>(
        "FlowManager", accessor_, scheduler_, lrm_, monitor_.get(),
        flow_config);
    flow_manager_->attach_network(network_);
    for (const auto& lus : lookups_) {
      (void)flow_manager_->join(lus, lrm_, config_.lease_duration);
    }
    // Flow sources ride the managed ESPs' record() taps: a flow consumes
    // the readings the sampling loop already takes, never re-reading.
    flow_manager_->set_source_binder(
        [this](const std::string& sensor,
               std::function<void(const sensor::Reading&)> tap)
            -> util::Result<flow::TapHandle> {
          auto found = manager_->find_sensor(sensor);
          if (!found.is_ok()) return found.status();
          auto esp = std::dynamic_pointer_cast<ElementarySensorProvider>(
              found.value());
          if (!esp) {
            return util::Status{
                util::ErrorCode::kFailedPrecondition,
                "flow source '" + sensor + "' is not an elementary sensor"};
          }
          const std::uint64_t id = esp->add_reading_tap(std::move(tap));
          std::weak_ptr<ElementarySensorProvider> weak = esp;
          return flow::TapHandle{[weak, id] {
            if (auto strong = weak.lock()) strong->remove_reading_tap(id);
          }};
        });
  }
  facade_ = std::make_shared<SensorcerFacade>(
      "SenSORCER Facade", accessor_, *manager_, provisioner_.get());
  facade_->set_flow_manager(flow_manager_.get());
  facade_->attach_network(network_);
  for (const auto& lus : lookups_) {
    (void)facade_->join(lus, lrm_, config_.lease_duration);
  }
  browser_ = std::make_unique<SensorBrowser>(*facade_);
}

Deployment::~Deployment() {
  if (obs::sim_clock() == &scheduler_) obs::set_sim_clock(nullptr);
}

std::shared_ptr<ElementarySensorProvider> Deployment::add_temperature_sensor(
    const std::string& name, double base_celsius,
    const std::string& location) {
  return add_sensor(
      name, sensor::make_temperature_probe(name, ++sensor_seed_, base_celsius),
      location);
}

std::shared_ptr<ElementarySensorProvider> Deployment::add_sensor(
    const std::string& name, sensor::ProbePtr probe,
    const std::string& location) {
  return manager_->register_elementary(name, std::move(probe), location);
}

}  // namespace sensorcer::core
