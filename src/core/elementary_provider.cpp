#include "core/elementary_provider.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace sensorcer::core {

namespace {

struct EspMetrics {
  obs::Counter& samples;
  obs::Counter& reads;
  obs::Counter& probe_failures;
};

EspMetrics& esp_metrics() {
  static EspMetrics m{obs::metrics().counter("esp.samples"),
                      obs::metrics().counter("esp.reads"),
                      obs::metrics().counter("esp.probe_failures")};
  return m;
}

}  // namespace

const char* sensor_service_kind_name(SensorServiceKind kind) {
  switch (kind) {
    case SensorServiceKind::kElementary: return "ELEMENTARY";
    case SensorServiceKind::kComposite: return "COMPOSITE";
  }
  return "?";
}

ElementarySensorProvider::ElementarySensorProvider(std::string name,
                                                   sensor::ProbePtr probe,
                                                   util::Scheduler& scheduler,
                                                   SamplingPolicy policy)
    : ServiceProvider(std::move(name),
                      {kSensorDataAccessorType, kElementaryServiceType}),
      probe_(std::move(probe)),
      scheduler_(scheduler),
      policy_(policy),
      log_(policy.log_capacity) {
  (void)probe_->connect();

  registry::Entry attrs;
  attrs.set(registry::attr::kServiceType,
            std::string(sensor_service_kind_name(SensorServiceKind::kElementary)));
  attrs.set(registry::attr::kSensorKind,
            std::string(sensor::sensor_kind_name(probe_->teds().kind)));
  attrs.set(registry::attr::kUnit,
            std::string(sensor::sensor_kind_unit(probe_->teds().kind)));
  set_attributes(attrs);

  install_operations();

  if (policy_.sample_period > 0) {
    sample_timer_ = scheduler_.schedule_every(policy_.sample_period,
                                              [this] { sample_once(); });
  }
}

ElementarySensorProvider::~ElementarySensorProvider() {
  scheduler_.cancel(sample_timer_);
  probe_->disconnect();
}

void ElementarySensorProvider::set_location(const std::string& location) {
  location_ = location;
  registry::Entry attrs = attributes();
  attrs.set(registry::attr::kLocation, location);
  set_attributes(attrs);
}

void ElementarySensorProvider::record(const sensor::Reading& reading) {
  // A crashed process records nothing: a zombie instance (its registration
  // lingering until the lease lapses) serving one last read must not grow a
  // log its replacement already adopted, or tap/push readings nobody owns.
  if (crashed()) return;
  log_.append(reading);
  if (feeder_) feeder_->offer(reading);
  for (const auto& [id, tap] : taps_) tap(reading);
}

std::uint64_t ElementarySensorProvider::add_reading_tap(
    std::function<void(const sensor::Reading&)> tap) {
  const std::uint64_t id = next_tap_id_++;
  taps_.emplace_back(id, std::move(tap));
  return id;
}

void ElementarySensorProvider::remove_reading_tap(std::uint64_t id) {
  std::erase_if(taps_, [id](const auto& t) { return t.first == id; });
}

void ElementarySensorProvider::sample_once() {
  esp_metrics().samples.add(1);
  auto reading = probe_->read(scheduler_.now());
  if (reading.is_ok()) record(reading.value());
}

hist::HistorianFeeder& ElementarySensorProvider::enable_history(
    sorcer::ServiceAccessor& accessor, hist::FeederConfig config) {
  if (!feeder_) {
    feeder_ = std::make_unique<hist::HistorianFeeder>(
        provider_name(), scheduler_, accessor, config);
  }
  return *feeder_;
}

void ElementarySensorProvider::on_crashed() {
  scheduler_.cancel(sample_timer_);
  sample_timer_ = 0;
  if (feeder_) feeder_->unbind();
}

void ElementarySensorProvider::assume_state_from(
    sorcer::ServiceProvider& predecessor) {
  auto* esp = dynamic_cast<ElementarySensorProvider*>(&predecessor);
  if (esp == nullptr) return;
  // Adopt the surviving log (newer than anything we sampled so far).
  esp->log().for_each(0, sensor::kEndOfTime,
                      [this](const sensor::Reading& r) { log_.append(r); });
  // Un-pushed readings of the dead instance would be lost; replaying the
  // whole adopted log covers them (historian-side dedup drops the rest).
  if (feeder_) feeder_->backfill(log_);
}

util::Result<sensor::Reading> ElementarySensorProvider::get_reading() {
  esp_metrics().reads.add(1);
  // Probe spans only under an active trace: the periodic sampling timer
  // would otherwise flood the collector with uncorrelated spans.
  obs::Span span;
  if (obs::current_context().valid()) {
    span = obs::tracer().start_span("probe:" + provider_name());
  }
  auto reading = probe_->read(scheduler_.now());
  if (!reading.is_ok()) {
    esp_metrics().probe_failures.add(1);
    span.set_ok(false);
    // Device trouble: fall back to the local store if it has anything —
    // the log is exactly what lets a service answer while the device blips.
    if (!log_.empty()) {
      sensor::Reading stale = log_.latest();
      stale.quality = sensor::Quality::kSuspect;
      return stale;
    }
    return reading.status();
  }
  record(reading.value());
  return reading;
}

util::Result<double> ElementarySensorProvider::get_value() {
  auto reading = get_reading();
  if (!reading.is_ok()) return reading.status();
  return reading.value().value;
}

SensorInfo ElementarySensorProvider::info() const {
  SensorInfo out;
  out.name = provider_name();
  out.kind = SensorServiceKind::kElementary;
  out.id = service_id();
  out.measurement = sensor::sensor_kind_name(probe_->teds().kind);
  out.unit = sensor::sensor_kind_unit(probe_->teds().kind);
  out.location = location_;
  return out;
}

void ElementarySensorProvider::install_operations() {
  add_operation(
      op::kGetValue,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        auto reading = get_reading();
        if (!reading.is_ok()) return reading.status();
        ctx.put(path::kValue, reading.value().value,
                sorcer::PathDirection::kOut);
        ctx.put(path::kTimestamp,
                static_cast<std::int64_t>(reading.value().timestamp),
                sorcer::PathDirection::kOut);
        ctx.put(path::kQuality,
                std::string(sensor::quality_name(reading.value().quality)),
                sorcer::PathDirection::kOut);
        ctx.put(path::kUnit,
                std::string(sensor::sensor_kind_unit(probe_->teds().kind)),
                sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      500 * util::kMicrosecond);

  add_operation(
      op::kGetLog,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        util::SimTime since = 0;
        if (ctx.has(path::kLogSince)) {
          auto s = ctx.get_double(path::kLogSince);
          if (s.is_ok()) since = static_cast<util::SimTime>(s.value());
        }
        std::vector<double> values;
        for (const auto& r : log_.window(since)) values.push_back(r.value);
        ctx.put(path::kLogValues, std::move(values),
                sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      2 * util::kMillisecond);

  add_operation(
      op::kGetInfo,
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        const SensorInfo i = info();
        ctx.put(path::kInfoName, i.name, sorcer::PathDirection::kOut);
        ctx.put(path::kInfoKind,
                std::string(sensor_service_kind_name(i.kind)),
                sorcer::PathDirection::kOut);
        ctx.put(path::kInfoMeasurement, i.measurement,
                sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      200 * util::kMicrosecond);
}

}  // namespace sensorcer::core
