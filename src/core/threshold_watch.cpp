#include "core/threshold_watch.h"

#include "sorcer/exert.h"
#include "util/strings.h"

namespace sensorcer::core {

const char* alarm_kind_name(AlarmKind kind) {
  switch (kind) {
    case AlarmKind::kLow: return "LOW";
    case AlarmKind::kHigh: return "HIGH";
    case AlarmKind::kUnreachable: return "UNREACHABLE";
    case AlarmKind::kRecovered: return "RECOVERED";
  }
  return "?";
}

std::string Alarm::to_string() const {
  if (kind == AlarmKind::kUnreachable) {
    return util::format("[%s] %s: %s", util::format_duration(when).c_str(),
                        sensor.c_str(), alarm_kind_name(kind));
  }
  return util::format("[%s] %s: %s (value %.3f)",
                      util::format_duration(when).c_str(), sensor.c_str(),
                      alarm_kind_name(kind), value);
}

ThresholdWatch::ThresholdWatch(std::string name,
                               sorcer::ServiceAccessor& accessor,
                               util::Scheduler& scheduler,
                               util::SimDuration period,
                               std::size_t history_capacity)
    : ServiceProvider(std::move(name), {"ThresholdWatch"}),
      accessor_(accessor),
      scheduler_(scheduler),
      history_capacity_(history_capacity ? history_capacity : 1) {
  poll_timer_ = scheduler_.schedule_every(period, [this] { poll_once(); });

  add_operation(
      "getAlarms",
      [this](sorcer::ServiceContext& ctx) -> util::Status {
        std::vector<double> values;
        std::string rendered;
        for (const auto& alarm : history_) {
          values.push_back(alarm.value);
          rendered += alarm.to_string() + "\n";
        }
        ctx.put("watch/alarms/count",
                static_cast<std::int64_t>(history_.size()),
                sorcer::PathDirection::kOut);
        ctx.put("watch/alarms/values", std::move(values),
                sorcer::PathDirection::kOut);
        ctx.put("watch/alarms/log", std::move(rendered),
                sorcer::PathDirection::kOut);
        return util::Status::ok();
      },
      500 * util::kMicrosecond);
}

ThresholdWatch::~ThresholdWatch() { scheduler_.cancel(poll_timer_); }

void ThresholdWatch::watch(AlarmRule rule) {
  const std::string sensor = rule.sensor;
  rules_[sensor] = Watched{std::move(rule), SensorState::kNormal};
}

void ThresholdWatch::unwatch(const std::string& sensor) {
  rules_.erase(sensor);
}

void ThresholdWatch::raise(const std::string& sensor, AlarmKind kind,
                           double value) {
  Alarm alarm{scheduler_.now(), sensor, kind, value};
  if (history_.size() >= history_capacity_) history_.pop_front();
  history_.push_back(alarm);
  if (listener_) listener_(alarm);
}

void ThresholdWatch::apply(const std::string& sensor, Watched& watched,
                           bool reachable, double value) {
  SensorState next;
  if (!reachable) {
    next = SensorState::kUnreachable;
  } else if (value < watched.rule.low) {
    next = SensorState::kLow;
  } else if (value > watched.rule.high) {
    next = SensorState::kHigh;
  } else {
    next = SensorState::kNormal;
  }

  if (next == watched.state) return;  // alarms fire on transitions only
  switch (next) {
    case SensorState::kLow:
      raise(sensor, AlarmKind::kLow, value);
      break;
    case SensorState::kHigh:
      raise(sensor, AlarmKind::kHigh, value);
      break;
    case SensorState::kUnreachable:
      raise(sensor, AlarmKind::kUnreachable, 0.0);
      break;
    case SensorState::kNormal:
      raise(sensor, AlarmKind::kRecovered, value);
      break;
  }
  watched.state = next;
}

void ThresholdWatch::ingest(const std::string& sensor, double value,
                            bool reachable) {
  auto it = rules_.find(sensor);
  if (it == rules_.end()) return;
  apply(sensor, it->second, reachable, value);
}

void ThresholdWatch::set_flow_fed(const std::string& sensor, bool flow_fed) {
  auto it = rules_.find(sensor);
  if (it != rules_.end()) it->second.flow_fed = flow_fed;
}

void ThresholdWatch::poll_once() {
  for (auto& [sensor, watched] : rules_) {
    // Flow-fed rules are evaluated by pushed emissions; reading them here
    // again would double up on the sensor.
    if (watched.flow_fed) continue;
    // Read through the federation, like any requestor would.
    auto task = sorcer::Task::make(
        "watch.read",
        sorcer::Signature{kSensorDataAccessorType, op::kGetValue, sensor});
    (void)sorcer::exert(task, accessor_);

    if (task->status() != sorcer::ExertStatus::kDone) {
      apply(sensor, watched, /*reachable=*/false, 0.0);
    } else {
      apply(sensor, watched, /*reachable=*/true,
            task->context().get_double(path::kValue).value_or(0.0));
    }
  }
}

std::size_t ThresholdWatch::active_alarm_count() const {
  std::size_t n = 0;
  for (const auto& [sensor, watched] : rules_) {
    if (watched.state != SensorState::kNormal) ++n;
  }
  return n;
}

flow::SinkSpec watch_sink(ThresholdWatch& watch) {
  return flow::SinkSpec::to_trigger(
      [&watch](const std::string& sensor, const sensor::Reading& reading) {
        watch.ingest(sensor, reading.value,
                     reading.quality != sensor::Quality::kBad);
      });
}

}  // namespace sensorcer::core
