#pragma once
// Sensor Service Provisioner — the façade's bridge to Rio (§V.B): "dynamic
// network formation of sensors in SenSORCER dynamically allocates a CSP to
// the capable cybernode with operational specifications provided by the
// requestor."

#include <memory>
#include <string>

#include "core/composite_provider.h"
#include "core/elementary_provider.h"
#include "rio/monitor.h"
#include "sensor/probe.h"

namespace sensorcer::core {

class SensorServiceProvisioner {
 public:
  SensorServiceProvisioner(rio::ProvisionMonitor& monitor,
                           sorcer::ServiceAccessor& accessor,
                           util::Scheduler& scheduler,
                           CollectionPolicy collection = {},
                           SamplingPolicy sampling = {})
      : monitor_(monitor),
        accessor_(accessor),
        scheduler_(scheduler),
        collection_(collection),
        sampling_(sampling) {}

  /// Provision a new composite sensor service named `name` onto a cybernode
  /// satisfying `qos` (the paper's step 3: "Provisioned a new composite
  /// service on to the network"). The instance becomes discoverable after
  /// the monitor's activation delay.
  util::Status provision_composite(const std::string& name,
                                   const rio::QosRequirement& qos);

  /// Provision an elementary sensor service around probes produced by
  /// `probe_factory` (one per replica).
  util::Status provision_elementary(
      const std::string& name,
      std::function<sensor::ProbePtr(const std::string&)> probe_factory,
      const rio::QosRequirement& qos, std::size_t replicas = 1);

  /// Provision an arbitrary service element under its own operational
  /// string — the generic hook subsystems (flow relays, custom peers) use
  /// to ride Rio placement and failover without a bespoke method here.
  util::Status provision_service(const std::string& opstring_name,
                                 rio::ServiceElement element) {
    return monitor_.deploy(
        rio::OperationalString{opstring_name, {std::move(element)}});
  }

  /// Tear down a previously provisioned service.
  util::Status unprovision(const std::string& name) {
    return monitor_.undeploy(name);
  }

  /// Attach historian push to every ESP this provisioner instantiates —
  /// including replacements the monitor re-provisions after a node failure,
  /// which then backfill the historian from the adopted DataLog.
  void enable_history(hist::FeederConfig config,
                      std::weak_ptr<registry::LookupService> lus,
                      registry::LeaseRenewalManager* lrm) {
    history_ = true;
    history_feed_ = config;
    history_lus_ = std::move(lus);
    history_lrm_ = lrm;
  }

  [[nodiscard]] rio::ProvisionMonitor& monitor() { return monitor_; }

 private:
  rio::ProvisionMonitor& monitor_;
  sorcer::ServiceAccessor& accessor_;
  util::Scheduler& scheduler_;
  CollectionPolicy collection_;
  SamplingPolicy sampling_;
  bool history_ = false;
  hist::FeederConfig history_feed_;
  std::weak_ptr<registry::LookupService> history_lus_;
  registry::LeaseRenewalManager* history_lrm_ = nullptr;
};

}  // namespace sensorcer::core
