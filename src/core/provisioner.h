#pragma once
// Sensor Service Provisioner — the façade's bridge to Rio (§V.B): "dynamic
// network formation of sensors in SenSORCER dynamically allocates a CSP to
// the capable cybernode with operational specifications provided by the
// requestor."

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/composite_provider.h"
#include "core/elementary_provider.h"
#include "rio/monitor.h"
#include "sensor/probe.h"

namespace sensorcer::core {

class SensorServiceProvisioner {
 public:
  SensorServiceProvisioner(rio::ProvisionMonitor& monitor,
                           sorcer::ServiceAccessor& accessor,
                           util::Scheduler& scheduler,
                           CollectionPolicy collection = {},
                           SamplingPolicy sampling = {})
      : monitor_(monitor),
        accessor_(accessor),
        scheduler_(scheduler),
        collection_(collection),
        sampling_(sampling) {}

  /// Provision a new composite sensor service named `name` onto a cybernode
  /// satisfying `qos` (the paper's step 3: "Provisioned a new composite
  /// service on to the network"). The instance becomes discoverable after
  /// the monitor's activation delay. `depends_on` lists instance names the
  /// composite requires (its future components): the monitor cascades a
  /// restart of this CSP when one of them is re-provisioned.
  util::Status provision_composite(const std::string& name,
                                   const rio::QosRequirement& qos,
                                   const std::vector<std::string>& depends_on = {});

  /// Provision an elementary sensor service around probes produced by
  /// `probe_factory` (one per replica). With history enabled, every
  /// instance gets an *optional* dependency edge onto the historian: the
  /// historian dying degrades the ESPs (they buffer) but never restarts
  /// them.
  util::Status provision_elementary(
      const std::string& name,
      std::function<sensor::ProbePtr(const std::string&)> probe_factory,
      const rio::QosRequirement& qos, std::size_t replicas = 1);

  /// Provision an arbitrary service element under its own operational
  /// string — the generic hook subsystems (flow relays, custom peers) use
  /// to ride Rio placement and failover without a bespoke method here.
  util::Status provision_service(const std::string& opstring_name,
                                 rio::ServiceElement element) {
    return monitor_.deploy(
        rio::OperationalString{opstring_name, {std::move(element)}});
  }

  /// Declare a dependency between two provisioned instances (see
  /// rio::ProvisionMonitor::add_dependency).
  util::Status declare_dependency(
      const std::string& dependent, const std::string& dependency,
      rio::DependencyKind kind = rio::DependencyKind::kRequired) {
    return monitor_.add_dependency(dependent, dependency, kind);
  }

  /// Tear down a previously provisioned service: stop its historian pushes,
  /// drop its dependency edges, evict its instances.
  util::Status unprovision(const std::string& name);

  /// Attach historian push to every ESP this provisioner instantiates —
  /// including replacements the monitor re-provisions after a node failure,
  /// which then backfill the historian from the adopted DataLog.
  /// `historian_instance` names the deployed historian for the optional
  /// dependency edge each history-fed ESP gets.
  void enable_history(hist::FeederConfig config,
                      std::weak_ptr<registry::LookupService> lus,
                      registry::LeaseRenewalManager* lrm,
                      std::string historian_instance = "Historian") {
    history_ = true;
    history_feed_ = config;
    history_lus_ = std::move(lus);
    history_lrm_ = lrm;
    historian_instance_ = std::move(historian_instance);
  }

  /// Observe every instance the provisioner's factories create — initial
  /// placements and monitor re-provisions alike. The chaos harness uses
  /// this to install reading taps on replacement ESPs.
  void set_instance_hook(
      std::function<void(const std::shared_ptr<sorcer::ServiceProvider>&)>
          hook) {
    instance_hook_ = std::move(hook);
  }

  [[nodiscard]] rio::ProvisionMonitor& monitor() { return monitor_; }

 private:
  rio::ProvisionMonitor& monitor_;
  sorcer::ServiceAccessor& accessor_;
  util::Scheduler& scheduler_;
  CollectionPolicy collection_;
  SamplingPolicy sampling_;
  bool history_ = false;
  hist::FeederConfig history_feed_;
  std::weak_ptr<registry::LookupService> history_lus_;
  registry::LeaseRenewalManager* history_lrm_ = nullptr;
  std::string historian_instance_;
  std::function<void(const std::shared_ptr<sorcer::ServiceProvider>&)>
      instance_hook_;
};

}  // namespace sensorcer::core
