#pragma once
// Sensor-network configuration snapshots.
//
// The browser's MVC model "contains the data of the sensor network
// configuration" (§V.B). This module makes that configuration a first-class
// artifact: describe() captures every composite's children and expression,
// the text form round-trips for storage/transport, and apply() rebuilds the
// logical network — e.g. re-composing a composite that Rio re-provisioned
// as a fresh (empty) instance after a cybernode failure.

#include <string>
#include <vector>

#include "core/facade.h"

namespace sensorcer::core {

/// One composite's logical wiring.
struct CompositeConfig {
  std::string name;
  std::vector<std::string> components;  // composition order = variable order
  std::string expression;               // empty = default average

  friend bool operator==(const CompositeConfig&,
                         const CompositeConfig&) = default;
};

/// The logical sensor-network configuration (composites only; elementary
/// services are physical resources, not configuration).
struct NetworkDescription {
  std::vector<CompositeConfig> composites;

  friend bool operator==(const NetworkDescription&,
                         const NetworkDescription&) = default;
};

/// Snapshot the current network: every composite service reachable through
/// the manager, sorted by name, children in composition order.
NetworkDescription describe(SensorNetworkManager& manager);

/// Line-based text form:
///   composite <name>
///     component <child-name>
///     expression <source>
///   end
std::string to_text(const NetworkDescription& description);

/// Parse the text form; malformed input reports the offending line.
util::Result<NetworkDescription> parse_description(const std::string& text);

/// Result of applying a description.
struct ApplyReport {
  std::size_t composites_created = 0;   // missing composites instantiated
  std::size_t components_added = 0;     // wiring restored
  std::size_t expressions_set = 0;
  std::vector<std::string> errors;      // per-item failures (apply continues)

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Re-establish `description` through the façade: create absent composites
/// locally, add missing components (present ones are left alone), and set
/// expressions. Application is best-effort; failures are reported per item.
/// (Named apply_description, not apply: ADL via std base classes would
/// otherwise drag std::apply into the overload set.)
ApplyReport apply_description(SensorcerFacade& facade,
                              const NetworkDescription& description);

}  // namespace sensorcer::core
