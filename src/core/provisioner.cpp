#include "core/provisioner.h"

namespace sensorcer::core {

util::Status SensorServiceProvisioner::provision_composite(
    const std::string& name, const rio::QosRequirement& qos,
    const std::vector<std::string>& depends_on) {
  rio::OperationalString opstring;
  opstring.name = name;
  rio::ServiceElement element;
  element.name = name;
  element.qos = qos;
  element.planned = 1;
  element.factory = [this](const std::string& instance_name)
      -> std::shared_ptr<sorcer::ServiceProvider> {
    auto csp = std::make_shared<CompositeSensorProvider>(
        instance_name, accessor_, scheduler_, collection_);
    if (instance_hook_) instance_hook_(csp);
    return csp;
  };
  opstring.elements.push_back(std::move(element));
  util::Status deployed = monitor_.deploy(std::move(opstring));
  for (const std::string& dep : depends_on) {
    (void)monitor_.add_dependency(name, dep, rio::DependencyKind::kRequired);
  }
  return deployed;
}

util::Status SensorServiceProvisioner::provision_elementary(
    const std::string& name,
    std::function<sensor::ProbePtr(const std::string&)> probe_factory,
    const rio::QosRequirement& qos, std::size_t replicas) {
  rio::OperationalString opstring;
  opstring.name = name;
  rio::ServiceElement element;
  element.name = name;
  element.qos = qos;
  element.planned = replicas;
  element.factory = [this, probe_factory = std::move(probe_factory)](
                        const std::string& instance_name)
      -> std::shared_ptr<sorcer::ServiceProvider> {
    auto esp = std::make_shared<ElementarySensorProvider>(
        instance_name, probe_factory(instance_name), scheduler_, sampling_);
    if (history_) {
      hist::HistorianFeeder& feeder =
          esp->enable_history(accessor_, history_feed_);
      if (auto lus = history_lus_.lock(); lus && history_lrm_ != nullptr) {
        feeder.bind(lus, *history_lrm_);
      }
    }
    if (instance_hook_) instance_hook_(esp);
    return esp;
  };
  opstring.elements.push_back(std::move(element));
  util::Status deployed = monitor_.deploy(std::move(opstring));
  if (history_ && !historian_instance_.empty()) {
    // The historian dying is survivable — the feeder buffers and replays —
    // so the edge is optional: ESPs degrade, they do not restart.
    for (const auto& svc : monitor_.deployed_instances(name)) {
      (void)monitor_.add_dependency(svc->provider_name(), historian_instance_,
                                    rio::DependencyKind::kOptional);
    }
  }
  return deployed;
}

util::Status SensorServiceProvisioner::unprovision(const std::string& name) {
  // Stop historian pushes before eviction: an undeployed ESP's feeder must
  // not flush another batch while the registration lease lapses.
  for (const auto& svc : monitor_.deployed_instances(name)) {
    if (auto* esp = dynamic_cast<ElementarySensorProvider*>(svc.get())) {
      if (auto* feeder = esp->history_feeder()) feeder->unbind();
    }
  }
  // undeploy() drops the instances' dependency-graph nodes, so stale edges
  // cannot cascade a re-provision of this opstring later.
  return monitor_.undeploy(name);
}

}  // namespace sensorcer::core
