#include "core/provisioner.h"

namespace sensorcer::core {

util::Status SensorServiceProvisioner::provision_composite(
    const std::string& name, const rio::QosRequirement& qos) {
  rio::OperationalString opstring;
  opstring.name = name;
  rio::ServiceElement element;
  element.name = name;
  element.qos = qos;
  element.planned = 1;
  element.factory = [this](const std::string& instance_name)
      -> std::shared_ptr<sorcer::ServiceProvider> {
    return std::make_shared<CompositeSensorProvider>(
        instance_name, accessor_, scheduler_, collection_);
  };
  opstring.elements.push_back(std::move(element));
  return monitor_.deploy(std::move(opstring));
}

util::Status SensorServiceProvisioner::provision_elementary(
    const std::string& name,
    std::function<sensor::ProbePtr(const std::string&)> probe_factory,
    const rio::QosRequirement& qos, std::size_t replicas) {
  rio::OperationalString opstring;
  opstring.name = name;
  rio::ServiceElement element;
  element.name = name;
  element.qos = qos;
  element.planned = replicas;
  element.factory = [this, probe_factory = std::move(probe_factory)](
                        const std::string& instance_name)
      -> std::shared_ptr<sorcer::ServiceProvider> {
    auto esp = std::make_shared<ElementarySensorProvider>(
        instance_name, probe_factory(instance_name), scheduler_, sampling_);
    if (history_) {
      hist::HistorianFeeder& feeder =
          esp->enable_history(accessor_, history_feed_);
      if (auto lus = history_lus_.lock(); lus && history_lrm_ != nullptr) {
        feeder.bind(lus, *history_lrm_);
      }
    }
    return esp;
  };
  opstring.elements.push_back(std::move(element));
  return monitor_.deploy(std::move(opstring));
}

}  // namespace sensorcer::core
