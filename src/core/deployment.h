#pragma once
// Deployment — a complete SenSORCER "lab" in one object, mirroring the
// paper's experimental deployment at the SORCER Lab (Fig 2): lookup
// services with discovery, Jini infrastructure services (lease renewal,
// event mailbox, transaction manager), Rio cybernodes with a provision
// monitor, SORCER rendezvous peers (Jobber, Spacer over an exertion space),
// and the SenSORCER façade with its browser.
//
// Examples, integration tests and benches all boot through this class so
// the wiring order (scheduler → network → registries → peers → façade) is
// written exactly once.

#include <memory>
#include <string>
#include <vector>

#include "core/browser.h"
#include "core/facade.h"
#include "core/network_manager.h"
#include "core/provisioner.h"
#include "flow/manager.h"
#include "hist/historian.h"
#include "registry/discovery.h"
#include "registry/event_mailbox.h"
#include "registry/transaction.h"
#include "rio/monitor.h"
#include "sorcer/invoke.h"
#include "sorcer/jobber.h"
#include "sorcer/spacer.h"
#include "util/thread_pool.h"

namespace sensorcer::core {

struct DeploymentConfig {
  std::size_t lookup_services = 1;
  /// Shards per lookup service (consistent-hash partitions of the registry).
  std::size_t lus_shards = registry::RegistryFederation::kDefaultShards;
  /// Lease renewal batching (one renewAll message per LUS shard per due
  /// window instead of one message per lease).
  registry::LeaseBatchConfig lease_batch;
  std::size_t cybernodes = 2;
  rio::QosCapability cybernode_capability{4.0, 4096.0, "x86_64", {}};
  bool with_jobber = true;
  bool with_spacer = true;
  std::size_t spacer_workers = 4;
  /// 0 = no real thread pool (rendezvous peers run inline).
  std::size_t worker_threads = 4;
  util::SimDuration lease_duration = 30 * util::kSecond;
  util::SimDuration network_latency = 200 * util::kMicrosecond;
  /// Invocation pipeline settings. kInProcess (the default) keeps direct
  /// virtual calls with modeled byte accounting; kWire puts every
  /// service-to-service call on the fabric as request/response messages.
  sorcer::InvokeConfig invoke;
  rio::MonitorConfig monitor;
  CollectionPolicy collection;
  SamplingPolicy sampling;
  /// Boot a Historian service and feed it from every managed/provisioned
  /// ESP (sampled readings pushed as appendBatch exertions).
  bool with_historian = true;
  hist::HistorianConfig historian;
  hist::FeederConfig history_feed;
  /// Boot a FlowManager wired to the managed sensors' reading taps and the
  /// provision monitor (streaming dataflows with cost-modeled placement).
  bool with_flow = true;
  flow::FlowManagerConfig flow;
  std::uint64_t seed = 42;
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config = {});
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  // --- simulation control ------------------------------------------------------

  /// Advance virtual time (drives sampling, leases, announcements, polls).
  void pump(util::SimDuration span) { scheduler_.run_for(span); }

  [[nodiscard]] util::SimTime now() const { return scheduler_.now(); }

  // --- convenience builders ------------------------------------------------------

  /// Register a SUN SPOT-style temperature ESP (the paper's sensors).
  std::shared_ptr<ElementarySensorProvider> add_temperature_sensor(
      const std::string& name, double base_celsius = 22.0,
      const std::string& location = "CP TTU/310");

  /// Register an ESP around an arbitrary probe.
  std::shared_ptr<ElementarySensorProvider> add_sensor(
      const std::string& name, sensor::ProbePtr probe,
      const std::string& location = "");

  // --- the stack -----------------------------------------------------------------

  util::Scheduler& scheduler() { return scheduler_; }
  simnet::Network& network() { return network_; }
  registry::LeaseRenewalManager& lease_renewal() { return lrm_; }
  registry::TransactionManager& transactions() { return txn_manager_; }
  registry::EventMailbox& event_mailbox() { return mailbox_; }
  registry::DiscoveryManager& discovery() { return discovery_; }
  sorcer::ServiceAccessor& accessor() { return accessor_; }
  sorcer::RemoteInvoker& invoker() { return *invoker_; }
  util::ThreadPool* pool() { return pool_.get(); }
  sorcer::ExertSpace& space() { return space_; }

  const std::vector<std::shared_ptr<registry::LookupService>>& lookups()
      const {
    return lookups_;
  }
  const std::vector<std::shared_ptr<rio::Cybernode>>& cybernodes() const {
    return cybernodes_;
  }
  rio::ProvisionMonitor& monitor() { return *monitor_; }
  /// The Jobber rendezvous peer, or null when with_jobber is off (the chaos
  /// harness kills and revives it mid-fan-out).
  sorcer::Jobber* jobber() { return jobber_.get(); }
  /// The historian, or null when with_historian is off.
  hist::Historian* historian() { return historian_.get(); }
  /// The flow manager, or null when with_flow is off.
  flow::FlowManager* flow_manager() { return flow_manager_.get(); }
  SensorNetworkManager& manager() { return *manager_; }
  SensorServiceProvisioner& provisioner() { return *provisioner_; }
  SensorcerFacade& facade() { return *facade_; }
  SensorBrowser& browser() { return *browser_; }

  [[nodiscard]] const DeploymentConfig& config() const { return config_; }

 private:
  DeploymentConfig config_;
  util::Scheduler scheduler_;
  simnet::Network network_;
  registry::LeaseRenewalManager lrm_;
  registry::TransactionManager txn_manager_;
  registry::EventMailbox mailbox_;
  registry::DiscoveryManager discovery_;
  std::vector<std::shared_ptr<registry::LookupService>> lookups_;
  // Declared after network_: the invoker detaches its endpoint on
  // destruction, so the fabric must outlive it.
  std::unique_ptr<sorcer::RemoteInvoker> invoker_;
  sorcer::ServiceAccessor accessor_;
  std::unique_ptr<util::ThreadPool> pool_;
  sorcer::ExertSpace space_;
  std::shared_ptr<sorcer::Jobber> jobber_;
  std::shared_ptr<sorcer::Spacer> spacer_;
  std::vector<std::shared_ptr<rio::Cybernode>> cybernodes_;
  std::shared_ptr<rio::ProvisionMonitor> monitor_;
  std::shared_ptr<hist::Historian> historian_;
  std::unique_ptr<SensorNetworkManager> manager_;
  std::unique_ptr<SensorServiceProvisioner> provisioner_;
  std::shared_ptr<flow::FlowManager> flow_manager_;
  std::shared_ptr<SensorcerFacade> facade_;
  std::unique_ptr<SensorBrowser> browser_;
  std::uint64_t sensor_seed_ = 1000;
};

}  // namespace sensorcer::core
