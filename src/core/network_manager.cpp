#include "core/network_manager.h"

#include <algorithm>

#include "obs/health.h"
#include "util/strings.h"

namespace sensorcer::core {

SensorNetworkManager::SensorNetworkManager(
    sorcer::ServiceAccessor& accessor, util::Scheduler& scheduler,
    registry::LeaseRenewalManager& lrm, ManagerConfig config)
    : accessor_(accessor),
      scheduler_(scheduler),
      lrm_(lrm),
      config_(config) {}

void SensorNetworkManager::join_all(
    const std::shared_ptr<sorcer::ServiceProvider>& provider) {
  // Managed services are full network citizens: endpoint on the fabric
  // (dispatchable over the wire, RPC byte-accounted) plus registrations on
  // every known lookup service.
  if (network_ != nullptr) provider->attach_network(*network_);
  for (const auto& lus : accessor_.lookups()) {
    (void)provider->join(lus, lrm_, config_.lease_duration);
  }
}

std::shared_ptr<ElementarySensorProvider>
SensorNetworkManager::register_elementary(const std::string& name,
                                          sensor::ProbePtr probe,
                                          const std::string& location) {
  auto esp = std::make_shared<ElementarySensorProvider>(
      name, std::move(probe), scheduler_, config_.sampling);
  if (!location.empty()) esp->set_location(location);
  join_all(esp);
  if (config_.history_push) {
    hist::HistorianFeeder& feeder =
        esp->enable_history(accessor_, config_.history_feed);
    if (const auto lookups = accessor_.lookups(); !lookups.empty()) {
      feeder.bind(lookups.front(), lrm_);
    }
  }
  owned_.push_back(esp);
  return esp;
}

std::shared_ptr<CompositeSensorProvider>
SensorNetworkManager::create_composite(const std::string& name) {
  auto csp = std::make_shared<CompositeSensorProvider>(
      name, accessor_, scheduler_, config_.collection);
  join_all(csp);
  owned_.push_back(csp);
  return csp;
}

void SensorNetworkManager::adopt(
    std::shared_ptr<sorcer::ServiceProvider> provider) {
  owned_.push_back(std::move(provider));
}

util::Status SensorNetworkManager::remove_service(const std::string& name) {
  auto it = std::find_if(owned_.begin(), owned_.end(), [&](const auto& p) {
    return p->provider_name() == name;
  });
  if (it == owned_.end()) {
    return {util::ErrorCode::kNotFound,
            "'" + name + "' is not managed by this manager"};
  }
  (*it)->leave();
  owned_.erase(it);
  return util::Status::ok();
}

util::Result<std::shared_ptr<CompositeSensorProvider>>
SensorNetworkManager::find_composite(const std::string& name) {
  auto item = accessor_.find_item(
      registry::ServiceTemplate::by_name(kCompositeServiceType, name));
  if (!item.is_ok()) {
    return util::Status{util::ErrorCode::kNotFound,
                        "no composite service named '" + name + "'"};
  }
  auto csp = registry::proxy_cast<CompositeSensorProvider>(item.value().proxy);
  if (!csp) {
    return util::Status{util::ErrorCode::kInternal,
                        "'" + name + "' proxy is not a composite provider"};
  }
  return csp;
}

util::Status SensorNetworkManager::compose(
    const std::string& composite, const std::vector<std::string>& children) {
  auto csp = find_composite(composite);
  if (!csp.is_ok()) return csp.status();
  // Declarative: children already composed (e.g. adopted from a failed-over
  // predecessor's state hand-off) are kept, not duplicated.
  const std::vector<std::string> existing = csp.value()->component_names();
  for (const auto& child : children) {
    if (std::find(existing.begin(), existing.end(), child) !=
        existing.end()) {
      continue;
    }
    if (util::Status added = csp.value()->add_component(child);
        !added.is_ok()) {
      return added;
    }
  }
  return util::Status::ok();
}

util::Status SensorNetworkManager::set_expression(
    const std::string& composite, const std::string& expression) {
  auto csp = find_composite(composite);
  if (!csp.is_ok()) return csp.status();
  return csp.value()->set_expression(expression);
}

util::Result<std::shared_ptr<SensorDataAccessor>>
SensorNetworkManager::find_sensor(const std::string& name) {
  auto item = accessor_.find_item(
      registry::ServiceTemplate::by_name(kSensorDataAccessorType, name));
  if (!item.is_ok()) return item.status();
  auto sensor = registry::proxy_cast<SensorDataAccessor>(item.value().proxy);
  if (!sensor) {
    return util::Status{util::ErrorCode::kInternal,
                        "proxy does not implement SensorDataAccessor"};
  }
  return sensor;
}

std::vector<SensorInfo> SensorNetworkManager::list_services() {
  std::vector<SensorInfo> out;
  for (const auto& item : accessor_.find_all(
           registry::ServiceTemplate::by_type(kSensorDataAccessorType))) {
    if (auto sensor = registry::proxy_cast<SensorDataAccessor>(item.proxy)) {
      out.push_back(sensor->info());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SensorInfo& a, const SensorInfo& b) {
              return a.name < b.name;
            });
  return out;
}

void SensorNetworkManager::render_node(const std::string& name,
                                       const std::string& prefix, bool last,
                                       bool with_values, std::string& out,
                                       int depth) {
  out += prefix;
  if (depth > 0) out += last ? "`-- " : "|-- ";
  out += name;

  auto sensor = find_sensor(name);
  if (!sensor.is_ok()) {
    out += "  [unreachable]\n";
    return;
  }
  const SensorInfo info = sensor.value()->info();
  out += util::format("  (%s%s%s)",
                      sensor_service_kind_name(info.kind),
                      info.expression.empty() ? "" : ", expr: ",
                      info.expression.c_str());
  if (with_values) {
    auto value = sensor.value()->get_value();
    if (value.is_ok()) {
      out += util::format("  value=%.3f", value.value());
    } else {
      out += "  value=<" + std::string(util::error_code_name(
                               value.status().code())) + ">";
    }
  }
  out += "\n";

  if (depth > 16) {  // containment cycles are rejected, but stay safe
    out += prefix + "  ...\n";
    return;
  }
  const std::string child_prefix =
      depth == 0 ? prefix : prefix + (last ? "    " : "|   ");
  for (std::size_t i = 0; i < info.contained.size(); ++i) {
    render_node(info.contained[i], child_prefix,
                i + 1 == info.contained.size(), with_values, out, depth + 1);
  }
}

std::string SensorNetworkManager::render_tree(const std::string& root,
                                              bool with_values) {
  std::string out;
  render_node(root, "", true, with_values, out, 0);
  return out;
}

obs::Snapshot SensorNetworkManager::health_snapshot() const {
  obs::Snapshot snap = obs::metrics().snapshot(scheduler_.now());
  if (network_ != nullptr) {
    snap.merge(network_->metrics().snapshot(scheduler_.now()));
  }
  return snap;
}

std::string SensorNetworkManager::health_report() const {
  std::string report = obs::render_federation_health(health_snapshot());
  // Per-registry shard balance: live populations straight from each known
  // federation (the obs gauges only track the most recently active one).
  const auto lookups = accessor_.lookups();
  if (!lookups.empty()) {
    report += "\nregistry shard balance\n";
    for (const auto& lus : lookups) {
      const std::vector<std::size_t> sizes = lus->shard_sizes();
      std::size_t total = 0;
      std::size_t max_size = 0;
      std::string row;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        total += sizes[i];
        max_size = std::max(max_size, sizes[i]);
        row += (i == 0 ? "" : " ") + std::to_string(sizes[i]);
      }
      const double mean =
          sizes.empty() ? 0.0
                        : static_cast<double>(total) /
                              static_cast<double>(sizes.size());
      report += util::format(
          "  %-12s %zu shards [%s]  imbalance %.2f\n", lus->name().c_str(),
          sizes.size(), row.c_str(),
          mean > 0.0 ? static_cast<double>(max_size) / mean : 0.0);
    }
  }
  return report;
}

}  // namespace sensorcer::core
