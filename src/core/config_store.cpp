#include "core/config_store.h"

#include <algorithm>

#include "util/strings.h"

namespace sensorcer::core {

NetworkDescription describe(SensorNetworkManager& manager) {
  NetworkDescription out;
  for (const auto& info : manager.list_services()) {
    if (info.kind != SensorServiceKind::kComposite) continue;
    out.composites.push_back(
        CompositeConfig{info.name, info.contained, info.expression});
  }
  // list_services() is already name-sorted; keep that as the canonical order.
  return out;
}

std::string to_text(const NetworkDescription& description) {
  std::string out;
  for (const auto& composite : description.composites) {
    out += "composite " + composite.name + "\n";
    for (const auto& component : composite.components) {
      out += "  component " + component + "\n";
    }
    if (!composite.expression.empty()) {
      out += "  expression " + composite.expression + "\n";
    }
    out += "end\n";
  }
  return out;
}

util::Result<NetworkDescription> parse_description(const std::string& text) {
  NetworkDescription out;
  CompositeConfig current;
  bool in_composite = false;
  std::size_t line_number = 0;

  for (const std::string& raw : util::split(text, '\n')) {
    ++line_number;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;

    const auto error = [&](const char* message) {
      return util::Status{
          util::ErrorCode::kInvalidArgument,
          util::format("%s at line %zu", message, line_number)};
    };

    if (util::starts_with(line, "composite ")) {
      if (in_composite) return error("nested 'composite'");
      current = CompositeConfig{};
      current.name = std::string(util::trim(line.substr(10)));
      if (current.name.empty()) return error("composite without a name");
      in_composite = true;
    } else if (line == "end") {
      if (!in_composite) return error("'end' outside a composite");
      out.composites.push_back(std::move(current));
      in_composite = false;
    } else if (util::starts_with(line, "component ")) {
      if (!in_composite) return error("'component' outside a composite");
      std::string name(util::trim(line.substr(10)));
      if (name.empty()) return error("component without a name");
      current.components.push_back(std::move(name));
    } else if (util::starts_with(line, "expression ")) {
      if (!in_composite) return error("'expression' outside a composite");
      current.expression = std::string(util::trim(line.substr(11)));
    } else {
      return error("unrecognized directive");
    }
  }
  if (in_composite) {
    return util::Status{util::ErrorCode::kInvalidArgument,
                        "unterminated composite (missing 'end')"};
  }
  return out;
}

ApplyReport apply_description(SensorcerFacade& facade,
                              const NetworkDescription& description) {
  ApplyReport report;
  // Pass 1: make sure every described composite exists, so wiring in pass 2
  // is independent of the order composites appear in the description.
  std::vector<const CompositeConfig*> wireable;
  for (const auto& composite : description.composites) {
    auto existing = facade.service_information(composite.name);
    if (!existing.is_ok()) {
      facade.create_local_service(composite.name);
      ++report.composites_created;
    } else if (existing.value().kind != SensorServiceKind::kComposite) {
      report.errors.push_back("'" + composite.name +
                              "' exists but is not a composite");
      continue;
    }
    wireable.push_back(&composite);
  }

  // Pass 2: restore components and expressions.
  for (const CompositeConfig* target : wireable) {
    const CompositeConfig& composite = *target;
    std::vector<std::string> present;
    if (auto info = facade.service_information(composite.name);
        info.is_ok()) {
      present = info.value().contained;
    }

    for (const auto& component : composite.components) {
      if (std::find(present.begin(), present.end(), component) !=
          present.end()) {
        continue;  // already wired
      }
      if (util::Status added =
              facade.compose_service(composite.name, {component});
          added.is_ok()) {
        ++report.components_added;
      } else {
        report.errors.push_back(composite.name + " <- " + component + ": " +
                                added.to_string());
      }
    }

    if (!composite.expression.empty()) {
      if (util::Status set =
              facade.add_expression(composite.name, composite.expression);
          set.is_ok()) {
        ++report.expressions_set;
      } else {
        report.errors.push_back(composite.name + " expression: " +
                                set.to_string());
      }
    }
  }
  return report;
}

}  // namespace sensorcer::core
