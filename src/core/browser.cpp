#include "core/browser.h"

#include "util/strings.h"

namespace sensorcer::core {

void SensorBrowser::refresh() {
  model_.registries.clear();
  model_.sensor_services.clear();

  for (const auto& lus : facade_.accessor().lookups()) {
    BrowserModel::LusListing listing;
    listing.lus_name = lus->name();
    for (const auto& item : lus->all_services()) {
      listing.services.emplace_back(
          item.attributes.get_string(registry::attr::kName, "<unnamed>"),
          util::join(item.types, ", "));
    }
    model_.registries.push_back(std::move(listing));
  }

  for (const auto& info : facade_.get_sensor_list()) {
    model_.sensor_services.push_back(info.name);
  }
}

util::Status SensorBrowser::select(const std::string& service_name) {
  auto info = facade_.service_information(service_name);
  if (!info.is_ok()) {
    model_.selection.reset();
    model_.selection_attributes.clear();
    return info.status();
  }
  model_.selection = info.value();

  // Entry Value pane: fetch the registered attributes of the selection.
  model_.selection_attributes.clear();
  auto item = facade_.accessor().find_item(
      registry::ServiceTemplate::by_id(info.value().id));
  if (item.is_ok()) {
    for (const auto& [key, value] : item.value().attributes) {
      model_.selection_attributes.emplace_back(
          key, registry::entry_value_to_string(value));
    }
  }
  return util::Status::ok();
}

void SensorBrowser::read_values() {
  model_.values.clear();
  for (const auto& name : model_.sensor_services) {
    BrowserModel::ValueRow row;
    row.name = name;
    auto value = facade_.get_value(name);
    if (value.is_ok()) {
      row.ok = true;
      row.value = value.value();
    } else {
      row.error = value.status().to_string();
    }
    model_.values.push_back(std::move(row));
  }
}

std::string SensorBrowser::render_services() const {
  std::string out = "Services\n========\n";
  for (const auto& listing : model_.registries) {
    out += "Lookup service " + listing.lus_name + "\n";
    for (const auto& [name, types] : listing.services) {
      out += "  - " + name + "  [" + types + "]\n";
    }
  }
  return out;
}

std::string SensorBrowser::render_information() const {
  std::string out = "Sensor Service Information\n==========================\n";
  if (!model_.selection) {
    return out + "(no service selected)\n";
  }
  const SensorInfo& info = *model_.selection;
  out += "Sensor Name:: " + info.name + "\n";
  out += std::string("Service Type:: ") + sensor_service_kind_name(info.kind) +
         "\n";
  out += "Service ID:: " + info.id.to_string() + "\n";
  if (!info.measurement.empty() && info.kind == SensorServiceKind::kElementary) {
    out += "Measurement:: " + info.measurement + " (" + info.unit + ")\n";
  }
  if (!info.location.empty()) out += "Location:: " + info.location + "\n";
  if (info.kind == SensorServiceKind::kComposite) {
    out += "Contained Services: " + util::join(info.contained, ", ") + "\n";
    out += "Compute Expression: " +
           (info.expression.empty() ? std::string("(default: average)")
                                    : info.expression) +
           "\n";
  }
  return out;
}

std::string SensorBrowser::render_entries() const {
  std::string out = "Entry Value\n===========\n";
  if (model_.selection_attributes.empty()) return out + "(none)\n";
  std::vector<std::vector<std::string>> rows;
  for (const auto& [key, value] : model_.selection_attributes) {
    rows.push_back({key, value});
  }
  return out + util::render_table({"Entry", "Value"}, rows);
}

std::string SensorBrowser::render_values() const {
  std::string out = "Sensor Value\n============\n";
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : model_.values) {
    rows.push_back({row.name, row.ok ? util::format("%.3f", row.value)
                                     : "<" + row.error + ">"});
  }
  out += util::render_table({"Service", "Value"}, rows);
  return out;
}

std::string SensorBrowser::render_health() const {
  return facade_.manager().health_report();
}

std::string SensorBrowser::render() const {
  return render_services() + "\n" + render_information() + "\n" +
         render_entries() + "\n" + render_values() + "\n" + render_health();
}

}  // namespace sensorcer::core
