#pragma once
// Composite Sensor Provider (CSP) — the aggregate of §V.B.
//
// A CSP composes elementary and other composite sensor services, binds each
// component to a dynamically created expression variable (a, b, c, ... in
// composition order), collects component values through the exertion
// federation, and computes its own value from them. Because a CSP can
// contain CSPs, logical sensor networking — and all of network management —
// "is reduced to the management of a single CSP".

#include <optional>
#include <string>
#include <vector>

#include "core/interfaces.h"
#include "core/sensor_computation.h"
#include "sorcer/accessor.h"
#include "sorcer/exert.h"
#include "sorcer/provider.h"
#include "util/scheduler.h"

namespace sensorcer::core {

/// How a CSP gathers component values.
struct CollectionPolicy {
  /// Child requests federate through a rendezvous peer when one is on the
  /// network (parallel push by default); with no rendezvous available the
  /// CSP degrades to direct sequential invocation.
  sorcer::ControlStrategy strategy{sorcer::Flow::kParallel,
                                   sorcer::Access::kPush, true};
  /// Strict: any unreachable component fails the read. Lenient: missing
  /// components are skipped — but only for the default (average)
  /// computation, since an expression needs every variable bound.
  bool strict = true;
};

class CompositeSensorProvider : public sorcer::ServiceProvider,
                                public SensorDataAccessor {
 public:
  CompositeSensorProvider(std::string name, sorcer::ServiceAccessor& accessor,
                          util::Scheduler& scheduler,
                          CollectionPolicy policy = {});

  // --- composition ---------------------------------------------------------

  /// Compose the sensor service registered under `service_name`. The
  /// component gets the next free variable ('a', 'b', ...). Fails when the
  /// service cannot be found, is not a SensorDataAccessor, or would create
  /// a containment cycle.
  util::Status add_component(const std::string& service_name);

  /// Remove a composed component by service name. Remaining components keep
  /// their variables; the expression is cleared if it referenced the freed
  /// variable.
  util::Status remove_component(const std::string& service_name);

  [[nodiscard]] std::size_t component_count() const {
    return components_.size();
  }
  [[nodiscard]] std::vector<std::string> component_names() const;
  [[nodiscard]] std::vector<std::string> component_variables() const;

  // --- computation -----------------------------------------------------------

  /// Attach a compute expression over the component variables.
  util::Status set_expression(const std::string& source);
  [[nodiscard]] std::string expression() const {
    return computation_.expression_source();
  }

  // --- SensorDataAccessor ------------------------------------------------------

  util::Result<double> get_value() override;
  util::Result<sensor::Reading> get_reading() override;
  [[nodiscard]] SensorInfo info() const override;

  /// Modeled latency of the most recent component collection (federated job
  /// or direct fan-out). Charged on top of the getValue operation when the
  /// composite is read through an exertion.
  [[nodiscard]] util::SimDuration last_collection_latency() const {
    return last_collection_latency_;
  }

 protected:
  util::SimDuration extra_invocation_latency(
      const std::string& selector) const override {
    return selector == op::kGetValue ? last_collection_latency_ : 0;
  }

 private:
  struct Component {
    registry::ServiceId id;
    std::string name;
    std::string variable;
  };

  void install_operations();

  /// Collect current values of all components (federated). Returns one
  /// optional per component, in order; nullopt = unreachable/failed.
  std::vector<std::optional<double>> collect();

  /// True if `candidate` (a composite) contains *this transitively.
  bool would_cycle(const SensorDataAccessor& candidate) const;

  sorcer::ServiceAccessor& accessor_;
  util::Scheduler& scheduler_;
  CollectionPolicy policy_;
  std::vector<Component> components_;
  SensorComputation computation_;
  std::size_t next_variable_ = 0;
  std::uint64_t reads_ = 0;
  util::SimDuration last_collection_latency_ = 0;
};

}  // namespace sensorcer::core
