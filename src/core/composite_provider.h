#pragma once
// Composite Sensor Provider (CSP) — the aggregate of §V.B.
//
// A CSP composes elementary and other composite sensor services, binds each
// component to a dynamically created expression variable (a, b, c, ... in
// composition order), collects component values through the exertion
// federation, and computes its own value from them. Because a CSP can
// contain CSPs, logical sensor networking — and all of network management —
// "is reduced to the management of a single CSP".
//
// The read path is optimized for heavy traffic:
//   * the per-component task signatures are prebuilt once and invalidated
//     only on composition changes (no per-read string assembly);
//   * reads newer than the policy's freshness window are served from the
//     cached collection without any fan-out;
//   * concurrent collections coalesce — N simultaneous readers pay one
//     fan-out (single-flight);
//   * with no rendezvous peer on the network, the direct fallback issues the
//     prebuilt plan as one scatter-gather batch — overlapped on the fabric
//     under wire transport, fanned across the worker pool in-process — under
//     the same slowest-child latency model the Jobber uses, instead of a
//     sequential child-latency sum.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/interfaces.h"
#include "core/sensor_computation.h"
#include "sorcer/accessor.h"
#include "sorcer/exert.h"
#include "sorcer/provider.h"
#include "util/scheduler.h"
#include "util/thread_pool.h"

namespace sensorcer::core {

/// How a CSP gathers component values.
struct CollectionPolicy {
  /// Child requests federate through a rendezvous peer when one is on the
  /// network (parallel push by default); with no rendezvous available the
  /// CSP degrades to direct invocation (parallel across `pool`, sequential
  /// without one).
  sorcer::ControlStrategy strategy{sorcer::Flow::kParallel,
                                   sorcer::Access::kPush, true};
  /// Strict: any unreachable component fails the read. Lenient: missing
  /// components are skipped — but only for the default (average)
  /// computation, since an expression needs every variable bound.
  bool strict = true;
  /// Reads within `freshness` of the last completed collection are served
  /// from the cached component values (stamped with the collection time);
  /// 0 disables the cache and every read re-collects.
  util::SimDuration freshness = 0;
  /// Worker pool for the in-process direct (no-rendezvous) fan-out; null
  /// keeps the sequential fallback and its sum-of-children latency model.
  /// Wire transport overlaps the batch on the fabric regardless of pool.
  util::ThreadPool* pool = nullptr;
};

class CompositeSensorProvider : public sorcer::ServiceProvider,
                                public SensorDataAccessor {
 public:
  CompositeSensorProvider(std::string name, sorcer::ServiceAccessor& accessor,
                          util::Scheduler& scheduler,
                          CollectionPolicy policy = {});

  // --- composition ---------------------------------------------------------

  /// Compose the sensor service registered under `service_name`. The
  /// component gets the next free variable ('a', 'b', ...). Fails when the
  /// service cannot be found, is not a SensorDataAccessor, or would create
  /// a containment cycle.
  util::Status add_component(const std::string& service_name);

  /// Remove a composed component by service name. Remaining components keep
  /// their variables; the expression is cleared if it referenced the freed
  /// variable, and re-bound to the shifted value order otherwise.
  util::Status remove_component(const std::string& service_name);

  [[nodiscard]] std::size_t component_count() const {
    return components_.size();
  }
  [[nodiscard]] std::vector<std::string> component_names() const;
  [[nodiscard]] std::vector<std::string> component_variables() const;

  // --- computation -----------------------------------------------------------

  /// Attach a compute expression over the component variables.
  util::Status set_expression(const std::string& source);
  [[nodiscard]] std::string expression() const {
    return computation_.expression_source();
  }

  // --- SensorDataAccessor ------------------------------------------------------

  util::Result<double> get_value() override;
  util::Result<sensor::Reading> get_reading() override;
  [[nodiscard]] SensorInfo info() const override;

  /// Failover hand-off: adopt the predecessor composite's composition and
  /// expression (components are re-resolved by name, so a cascade restart
  /// rebinds to whatever instances currently serve those names).
  void assume_state_from(sorcer::ServiceProvider& predecessor) override;

  /// Modeled latency of the most recent component collection (federated job
  /// or direct fan-out; zero when the read was served from the freshness
  /// cache or coalesced onto another reader's flight). Charged on top of
  /// the getValue operation when the composite is read through an exertion.
  [[nodiscard]] util::SimDuration last_collection_latency() const {
    return last_collection_latency_.load(std::memory_order_relaxed);
  }

 protected:
  util::SimDuration extra_invocation_latency(
      const std::string& selector) const override {
    return selector == op::kGetValue ? last_collection_latency() : 0;
  }

 private:
  struct Component {
    registry::ServiceId id;
    std::string name;
    std::string variable;
  };

  /// One prebuilt fan-out step: the task name (the component's variable)
  /// and its resolved signature, cached across reads.
  struct PlanEntry {
    std::string task_name;
    sorcer::Signature signature;
  };

  /// Result of one collection: per-component values in composition order
  /// (nullopt = unreachable/failed) plus provenance for quality stamping.
  struct Collected {
    std::vector<std::optional<double>> values;
    util::SimTime at = 0;
    bool from_cache = false;
  };

  void install_operations();

  /// Collect current values of all components, honouring the freshness
  /// cache and coalescing concurrent callers onto one in-flight fan-out.
  Collected collect();

  /// The actual fan-out: federated when a rendezvous peer exists, else
  /// direct (pool-parallel or sequential). Returns values + modeled latency.
  std::vector<std::optional<double>> fan_out(
      const std::vector<PlanEntry>& plan, util::SimDuration* latency);

  /// Shared implementation behind get_value/get_reading.
  util::Result<double> read_value(Collected* collected_out);

  /// Drop the cached collection (and, when `plan_too`, the prebuilt task
  /// signatures). Called on composition and expression changes.
  void invalidate_cache(bool plan_too);

  /// True if `candidate` (a composite) contains *this transitively.
  bool would_cycle(const SensorDataAccessor& candidate) const;

  sorcer::ServiceAccessor& accessor_;
  util::Scheduler& scheduler_;
  CollectionPolicy policy_;
  std::vector<Component> components_;
  SensorComputation computation_;
  std::size_t next_variable_ = 0;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<util::SimDuration> last_collection_latency_{0};

  // Collection cache + single-flight state. `collect_mu_` guards everything
  // below; the fan-out itself runs with the mutex released so concurrent
  // readers can coalesce instead of queueing.
  std::mutex collect_mu_;
  std::condition_variable collect_cv_;
  std::vector<PlanEntry> plan_;       // empty = rebuild on next collect
  bool cache_valid_ = false;
  util::SimTime cache_time_ = 0;
  std::vector<std::optional<double>> cached_values_;
  bool collect_in_flight_ = false;
  std::thread::id collect_owner_{};       // thread driving the in-flight fan-out
  std::uint64_t collect_generation_ = 0;  // bumped when a flight lands
};

}  // namespace sensorcer::core
