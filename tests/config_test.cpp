// Tests for the network-configuration store: describe / text round trip /
// apply, including the restore-after-failover workflow.

#include <gtest/gtest.h>

#include "core/config_store.h"
#include "core/deployment.h"
#include "util/strings.h"

namespace sensorcer::core {
namespace {

using util::kSecond;

class ConfigTest : public ::testing::Test {
 protected:
  ConfigTest() {
    lab.add_temperature_sensor("S1", 20.0);
    lab.add_temperature_sensor("S2", 22.0);
    lab.add_temperature_sensor("S3", 24.0);
    lab.pump(kSecond);
  }
  Deployment lab;
};

TEST_F(ConfigTest, DescribeCapturesCompositesOnly) {
  lab.facade().create_local_service("Subnet");
  ASSERT_TRUE(lab.facade().compose_service("Subnet", {"S1", "S2"}).is_ok());
  ASSERT_TRUE(lab.facade().add_expression("Subnet", "(a + b) / 2").is_ok());

  const NetworkDescription desc = describe(lab.manager());
  ASSERT_EQ(desc.composites.size(), 1u);
  EXPECT_EQ(desc.composites[0].name, "Subnet");
  EXPECT_EQ(desc.composites[0].components,
            (std::vector<std::string>{"S1", "S2"}));
  EXPECT_EQ(desc.composites[0].expression, "(a + b) / 2");
}

TEST_F(ConfigTest, TextRoundTrips) {
  NetworkDescription desc;
  desc.composites.push_back({"Net", {"Subnet", "S3"}, "(a + b) / 2"});
  desc.composites.push_back({"Subnet", {"S1", "S2"}, ""});

  auto parsed = parse_description(to_text(desc));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed.value() == desc);
}

TEST_F(ConfigTest, ParseSkipsCommentsAndBlankLines) {
  auto parsed = parse_description(
      "# saved by the browser\n\ncomposite C\n  # wiring\n  component S1\n"
      "end\n");
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().composites.size(), 1u);
  EXPECT_EQ(parsed.value().composites[0].components,
            (std::vector<std::string>{"S1"}));
}

TEST_F(ConfigTest, ParseErrorsCarryLineNumbers) {
  auto nested = parse_description("composite A\ncomposite B\nend\n");
  ASSERT_FALSE(nested.is_ok());
  EXPECT_NE(nested.status().message().find("line 2"), std::string::npos);

  EXPECT_FALSE(parse_description("end\n").is_ok());
  EXPECT_FALSE(parse_description("component X\n").is_ok());
  EXPECT_FALSE(parse_description("composite A\n").is_ok());  // no end
  EXPECT_FALSE(parse_description("composite A\n  bogus\nend\n").is_ok());
  EXPECT_FALSE(parse_description("composite \nend\n").is_ok());
}

TEST_F(ConfigTest, ApplyRebuildsTheNetwork) {
  // Deliberately listed with the parent BEFORE the child it contains:
  // apply_description must not depend on declaration order (name-sorted is
  // also what describe() produces).
  NetworkDescription desc;
  desc.composites.push_back({"Net", {"Subnet", "S3"}, "max(a, b)"});
  desc.composites.push_back({"Subnet", {"S1", "S2"}, "(a + b) / 2"});

  const ApplyReport report = apply_description(lab.facade(), desc);
  EXPECT_TRUE(report.ok()) << util::join(report.errors, "; ");
  EXPECT_EQ(report.composites_created, 2u);
  EXPECT_EQ(report.components_added, 4u);
  EXPECT_EQ(report.expressions_set, 2u);

  EXPECT_TRUE(lab.facade().get_value("Net").is_ok());
  EXPECT_TRUE(describe(lab.manager()) == desc);
}

TEST_F(ConfigTest, ApplyIsIdempotent) {
  NetworkDescription desc;
  desc.composites.push_back({"C", {"S1"}, "a * 2"});
  ASSERT_TRUE(apply_description(lab.facade(), desc).ok());
  const ApplyReport again = apply_description(lab.facade(), desc);
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(again.composites_created, 0u);
  EXPECT_EQ(again.components_added, 0u);  // already wired
  auto info = lab.facade().service_information("C");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().contained.size(), 1u);
}

TEST_F(ConfigTest, ApplyReportsMissingComponents) {
  NetworkDescription desc;
  desc.composites.push_back({"C", {"Ghost"}, ""});
  const ApplyReport report = apply_description(lab.facade(), desc);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("Ghost"), std::string::npos);
}

TEST_F(ConfigTest, ApplyRefusesNonCompositeTargets) {
  NetworkDescription desc;
  desc.composites.push_back({"S1", {"S2"}, ""});  // S1 is elementary
  const ApplyReport report = apply_description(lab.facade(), desc);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("not a composite"), std::string::npos);
}

TEST(ConfigFailover, SnapshotRestoresReprovisionedComposite) {
  // The workflow the air-vehicle example performs by hand: snapshot the
  // network, lose the cybernode hosting a provisioned composite, and apply
  // the snapshot to re-wire the fresh replacement instance.
  DeploymentConfig config;
  config.cybernodes = 2;
  config.lease_duration = 2 * kSecond;
  Deployment lab(config);
  lab.add_temperature_sensor("S1", 20.0);
  lab.add_temperature_sensor("S2", 24.0);
  lab.pump(kSecond);

  ASSERT_TRUE(lab.facade().create_service("Watch").is_ok());
  lab.pump(kSecond);
  ASSERT_TRUE(lab.facade().compose_service("Watch", {"S1", "S2"}).is_ok());
  ASSERT_TRUE(lab.facade().add_expression("Watch", "(a + b) / 2").is_ok());

  const std::string saved = to_text(describe(lab.manager()));

  for (const auto& node : lab.cybernodes()) {
    if (node->hosted_count() > 0) node->fail();
  }
  lab.pump(10 * kSecond);  // reprovisioned; state hand-off keeps the wiring
  auto info = lab.facade().service_information("Watch");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().contained.size(), 2u);
  // Applying the saved description on top must be idempotent: the adopted
  // composition is kept, not duplicated or rejected.

  auto parsed = parse_description(saved);
  ASSERT_TRUE(parsed.is_ok());
  const ApplyReport report = apply_description(lab.facade(), parsed.value());
  EXPECT_TRUE(report.ok()) << util::join(report.errors, "; ");

  auto value = lab.facade().get_value("Watch");
  ASSERT_TRUE(value.is_ok()) << value.status().to_string();
  EXPECT_GT(value.value(), 15.0);
  EXPECT_LT(value.value(), 30.0);
  EXPECT_EQ(lab.facade().service_information("Watch").value().expression,
            "(a + b) / 2");
}

}  // namespace
}  // namespace sensorcer::core
